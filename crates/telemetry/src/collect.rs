//! Concrete collectors: trajectory recorder, stage timers, counters, and
//! the all-in-one [`Recorder`] the bench harness serializes.

use crate::observer::SolveObserver;
use crate::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// Records the `(iteration, energy)` samples of SB trajectories.
///
/// Samples from consecutive trajectories are appended in order; use
/// [`trajectory_starts`](EnergyTrajectory::trajectory_starts) to split them
/// back apart.
#[derive(Debug, Clone, Default)]
pub struct EnergyTrajectory {
    samples: Vec<(usize, f64)>,
    starts: Vec<usize>,
}

impl EnergyTrajectory {
    /// An empty trajectory recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded `(iteration, energy)` samples.
    pub fn samples(&self) -> &[(usize, f64)] {
        &self.samples
    }

    /// Offsets into [`samples`](Self::samples) where each trajectory began.
    pub fn trajectory_starts(&self) -> &[usize] {
        &self.starts
    }

    /// Lowest sampled energy, if any sample was recorded.
    pub fn best_energy(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, e)| e)
            .min_by(f64::total_cmp)
    }
}

impl SolveObserver for EnergyTrajectory {
    fn sb_start(&mut self, _spins: usize, _max_iterations: usize) {
        self.starts.push(self.samples.len());
    }

    fn sb_sample(&mut self, iteration: usize, energy: f64, _best: f64, _amp: f64) {
        self.samples.push((iteration, energy));
    }
}

/// Accumulates wall-clock time per named stage.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    totals: BTreeMap<String, Duration>,
}

impl StageTimings {
    /// An empty timer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accumulated time for `stage` (zero if never reported).
    pub fn total(&self, stage: &str) -> Duration {
        self.totals.get(stage).copied().unwrap_or(Duration::ZERO)
    }

    /// All `(stage, total)` pairs, sorted by stage name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.totals.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders the timings as a JSON object of seconds per stage.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.totals
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(v.as_secs_f64())))
                .collect(),
        )
    }
}

impl SolveObserver for StageTimings {
    fn stage_end(&mut self, stage: &str, wall: Duration) {
        *self.totals.entry(stage.to_string()).or_default() += wall;
    }
}

/// Named monotonic counters.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of `name` (zero if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// All `(name, value)` pairs, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders the counters as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.values
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                .collect(),
        )
    }
}

impl SolveObserver for Counters {
    fn counter(&mut self, name: &str, delta: u64) {
        *self.values.entry(name.to_string()).or_default() += delta;
    }
}

/// Aggregate statistics over all SB trajectories an observer saw.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SbStats {
    /// Trajectories started.
    pub runs: usize,
    /// Iterations summed over all trajectories.
    pub total_iterations: usize,
    /// Sampling points observed.
    pub samples: usize,
    /// Trajectories that stopped via the dynamic variance criterion.
    pub settled: usize,
    /// Best energy over all trajectories (`f64::INFINITY` before any stop).
    pub best_energy: f64,
    /// Replica lanes advanced through batched SoA integrations (summed
    /// batch widths; 0 when every solve ran sequentially).
    pub batched_lanes: usize,
    /// Lanes the dynamic variance criterion retired before the iteration
    /// budget, across all batched integrations.
    pub lanes_retired: usize,
    /// Widest single batch observed.
    pub max_batch: usize,
    /// Fused multi-COP batches observed (one per sweep cell that ran on
    /// the engine's fused lane-packing path).
    pub fused_batches: usize,
    /// `(COP, replica)` units drained through fused batches.
    pub fused_units: usize,
    /// Lane refills across all fused batches (a unit taking over a lane
    /// another unit retired from mid-integration).
    pub fused_refills: usize,
    /// Lane-iterations that advanced a live unit, across fused batches.
    pub fused_busy: u64,
    /// Lane-iterations burned on already-retired lanes, across fused
    /// batches.
    pub fused_idle: u64,
    /// Widest fused lane configuration observed.
    pub fused_max_lane_width: usize,
}

impl SbStats {
    fn new() -> Self {
        SbStats {
            best_energy: f64::INFINITY,
            ..Default::default()
        }
    }

    /// Fraction of fused lane-iterations that advanced a live unit
    /// (1.0 when no fused batch ran — nothing was wasted).
    pub fn fused_occupancy(&self) -> f64 {
        let total = self.fused_busy + self.fused_idle;
        if total == 0 {
            1.0
        } else {
            self.fused_busy as f64 / total as f64
        }
    }
}

/// One recorded per-partition COP result (see
/// [`SolveObserver::cop_result`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopRecord {
    /// Framework round.
    pub round: usize,
    /// Output component index.
    pub component: u32,
    /// Candidate partition index within the round.
    pub partition: usize,
    /// Achieved COP objective.
    pub objective: f64,
    /// SB iterations spent (0 for non-Ising solvers).
    pub iterations: usize,
}

/// One recorded portfolio decision (see [`SolveObserver::cop_winner`]):
/// the COP's shape features and the member solver that won it.
#[derive(Debug, Clone, PartialEq)]
pub struct WinnerRecord {
    /// Framework round.
    pub round: usize,
    /// Output component index.
    pub component: u32,
    /// Candidate partition index within the round.
    pub partition: usize,
    /// Winning member solver's name.
    pub winner: String,
    /// Bound-set rows of the COP weight grid.
    pub rows: usize,
    /// Free-set columns of the COP weight grid.
    pub cols: usize,
    /// Spread (`max − min`) of the COP weights.
    pub weight_spread: f64,
}

/// The everything collector: stages, counters, gauges, SB aggregates, the
/// energy trajectory, and the framework's per-COP / per-component decision
/// log, all in one observer the bench harness can serialize.
#[derive(Debug, Clone)]
pub struct Recorder {
    /// Per-stage wall-clock totals.
    pub stages: StageTimings,
    /// Monotonic counters.
    pub counters: Counters,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// SB aggregates.
    pub sb: SbStats,
    /// Full energy trajectory (can be large; see
    /// [`keep_trajectory`](Recorder::keep_trajectory)).
    pub trajectory: EnergyTrajectory,
    /// Per-partition COP results.
    pub cops: Vec<CopRecord>,
    /// `(round, component, objective, kept_incumbent)` decisions.
    pub components: Vec<(usize, u32, f64, bool)>,
    /// Per-COP portfolio winners with instance features.
    pub winners: Vec<WinnerRecord>,
    keep_trajectory: bool,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder that keeps everything, including the full trajectory.
    pub fn new() -> Self {
        Recorder {
            stages: StageTimings::new(),
            counters: Counters::new(),
            gauges: BTreeMap::new(),
            sb: SbStats::new(),
            trajectory: EnergyTrajectory::new(),
            cops: Vec::new(),
            components: Vec::new(),
            winners: Vec::new(),
            keep_trajectory: true,
        }
    }

    /// Tally of portfolio winners by name, sorted by name (empty when no
    /// portfolio ran).
    pub fn winner_tally(&self) -> BTreeMap<&str, u64> {
        let mut tally = BTreeMap::new();
        for w in &self.winners {
            *tally.entry(w.winner.as_str()).or_default() += 1;
        }
        tally
    }

    /// Enables/disables storing every `(iteration, energy)` sample (the
    /// aggregates in [`sb`](Recorder::sb) are kept either way). Disable for
    /// long runs where the trajectory would dominate memory.
    pub fn keep_trajectory(mut self, keep: bool) -> Self {
        self.keep_trajectory = keep;
        self
    }
}

impl SolveObserver for Recorder {
    fn stage_end(&mut self, stage: &str, wall: Duration) {
        self.stages.stage_end(stage, wall);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.counters.counter(name, delta);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    fn sb_start(&mut self, spins: usize, max_iterations: usize) {
        self.sb.runs += 1;
        if self.keep_trajectory {
            self.trajectory.sb_start(spins, max_iterations);
        }
    }

    fn sb_sample(&mut self, iteration: usize, energy: f64, best: f64, amp: f64) {
        self.sb.samples += 1;
        if self.keep_trajectory {
            self.trajectory.sb_sample(iteration, energy, best, amp);
        }
    }

    fn sb_stop(&mut self, iterations: usize, best_energy: f64, settled: bool) {
        self.sb.total_iterations += iterations;
        if settled {
            self.sb.settled += 1;
        }
        if best_energy < self.sb.best_energy {
            self.sb.best_energy = best_energy;
        }
    }

    fn sb_batch(&mut self, lanes: usize, retired_early: usize) {
        self.sb.batched_lanes += lanes;
        self.sb.lanes_retired += retired_early;
        self.sb.max_batch = self.sb.max_batch.max(lanes);
    }

    fn fused_batch(
        &mut self,
        lane_width: usize,
        units: usize,
        refills: usize,
        busy_iterations: u64,
        idle_iterations: u64,
    ) {
        self.sb.fused_batches += 1;
        self.sb.fused_units += units;
        self.sb.fused_refills += refills;
        self.sb.fused_busy += busy_iterations;
        self.sb.fused_idle += idle_iterations;
        self.sb.fused_max_lane_width = self.sb.fused_max_lane_width.max(lane_width);
    }

    fn cop_result(&mut self, round: usize, component: u32, partition: usize, objective: f64, iterations: usize) {
        self.cops.push(CopRecord {
            round,
            component,
            partition,
            objective,
            iterations,
        });
    }

    fn component_chosen(&mut self, round: usize, component: u32, objective: f64, kept_incumbent: bool) {
        self.components.push((round, component, objective, kept_incumbent));
    }

    #[allow(clippy::too_many_arguments)]
    fn cop_winner(
        &mut self,
        round: usize,
        component: u32,
        partition: usize,
        winner: &str,
        rows: usize,
        cols: usize,
        weight_spread: f64,
    ) {
        self.winners.push(WinnerRecord {
            round,
            component,
            partition,
            winner: winner.to_string(),
            rows,
            cols,
            weight_spread,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_splits_runs() {
        let mut t = EnergyTrajectory::new();
        t.sb_start(4, 100);
        t.sb_sample(10, 1.0, 1.0, 0.5);
        t.sb_sample(20, -1.0, -1.0, 0.9);
        t.sb_start(4, 100);
        t.sb_sample(10, 0.5, 0.5, 0.4);
        assert_eq!(t.samples().len(), 3);
        assert_eq!(t.trajectory_starts(), &[0, 2]);
        assert_eq!(t.best_energy(), Some(-1.0));
    }

    #[test]
    fn stage_timings_accumulate() {
        let mut s = StageTimings::new();
        s.stage_end("sweep", Duration::from_millis(10));
        s.stage_end("sweep", Duration::from_millis(5));
        s.stage_end("metrics", Duration::from_millis(1));
        assert_eq!(s.total("sweep"), Duration::from_millis(15));
        assert_eq!(s.total("missing"), Duration::ZERO);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.counter("cop_solves", 3);
        c.counter("cop_solves", 2);
        assert_eq!(c.get("cop_solves"), 5);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn recorder_aggregates_sb_runs() {
        let mut r = Recorder::new();
        r.sb_start(8, 1000);
        r.sb_sample(20, 2.0, 2.0, 0.1);
        r.sb_stop(40, 2.0, false);
        r.sb_start(8, 1000);
        r.sb_sample(20, -5.0, -5.0, 0.8);
        r.sb_stop(20, -5.0, true);
        assert_eq!(r.sb.runs, 2);
        assert_eq!(r.sb.total_iterations, 60);
        assert_eq!(r.sb.samples, 2);
        assert_eq!(r.sb.settled, 1);
        assert_eq!(r.sb.best_energy, -5.0);
        assert_eq!(r.trajectory.samples().len(), 2);
    }

    #[test]
    fn recorder_aggregates_batches() {
        let mut r = Recorder::new();
        r.sb_batch(16, 3);
        r.sb_batch(4, 4);
        assert_eq!(r.sb.batched_lanes, 20);
        assert_eq!(r.sb.lanes_retired, 7);
        assert_eq!(r.sb.max_batch, 16);
    }

    #[test]
    fn recorder_aggregates_fused_batches() {
        let mut r = Recorder::new();
        assert_eq!(r.sb.fused_occupancy(), 1.0);
        r.fused_batch(16, 40, 24, 900, 100);
        r.fused_batch(8, 10, 2, 80, 20);
        assert_eq!(r.sb.fused_batches, 2);
        assert_eq!(r.sb.fused_units, 50);
        assert_eq!(r.sb.fused_refills, 26);
        assert_eq!(r.sb.fused_busy, 980);
        assert_eq!(r.sb.fused_idle, 120);
        assert_eq!(r.sb.fused_max_lane_width, 16);
        assert!((r.sb.fused_occupancy() - 980.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn recorder_tallies_portfolio_winners() {
        let mut r = Recorder::new();
        r.cop_winner(0, 1, 2, "bsb", 3, 4, 0.5);
        r.cop_winner(0, 2, 0, "simcim", 3, 4, 0.25);
        r.cop_winner(1, 1, 1, "bsb", 3, 4, 0.5);
        assert_eq!(r.winners.len(), 3);
        assert_eq!(r.winners[1].winner, "simcim");
        assert_eq!(r.winners[2].round, 1);
        let tally = r.winner_tally();
        assert_eq!(tally.get("bsb"), Some(&2));
        assert_eq!(tally.get("simcim"), Some(&1));
    }

    #[test]
    fn recorder_can_drop_trajectory() {
        let mut r = Recorder::new().keep_trajectory(false);
        r.sb_start(8, 1000);
        r.sb_sample(20, 2.0, 2.0, 0.1);
        r.sb_stop(20, 2.0, true);
        assert_eq!(r.trajectory.samples().len(), 0);
        assert_eq!(r.sb.samples, 1);
    }
}
