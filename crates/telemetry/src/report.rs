//! Structured, machine-readable run reports.
//!
//! Every bench binary assembles a [`RunReport`] — the tool name, seed,
//! configuration, and one [`ReportCell`] per (benchmark × method) cell with
//! its wall time, per-stage timings, COP/SB counters and final energies —
//! and writes it as `results/RUN_<tool>_<seed>_<timestamp>.json`, so runs
//! are reproducible and comparable across commits.

use crate::collect::{Recorder, StageTimings};
use crate::Json;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// One measured cell of a run (a benchmark × mode × method combination).
#[derive(Debug, Clone)]
pub struct ReportCell {
    /// Benchmark/function name.
    pub benchmark: String,
    /// Error mode (`Separate`/`Joint`) or a free-form label.
    pub mode: String,
    /// Solution method name.
    pub method: String,
    /// Final objective of the run (MED for decomposition runs, ER for
    /// per-COP ablations).
    pub objective: f64,
    /// Wall-clock seconds for the cell.
    pub seconds: f64,
    /// Core-COP instances solved.
    pub cop_solves: u64,
    /// COP solves answered from the sweep engine's memo table.
    pub cache_hits: u64,
    /// COP solves that missed the memo table and ran a solver.
    pub cache_misses: u64,
    /// bSB Euler iterations, summed over every trajectory in the cell.
    pub sb_iterations: u64,
    /// SB trajectories run.
    pub sb_runs: u64,
    /// Trajectories stopped by the dynamic variance criterion.
    pub sb_settled: u64,
    /// Replica lanes advanced through batched SoA integrations.
    pub sb_batched_lanes: u64,
    /// Lanes retired early by the dynamic stop inside batches.
    pub sb_lanes_retired: u64,
    /// Fused multi-COP batches run by the sweep engine (one per cell that
    /// took the fused lane-packing path; 0 when it never engaged).
    pub fused_batches: u64,
    /// `(COP, replica)` units drained through fused batches.
    pub fused_units: u64,
    /// Lane refills across all fused batches.
    pub fused_refills: u64,
    /// Fraction of fused lane-iterations spent on live units (1.0 when no
    /// fused batch ran).
    pub fused_occupancy: f64,
    /// Best raw SB energy observed (`None` when no trajectory reported).
    pub best_energy: Option<f64>,
    /// Per-stage wall-clock totals within the cell.
    pub stages: StageTimings,
    /// Extra tool-specific fields appended verbatim to the JSON.
    pub extra: Vec<(String, Json)>,
}

impl ReportCell {
    /// A cell with the identifying labels set and all measurements zeroed.
    pub fn new(benchmark: impl Into<String>, mode: impl Into<String>, method: impl Into<String>) -> Self {
        ReportCell {
            benchmark: benchmark.into(),
            mode: mode.into(),
            method: method.into(),
            objective: 0.0,
            seconds: 0.0,
            cop_solves: 0,
            cache_hits: 0,
            cache_misses: 0,
            sb_iterations: 0,
            sb_runs: 0,
            sb_settled: 0,
            sb_batched_lanes: 0,
            sb_lanes_retired: 0,
            fused_batches: 0,
            fused_units: 0,
            fused_refills: 0,
            fused_occupancy: 1.0,
            best_energy: None,
            stages: StageTimings::new(),
            extra: Vec::new(),
        }
    }

    /// Copies the SB aggregates, counters and stage timings out of a
    /// [`Recorder`] that observed this cell's solve.
    pub fn absorb(mut self, rec: &Recorder) -> Self {
        self.cop_solves = rec.counters.get("cop_solves");
        self.cache_hits = rec.counters.get("cache_hits");
        self.cache_misses = rec.counters.get("cache_misses");
        self.sb_iterations = rec.counters.get("sb_iterations").max(rec.sb.total_iterations as u64);
        self.sb_runs = rec.sb.runs as u64;
        self.sb_settled = rec.sb.settled as u64;
        self.sb_batched_lanes = rec.sb.batched_lanes as u64;
        self.sb_lanes_retired = rec.sb.lanes_retired as u64;
        self.fused_batches = rec.sb.fused_batches as u64;
        self.fused_units = rec.sb.fused_units as u64;
        self.fused_refills = rec.sb.fused_refills as u64;
        self.fused_occupancy = rec.sb.fused_occupancy();
        if rec.sb.best_energy.is_finite() {
            self.best_energy = Some(rec.sb.best_energy);
        }
        self.stages = rec.stages.clone();
        if !rec.winners.is_empty() {
            self.extra.push((
                "portfolio_winners".to_string(),
                Json::Obj(
                    rec.winner_tally()
                        .into_iter()
                        .map(|(name, count)| (name.to_string(), Json::Num(count as f64)))
                        .collect(),
                ),
            ));
        }
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("benchmark".to_string(), Json::str(&self.benchmark)),
            ("mode".to_string(), Json::str(&self.mode)),
            ("method".to_string(), Json::str(&self.method)),
            ("objective".to_string(), Json::Num(self.objective)),
            ("seconds".to_string(), Json::Num(self.seconds)),
            ("cop_solves".to_string(), Json::Num(self.cop_solves as f64)),
            ("cache_hits".to_string(), Json::Num(self.cache_hits as f64)),
            ("cache_misses".to_string(), Json::Num(self.cache_misses as f64)),
            ("sb_iterations".to_string(), Json::Num(self.sb_iterations as f64)),
            ("sb_runs".to_string(), Json::Num(self.sb_runs as f64)),
            ("sb_settled".to_string(), Json::Num(self.sb_settled as f64)),
            (
                "sb_batched_lanes".to_string(),
                Json::Num(self.sb_batched_lanes as f64),
            ),
            (
                "sb_lanes_retired".to_string(),
                Json::Num(self.sb_lanes_retired as f64),
            ),
            ("fused_batches".to_string(), Json::Num(self.fused_batches as f64)),
            ("fused_units".to_string(), Json::Num(self.fused_units as f64)),
            ("fused_refills".to_string(), Json::Num(self.fused_refills as f64)),
            (
                "fused_occupancy".to_string(),
                Json::Num(self.fused_occupancy),
            ),
            (
                "best_energy".to_string(),
                self.best_energy.map(Json::Num).unwrap_or(Json::Null),
            ),
            ("stages_seconds".to_string(), self.stages.to_json()),
        ];
        fields.extend(self.extra.iter().cloned());
        Json::Obj(fields)
    }
}

/// A full run report, serialized to `results/RUN_*.json`.
#[derive(Debug, Clone)]
pub struct RunReport {
    tool: String,
    seed: u64,
    config: Vec<(String, Json)>,
    cells: Vec<ReportCell>,
    total_wall: Duration,
}

impl RunReport {
    /// A report for `tool` (e.g. `"table1"`) run under `seed`.
    pub fn new(tool: impl Into<String>, seed: u64) -> Self {
        RunReport {
            tool: tool.into(),
            seed,
            config: Vec::new(),
            cells: Vec::new(),
            total_wall: Duration::ZERO,
        }
    }

    /// Records a configuration key (partitions, rounds, replicas, …).
    pub fn config(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        self.config.push((key.into(), value));
        self
    }

    /// Appends a measured cell.
    pub fn push(&mut self, cell: ReportCell) -> &mut Self {
        self.cells.push(cell);
        self
    }

    /// Sets the whole-run wall-clock time.
    pub fn total_wall(&mut self, wall: Duration) -> &mut Self {
        self.total_wall = wall;
        self
    }

    /// Number of cells recorded so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Renders the report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::str("adis-run-report/1")),
            ("tool".to_string(), Json::str(&self.tool)),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            (
                "unix_time".to_string(),
                Json::Num(unix_time_ms() as f64 / 1000.0),
            ),
            ("config".to_string(), Json::Obj(self.config.clone())),
            (
                "total_seconds".to_string(),
                Json::Num(self.total_wall.as_secs_f64()),
            ),
            (
                "cells".to_string(),
                Json::Arr(self.cells.iter().map(ReportCell::to_json).collect()),
            ),
        ])
    }

    /// Writes the report into `dir` (created if missing) as
    /// `RUN_<tool>_s<seed>_<unix-ms>.json` and returns the path.
    ///
    /// The name is collision-proofed through
    /// [`write_unique`](RunReport::write_unique): two writers hitting the
    /// same millisecond (e.g. concurrent serve workers flushing per-job
    /// reports) get distinct files instead of silently overwriting each
    /// other.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        self.write_unique(
            dir,
            format!("RUN_{}_s{}_{}", self.tool, self.seed, unix_time_ms()),
        )
    }

    /// Writes the report into `dir` (created if missing) as
    /// `<stem>.json`, falling back to `<stem>-1.json`, `<stem>-2.json`, …
    /// if the name is already taken, and returns the path actually used.
    ///
    /// Files are created with `O_EXCL` semantics, so concurrent writers
    /// racing on the same stem each land in their own file — nothing is
    /// ever overwritten.
    pub fn write_unique(
        &self,
        dir: impl AsRef<Path>,
        stem: impl AsRef<str>,
    ) -> io::Result<PathBuf> {
        use std::io::Write as _;

        let dir = dir.as_ref();
        let stem = stem.as_ref();
        std::fs::create_dir_all(dir)?;
        let body = self.to_json().render_pretty();
        let mut attempt = 0u32;
        loop {
            let name = if attempt == 0 {
                format!("{stem}.json")
            } else {
                format!("{stem}-{attempt}.json")
            };
            let path = dir.join(name);
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    file.write_all(body.as_bytes())?;
                    return Ok(path);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists && attempt < 10_000 => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes the report into `dir` (created if missing) under a
    /// caller-chosen file name and returns the path. Unlike
    /// [`write`](RunReport::write), the name carries no timestamp — for
    /// artifacts that CI (or scripts) must find at a deterministic path.
    pub fn write_named(
        &self,
        dir: impl AsRef<Path>,
        name: impl AsRef<Path>,
    ) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name.as_ref());
        std::fs::write(&path, self.to_json().render_pretty())?;
        Ok(path)
    }
}

fn unix_time_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveObserver;

    #[test]
    fn report_round_trip_shape() {
        let mut rec = Recorder::new();
        rec.counter("cop_solves", 8);
        rec.counter("cache_hits", 3);
        rec.counter("cache_misses", 5);
        rec.sb_start(21, 10_000);
        rec.sb_sample(20, -1.5, -1.5, 0.7);
        rec.sb_stop(120, -1.5, true);
        rec.fused_batch(16, 40, 24, 900, 100);
        rec.stage_end("cop_sweep", Duration::from_millis(12));

        let mut report = RunReport::new("table1", 7);
        report.config("partitions", Json::Num(8.0));
        let mut cell = ReportCell::new("exp", "Joint", "Prop.").absorb(&rec);
        cell.objective = 3.25;
        cell.seconds = 0.012;
        report.push(cell);
        report.total_wall(Duration::from_millis(20));

        assert_eq!(report.len(), 1);
        assert!(!report.is_empty());
        let text = report.to_json().render();
        for needle in [
            "\"schema\":\"adis-run-report/1\"",
            "\"tool\":\"table1\"",
            "\"seed\":7",
            "\"partitions\":8",
            "\"cop_solves\":8",
            "\"cache_hits\":3",
            "\"cache_misses\":5",
            "\"sb_iterations\":120",
            "\"sb_settled\":1",
            "\"fused_batches\":1",
            "\"fused_units\":40",
            "\"fused_refills\":24",
            "\"fused_occupancy\":0.9",
            "\"best_energy\":-1.5",
            "\"objective\":3.25",
            "\"cop_sweep\":0.012",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join(format!(
            "adis-telemetry-test-{}-{}",
            std::process::id(),
            unix_time_ms()
        ));
        let report = RunReport::new("unit", 1);
        let path = report.write(&dir).expect("writable temp dir");
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(name.starts_with("RUN_unit_s1_"));
        assert!(name.ends_with(".json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"cells\": []"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_on_one_stem_never_collide() {
        use std::collections::HashSet;
        use std::thread;

        let dir = std::env::temp_dir().join(format!(
            "adis-telemetry-unique-{}-{}",
            std::process::id(),
            unix_time_ms()
        ));
        const WRITERS: usize = 8;
        let paths: Vec<PathBuf> = thread::scope(|scope| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|i| {
                    let dir = dir.clone();
                    scope.spawn(move || {
                        let mut report = RunReport::new("serve", i as u64);
                        report.config("writer", Json::Num(i as f64));
                        report.write_unique(&dir, "RUN_serve_job").expect("writable")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let distinct: HashSet<&PathBuf> = paths.iter().collect();
        assert_eq!(distinct.len(), WRITERS, "every writer must get its own file");
        // Each file holds exactly the report its writer produced.
        let mut seeds = HashSet::new();
        for path in &paths {
            let text = std::fs::read_to_string(path).unwrap();
            let seed = Json::parse(&text)
                .unwrap()
                .get("seed")
                .and_then(Json::as_u64)
                .unwrap();
            assert!(seeds.insert(seed), "seed {seed} appeared twice");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_unique_suffixes_in_order() {
        let dir = std::env::temp_dir().join(format!(
            "adis-telemetry-suffix-{}-{}",
            std::process::id(),
            unix_time_ms()
        ));
        let report = RunReport::new("unit", 0);
        let a = report.write_unique(&dir, "same").unwrap();
        let b = report.write_unique(&dir, "same").unwrap();
        let c = report.write_unique(&dir, "same").unwrap();
        assert_eq!(a, dir.join("same.json"));
        assert_eq!(b, dir.join("same-1.json"));
        assert_eq!(c, dir.join("same-2.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_named_uses_deterministic_path() {
        let dir = std::env::temp_dir().join(format!(
            "adis-telemetry-named-{}-{}",
            std::process::id(),
            unix_time_ms()
        ));
        let report = RunReport::new("check", 5);
        let path = report.write_named(&dir, "CHECK_s5.json").expect("writable");
        assert_eq!(path, dir.join("CHECK_s5.json"));
        assert!(std::fs::read_to_string(&path).unwrap().contains("\"tool\": \"check\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
