//! Feature-gated tracing at crate boundaries.
//!
//! The observability issue asks for `tracing` spans; that crate cannot be
//! fetched in this offline build environment, so this module provides a
//! dependency-free stand-in with the same call shape: [`trace_event!`] for
//! one-shot events and [`trace_span!`] for scoped spans that report their
//! wall-clock time on drop. Both compile to nothing (no formatting, no
//! allocation) unless the `trace` cargo feature is enabled — crates further
//! up the stack forward it as their own `trace` feature — so the default
//! build pays zero cost.
//!
//! Output goes to stderr as single lines:
//!
//! ```text
//! [adis::trace adis_sb::solver] enter solve n=21
//! [adis::trace adis_sb::solver] exit  solve (1.234ms)
//! ```

/// Emits a one-shot trace event (`format!`-style arguments) to stderr.
/// Compiles to nothing without the `trace` feature.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! trace_event {
    ($($arg:tt)*) => {
        eprintln!("[adis::trace {}] {}", module_path!(), format_args!($($arg)*));
    };
}

/// Emits a one-shot trace event (`format!`-style arguments) to stderr.
/// Compiles to nothing without the `trace` feature.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! trace_event {
    ($($arg:tt)*) => {};
}

/// Opens a [`TraceSpan`](crate::TraceSpan) guard that logs entry now and
/// exit (with elapsed time) when dropped. Bind it to keep the span open:
///
/// ```
/// let _span = adis_telemetry::trace_span!("solve n={}", 21);
/// // ... traced work ...
/// ```
///
/// Without the `trace` feature the guard is inert and the format arguments
/// are never evaluated.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! trace_span {
    ($($arg:tt)*) => {
        $crate::TraceSpan::enter(module_path!(), format!($($arg)*))
    };
}

/// Opens a [`TraceSpan`](crate::TraceSpan) guard that logs entry now and
/// exit (with elapsed time) when dropped. Bind it to keep the span open:
///
/// ```
/// let _span = adis_telemetry::trace_span!("solve n={}", 21);
/// // ... traced work ...
/// ```
///
/// Without the `trace` feature the guard is inert and the format arguments
/// are never evaluated.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! trace_span {
    ($($arg:tt)*) => {
        $crate::TraceSpan::disabled()
    };
}

/// A scoped span guard created by [`trace_span!`]: logs `enter` on
/// creation and `exit` with elapsed wall time on drop. Without the `trace`
/// feature it is an inert zero-sized value.
#[derive(Debug)]
pub struct TraceSpan {
    #[cfg(feature = "trace")]
    module: &'static str,
    #[cfg(feature = "trace")]
    label: String,
    #[cfg(feature = "trace")]
    start: std::time::Instant,
}

impl TraceSpan {
    /// Starts a live span (used via [`trace_span!`] with `trace` enabled).
    #[cfg(feature = "trace")]
    #[inline]
    pub fn enter(module: &'static str, label: String) -> TraceSpan {
        eprintln!("[adis::trace {module}] enter {label}");
        TraceSpan {
            module,
            label,
            start: std::time::Instant::now(),
        }
    }

    /// The inert guard used when the `trace` feature is off.
    #[cfg(not(feature = "trace"))]
    #[inline]
    pub fn disabled() -> TraceSpan {
        TraceSpan {}
    }
}

#[cfg(feature = "trace")]
impl Drop for TraceSpan {
    fn drop(&mut self) {
        eprintln!(
            "[adis::trace {}] exit  {} ({:.3}ms)",
            self.module,
            self.label,
            self.start.elapsed().as_secs_f64() * 1000.0
        );
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_guard_compiles_in_both_modes() {
        let _span = trace_span!("unit test {}", 1);
        trace_event!("event {}", 2);
    }
}
