//! A minimal JSON value and serializer.
//!
//! Hand-rolled on purpose: the build environment is offline, so `serde` /
//! `serde_json` cannot be fetched, and the run reports only need writing,
//! never parsing. Output is valid RFC 8259 JSON.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs (insertion
    /// order is preserved in the output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes to an indented JSON string (two spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 9.0e15 {
                    // Integral values print without a fractional part.
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-0.25).render(), "-0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn containers() {
        let v = Json::Obj(vec![
            ("seed".into(), Json::Num(7.0)),
            (
                "cells".into(),
                Json::Arr(vec![Json::Num(1.0), Json::str("x")]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"seed":7,"cells":[1,"x"],"empty":[]}"#);
        // Pretty output stays parseable and ends in a newline.
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"seed\": 7"));
        assert!(pretty.ends_with('\n'));
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }
}
