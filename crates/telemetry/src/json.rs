//! A minimal JSON value, serializer and parser.
//!
//! Hand-rolled on purpose: the build environment is offline, so `serde` /
//! `serde_json` cannot be fetched. Originally the run reports only needed
//! writing; the serving layer (`adis-serve`) added the [`Json::parse`]
//! side for request bodies and the accessor helpers for picking responses
//! apart. Output is valid RFC 8259 JSON, and the parser accepts exactly
//! RFC 8259 (no comments, no trailing commas).

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs (insertion
    /// order is preserved in the output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses an RFC 8259 JSON document.
    ///
    /// ```
    /// use adis_telemetry::Json;
    ///
    /// let v = Json::parse(r#"{"mode": "joint", "seeds": [1, 2]}"#).unwrap();
    /// assert_eq!(v.get("mode").and_then(Json::as_str), Some("joint"));
    /// assert_eq!(v.get("seeds").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    /// assert!(Json::parse("{oops}").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as an exact non-negative integer, if this is a
    /// `Num` holding one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v == v.trunc() && *v <= 9.0e15 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value of an object field (first occurrence), if this is an
    /// `Obj` that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes to an indented JSON string (two spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 9.0e15 {
                    // Integral values print without a fractional part.
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Why a document failed to parse, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting depth bound: service inputs must not be able to blow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &'static str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err("invalid number")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar. The input arrives as `&str`
                    // so this is expected to succeed, but truncated or
                    // malformed byte slices must surface as a byte-offset
                    // parse error, never a panic.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid unicode escape")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-0.25).render(), "-0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn containers() {
        let v = Json::Obj(vec![
            ("seed".into(), Json::Num(7.0)),
            (
                "cells".into(),
                Json::Arr(vec![Json::Num(1.0), Json::str("x")]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"seed":7,"cells":[1,"x"],"empty":[]}"#);
        // Pretty output stays parseable and ends in a newline.
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"seed\": 7"));
        assert!(pretty.ends_with('\n'));
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let v = Json::Obj(vec![
            ("seed".into(), Json::Num(7.0)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("name".into(), Json::str("a\"b\\c\nd\u{1}é")),
            (
                "cells".into(),
                Json::Arr(vec![Json::Num(1.5), Json::Num(-2.0e-3), Json::str("x")]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            ("inner".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_scalars_and_whitespace() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-0.25e2").unwrap(), Json::Num(-25.0));
        assert_eq!(Json::parse("\t[ 1 , 2 ]\n").unwrap(), Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(2.0),
        ]));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::str("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::str("\u{1F600}")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83d\u0041""#).is_err());
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "tru",
            "1 2",
            "\"unterminated",
            "\"raw \u{1} control\"",
            "nan",
            "--1",
            "+1",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
        // The error carries the failing offset.
        assert_eq!(Json::parse("[1, x]").unwrap_err().offset, 4);
    }

    #[test]
    fn parse_truncated_escapes_error_instead_of_panicking() {
        // A lone backslash at EOF: the escape introducer is consumed but
        // its selector byte is missing.
        let err = Json::parse("\"\\").unwrap_err();
        assert_eq!(err.message, "unterminated escape");
        assert_eq!(err.offset, 2);
        // Truncated `\u` escapes at EOF, at every cut point.
        for bad in ["\"\\u", "\"\\u1", "\"\\u12", "\"\\u123"] {
            let err = Json::parse(bad).unwrap_err();
            assert_eq!(err.message, "truncated unicode escape", "{bad:?}");
            assert_eq!(err.offset, bad.len(), "{bad:?}");
        }
        // A truncated low surrogate after a complete high half.
        let err = Json::parse("\"\\ud83d\\u").unwrap_err();
        assert_eq!(err.message, "truncated unicode escape");
        // Unterminated strings keep reporting the end offset.
        let err = Json::parse("\"abc").unwrap_err();
        assert_eq!(err.message, "unterminated string");
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(
            Json::parse(&deep).unwrap_err().message,
            "nesting too deep"
        );
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "f": 2.5, "s": "x", "b": true, "a": [1], "o": {"k": 1}}"#)
            .unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("o").and_then(Json::as_obj).is_some());
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
