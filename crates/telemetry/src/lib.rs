//! # adis-telemetry — solver observability
//!
//! The instrumentation surface for the whole solver stack: a lightweight
//! [`SolveObserver`] trait that solvers call at interesting moments (bSB
//! energy samples, stage boundaries, COP decisions), concrete collectors
//! that turn those calls into data ([`EnergyTrajectory`], [`StageTimings`],
//! [`Counters`], [`Recorder`]), and a structured [`RunReport`] the bench
//! binaries serialize to `results/RUN_*.json`.
//!
//! ## Zero cost when disabled
//!
//! Solvers are generic over `O: SolveObserver` and the do-nothing
//! [`NullObserver`] is a zero-sized type whose empty inline methods compile
//! away, so an uninstrumented solve is byte-identical to one that never
//! heard of this crate. Observers also expose [`SolveObserver::enabled`];
//! instrumented code uses it to skip *preparing* expensive sample payloads
//! (e.g. mean oscillator amplitudes), not just delivering them.
//!
//! ## Event vocabulary
//!
//! The trait speaks in primitives (`&str`, `f64`, `usize`) rather than
//! solver types, so every crate in the stack — `sb`, `core`, `ising`,
//! `ilp` — can depend on it without cycles:
//!
//! - [`stage_end`](SolveObserver::stage_end): a named stage finished, with
//!   its wall-clock duration;
//! - [`counter`](SolveObserver::counter) / [`gauge`](SolveObserver::gauge):
//!   monotonic counts (`cop_solves`, `bnb_nodes`) and point-in-time values;
//! - [`sb_start`](SolveObserver::sb_start) /
//!   [`sb_sample`](SolveObserver::sb_sample) /
//!   [`sb_stop`](SolveObserver::sb_stop): one simulated-bifurcation
//!   trajectory — per-sample energy, running best, mean `|x|` amplitude,
//!   and why/when the run ended;
//! - [`cop_result`](SolveObserver::cop_result) /
//!   [`component_chosen`](SolveObserver::component_chosen): the framework's
//!   per-partition COP objectives and its incumbent-vs-challenger
//!   decisions.
//!
//! ## Tracing
//!
//! With the `trace` cargo feature, the [`trace_event!`] and [`trace_span!`]
//! macros print timestamped lines/spans to stderr. They are a deliberate,
//! dependency-free stand-in for the `tracing` ecosystem (this reproduction
//! builds offline); with the feature off they expand to nothing.
//!
//! # Example
//!
//! ```
//! use adis_telemetry::{Recorder, SolveObserver};
//!
//! let mut rec = Recorder::new();
//! rec.sb_start(8, 1000);
//! rec.sb_sample(20, -3.0, -3.0, 0.9);
//! rec.sb_stop(20, -3.0, true);
//! rec.counter("cop_solves", 1);
//! assert_eq!(rec.counters.get("cop_solves"), 1);
//! assert_eq!(rec.sb.total_iterations, 20);
//! assert_eq!(rec.trajectory.samples(), &[(20, -3.0)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cancel;
mod collect;
mod json;
mod observer;
mod report;
mod trace;

pub use cancel::CancelToken;
pub use collect::{CopRecord, Counters, EnergyTrajectory, Recorder, SbStats, StageTimings, WinnerRecord};
pub use json::Json;
pub use observer::{NullObserver, SolveObserver};
pub use report::{ReportCell, RunReport};
pub use trace::TraceSpan;
