//! Cooperative cancellation for racing and deadline-bounded solves.
//!
//! A [`CancelToken`] is a cheap, cloneable flag that a controller sets once
//! and workers poll at a coarse granularity (a sampling block, a restart
//! boundary, an amortized node count). Tokens form a tree: a child created
//! with [`CancelToken::child`] observes its parent's cancellation as well
//! as its own, so a portfolio runner can cancel one losing lane without
//! touching its siblings while a job-level timeout still stops everyone.
//!
//! Cancellation is *cooperative*: setting the flag never interrupts a
//! solver mid-step; the solver notices at its next poll point and returns
//! its best-so-far answer with an explicit halt reason.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

/// A shared, hierarchical cancellation flag.
///
/// A controller sets the flag once and workers poll it cooperatively at
/// coarse boundaries; children created with [`CancelToken::child`] observe
/// their parent's cancellation as well as their own.
///
/// Clones observe the same flag. The default token is never cancelled
/// until someone calls [`cancel`](CancelToken::cancel) on it or a clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no parent.
    pub fn new() -> Self {
        Self::default()
    }

    /// A child token: cancelled when either it or any ancestor is.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Sets the flag. Idempotent; never blocks. Does not affect ancestors
    /// (cancelling a child leaves its siblings running).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match &self.inner.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn children_observe_parents_but_not_vice_versa() {
        let parent = CancelToken::new();
        let left = parent.child();
        let right = parent.child();

        left.cancel();
        assert!(left.is_cancelled());
        assert!(!right.is_cancelled(), "siblings are independent");
        assert!(!parent.is_cancelled(), "children never cancel parents");

        parent.cancel();
        assert!(right.is_cancelled(), "parent cancellation reaches children");
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let worker = token.clone();
        let handle = std::thread::spawn(move || {
            while !worker.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
