//! The observer trait and the zero-cost null implementation.

use std::time::Duration;

/// Hooks a solver calls at interesting moments.
///
/// Every method has an empty default body, so an observer implements only
/// what it cares about. Solvers are generic over `O: SolveObserver`; with
/// [`NullObserver`] the calls inline to nothing.
///
/// Methods take primitives rather than solver types so every crate in the
/// stack can report through the same trait without dependency cycles.
pub trait SolveObserver {
    /// Whether this observer wants data at all. Instrumented code may use
    /// this to skip *computing* expensive sample payloads. Defaults to
    /// `true`; [`NullObserver`] returns `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// A named stage finished after `wall` of wall-clock time.
    #[inline]
    fn stage_end(&mut self, _stage: &str, _wall: Duration) {}

    /// Adds `delta` to the named monotonic counter.
    #[inline]
    fn counter(&mut self, _name: &str, _delta: u64) {}

    /// Records a point-in-time value for the named gauge (last write wins).
    #[inline]
    fn gauge(&mut self, _name: &str, _value: f64) {}

    /// A simulated-bifurcation trajectory is starting on `spins`
    /// oscillators with an iteration budget of `max_iterations`.
    #[inline]
    fn sb_start(&mut self, _spins: usize, _max_iterations: usize) {}

    /// An SB sampling point: the energy of the current sign readout, the
    /// best energy seen so far this trajectory, and the mean oscillator
    /// amplitude `⟨|x|⟩` (a bifurcation-progress signal; `0.0` when the
    /// caller skipped computing it because [`enabled`](Self::enabled) was
    /// false).
    #[inline]
    fn sb_sample(&mut self, _iteration: usize, _energy: f64, _best_energy: f64, _mean_amplitude: f64) {
    }

    /// An SB trajectory ended after `iterations` steps with `best_energy`;
    /// `settled` is true when the dynamic variance criterion fired (rather
    /// than the iteration budget running out).
    #[inline]
    fn sb_stop(&mut self, _iterations: usize, _best_energy: f64, _settled: bool) {}

    /// A batched multi-replica SB integration finished: `lanes` replicas
    /// advanced together through the structure-of-arrays integrator, of
    /// which `retired_early` stopped via the dynamic variance criterion
    /// before the iteration budget. Fires once per batch, in addition to
    /// the per-replica `sb_start`/`sb_sample`/`sb_stop` streams.
    #[inline]
    fn sb_batch(&mut self, _lanes: usize, _retired_early: usize) {}

    /// A fused multi-COP batch drained its unit queue: `lane_width`
    /// persistent lanes advanced `units` (COP, replica) units with
    /// continuous refill — `refills` of the fills replaced a retired lane
    /// mid-run. `busy_iterations` / `idle_iterations` count lane-iterations
    /// spent integrating a live unit vs. spinning with the queue empty, so
    /// `busy / (busy + idle)` is the batch's mean lane occupancy. Fires
    /// once per fused batch, in addition to the per-unit
    /// `sb_start`/`sb_sample`/`sb_stop` streams.
    #[inline]
    fn fused_batch(
        &mut self,
        _lane_width: usize,
        _units: usize,
        _refills: usize,
        _busy_iterations: u64,
        _idle_iterations: u64,
    ) {
    }

    /// One core-COP solve finished: in `round`, for output `component`,
    /// candidate partition index `partition`, with the achieved `objective`
    /// and the SB `iterations` it spent (0 for non-Ising solvers).
    #[inline]
    fn cop_result(
        &mut self,
        _round: usize,
        _component: u32,
        _partition: usize,
        _objective: f64,
        _iterations: usize,
    ) {
    }

    /// The framework committed a decomposition for `component` in `round`
    /// at `objective`; `kept_incumbent` is true when the previous round's
    /// choice beat this round's best challenger and was retained.
    #[inline]
    fn component_chosen(&mut self, _round: usize, _component: u32, _objective: f64, _kept_incumbent: bool) {
    }

    /// A portfolio solve finished and named its winner: the COP instance's
    /// shape features (`rows` × `cols` weight grid, spread of its weights
    /// as `max − min`) and the member solver that produced the committed
    /// answer. Fires once per portfolio COP solve, alongside
    /// [`cop_result`](Self::cop_result); accumulated `(features, winner)`
    /// pairs are what drive static selection tables.
    ///
    /// The flat argument list is deliberate: observer hooks stay
    /// allocation-free and zero-cost when unimplemented, so the instance
    /// features are not bundled into a struct.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn cop_winner(
        &mut self,
        _round: usize,
        _component: u32,
        _partition: usize,
        _winner: &str,
        _rows: usize,
        _cols: usize,
        _weight_spread: f64,
    ) {
    }
}

/// The do-nothing observer: a zero-sized type whose empty methods compile
/// away entirely, making uninstrumented solves identical to pre-telemetry
/// builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SolveObserver for NullObserver {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

// A mutable reference to an observer is itself an observer, so callers can
// hand the same collector to several nested solve calls.
impl<O: SolveObserver + ?Sized> SolveObserver for &mut O {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn stage_end(&mut self, stage: &str, wall: Duration) {
        (**self).stage_end(stage, wall);
    }
    #[inline]
    fn counter(&mut self, name: &str, delta: u64) {
        (**self).counter(name, delta);
    }
    #[inline]
    fn gauge(&mut self, name: &str, value: f64) {
        (**self).gauge(name, value);
    }
    #[inline]
    fn sb_start(&mut self, spins: usize, max_iterations: usize) {
        (**self).sb_start(spins, max_iterations);
    }
    #[inline]
    fn sb_sample(&mut self, iteration: usize, energy: f64, best_energy: f64, mean_amplitude: f64) {
        (**self).sb_sample(iteration, energy, best_energy, mean_amplitude);
    }
    #[inline]
    fn sb_stop(&mut self, iterations: usize, best_energy: f64, settled: bool) {
        (**self).sb_stop(iterations, best_energy, settled);
    }
    #[inline]
    fn sb_batch(&mut self, lanes: usize, retired_early: usize) {
        (**self).sb_batch(lanes, retired_early);
    }
    #[inline]
    fn fused_batch(
        &mut self,
        lane_width: usize,
        units: usize,
        refills: usize,
        busy_iterations: u64,
        idle_iterations: u64,
    ) {
        (**self).fused_batch(lane_width, units, refills, busy_iterations, idle_iterations);
    }
    #[inline]
    fn cop_result(&mut self, round: usize, component: u32, partition: usize, objective: f64, iterations: usize) {
        (**self).cop_result(round, component, partition, objective, iterations);
    }
    #[inline]
    fn component_chosen(&mut self, round: usize, component: u32, objective: f64, kept_incumbent: bool) {
        (**self).component_chosen(round, component, objective, kept_incumbent);
    }
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn cop_winner(
        &mut self,
        round: usize,
        component: u32,
        partition: usize,
        winner: &str,
        rows: usize,
        cols: usize,
        weight_spread: f64,
    ) {
        (**self).cop_winner(round, component, partition, winner, rows, cols, weight_spread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullObserver>(), 0);
        assert!(!NullObserver.enabled());
    }

    #[test]
    fn forwarding_through_mut_ref() {
        struct Count(u64);
        impl SolveObserver for Count {
            fn counter(&mut self, _name: &str, delta: u64) {
                self.0 += delta;
            }
            fn sb_batch(&mut self, lanes: usize, retired: usize) {
                self.0 += (lanes + retired) as u64;
            }
        }
        // Drive the calls through a generic bound so the `&mut O`
        // forwarding impl (not the concrete one) is what resolves.
        fn drive<O: SolveObserver>(mut o: O) {
            o.counter("x", 2);
            o.sb_batch(4, 1);
            assert!(o.enabled());
        }
        let mut c = Count(0);
        drive(&mut c);
        c.counter("x", 1);
        assert_eq!(c.0, 8);
    }
}
