//! Family 7 — fused multi-COP batch identity.
//!
//! The sweep engine promises that packing the COPs of a cell into
//! shared-sparsity SIMD lanes and advancing them in fused batches with
//! continuous refill ([`Framework::fused`]) changes *nothing* about the
//! result: the decomposition, every per-component choice, the summed sb
//! iteration counts, and the memo hit/miss accounting are bit-identical
//! to both the per-COP parallel sweep and the sequential oracle. The unit
//! tests pin this for one configuration; here it is re-asserted under
//! randomized generic-path solver configurations — f64 and i16 kernels,
//! heuristic intervention on and off, multiple replicas, both stop
//! criteria, random distributions — and the family additionally asserts
//! that the fused path actually *engaged* (occupancy counters are not
//! vacuously zero) and that its unit count balances against the memo
//! misses.

use crate::config_sweep::same_outcome;
use crate::{random_dist, random_fn, Collector};
use adis_core::{CopSolverKind, Framework, IsingCopSolver, KernelPrecision, Mode};
use adis_sb::StopCriterion;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    let n: u32 = rng.gen_range(4..=5);
    let m: u32 = rng.gen_range(2..=3);
    let exact = random_fn(rng, n, m);
    let bound = rng.gen_range(1..=3.min(n - 1));
    let mode = if rng.gen_bool(0.5) { Mode::Joint } else { Mode::Separate };
    let replicas = rng.gen_range(1..=2);
    let precision = if rng.gen_bool(0.5) {
        KernelPrecision::F64
    } else {
        KernelPrecision::I16
    };
    let stop = if rng.gen_bool(0.5) {
        StopCriterion::FixedIterations(rng.gen_range(80..=250))
    } else {
        StopCriterion::DynamicVariance {
            sample_every: rng.gen_range(2..=10),
            window: rng.gen_range(2..=6),
            threshold: 1e-8,
            max_iterations: rng.gen_range(200..=600),
        }
    };
    // structured(false) forces the generic Ising path for the F64 kernel
    // too; that path is exactly what the fused scheduler batches.
    let solver = IsingCopSolver::new()
        .structured(false)
        .precision(precision)
        .stop(stop)
        .heuristic(rng.gen_bool(0.5))
        .replicas(replicas)
        .dt(rng.gen_range(0.1..0.4));
    let cache = rng.gen_bool(0.75);
    let base = Framework::new(mode, bound)
        .solver(CopSolverKind::Ising(solver))
        .partitions(rng.gen_range(2..=4))
        .rounds(rng.gen_range(1..=2))
        .seed(rng.gen_range(0..u64::MAX))
        .dist(random_dist(rng, n))
        .cache(cache);

    let fused = base.clone().parallel(true).decompose(&exact);
    let per_cop = base.clone().parallel(true).fused(false).decompose(&exact);
    let sequential = base.clone().parallel(false).decompose(&exact);

    for (label, other) in [("per-COP", &per_cop), ("sequential", &sequential)] {
        same_outcome(col, case, &format!("fused vs {label}"), other, &fused);
        col.check(case, fused.sb_iterations == other.sb_iterations, || {
            format!(
                "fused vs {label}: {} sb iterations != {}",
                fused.sb_iterations, other.sb_iterations
            )
        });
        col.check(case, fused.cache_hits == other.cache_hits, || {
            format!(
                "fused vs {label}: {} cache hits != {}",
                fused.cache_hits, other.cache_hits
            )
        });
        col.check(case, fused.cache_misses == other.cache_misses, || {
            format!(
                "fused vs {label}: {} cache misses != {}",
                fused.cache_misses, other.cache_misses
            )
        });
        col.check(case, other.fused_stats.units == 0, || {
            format!(
                "{label} run must bypass the fused path, reported {} units",
                other.fused_stats.units
            )
        });
    }

    // Engagement and accounting: every memo miss is one unique COP solved
    // in the batch, at `replicas` lanes each; the busy/idle split must
    // describe a real occupancy.
    let stats = &fused.fused_stats;
    col.check(case, stats.units == fused.cache_misses * replicas, || {
        format!(
            "{} fused units != {} misses × {replicas} replicas",
            stats.units, fused.cache_misses
        )
    });
    col.check(case, stats.units > 0, || {
        "fused path never engaged (0 units — the check is vacuous)".to_string()
    });
    col.check(case, stats.lanes_filled >= stats.units, || {
        format!("{} lanes filled < {} units", stats.lanes_filled, stats.units)
    });
    let occ = stats.occupancy();
    col.check(case, occ > 0.0 && occ <= 1.0, || {
        format!(
            "occupancy {occ} out of range (busy {}, idle {})",
            stats.busy_lane_iterations, stats.idle_lane_iterations
        )
    });
    if !cache {
        col.check(case, fused.cache_hits == 0, || {
            format!("cache disabled but {} hits reported", fused.cache_hits)
        });
    }
}
