//! Family 3 — the metamorphic config sweep.
//!
//! The engine documents three result-transparency promises: the COP memo
//! table, the parallel partition sweep, and their combination never change
//! the result — only the time it takes. The unit tests pin this for the
//! default configuration; here the promise is re-asserted under
//! *randomized* framework configurations (mode, solver kind and its knobs,
//! partition/round counts, seeds, distributions), comparing whole
//! decomposition outcomes bit for bit.

use crate::{random_dist, random_fn, Collector};
use adis_core::{
    BaParams, CopSolverKind, DecompositionOutcome, Framework, IsingCopSolver, Mode,
};
use adis_sb::StopCriterion;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    let n: u32 = rng.gen_range(4..=5);
    let m: u32 = rng.gen_range(2..=3);
    let exact = random_fn(rng, n, m);
    let bound = rng.gen_range(1..=3.min(n - 1));
    let mode = if rng.gen_bool(0.5) { Mode::Joint } else { Mode::Separate };
    let kind = random_solver_kind(rng);
    let base = Framework::new(mode, bound)
        .solver(kind)
        .partitions(rng.gen_range(2..=4))
        .rounds(rng.gen_range(1..=2))
        .seed(rng.gen_range(0..u64::MAX))
        .dist(random_dist(rng, n))
        .parallel(false)
        .cache(false);

    // Reference: serial, no cache — the plainest execution order.
    let reference = base.clone().decompose(&exact);
    col.check(case, reference.cache_hits == 0, || {
        format!("cache disabled but {} hits reported", reference.cache_hits)
    });

    for (par, cache) in [(false, true), (true, false), (true, true)] {
        let out = base.clone().parallel(par).cache(cache).decompose(&exact);
        let label = format!("parallel={par} cache={cache}");
        same_outcome(col, case, &label, &reference, &out);
        col.check(
            case,
            out.cache_hits + out.cache_misses == out.cop_solves,
            || {
                format!(
                    "{label}: {} hits + {} misses != {} cop solves",
                    out.cache_hits, out.cache_misses, out.cop_solves
                )
            },
        );
        if !cache {
            col.check(case, out.cache_hits == 0, || {
                format!("{label}: cache disabled but {} hits reported", out.cache_hits)
            });
        }
    }
}

/// Bit-level equality of two decomposition outcomes (also used by the
/// shared-cache family).
pub(crate) fn same_outcome(
    col: &mut Collector,
    case: usize,
    label: &str,
    a: &DecompositionOutcome,
    b: &DecompositionOutcome,
) {
    col.check(case, a.med.to_bits() == b.med.to_bits(), || {
        format!("{label}: MED {} != reference {}", b.med, a.med)
    });
    col.check(case, a.er.to_bits() == b.er.to_bits(), || {
        format!("{label}: ER {} != reference {}", b.er, a.er)
    });
    col.check(case, a.approx == b.approx, || {
        format!("{label}: approximate functions differ")
    });
    col.check(case, a.cop_solves == b.cop_solves, || {
        format!("{label}: {} cop solves != reference {}", b.cop_solves, a.cop_solves)
    });
    col.check(case, a.choices.len() == b.choices.len(), || {
        format!("{label}: choice counts differ")
    });
    for (k, (ca, cb)) in a.choices.iter().zip(&b.choices).enumerate() {
        let same = ca.partition.bound() == cb.partition.bound()
            && ca.setting == cb.setting
            && ca.objective.to_bits() == cb.objective.to_bits();
        col.check(case, same, || {
            format!(
                "{label}: component {k} choice differs \
                 (bound {:?} obj {} vs reference bound {:?} obj {})",
                cb.partition.bound(),
                cb.objective,
                ca.partition.bound(),
                ca.objective
            )
        });
    }
}

/// A random solver kind with randomized knobs. Every kind here is
/// deterministic for a fixed `(cop, seed)` — the `Exact` variant runs
/// without a time limit precisely because wall-clock deadlines would break
/// run-to-run identity.
pub(crate) fn random_solver_kind(rng: &mut ChaCha8Rng) -> CopSolverKind {
    match rng.gen_range(0..4u32) {
        0 => {
            let stop = if rng.gen_bool(0.5) {
                StopCriterion::FixedIterations(rng.gen_range(80..=250))
            } else {
                StopCriterion::DynamicVariance {
                    sample_every: rng.gen_range(2..=10),
                    window: rng.gen_range(2..=6),
                    threshold: 1e-8,
                    max_iterations: rng.gen_range(200..=600),
                }
            };
            CopSolverKind::Ising(
                IsingCopSolver::new()
                    .stop(stop)
                    .structured(rng.gen_bool(0.5))
                    .heuristic(rng.gen_bool(0.5))
                    .replicas(rng.gen_range(1..=2))
                    .dt(rng.gen_range(0.1..0.4)),
            )
        }
        1 => CopSolverKind::Exact { time_limit: None },
        2 => CopSolverKind::DaltaHeuristic { restarts: rng.gen_range(1..=2) },
        _ => CopSolverKind::Ba(BaParams {
            sweeps: rng.gen_range(50..=150),
            restarts: rng.gen_range(1..=2),
            ..BaParams::default()
        }),
    }
}
