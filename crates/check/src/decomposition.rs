//! Family 8 — the partitioned COP solver and the multi-level cascade
//! against exact recomputation.
//!
//! The block-coordinate partitioned solver trades one large Ising
//! instance for many small coordinated ones; the multi-level framework
//! re-decomposes the extracted `φ`/`F` sub-functions into cascades. Both
//! keep the stack's core promises, and this family checks them on
//! randomized instances:
//!
//! 1. **One-sided bound**: on exhaustively solvable COPs the partitioned
//!    solver's reported objective is the exact objective of the setting
//!    it returns, and never beats the exhaustive optimum — exactly like
//!    every other heuristic in the roster.
//! 2. **Determinism**: re-solving the same COP under the same
//!    [`SolveCtx`] seed is bit-identical (the memoization contract), and
//!    differently configured partitioned solvers (and the bare inner
//!    solver) occupy distinct cache-fingerprint namespaces.
//! 3. **Reconstruction metrics**: the multi-level outcome's reported
//!    MED/ER equal a from-scratch `boolfn::metrics` recomputation on the
//!    materialized approximation, every cascade node evaluates exactly
//!    like the approximation's own table, and the reported cascade size
//!    is the sum of its leaf LUTs.

use crate::{random_fn, Collector};
use adis_boolfn::{error_rate_multi, mean_error_distance, InputDist};
use adis_core::{
    ColumnCop, CopScratch, CopSolver, Framework, IsingCopSolver, Mode, MultiLevelFramework,
    PartitionedCopSolver, SolveCtx,
};
use adis_sb::StopCriterion;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

const TOL: f64 = 1e-9;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    // --- Partitioned COP: one-sided bound, exactness, determinism. ---
    let r = rng.gen_range(2..=4usize);
    let c = rng.gen_range(6..=12usize);
    let weights: Vec<f64> = (0..r * c)
        .map(|_| if rng.gen_bool(0.1) { 0.0 } else { rng.gen_range(-1.0..1.0) })
        .collect();
    let cop = ColumnCop::from_weights(r, c, weights, rng.gen_range(0.0..1.0));
    let opt = cop.objective(&cop.solve_exhaustive());

    let inner = IsingCopSolver::new()
        .stop(StopCriterion::FixedIterations(rng.gen_range(100..=300)));
    let block_cols = rng.gen_range(2..=4usize);
    let sweeps = rng.gen_range(1..=3usize);
    let solver = PartitionedCopSolver::new()
        .inner(inner.clone())
        .block_cols(block_cols)
        .sweeps(sweeps);
    let seed = rng.gen_range(0..u64::MAX);
    let mut scratch = CopScratch::new();
    let res = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
    col.close(
        case,
        "partitioned reported objective vs its own setting",
        res.objective,
        cop.objective(&res.setting),
        TOL,
    );
    col.check(case, res.objective >= opt - TOL, || {
        format!(
            "partitioned solver reported {} — better than the exhaustive optimum {opt} \
             (block_cols {block_cols}, sweeps {sweeps})",
            res.objective
        )
    });
    let replay = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
    col.check(
        case,
        replay.objective.to_bits() == res.objective.to_bits() && replay.setting == res.setting,
        || "partitioned solve is not deterministic under a fixed seed".to_string(),
    );
    col.check(
        case,
        CopSolver::fingerprint(&solver)
            != CopSolver::fingerprint(
                &PartitionedCopSolver::new()
                    .inner(inner.clone())
                    .block_cols(block_cols + 1)
                    .sweeps(sweeps),
            )
            && CopSolver::fingerprint(&solver) != CopSolver::fingerprint(&inner),
        || "partitioned solver configurations share a cache fingerprint".to_string(),
    );

    // --- Multi-level cascade: reported metrics vs from-scratch oracle. ---
    let inputs = rng.gen_range(5..=6u32);
    let outputs = rng.gen_range(2..=3u32);
    let f = random_fn(rng, inputs, outputs);
    let mode = if rng.gen_bool(0.5) { Mode::Joint } else { Mode::Separate };
    let base = Framework::new(mode, rng.gen_range(2..=3))
        .solver(IsingCopSolver::new().stop(StopCriterion::FixedIterations(150)))
        .partitions(2)
        .rounds(1)
        .seed(rng.gen_range(0..u64::MAX));
    let mut ml = MultiLevelFramework::new(base, 2).min_inputs(3);
    if rng.gen_bool(0.5) {
        ml = ml.error_budget(rng.gen_range(0.0..2.0));
    }
    match ml.decompose(&f) {
        Err(e) => col.check(case, false, || {
            format!("multi-level decomposition rejected a valid config: {e}")
        }),
        Ok(out) => {
            col.close(
                case,
                "multi-level MED vs from-scratch recomputation",
                out.med,
                mean_error_distance(&f, &out.approx, &InputDist::Uniform),
                TOL,
            );
            col.close(
                case,
                "multi-level ER vs from-scratch recomputation",
                out.er,
                error_rate_multi(&f, &out.approx, &InputDist::Uniform),
                TOL,
            );
            col.check(case, out.nodes.len() == outputs as usize, || {
                format!("expected {} cascade roots, got {}", outputs, out.nodes.len())
            });
            let mut nodes_match = true;
            for (k, node) in out.nodes.iter().enumerate() {
                for p in 0..(1u64 << inputs) {
                    if node.eval(p) != out.approx.eval_bit(k as u32, p) {
                        nodes_match = false;
                    }
                }
            }
            col.check(case, nodes_match, || {
                "cascade node evaluation diverges from the materialized approximation"
                    .to_string()
            });
            let bits: u64 = out.nodes.iter().map(|n| n.size_bits()).sum();
            col.check(case, bits == out.cascade_bits, || {
                format!(
                    "cascade_bits {} != sum of node sizes {bits}",
                    out.cascade_bits
                )
            });
        }
    }
}
