//! Family 6 — the quantized (i16 fixed-point) dSB kernel vs the f64
//! oracle.
//!
//! The reduced-precision kernel does *not* promise bit-identity with the
//! f64 dynamics on arbitrary weights — rounding the field perturbs the
//! trajectory. What it does promise, and what this family checks:
//!
//! 1. **Readout exactness**: whatever trajectory the quantized field
//!    produces, the reported energy/objective is computed in exact f64
//!    from the reported state — so the quality bound is one-sided: the
//!    quantized path may lose to the exhaustive optimum but can never
//!    beat it, exactly like every other heuristic.
//! 2. **Exact quantization**: integral coefficients within the i16 range
//!    encode at unit scale with zero rounding error, making the i16 dSB
//!    trajectory bit-identical to the f64 dSB trajectory (small-integer
//!    f64 sums are exact).
//! 3. **Seam integrity**: through the [`CopSolver`] seam, the i16 solver
//!    reports the objective of the setting it returns, and its cache
//!    fingerprint is distinct from the f64 configuration's, so cached
//!    entries never cross precisions.

use crate::Collector;
use adis_core::{ColumnCop, CopScratch, CopSolver, IsingCopSolver, KernelPrecision, SolveCtx};
use adis_ising::IsingBuilder;
use adis_sb::{SbBatchScratch, SbSolver, SbVariant, StopCriterion};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

const TOL: f64 = 1e-9;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    // --- COP level: the i16 solver through the CopSolver seam. ---
    let r = rng.gen_range(2..=4usize);
    let c = rng.gen_range(2..=4usize);
    let weights: Vec<f64> = (0..r * c)
        .map(|_| if rng.gen_bool(0.1) { 0.0 } else { rng.gen_range(-1.0..1.0) })
        .collect();
    let cop = ColumnCop::from_weights(r, c, weights, rng.gen_range(0.0..1.0));
    let opt = cop.objective(&cop.solve_exhaustive());

    let seed = rng.gen_range(0..u64::MAX);
    let solver = IsingCopSolver::new()
        .precision(KernelPrecision::I16)
        .stop(StopCriterion::FixedIterations(rng.gen_range(100..=400)))
        .replicas(rng.gen_range(1..=2));
    let mut scratch = CopScratch::new();
    let res = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
    col.close(
        case,
        "i16 reported objective vs its own setting",
        res.objective,
        cop.objective(&res.setting),
        TOL,
    );
    col.check(case, res.objective >= opt - TOL, || {
        format!(
            "i16 dSB reported {} — better than the exhaustive optimum {opt}",
            res.objective
        )
    });
    col.check(
        case,
        CopSolver::fingerprint(&solver) != CopSolver::fingerprint(&IsingCopSolver::new()),
        || "i16 and f64 solver configurations share a cache fingerprint".to_string(),
    );

    // --- Ising level, integral weights: exact quantization ⇒ the i16
    // batch is bit-identical to the f64 dSB batch, lane for lane. ---
    let n = rng.gen_range(2..=8usize);
    let mut b = IsingBuilder::new(n);
    for i in 0..n {
        if rng.gen_bool(0.5) {
            b.add_bias(i, f64::from(rng.gen_range(-5..=5i32)));
        }
        for j in (i + 1)..n {
            if rng.gen_bool(0.7) {
                b.add_coupling(i, j, f64::from(rng.gen_range(-10..=10i32)));
            }
        }
    }
    let integral = b.build();
    col.check(
        case,
        integral
            .quantized()
            .is_some_and(|q| q.exact() && q.scale() == 1.0),
        || "integral problem did not quantize exactly at unit scale".to_string(),
    );
    let iters = rng.gen_range(50..=200);
    // Widths covering the const (1, 8, 64, 128) and fallback (3, 100)
    // i16 kernels.
    let replicas = [1usize, 3, 8, 64, 100, 128][rng.gen_range(0..6)];
    let base = SbSolver::new()
        .variant(SbVariant::Discrete)
        .stop(StopCriterion::FixedIterations(iters))
        .seed(seed);
    let f64_run = base
        .clone()
        .solve_batch_in(&integral, replicas, &mut SbBatchScratch::new());
    let i16_run = base
        .precision(KernelPrecision::I16)
        .solve_batch_in(&integral, replicas, &mut SbBatchScratch::new());
    col.check(
        case,
        f64_run.best_energy.to_bits() == i16_run.best_energy.to_bits()
            && f64_run.best_state == i16_run.best_state,
        || {
            format!(
                "exact quantization diverged from f64 dSB at {replicas} replicas: \
                 i16 energy {} vs f64 {}",
                i16_run.best_energy, f64_run.best_energy
            )
        },
    );

    // --- Ising level, fractional weights: readout exactness and the
    // one-sided bound against full state enumeration. ---
    let n2 = rng.gen_range(2..=8usize);
    let mut b2 = IsingBuilder::new(n2);
    for i in 0..n2 {
        if rng.gen_bool(0.5) {
            b2.add_bias(i, rng.gen_range(-1.0..1.0));
        }
        for j in (i + 1)..n2 {
            if rng.gen_bool(0.6) {
                b2.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    let fractional = b2.build();
    let ground = adis_ising::solve_exhaustive(&fractional);
    let best = SbSolver::new()
        .variant(SbVariant::Discrete)
        .precision(KernelPrecision::I16)
        .stop(StopCriterion::FixedIterations(iters))
        .seed(seed)
        .solve_batch_in(&fractional, rng.gen_range(1..=8), &mut SbBatchScratch::new());
    col.close(
        case,
        "i16 best energy vs exact energy of its own state",
        best.best_energy,
        fractional.energy(&best.best_state),
        1e-12,
    );
    col.check(case, best.best_energy >= ground.energy - TOL, || {
        format!(
            "i16 dSB energy {} below the exhaustive ground energy {}",
            best.best_energy, ground.energy
        )
    });
}
