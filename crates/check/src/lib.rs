//! Differential and metamorphic verification harness for the whole solver
//! stack.
//!
//! The reproduction's correctness story rests on a handful of exact
//! identities that ordinary unit tests only probe at fixed points:
//!
//! - **Oracle** (Eq. 9/16): for *any* column setting, the cell-linear
//!   [`ColumnCop::objective`](adis_core::ColumnCop::objective) must equal
//!   the error obtained by actually reconstructing the approximate LUT and
//!   recomputing ER/MED from scratch via `boolfn::metrics`, and the Ising
//!   encoding's energy at the encoded spins must equal both.
//! - **Cross-solver**: on instances small enough to enumerate, every exact
//!   path (type-vector exhaustion, row branch and bound, the generic 0-1
//!   ILP, full Ising state enumeration) must land on the same optimum, and
//!   no heuristic (bSB, DALTA, BA) may ever report a *better* objective.
//! - **Config identities**: the engine promises bit-identical results
//!   across cache on/off, parallel/serial, and the batched SB integrator
//!   promises per-lane bit-identity with sequential runs — under *every*
//!   valid configuration, not just the defaults the unit tests pin.
//! - **Shared-cache identity**: the cross-request [`adis_core::SharedCopCache`]
//!   behind the serving layer promises that sharing a bounded cache
//!   between concurrent runs — at any shard count and capacity, through
//!   arbitrary eviction — changes the amount of work done and nothing
//!   else.
//! - **Quantized kernel**: the i16 fixed-point dSB path reports exact
//!   f64 objectives for the settings it returns (one-sided bound against
//!   the exhaustive optimum), and on integral coefficients it is
//!   bit-identical to the f64 dSB dynamics.
//! - **Fused batch**: the sweep engine's fused multi-COP lane-packing
//!   path ([`adis_core::Framework::fused`]) is bit-identical — outcomes,
//!   iteration sums, and memo hit/miss accounting — to both the per-COP
//!   parallel sweep and the sequential oracle, and it demonstrably
//!   engages (non-vacuous occupancy counters).
//! - **Decomposition**: the block-coordinate
//!   [`adis_core::PartitionedCopSolver`] reports exact objectives for the
//!   settings it returns (one-sided bound against the exhaustive
//!   optimum, deterministic per seed, fingerprint-namespaced), and the
//!   [`adis_core::MultiLevelFramework`]'s reported MED/ER match a
//!   from-scratch metrics recomputation on the reconstructed cascade.
//!
//! This crate checks all eight families on randomized instances, collects
//! any violation as a [`Discrepancy`], and (through the `adis-check`
//! binary) emits a machine-readable [`RunReport`] — a differential oracle
//! in the fuzzing sense, with a bounded, seeded case budget so CI runs are
//! reproducible.
//!
//! Everything here treats the production crates as black boxes: the oracle
//! recomputations deliberately avoid the cell-linearization code paths they
//! validate.

use adis_boolfn::{BitVec, ColumnSetting, InputDist, MultiOutputFn};
use adis_telemetry::{Json, ReportCell, RunReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

mod batch_identity;
mod config_sweep;
mod decomposition;
mod differential;
mod fused_batch;
mod oracle;
mod quantized;
mod shared_cache;

/// Budget and seed for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Base case budget. The oracle and cross-solver families run this
    /// many cases; the heavier end-to-end families run a fixed fraction
    /// (see [`Family::cases`]).
    pub cases: usize,
    /// Master seed; every case derives its own RNG from `(seed, family,
    /// case index)`, so runs are reproducible and families independent.
    pub seed: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { cases: 100, seed: 5 }
    }
}

/// The eight check families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Ground-truth oracle: COP objective == direct metrics recomputation
    /// == Ising energy, plus engine-reported ER/MED/LUT consistency.
    Oracle,
    /// Cross-solver differential runner on exhaustively solvable COPs.
    CrossSolver,
    /// Cache on/off × parallel/serial bit-identity under random configs.
    ConfigSweep,
    /// Batched-vs-sequential SB per-lane bit-identity under random configs.
    BatchIdentity,
    /// Concurrent runs over one bounded shared COP cache (any shard
    /// count/capacity, including eviction-heavy) stay bit-identical to
    /// unshared runs, and the cache's accounting balances.
    SharedCache,
    /// The i16 fixed-point dSB kernel vs the f64 oracle: exact readout
    /// (one-sided objective bound), bit-identity on integral weights,
    /// seam consistency and fingerprint namespacing.
    Quantized,
    /// The engine's fused multi-COP batch path vs the per-COP parallel
    /// sweep and the sequential oracle: whole-outcome bit-identity,
    /// matching hit/miss accounting, and non-vacuous engagement, under
    /// random generic-path configs (f64 and i16 kernels).
    FusedBatch,
    /// Partitioned COP solving (one-sided objective bound vs exhaustive,
    /// determinism, fingerprint namespacing) and multi-level cascades
    /// (reported MED/ER re-verified against from-scratch metrics of the
    /// reconstructed approximation).
    Decomposition,
}

/// All families, in execution order.
pub const FAMILIES: [Family; 8] = [
    Family::Oracle,
    Family::CrossSolver,
    Family::ConfigSweep,
    Family::BatchIdentity,
    Family::SharedCache,
    Family::Quantized,
    Family::FusedBatch,
    Family::Decomposition,
];

impl Family {
    /// Stable name used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Family::Oracle => "oracle",
            Family::CrossSolver => "cross-solver",
            Family::ConfigSweep => "config-sweep",
            Family::BatchIdentity => "batch-identity",
            Family::SharedCache => "shared-cache",
            Family::Quantized => "quantized",
            Family::FusedBatch => "fused-batch",
            Family::Decomposition => "decomposition",
        }
    }

    /// Case budget for this family given the base budget: the end-to-end
    /// families (whole decomposition runs per case) get a fraction.
    pub fn cases(self, base: usize) -> usize {
        match self {
            Family::Oracle | Family::CrossSolver => base.max(1),
            Family::ConfigSweep
            | Family::SharedCache
            | Family::FusedBatch
            | Family::Decomposition => (base / 10).max(1),
            Family::BatchIdentity | Family::Quantized => (base / 5).max(1),
        }
    }

    fn tag(self) -> u64 {
        match self {
            Family::Oracle => 1,
            Family::CrossSolver => 2,
            Family::ConfigSweep => 3,
            Family::BatchIdentity => 4,
            Family::SharedCache => 5,
            Family::Quantized => 6,
            Family::FusedBatch => 7,
            Family::Decomposition => 8,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violated invariant: which family, which case, and what disagreed.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    /// The family whose invariant failed.
    pub family: Family,
    /// Case index within the family (re-runnable: the case RNG derives
    /// from `(seed, family, case)` alone).
    pub case: usize,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// Outcome of one family's sweep.
#[derive(Debug, Clone)]
pub struct FamilyOutcome {
    /// Which family ran.
    pub family: Family,
    /// Cases executed.
    pub cases: usize,
    /// Individual invariant checks evaluated (many per case).
    pub checks: u64,
    /// Checks that failed.
    pub discrepancies: Vec<Discrepancy>,
}

/// Outcome of a full harness run.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Per-family outcomes, in [`FAMILIES`] order.
    pub families: Vec<FamilyOutcome>,
}

impl CheckOutcome {
    /// Total failed checks across every family.
    pub fn total_discrepancies(&self) -> usize {
        self.families.iter().map(|f| f.discrepancies.len()).sum()
    }

    /// Total invariant checks evaluated.
    pub fn total_checks(&self) -> u64 {
        self.families.iter().map(|f| f.checks).sum()
    }

    /// Renders the run as a [`RunReport`]: one cell per family, the
    /// discrepancy count as the cell objective, and full discrepancy
    /// details in the cell's `extra` fields.
    pub fn to_report(&self, cfg: &CheckConfig) -> RunReport {
        let mut report = RunReport::new("check", cfg.seed);
        report.config("cases", Json::Num(cfg.cases as f64));
        for fam in &self.families {
            let mut cell = ReportCell::new(fam.family.name(), "check", "adis-check");
            cell.objective = fam.discrepancies.len() as f64;
            cell.extra.push(("cases".to_string(), Json::Num(fam.cases as f64)));
            cell.extra.push(("checks".to_string(), Json::Num(fam.checks as f64)));
            cell.extra.push((
                "discrepancies".to_string(),
                Json::Arr(
                    fam.discrepancies
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("case".to_string(), Json::Num(d.case as f64)),
                                ("detail".to_string(), Json::str(&d.detail)),
                            ])
                        })
                        .collect(),
                ),
            ));
            report.push(cell);
        }
        report
    }
}

/// Runs every family under `cfg` and collects the outcomes.
pub fn run_all(cfg: &CheckConfig) -> CheckOutcome {
    CheckOutcome {
        families: FAMILIES.iter().map(|&f| run_family(f, cfg)).collect(),
    }
}

/// Runs a single family under `cfg`.
pub fn run_family(family: Family, cfg: &CheckConfig) -> FamilyOutcome {
    let cases = family.cases(cfg.cases);
    let mut col = Collector::new(family);
    for case in 0..cases {
        let mut rng = case_rng(cfg.seed, family, case);
        match family {
            Family::Oracle => oracle::run_case(&mut col, case, &mut rng),
            Family::CrossSolver => differential::run_case(&mut col, case, &mut rng),
            Family::ConfigSweep => config_sweep::run_case(&mut col, case, &mut rng),
            Family::BatchIdentity => batch_identity::run_case(&mut col, case, &mut rng),
            Family::SharedCache => shared_cache::run_case(&mut col, case, &mut rng),
            Family::Quantized => quantized::run_case(&mut col, case, &mut rng),
            Family::FusedBatch => fused_batch::run_case(&mut col, case, &mut rng),
            Family::Decomposition => decomposition::run_case(&mut col, case, &mut rng),
        }
    }
    col.finish(cases)
}

/// The per-case RNG: a pure function of `(seed, family, case)`, so any
/// reported discrepancy can be replayed in isolation.
pub fn case_rng(seed: u64, family: Family, case: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(
        seed ^ family.tag().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (case as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
    )
}

/// Accumulates checks and failures for one family sweep.
pub(crate) struct Collector {
    family: Family,
    checks: u64,
    discrepancies: Vec<Discrepancy>,
}

impl Collector {
    fn new(family: Family) -> Self {
        Collector {
            family,
            checks: 0,
            discrepancies: Vec::new(),
        }
    }

    /// Records one invariant check; `detail` is only rendered on failure.
    pub(crate) fn check(&mut self, case: usize, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.discrepancies.push(Discrepancy {
                family: self.family,
                case,
                detail: detail(),
            });
        }
    }

    /// Checks `|got − want| ≤ tol` (also fails on NaN on either side).
    pub(crate) fn close(&mut self, case: usize, label: &str, got: f64, want: f64, tol: f64) {
        self.check(case, (got - want).abs() <= tol, || {
            format!("{label}: got {got}, want {want} (|Δ| = {}, tol {tol})", (got - want).abs())
        });
    }

    fn finish(self, cases: usize) -> FamilyOutcome {
        FamilyOutcome {
            family: self.family,
            cases,
            checks: self.checks,
            discrepancies: self.discrepancies,
        }
    }
}

/// A random input distribution: uniform half the time, otherwise an
/// explicit normalized vector with occasional zero-probability patterns
/// (those exercise don't-care cells in the COP weights).
pub(crate) fn random_dist(rng: &mut ChaCha8Rng, inputs: u32) -> InputDist {
    if rng.gen_bool(0.5) {
        return InputDist::Uniform;
    }
    let len = 1usize << inputs;
    let mut probs: Vec<f64> = (0..len)
        .map(|_| if rng.gen_bool(0.2) { 0.0 } else { rng.gen_range(0.01..1.0) })
        .collect();
    let sum: f64 = probs.iter().sum();
    if sum == 0.0 {
        probs[0] = 1.0;
    } else {
        for p in probs.iter_mut() {
            *p /= sum;
        }
    }
    InputDist::explicit(probs).expect("normalized by construction")
}

/// A uniformly random column setting of the given shape.
pub(crate) fn random_setting(rng: &mut ChaCha8Rng, rows: usize, cols: usize) -> ColumnSetting {
    let v1 = BitVec::from_fn(rows, |_| rng.gen_bool(0.5));
    let v2 = BitVec::from_fn(rows, |_| rng.gen_bool(0.5));
    let t = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
    ColumnSetting { v1, v2, t }
}

/// A random `n`-input, `m`-output function (word-dense truth table).
pub(crate) fn random_fn(rng: &mut ChaCha8Rng, inputs: u32, outputs: u32) -> MultiOutputFn {
    let words: Vec<u64> = (0..1u64 << inputs)
        .map(|_| rng.gen_range(0..1u64 << outputs))
        .collect();
    MultiOutputFn::from_word_fn(inputs, outputs, |p| words[p as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_budget_run_is_clean() {
        // The harness's own smoke test: a handful of cases per family must
        // produce zero discrepancies. (CI runs a larger budget through the
        // adis-check binary.)
        let outcome = run_all(&CheckConfig { cases: 6, seed: 1 });
        assert_eq!(outcome.families.len(), FAMILIES.len());
        for fam in &outcome.families {
            assert!(
                fam.discrepancies.is_empty(),
                "{}: {:?}",
                fam.family,
                fam.discrepancies
            );
            assert!(fam.checks > 0, "{} ran no checks", fam.family);
        }
        assert!(outcome.total_checks() > 0);
        assert_eq!(outcome.total_discrepancies(), 0);
    }

    #[test]
    fn case_rng_is_replayable_and_family_independent() {
        let a: Vec<u64> = {
            let mut r = case_rng(5, Family::Oracle, 3);
            (0..4).map(|_| r.gen_range(0..u64::MAX)).collect()
        };
        let b: Vec<u64> = {
            let mut r = case_rng(5, Family::Oracle, 3);
            (0..4).map(|_| r.gen_range(0..u64::MAX)).collect()
        };
        assert_eq!(a, b);
        let mut other = case_rng(5, Family::CrossSolver, 3);
        let c: Vec<u64> = (0..4).map(|_| other.gen_range(0..u64::MAX)).collect();
        assert_ne!(a, c, "families must draw independent streams");
    }

    #[test]
    fn report_carries_family_cells_and_details() {
        let outcome = CheckOutcome {
            families: vec![FamilyOutcome {
                family: Family::Oracle,
                cases: 2,
                checks: 10,
                discrepancies: vec![Discrepancy {
                    family: Family::Oracle,
                    case: 1,
                    detail: "objective mismatch".to_string(),
                }],
            }],
        };
        let report = outcome.to_report(&CheckConfig { cases: 2, seed: 9 });
        let text = report.to_json().render();
        for needle in [
            "\"tool\":\"check\"",
            "\"seed\":9",
            "\"benchmark\":\"oracle\"",
            "\"objective\":1",
            "\"checks\":10",
            "objective mismatch",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
