//! Family 5 — cross-request shared-cache identity.
//!
//! The serving layer hangs its correctness on one promise from
//! `adis-core`: attaching a [`SharedCopCache`] to a run — any capacity,
//! any shard count, shared with any set of concurrent runs — changes how
//! much work is done and nothing else. Hits are namespaced by solver
//! fingerprint and framework seed, solver seeds are content-derived, so
//! hit, miss, and evict-then-recompute all land on the same bits.
//!
//! Each case here randomizes the function, mode, solver, framework knobs,
//! and the cache shape (including capacities of 1–2 that evict almost
//! every entry immediately), then runs several threads concurrently
//! against one shared cache — each thread re-solving the same spec — and
//! demands every result be bit-identical to an unshared reference run.
//! Finally the cache's own accounting is checked: `entries` within
//! capacity and consistent with `insertions − evictions`.

use crate::{config_sweep, random_dist, random_fn, Collector};
use adis_core::{CacheConfig, Framework, Mode, SharedCopCache};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    let n: u32 = rng.gen_range(4..=5);
    let m: u32 = rng.gen_range(2..=3);
    let exact = random_fn(rng, n, m);
    let bound = rng.gen_range(1..=3.min(n - 1));
    let mode = if rng.gen_bool(0.5) { Mode::Joint } else { Mode::Separate };
    let kind = config_sweep::random_solver_kind(rng);
    let base = Framework::new(mode, bound)
        .solver(kind)
        .partitions(rng.gen_range(2..=4))
        .rounds(rng.gen_range(1..=2))
        .seed(rng.gen_range(0..u64::MAX))
        .dist(random_dist(rng, n))
        .parallel(false);

    // Unshared reference: the answer every shared run must reproduce.
    let reference = base.clone().decompose(&exact);

    // A random cache shape; half the time pathologically small, so the
    // evict-then-recompute path is exercised as often as the hit path.
    let cache_cfg = CacheConfig {
        shards: rng.gen_range(1..=4),
        capacity: if rng.gen_bool(0.5) {
            rng.gen_range(1..=2)
        } else {
            rng.gen_range(64..=4096)
        },
    };
    let cache = SharedCopCache::new(cache_cfg);

    let threads: usize = rng.gen_range(2..=4);
    let rounds_per_thread: usize = 2;
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let base = base.clone();
                let cache = cache.clone();
                let exact = &exact;
                scope.spawn(move || {
                    (0..rounds_per_thread)
                        .map(|_| base.clone().shared_cache(cache.clone()).decompose(exact))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shared-cache case thread"))
            .collect()
    });

    let label = format!(
        "shards={} capacity={} threads={threads}",
        cache_cfg.shards, cache_cfg.capacity
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        config_sweep::same_outcome(col, case, &format!("{label} run {i}"), &reference, outcome);
    }

    // The cache's own books must balance, under contention, after
    // arbitrary eviction.
    let stats = cache.stats();
    col.check(case, stats.entries <= cache.capacity(), || {
        format!(
            "{label}: {} entries exceed capacity {}",
            stats.entries,
            cache.capacity()
        )
    });
    col.check(
        case,
        stats.entries as u64 == stats.insertions - stats.evictions,
        || {
            format!(
                "{label}: entries {} != insertions {} - evictions {}",
                stats.entries, stats.insertions, stats.evictions
            )
        },
    );
    // A roomy cache must actually share across runs; a pathologically
    // small one may legitimately churn every entry out between lookups,
    // so sharing is only demanded when nothing needed evicting.
    if stats.evictions == 0 {
        col.check(case, stats.hits > 0, || {
            format!(
                "{label}: {} identical runs shared nothing (stats {stats:?})",
                threads * rounds_per_thread
            )
        });
    }
    col.check(case, stats.insertions <= stats.misses, || {
        format!(
            "{label}: more insertions ({}) than misses ({})",
            stats.insertions, stats.misses
        )
    });
}
