//! Family 2 — the cross-solver differential runner.
//!
//! On COPs small enough to enumerate (`2r + c ≤ 24` spins, `c ≤ 8`
//! columns), four *independent* exact paths must agree on the optimum:
//!
//! 1. [`ColumnCop::solve_exhaustive`] — type-vector enumeration with
//!    optimal patterns (Theorem 3's dual);
//! 2. brute-force enumeration of the full Ising state space;
//! 3. the specialized row branch and bound (`CopSolverKind::Exact`,
//!    *without* a wall-clock limit, so the result is deterministic);
//! 4. the generic 0-1 ILP route through [`BranchAndBound`].
//!
//! And no heuristic — bSB under randomized configurations, DALTA, BA,
//! the SimCIM mean-field relaxation, the DOCH difference-of-convex
//! iteration — may ever report an objective *below* that optimum, while
//! every solver must report exactly the objective of the setting it
//! returns. Finally, the sequential solver portfolio must be a pure
//! argmin over its members: bit-identical to running its winning member
//! alone under the same context.

use crate::Collector;
use adis_boolfn::{BooleanMatrix, InputDist, Partition, TruthTable};
use adis_core::{
    BaParams, ColumnCop, CopScratch, CopSolver, CopSolverKind, DaltaHeuristic, DochCopSolver,
    IsingCopSolver, PortfolioSolver, SimCimCopSolver, SolveCtx,
};
use adis_ilp::BranchAndBound;
use adis_sb::StopCriterion;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

const TOL: f64 = 1e-9;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    // Alternate between synthetic weight grids (exercise arbitrary signs,
    // zeros and constants) and COPs built from real functions (exercise the
    // separate-mode construction end to end).
    let cop = if rng.gen_bool(0.5) {
        let r = rng.gen_range(2..=4usize);
        let c = rng.gen_range(2..=4usize);
        let weights: Vec<f64> = (0..r * c)
            .map(|_| if rng.gen_bool(0.1) { 0.0 } else { rng.gen_range(-1.0..1.0) })
            .collect();
        ColumnCop::from_weights(r, c, weights, rng.gen_range(0.0..1.0))
    } else {
        let n: u32 = rng.gen_range(3..=4);
        let bound = rng.gen_range(1..n);
        let w = Partition::random(n, bound, rng);
        let words: Vec<bool> = (0..1u64 << n).map(|_| rng.gen_bool(0.5)).collect();
        let g = TruthTable::from_fn(n, |p| words[p as usize]);
        ColumnCop::separate(&BooleanMatrix::build(&g, &w), &w, &InputDist::Uniform)
    };

    // Reference optimum: type-vector exhaustion.
    let opt_setting = cop.solve_exhaustive();
    let opt = cop.objective(&opt_setting);

    // Full Ising state enumeration must find the same ground energy, and
    // its ground state must decode to a setting with that objective.
    let ground = adis_ising::solve_exhaustive(&cop.to_ising());
    col.close(case, "Ising ground energy vs COP optimum", ground.energy, opt, TOL);
    col.close(
        case,
        "decoded Ising ground state objective vs ground energy",
        cop.objective(&cop.layout().decode(&ground.state)),
        ground.energy,
        TOL,
    );

    let mut scratch = CopScratch::new();
    let seed = rng.gen_range(0..u64::MAX);

    // Exact paths agree on the optimum.
    let exact_solvers: [(&str, Box<dyn CopSolver>); 2] = [
        ("row-bnb", Box::new(CopSolverKind::Exact { time_limit: None })),
        ("generic-ilp", Box::new(BranchAndBound::new())),
    ];
    for (name, solver) in &exact_solvers {
        let res = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
        col.close(case, &format!("{name} objective vs optimum"), res.objective, opt, TOL);
        col.close(
            case,
            &format!("{name} reported objective vs its own setting"),
            res.objective,
            cop.objective(&res.setting),
            TOL,
        );
    }

    // Heuristics: never better than the optimum, always self-consistent.
    // (DALTA and bSB usually *reach* the optimum on instances this small,
    // but neither guarantees it, so only the one-sided bound is an
    // invariant.)
    let heuristics: [(&str, Box<dyn CopSolver>); 5] = [
        ("bSB", Box::new(CopSolverKind::Ising(random_ising_solver(rng)))),
        (
            "dalta",
            Box::new(DaltaHeuristic { restarts: rng.gen_range(1..=3) }),
        ),
        ("ba", Box::new(BaParams::default())),
        ("simcim", Box::new(SimCimCopSolver::new())),
        ("doch", Box::new(DochCopSolver::new())),
    ];
    for (name, solver) in &heuristics {
        let res = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
        col.check(case, res.objective >= opt - TOL, || {
            format!(
                "{name} reported {} — better than the exhaustive optimum {opt}",
                res.objective
            )
        });
        col.close(
            case,
            &format!("{name} reported objective vs its own setting"),
            res.objective,
            cop.objective(&res.setting),
            TOL,
        );
    }

    // Racing determinism: with racing disabled the portfolio is a pure
    // argmin, so its answer must be bit-identical to running the winning
    // member alone under an identical context — no cross-member state may
    // leak through the shared scratch.
    let portfolio = PortfolioSolver::new()
        .member("exact", CopSolverKind::Exact { time_limit: None })
        .member("dalta", DaltaHeuristic { restarts: 2 })
        .member("doch", DochCopSolver::new());
    let raced = portfolio.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
    let winner = raced.winner.clone().unwrap_or_default();
    let solo: Box<dyn CopSolver> = match winner.as_str() {
        "exact" => Box::new(CopSolverKind::Exact { time_limit: None }),
        "dalta" => Box::new(DaltaHeuristic { restarts: 2 }),
        "doch" => Box::new(DochCopSolver::new()),
        other => {
            col.check(case, false, || {
                format!("portfolio attributed an unknown member {other:?}")
            });
            return;
        }
    };
    let alone = solo.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
    col.check(case, raced.setting == alone.setting, || {
        format!("sequential portfolio setting diverged from member {winner} run alone")
    });
    col.check(
        case,
        raced.objective.to_bits() == alone.objective.to_bits(),
        || {
            format!(
                "sequential portfolio objective {} != member {winner} alone {}",
                raced.objective, alone.objective
            )
        },
    );
    // The exact member is enrolled, so the portfolio must land the optimum.
    col.close(case, "portfolio objective vs optimum", raced.objective, opt, TOL);
}

/// A randomized (but always valid) Ising COP solver configuration: both
/// integrator paths, both improvement strategies, both stop criteria.
fn random_ising_solver(rng: &mut ChaCha8Rng) -> IsingCopSolver {
    let stop = if rng.gen_bool(0.5) {
        StopCriterion::FixedIterations(rng.gen_range(100..=400))
    } else {
        StopCriterion::DynamicVariance {
            sample_every: rng.gen_range(2..=10),
            window: rng.gen_range(2..=6),
            threshold: 1e-8,
            max_iterations: rng.gen_range(300..=1000),
        }
    };
    let mut solver = IsingCopSolver::new()
        .stop(stop)
        .structured(rng.gen_bool(0.5))
        .heuristic(rng.gen_bool(0.5))
        .replicas(rng.gen_range(1..=2))
        .dt(rng.gen_range(0.1..0.4));
    if rng.gen_bool(0.5) {
        solver = solver.ramp(rng.gen_range(50..=300));
    }
    solver
}
