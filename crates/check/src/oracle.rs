//! Family 1 — the ground-truth oracle.
//!
//! For random functions, partitions and distributions, every column
//! setting — random, solver-produced, or exhaustively optimal — must
//! satisfy the Eq. (9)/(16) identity chain:
//!
//! ```text
//! ColumnCop::objective(s)  ==  metric(reconstruct(s))  ==  Ising energy at encode(s)
//! ```
//!
//! where `metric` is the component ER in separate mode and the whole-word
//! MED in joint mode, recomputed from scratch through `boolfn::metrics`
//! with no cell-linearization involved. Every fourth case additionally
//! runs a whole `Framework::decompose` and re-derives its reported
//! MED/ER/LUT from the returned approximation.

use crate::{random_dist, random_fn, random_setting, Collector};
use adis_boolfn::{
    error_rate, error_rate_multi, mean_error_distance, BooleanMatrix, ColumnSetting,
    MultiOutputFn, Partition,
};
use adis_core::{ColumnCop, CopSolverKind, Framework, IsingCopSolver, Mode};
use adis_sb::StopCriterion;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

const TOL: f64 = 1e-9;

/// Exhaustive type-vector search is `O(2^c)`; keep it to small columns.
const EXHAUSTIVE_COLS: usize = 8;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    let n: u32 = rng.gen_range(3..=6);
    let m: u32 = rng.gen_range(1..=4);
    let exact = random_fn(rng, n, m);
    let bound = rng.gen_range(1..n);
    let w = Partition::random(n, bound, rng);
    let dist = random_dist(rng, n);
    let k: u32 = rng.gen_range(0..m);
    let (r, c) = (w.rows(), w.cols());

    // --- Separate mode: objective == component ER == Ising energy.
    let matrix = BooleanMatrix::build(exact.component(k), &w);
    let cop = ColumnCop::separate(&matrix, &w, &dist);
    let mut settings: Vec<(&str, ColumnSetting)> = (0..3)
        .map(|_| ("random", random_setting(rng, r, c)))
        .collect();
    if c <= EXHAUSTIVE_COLS {
        settings.push(("exhaustive", cop.solve_exhaustive()));
    }
    // A solver-produced setting, checking the reported objective on the way.
    let solver = IsingCopSolver::new()
        .stop(StopCriterion::FixedIterations(200))
        .replicas(1)
        .seed(rng.gen_range(0..1u64 << 32));
    let sol = solver.solve(&cop);
    col.close(
        case,
        "separate: solver-reported objective vs its own setting",
        sol.objective,
        cop.objective(&sol.setting),
        1e-12,
    );
    settings.push(("bSB", sol.setting));

    let ising = cop.to_ising();
    let layout = cop.layout();
    for (origin, s) in &settings {
        let table = s.reconstruct(&w);
        let direct = error_rate(exact.component(k), &table, &dist);
        col.close(
            case,
            &format!("separate objective vs direct ER ({origin} setting, n={n} |B|={bound})"),
            cop.objective(s),
            direct,
            TOL,
        );
        col.close(
            case,
            &format!("separate Ising energy vs objective ({origin} setting)"),
            ising.energy(&layout.encode(s)),
            cop.objective(s),
            TOL,
        );
    }

    // --- Joint mode: perturb the other components, fix them, and check the
    // case-split COP against a from-scratch MED of the substituted word.
    let exact_words: Vec<u64> = (0..1u64 << n).map(|p| exact.eval_word(p)).collect();
    let approx_words: Vec<u64> = exact_words
        .iter()
        .map(|&x| if rng.gen_bool(0.3) { rng.gen_range(0..1u64 << m) } else { x })
        .collect();
    let mut offsets = vec![0i64; r * c];
    let mut probs = vec![0.0; r * c];
    for i in 0..r {
        for j in 0..c {
            let x = w.compose(i, j);
            let others = (approx_words[x as usize] & !(1u64 << k)) as i64;
            offsets[i * c + j] = others - exact_words[x as usize] as i64;
            probs[i * c + j] = dist.prob(x, n);
        }
    }
    let jcop = ColumnCop::joint(r, c, k, &offsets, &probs);
    let jising = jcop.to_ising();
    let jlayout = jcop.layout();
    let mut jsettings: Vec<(&str, ColumnSetting)> = (0..3)
        .map(|_| ("random", random_setting(rng, r, c)))
        .collect();
    if c <= EXHAUSTIVE_COLS {
        jsettings.push(("exhaustive", jcop.solve_exhaustive()));
    }
    for (origin, s) in &jsettings {
        let table = s.reconstruct(&w);
        let mut approx = MultiOutputFn::from_word_fn(n, m, |p| approx_words[p as usize]);
        approx.set_component(k, table);
        let direct = mean_error_distance(&exact, &approx, &dist);
        col.close(
            case,
            &format!("joint objective vs direct MED ({origin} setting, n={n} m={m} k={k})"),
            jcop.objective(s),
            direct,
            TOL,
        );
        col.close(
            case,
            &format!("joint Ising energy vs objective ({origin} setting)"),
            jising.energy(&jlayout.encode(s)),
            jcop.objective(s),
            TOL,
        );
    }

    // --- End-to-end engine oracle on a fresh small instance.
    if case.is_multiple_of(4) {
        engine_case(col, case, rng);
    }
}

/// Runs a full decomposition and re-derives every reported number from the
/// returned approximation alone.
fn engine_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    let n: u32 = rng.gen_range(4..=5);
    let m: u32 = rng.gen_range(2..=3);
    let exact = random_fn(rng, n, m);
    let bound = rng.gen_range(1..=3.min(n - 1));
    let dist = random_dist(rng, n);
    let mode = if rng.gen_bool(0.5) { Mode::Joint } else { Mode::Separate };
    let kind = if rng.gen_bool(0.5) {
        CopSolverKind::Exact { time_limit: None }
    } else {
        CopSolverKind::Ising(
            IsingCopSolver::new()
                .stop(StopCriterion::FixedIterations(150))
                .replicas(1),
        )
    };
    let outcome = Framework::new(mode, bound)
        .solver(kind)
        .partitions(3)
        .rounds(1)
        .parallel(false)
        .seed(rng.gen_range(0..1u64 << 32))
        .dist(dist.clone())
        .decompose(&exact);

    col.close(
        case,
        "engine-reported MED vs metrics recomputation",
        outcome.med,
        mean_error_distance(&exact, &outcome.approx, &dist),
        1e-12,
    );
    col.close(
        case,
        "engine-reported ER vs metrics recomputation",
        outcome.er,
        error_rate_multi(&exact, &outcome.approx, &dist),
        1e-12,
    );
    col.check(
        case,
        outcome.cache_hits + outcome.cache_misses == outcome.cop_solves,
        || {
            format!(
                "cache accounting: {} hits + {} misses != {} cop solves",
                outcome.cache_hits, outcome.cache_misses, outcome.cop_solves
            )
        },
    );
    for (kk, choice) in outcome.choices.iter().enumerate() {
        let table = choice.setting.reconstruct(&choice.partition);
        col.check(case, table == *outcome.approx.component(kk as u32), || {
            format!("component {kk}'s recorded choice does not reconstruct the approximation")
        });
    }
    let lut = outcome.to_lut();
    let mismatches = (0..1u64 << n)
        .filter(|&p| lut.eval_word(p) != outcome.approx.eval_word(p))
        .count();
    col.check(case, mismatches == 0, || {
        format!("decomposed LUT disagrees with the approximation on {mismatches} patterns")
    });
}
