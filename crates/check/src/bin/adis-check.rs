//! `adis-check` — the seeded differential/metamorphic verification run.
//!
//! Runs every check family in [`adis_check`] under a bounded case budget,
//! prints a per-family summary, writes a machine-readable discrepancy
//! report to `<out>/CHECK_s<seed>.json` (a deterministic name, so CI can
//! archive it), and exits non-zero iff any invariant was violated.
//!
//! ```text
//! adis-check [--cases N] [--seed S] [--out DIR]
//! ```

use adis_check::{run_all, CheckConfig};
use adis_telemetry::Json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    cases: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 100,
        seed: 5,
        out: PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                println!("usage: adis-check [--cases N] [--seed S] [--out DIR]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.cases == 0 {
        return Err("--cases must be at least 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("adis-check: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = CheckConfig {
        cases: args.cases,
        seed: args.seed,
    };
    println!("adis-check: cases = {}, seed = {}", cfg.cases, cfg.seed);

    let start = Instant::now();
    let outcome = run_all(&cfg);
    let wall = start.elapsed();

    for fam in &outcome.families {
        println!(
            "  {:<15} {:>5} cases  {:>8} checks  {:>3} discrepancies",
            fam.family.name(),
            fam.cases,
            fam.checks,
            fam.discrepancies.len()
        );
        for d in &fam.discrepancies {
            println!("    case {:>4}: {}", d.case, d.detail);
        }
    }

    let mut report = outcome.to_report(&cfg);
    report.config("wall_seconds", Json::Num(wall.as_secs_f64()));
    report.total_wall(wall);
    match report.write_named(&args.out, format!("CHECK_s{}.json", cfg.seed)) {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!("adis-check: could not write report: {e}");
            return ExitCode::from(2);
        }
    }

    let bad = outcome.total_discrepancies();
    if bad > 0 {
        eprintln!(
            "FAIL: {bad} discrepancies across {} checks in {:.1}s",
            outcome.total_checks(),
            wall.as_secs_f64()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "OK: {} checks, 0 discrepancies in {:.1}s",
            outcome.total_checks(),
            wall.as_secs_f64()
        );
        ExitCode::SUCCESS
    }
}
