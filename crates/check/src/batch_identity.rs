//! Family 4 — batched-vs-sequential SB identity.
//!
//! [`SbSolver::solve_batch_with`] documents that lane `r` of a batched
//! integration is bit-identical — best state, best energy, iteration
//! count, stop reason, full energy trace — to a sequential
//! `seed(seed + r)` run. The unit tests pin this for a few fixed
//! configurations; here it is re-asserted under randomized problems and
//! randomized solver configurations (all three variants, random `dt`,
//! `a0`, `c0`, init amplitude, optional pump ramp, both stop criteria
//! with random windows ≥ 2).

use crate::Collector;
use adis_ising::{IsingBuilder, IsingProblem};
use adis_sb::{SbBatchScratch, SbSolver, SbVariant, StopCriterion};
use adis_telemetry::NullObserver;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub(crate) fn run_case(col: &mut Collector, case: usize, rng: &mut ChaCha8Rng) {
    let problem = random_problem(rng);
    let (solver, seed) = random_solver(rng);
    let replicas = rng.gen_range(1..=6usize);

    let mut scratch = SbBatchScratch::new();
    let lanes =
        solver.solve_batch_with(&problem, replicas, &mut scratch, |_, _| {}, &mut NullObserver);
    col.check(case, lanes.len() == replicas, || {
        format!("batch returned {} lanes for {replicas} replicas", lanes.len())
    });

    for (rep, lane) in lanes.iter().enumerate() {
        let seq = solver
            .clone()
            .seed(seed.wrapping_add(rep as u64))
            .solve(&problem);
        let label = format!("lane {rep}/{replicas} ({:?})", lane.stop_reason);
        col.check(case, lane.best_state == seq.best_state, || {
            format!("{label}: best state differs from sequential run")
        });
        col.check(
            case,
            lane.best_energy.to_bits() == seq.best_energy.to_bits(),
            || {
                format!(
                    "{label}: best energy {} != sequential {}",
                    lane.best_energy, seq.best_energy
                )
            },
        );
        col.check(case, lane.iterations == seq.iterations, || {
            format!(
                "{label}: {} iterations != sequential {}",
                lane.iterations, seq.iterations
            )
        });
        col.check(case, lane.stop_reason == seq.stop_reason, || {
            format!(
                "{label}: stop reason {:?} != sequential {:?}",
                lane.stop_reason, seq.stop_reason
            )
        });
        let traces_match = lane.trace.len() == seq.trace.len()
            && lane
                .trace
                .iter()
                .zip(&seq.trace)
                .all(|(&(ia, ea), &(ib, eb))| ia == ib && ea.to_bits() == eb.to_bits());
        col.check(case, traces_match, || {
            format!(
                "{label}: trace differs ({} vs {} samples)",
                lane.trace.len(),
                seq.trace.len()
            )
        });
    }

    // The merged convenience entry point must return the best lane.
    let merged = solver.solve_batch(&problem, replicas);
    let best = lanes
        .iter()
        .map(|l| l.best_energy)
        .fold(f64::INFINITY, f64::min);
    col.check(case, merged.best_energy.to_bits() == best.to_bits(), || {
        format!(
            "merged batch energy {} != best lane energy {best}",
            merged.best_energy
        )
    });
}

/// A random Ising problem: 4–10 spins, at least one coupling (so the auto
/// `c0` scale is well-defined), random density, biases and offset.
fn random_problem(rng: &mut ChaCha8Rng) -> IsingProblem {
    let n = rng.gen_range(4..=10usize);
    let mut b = IsingBuilder::new(n);
    b.add_coupling(0, 1, rng.gen_range(0.2..1.0));
    for i in 0..n {
        for j in (i + 1)..n {
            if (i, j) != (0, 1) && rng.gen_bool(0.4) {
                b.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        if rng.gen_bool(0.5) {
            b.add_bias(i, rng.gen_range(-0.5..0.5));
        }
    }
    if rng.gen_bool(0.3) {
        b.add_offset(rng.gen_range(-1.0..1.0));
    }
    b.build()
}

/// A random valid SB configuration across the whole builder surface,
/// returned with the seed it was given (`SbSolver` has no seed getter, and
/// the sequential replays need `seed + r`).
fn random_solver(rng: &mut ChaCha8Rng) -> (SbSolver, u64) {
    let variant = match rng.gen_range(0..3u32) {
        0 => SbVariant::Adiabatic,
        1 => SbVariant::Ballistic,
        _ => SbVariant::Discrete,
    };
    let stop = if rng.gen_bool(0.5) {
        StopCriterion::FixedIterations(rng.gen_range(50..=300))
    } else {
        StopCriterion::DynamicVariance {
            sample_every: rng.gen_range(1..=20),
            window: rng.gen_range(2..=8),
            threshold: 10f64.powi(-rng.gen_range(6..=10)),
            max_iterations: rng.gen_range(200..=1200),
        }
    };
    let seed = rng.gen_range(0..1u64 << 40);
    let mut solver = SbSolver::new()
        .variant(variant)
        .stop(stop)
        .dt(rng.gen_range(0.05..0.4))
        .a0(rng.gen_range(0.5..1.5))
        .init_amplitude(rng.gen_range(0.02..0.2))
        .seed(seed);
    if rng.gen_bool(0.4) {
        solver = solver.ramp(rng.gen_range(20..=400));
    }
    if rng.gen_bool(0.3) {
        solver = solver.c0(rng.gen_range(0.1..1.0));
    }
    (solver, seed)
}
