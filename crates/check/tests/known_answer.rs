//! Known-answer anchors for the oracle: hand-built `(w, V₁, V₂, T)`
//! settings whose ER/MED were computed by hand, pinned against both the
//! cell-linear COP objective and the from-scratch `boolfn::metrics`
//! recomputation. If the randomized oracle family and these fixed points
//! ever disagree, the oracle itself (not the solvers) is broken.

use adis_boolfn::{
    error_rate, mean_error_distance, BitVec, BooleanMatrix, ColumnSetting, InputDist,
    MultiOutputFn, Partition, TruthTable,
};
use adis_core::ColumnCop;

/// Separate mode, fully by hand. `g = x0` on 4 inputs with free set
/// `{0, 1}` and bound set `{2, 3}` (r = c = 4). Row index bit 0 is `x0`,
/// so the matrix is `O_ij = i & 1`.
#[test]
fn separate_er_by_hand() {
    let g = TruthTable::from_fn(4, |p| p & 1 == 1);
    let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
    let cop = ColumnCop::separate(&BooleanMatrix::build(&g, &w), &w, &InputDist::Uniform);

    // Perfect setting: V1 reproduces the row pattern (V1_i = i & 1), every
    // column type 0 → Ô_ij = i & 1 = O_ij, so ER = 0.
    let perfect = ColumnSetting {
        v1: BitVec::from_fn(4, |i| i & 1 == 1),
        v2: BitVec::zeros(4),
        t: BitVec::zeros(4),
    };
    assert!(cop.objective(&perfect).abs() < 1e-12);
    assert!(error_rate(&g, &perfect.reconstruct(&w), &InputDist::Uniform).abs() < 1e-12);

    // Send column 0 to the all-ones pattern instead: V2 = 1111, T = 0001.
    // Column 0's cells become Ô_i0 = 1, wrong exactly where i & 1 == 0 —
    // 2 of the 16 cells → ER = 2/16 = 0.125.
    let skewed = ColumnSetting {
        v1: BitVec::from_fn(4, |i| i & 1 == 1),
        v2: BitVec::from_fn(4, |_| true),
        t: BitVec::from_fn(4, |j| j == 0),
    };
    let by_hand = 0.125;
    assert!((cop.objective(&skewed) - by_hand).abs() < 1e-12);
    assert!(
        (error_rate(&g, &skewed.reconstruct(&w), &InputDist::Uniform) - by_hand).abs() < 1e-12
    );

    // Everything wrong: V1 complements the rows, all columns type 0 →
    // every cell mismatches → ER = 1.
    let inverted = ColumnSetting {
        v1: BitVec::from_fn(4, |i| i & 1 == 0),
        v2: BitVec::zeros(4),
        t: BitVec::zeros(4),
    };
    assert!((cop.objective(&inverted) - 1.0).abs() < 1e-12);
}

/// Joint mode, fully by hand. `G(p) = p` on 2 inputs and 2 outputs,
/// free = {0}, bound = {1}, optimizing the MSB (k = 1, word weight 2)
/// with the LSB already exact.
#[test]
fn joint_med_by_hand() {
    let n = 2u32;
    let m = 2u32;
    let k = 1u32;
    let exact = MultiOutputFn::from_word_fn(n, m, |p| p);
    let w = Partition::new(n, vec![0], vec![1]).unwrap();
    let (r, c) = (w.rows(), w.cols());
    assert_eq!((r, c), (2, 2));

    // Engine-style joint construction: the other component (the LSB) is
    // kept exact, so D = (p & 1) − p = −(p & 2) per pattern.
    let mut offsets = vec![0i64; r * c];
    let mut probs = vec![0.0; r * c];
    for i in 0..r {
        for j in 0..c {
            let p = w.compose(i, j);
            offsets[i * c + j] = (p & 1) as i64 - p as i64;
            probs[i * c + j] = 0.25;
        }
    }
    let cop = ColumnCop::joint(r, c, k, &offsets, &probs);

    // MSB forced to 0 everywhere: patterns 2 and 3 each lose 2 from their
    // word → MED = (0 + 0 + 2 + 2) / 4 = 1.
    let all_zero = ColumnSetting {
        v1: BitVec::zeros(r),
        v2: BitVec::zeros(r),
        t: BitVec::zeros(c),
    };
    assert!((cop.objective(&all_zero) - 1.0).abs() < 1e-12);

    // MSB forced to 1 everywhere: patterns 0 and 1 each gain 2 → MED = 1.
    let all_one = ColumnSetting {
        v1: BitVec::from_fn(r, |_| true),
        v2: BitVec::from_fn(r, |_| true),
        t: BitVec::zeros(c),
    };
    assert!((cop.objective(&all_one) - 1.0).abs() < 1e-12);

    // The correct MSB depends only on the bound variable x1 = column
    // index: column 0 → 0 (type 0 reads V1 = 00), column 1 → 1 (type 1
    // reads V2 = 11). MED = 0.
    let correct = ColumnSetting {
        v1: BitVec::zeros(r),
        v2: BitVec::from_fn(r, |_| true),
        t: BitVec::from_fn(c, |j| j == 1),
    };
    assert!(cop.objective(&correct).abs() < 1e-12);

    // Each hand value must also match the from-scratch MED of actually
    // substituting the candidate MSB into the word.
    for (setting, want) in [(&all_zero, 1.0), (&all_one, 1.0), (&correct, 0.0)] {
        let mut approx = exact.clone();
        approx.set_component(k, setting.reconstruct(&w));
        let med = mean_error_distance(&exact, &approx, &InputDist::Uniform);
        assert!(
            (med - want).abs() < 1e-12 && (cop.objective(setting) - med).abs() < 1e-12,
            "metrics MED {med} vs hand {want} vs objective {}",
            cop.objective(setting)
        );
    }
}

/// Weighted joint mode: same instance as [`joint_med_by_hand`] under the
/// distribution (0.1, 0.2, 0.3, 0.4).
#[test]
fn joint_med_by_hand_weighted() {
    let exact = MultiOutputFn::from_word_fn(2, 2, |p| p);
    let w = Partition::new(2, vec![0], vec![1]).unwrap();
    let dist = InputDist::explicit(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
    let (r, c) = (w.rows(), w.cols());
    let mut offsets = vec![0i64; r * c];
    let mut probs = vec![0.0; r * c];
    for i in 0..r {
        for j in 0..c {
            let p = w.compose(i, j);
            offsets[i * c + j] = (p & 1) as i64 - p as i64;
            probs[i * c + j] = dist.prob(p, 2);
        }
    }
    let cop = ColumnCop::joint(r, c, 1, &offsets, &probs);

    // MSB forced to 0: only patterns 2 and 3 err, each by 2:
    // MED = 2·0.3 + 2·0.4 = 1.4.
    let all_zero = ColumnSetting {
        v1: BitVec::zeros(r),
        v2: BitVec::zeros(r),
        t: BitVec::zeros(c),
    };
    assert!((cop.objective(&all_zero) - 1.4).abs() < 1e-12);
    let mut approx = exact.clone();
    approx.set_component(1, all_zero.reconstruct(&w));
    assert!((mean_error_distance(&exact, &approx, &dist) - 1.4).abs() < 1e-12);

    // MSB forced to 1: patterns 0 and 1 err by 2: MED = 2·0.1 + 2·0.2 = 0.6.
    let all_one = ColumnSetting {
        v1: BitVec::from_fn(r, |_| true),
        v2: BitVec::from_fn(r, |_| true),
        t: BitVec::zeros(c),
    };
    assert!((cop.objective(&all_one) - 0.6).abs() < 1e-12);
}
