//! Property-based tests for the simulated-bifurcation solvers.

use adis_ising::{IsingBuilder, IsingProblem};
use adis_sb::{SbSolver, SbVariant, StopCriterion};
use proptest::prelude::*;

fn problem(max_spins: usize) -> impl Strategy<Value = IsingProblem> {
    (2..=max_spins).prop_flat_map(|n| {
        let biases = prop::collection::vec(-1.0..1.0f64, n);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let couplings = prop::collection::vec(-1.0..1.0f64, pairs.len());
        (biases, couplings, Just(pairs)).prop_map(|(h, js, pairs)| {
            let mut b = IsingBuilder::new(h.len());
            for (i, &v) in h.iter().enumerate() {
                b.add_bias(i, v);
            }
            for ((i, j), v) in pairs.into_iter().zip(js) {
                b.add_coupling(i, j, v);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reported best energy always equals the energy of the reported
    /// best state, and equals the minimum of the trace.
    #[test]
    fn result_invariants(p in problem(10), seed in any::<u64>()) {
        let r = SbSolver::new()
            .stop(StopCriterion::FixedIterations(300))
            .seed(seed)
            .solve(&p);
        prop_assert!((p.energy(&r.best_state) - r.best_energy).abs() < 1e-9);
        let trace_min = r
            .trace
            .iter()
            .map(|&(_, e)| e)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(r.best_energy <= trace_min + 1e-9);
        prop_assert!(r.iterations <= 300);
    }

    /// Determinism: identical configuration ⇒ identical result.
    #[test]
    fn deterministic(p in problem(8), seed in any::<u64>()) {
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let a = SbSolver::new().variant(variant).seed(seed).solve(&p);
            let b = SbSolver::new().variant(variant).seed(seed).solve(&p);
            prop_assert_eq!(a.best_state, b.best_state);
            prop_assert_eq!(a.best_energy, b.best_energy);
        }
    }

    /// The solution is 1-flip locally improvable at most mildly: flipping
    /// any single spin of the best state cannot yield a *large* gain
    /// relative to the energy scale (sanity of convergence, not optimality).
    #[test]
    fn no_catastrophic_local_gap(p in problem(8), seed in any::<u64>()) {
        let r = SbSolver::new().seed(seed).solve(&p);
        let scale = p.max_abs_coefficient() * p.num_spins() as f64;
        let mut s = r.best_state.clone();
        for i in 0..p.num_spins() {
            let delta = p.flip_delta(&s, i);
            prop_assert!(delta > -scale, "flip {i} gains {delta}, scale {scale}");
            s.flip(i);
            s.flip(i);
        }
    }

    /// Dynamic stop never runs past the cap and, when it settles, uses
    /// fewer iterations than the cap.
    #[test]
    fn dynamic_stop_bounds(p in problem(8), seed in any::<u64>()) {
        let r = SbSolver::new()
            .stop(StopCriterion::DynamicVariance {
                sample_every: 5,
                window: 4,
                threshold: 1e-10,
                max_iterations: 2000,
            })
            .seed(seed)
            .solve(&p);
        prop_assert!(r.iterations <= 2000);
        if r.stop_reason == adis_sb::StopReason::EnergySettled {
            prop_assert!(r.iterations < 2000);
        }
    }

    /// A global sign flip of all couplings and biases mirrors the energy:
    /// min E' = min E under σ → −σ when biases are zero.
    #[test]
    fn coupling_negation_symmetry(p in problem(8)) {
        // Build the bias-free negation.
        let mut b1 = IsingBuilder::new(p.num_spins());
        let mut b2 = IsingBuilder::new(p.num_spins());
        for (i, j, v) in p.couplings() {
            b1.add_coupling(i, j, v);
            b2.add_coupling(i, j, v);
        }
        let p1 = b1.build();
        let p2 = b2.build();
        let r1 = SbSolver::new().seed(3).solve(&p1);
        let r2 = SbSolver::new().seed(3).solve(&p2);
        prop_assert_eq!(r1.best_energy, r2.best_energy);
    }
}
