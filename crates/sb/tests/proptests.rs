//! Property-based tests for the simulated-bifurcation solvers.

use adis_ising::{solve_exhaustive, IsingBuilder, IsingProblem};
use adis_sb::{KernelPrecision, SbBatchScratch, SbSolver, SbVariant, StopCriterion};
use adis_telemetry::NullObserver;
use proptest::prelude::*;

fn problem(max_spins: usize) -> impl Strategy<Value = IsingProblem> {
    (2..=max_spins).prop_flat_map(|n| {
        let biases = prop::collection::vec(-1.0..1.0f64, n);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let couplings = prop::collection::vec(-1.0..1.0f64, pairs.len());
        (biases, couplings, Just(pairs)).prop_map(|(h, js, pairs)| {
            let mut b = IsingBuilder::new(h.len());
            for (i, &v) in h.iter().enumerate() {
                b.add_bias(i, v);
            }
            for ((i, j), v) in pairs.into_iter().zip(js) {
                b.add_coupling(i, j, v);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reported best energy always equals the energy of the reported
    /// best state, and equals the minimum of the trace.
    #[test]
    fn result_invariants(p in problem(10), seed in any::<u64>()) {
        let r = SbSolver::new()
            .stop(StopCriterion::FixedIterations(300))
            .seed(seed)
            .solve(&p);
        prop_assert!((p.energy(&r.best_state) - r.best_energy).abs() < 1e-9);
        let trace_min = r
            .trace
            .iter()
            .map(|&(_, e)| e)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(r.best_energy <= trace_min + 1e-9);
        prop_assert!(r.iterations <= 300);
    }

    /// Determinism: identical configuration ⇒ identical result.
    #[test]
    fn deterministic(p in problem(8), seed in any::<u64>()) {
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let a = SbSolver::new().variant(variant).seed(seed).solve(&p);
            let b = SbSolver::new().variant(variant).seed(seed).solve(&p);
            prop_assert_eq!(a.best_state, b.best_state);
            prop_assert_eq!(a.best_energy, b.best_energy);
        }
    }

    /// The solution is 1-flip locally improvable at most mildly: flipping
    /// any single spin of the best state cannot yield a *large* gain
    /// relative to the energy scale (sanity of convergence, not optimality).
    #[test]
    fn no_catastrophic_local_gap(p in problem(8), seed in any::<u64>()) {
        let r = SbSolver::new().seed(seed).solve(&p);
        let scale = p.max_abs_coefficient() * p.num_spins() as f64;
        let mut s = r.best_state.clone();
        for i in 0..p.num_spins() {
            let delta = p.flip_delta(&s, i);
            prop_assert!(delta > -scale, "flip {i} gains {delta}, scale {scale}");
            s.flip(i);
            s.flip(i);
        }
    }

    /// Dynamic stop never runs past the cap and, when it settles, uses
    /// fewer iterations than the cap.
    #[test]
    fn dynamic_stop_bounds(p in problem(8), seed in any::<u64>()) {
        let r = SbSolver::new()
            .stop(StopCriterion::DynamicVariance {
                sample_every: 5,
                window: 4,
                threshold: 1e-10,
                max_iterations: 2000,
            })
            .seed(seed)
            .solve(&p);
        prop_assert!(r.iterations <= 2000);
        if r.stop_reason == adis_sb::StopReason::EnergySettled {
            prop_assert!(r.iterations < 2000);
        }
    }

    /// The SoA batch integrator is bit-identical to sequential replica
    /// runs — same best state, best energy, iteration count and full trace
    /// for every lane, under every SB variant.
    #[test]
    fn batch_bit_identical_to_sequential(
        p in problem(9),
        seed in any::<u64>(),
        replicas in 1usize..5,
    ) {
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let solver = SbSolver::new()
                .variant(variant)
                .stop(StopCriterion::FixedIterations(200))
                .seed(seed);
            let mut scratch = SbBatchScratch::new();
            let batch = solver.solve_batch_with(&p, replicas, &mut scratch, |_, _| {}, &mut NullObserver);
            prop_assert_eq!(batch.len(), replicas);
            for (r, lane) in batch.iter().enumerate() {
                let seq = solver.clone().seed(seed.wrapping_add(r as u64)).solve(&p);
                prop_assert_eq!(&lane.best_state, &seq.best_state, "{:?} lane {}", variant, r);
                prop_assert_eq!(lane.best_energy, seq.best_energy);
                prop_assert_eq!(lane.iterations, seq.iterations);
                prop_assert_eq!(lane.stop_reason, seq.stop_reason);
                prop_assert_eq!(&lane.trace, &seq.trace);
            }
        }
    }

    /// Bit-identity also holds when lanes retire at different iterations
    /// under the dynamic variance stop.
    #[test]
    fn batch_bit_identical_under_dynamic_stop(
        p in problem(8),
        seed in any::<u64>(),
        replicas in 1usize..5,
    ) {
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let solver = SbSolver::new()
                .variant(variant)
                .stop(StopCriterion::DynamicVariance {
                    sample_every: 5,
                    window: 4,
                    threshold: 1e-9,
                    max_iterations: 3000,
                })
                .seed(seed);
            let mut scratch = SbBatchScratch::new();
            let batch = solver.solve_batch_with(&p, replicas, &mut scratch, |_, _| {}, &mut NullObserver);
            for (r, lane) in batch.iter().enumerate() {
                let seq = solver.clone().seed(seed.wrapping_add(r as u64)).solve(&p);
                prop_assert_eq!(&lane.best_state, &seq.best_state, "{:?} lane {}", variant, r);
                prop_assert_eq!(lane.best_energy, seq.best_energy);
                prop_assert_eq!(lane.iterations, seq.iterations);
                prop_assert_eq!(lane.stop_reason, seq.stop_reason);
                prop_assert_eq!(&lane.trace, &seq.trace);
            }
        }
    }

    /// The arbitrary-width fallback field kernel is bit-identical to
    /// sequential solves at widths the const dispatch does not cover
    /// (R = 3, 5, 7, 33 route through `batch_field_dyn`).
    #[test]
    fn fallback_widths_bit_identical_to_sequential(
        p in problem(8),
        seed in any::<u64>(),
        replicas in prop::sample::select(vec![3usize, 5, 7, 33]),
    ) {
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let solver = SbSolver::new()
                .variant(variant)
                .stop(StopCriterion::FixedIterations(150))
                .seed(seed);
            let mut scratch = SbBatchScratch::new();
            let batch = solver.solve_batch_with(&p, replicas, &mut scratch, |_, _| {}, &mut NullObserver);
            prop_assert_eq!(batch.len(), replicas);
            // Every lane of the fallback path, not a sample: divergence in
            // the in-place accumulator would only show on specific lanes.
            for (r, lane) in batch.iter().enumerate() {
                let seq = solver.clone().seed(seed.wrapping_add(r as u64)).solve(&p);
                prop_assert_eq!(&lane.best_state, &seq.best_state, "{:?} lane {}/{}", variant, r, replicas);
                prop_assert_eq!(lane.best_energy, seq.best_energy);
                prop_assert_eq!(lane.iterations, seq.iterations);
                prop_assert_eq!(lane.stop_reason, seq.stop_reason);
                prop_assert_eq!(&lane.trace, &seq.trace);
            }
        }
    }

    /// The quantized dSB path reports real spin configurations with exact
    /// f64 energies: its objective can never fall below the exhaustive
    /// optimum, and it is exactly reproducible.
    #[test]
    fn quantized_objective_never_beats_the_exhaustive_optimum(
        p in problem(8),
        seed in any::<u64>(),
    ) {
        let ground = solve_exhaustive(&p);
        let solver = SbSolver::new()
            .variant(SbVariant::Discrete)
            .precision(KernelPrecision::I16)
            .stop(StopCriterion::FixedIterations(250))
            .seed(seed);
        let mut scratch = SbBatchScratch::new();
        let best = solver.solve_batch_in(&p, 8, &mut scratch);
        prop_assert!((p.energy(&best.best_state) - best.best_energy).abs() < 1e-12);
        prop_assert!(best.best_energy >= ground.energy - 1e-9,
            "quantized energy {} below exhaustive optimum {}", best.best_energy, ground.energy);
        let again = solver.solve_batch_in(&p, 8, &mut SbBatchScratch::new());
        prop_assert_eq!(best.best_energy, again.best_energy);
        prop_assert_eq!(best.best_state, again.best_state);
    }

    /// The best-of-batch wrapper selects exactly what a sequential scan
    /// with strict `<` (earliest replica wins ties) would select.
    #[test]
    fn batch_selection_matches_sequential_scan(p in problem(8), seed in any::<u64>()) {
        let solver = SbSolver::new()
            .stop(StopCriterion::FixedIterations(150))
            .seed(seed);
        let batch = solver.solve_batch(&p, 6);
        let mut best: Option<adis_sb::SbResult> = None;
        for r in 0..6u64 {
            let result = solver.clone().seed(seed.wrapping_add(r)).solve(&p);
            best = Some(match best {
                None => result,
                Some(b) if result.best_energy < b.best_energy => result,
                Some(b) => b,
            });
        }
        let best = best.unwrap();
        prop_assert_eq!(batch.best_state, best.best_state);
        prop_assert_eq!(batch.best_energy, best.best_energy);
        prop_assert_eq!(batch.trace, best.trace);
    }

    /// A global sign flip of all couplings and biases mirrors the energy:
    /// min E' = min E under σ → −σ when biases are zero.
    #[test]
    fn coupling_negation_symmetry(p in problem(8)) {
        // Build the bias-free negation.
        let mut b1 = IsingBuilder::new(p.num_spins());
        let mut b2 = IsingBuilder::new(p.num_spins());
        for (i, j, v) in p.couplings() {
            b1.add_coupling(i, j, v);
            b2.add_coupling(i, j, v);
        }
        let p1 = b1.build();
        let p2 = b2.build();
        let r1 = SbSolver::new().seed(3).solve(&p1);
        let r2 = SbSolver::new().seed(3).solve(&p2);
        prop_assert_eq!(r1.best_energy, r2.best_energy);
    }
}
