//! Ballistic simulated bifurcation for higher-order cost functions
//! (Kanao & Goto, *Simulated bifurcation for higher-order cost functions*,
//! APEX 2023 — the paper's reference [19]).
//!
//! This is what solving the *row-based* core COP directly would require,
//! since its cost is third-order in spin variables (Section 3.1). The
//! reproduction uses it for Ablation A3.

use crate::{StopCriterion, StopReason, StopState};
use adis_ising::{HigherOrderIsing, SpinVector};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Outcome of a higher-order bSB run.
#[derive(Debug, Clone)]
pub struct HigherOrderSbResult {
    /// Best sampled spin configuration.
    pub best_state: SpinVector,
    /// Its energy (including the offset).
    pub best_energy: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Why the run ended.
    pub stop_reason: StopReason,
}

/// Ballistic SB over a [`HigherOrderIsing`] energy.
///
/// The dynamics replace the linear field `h + Jx` with the general force
/// `−∂E/∂x`; walls at `±1` are retained from bSB.
///
/// # Examples
///
/// ```
/// use adis_ising::HigherOrderIsing;
/// use adis_sb::HigherOrderSb;
///
/// // E = −σ0σ1σ2: ground states have product +1.
/// let mut e = HigherOrderIsing::new(3);
/// e.add_term(&[0, 1, 2], -1.0);
/// let r = HigherOrderSb::new().seed(3).solve(&e);
/// assert_eq!(r.best_energy, -1.0);
/// ```
#[derive(Debug, Clone)]
pub struct HigherOrderSb {
    stop: StopCriterion,
    dt: f64,
    a0: f64,
    c0: Option<f64>,
    seed: u64,
    discrete: bool,
}

impl Default for HigherOrderSb {
    fn default() -> Self {
        Self::new()
    }
}

impl HigherOrderSb {
    /// Defaults matching [`crate::SbSolver::new`].
    pub fn new() -> Self {
        HigherOrderSb {
            stop: StopCriterion::FixedIterations(1500),
            dt: 0.25,
            a0: 1.0,
            c0: None,
            seed: 0,
            discrete: false,
        }
    }

    /// Switches to the discrete (dSB-like) dynamics: the force is evaluated
    /// on the sign readout `sgn(x)` instead of the analog positions, which
    /// markedly improves solution accuracy at the same cost (Goto 2021,
    /// carried over to the higher-order integrator).
    pub fn discrete(mut self, on: bool) -> Self {
        self.discrete = on;
        self
    }

    /// Sets the stop criterion.
    pub fn stop(mut self, s: StopCriterion) -> Self {
        self.stop = s;
        self
    }

    /// Sets the Euler time step.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0`.
    pub fn dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        self.dt = dt;
        self
    }

    /// Overrides the coupling strength `c₀` (auto-scaled by default).
    pub fn c0(mut self, c0: f64) -> Self {
        self.c0 = Some(c0);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn resolve_c0(&self, energy: &HigherOrderIsing) -> f64 {
        match self.c0 {
            Some(c) => c,
            None => {
                // Goto-style prescription generalized to k-local terms: at a
                // random corner the force on spin i has variance
                // Σ_{t∋i} c_t², so the mean per-spin force RMS is
                // sqrt(Σ_t c_t²·|S_t| / N); scale so it becomes O(a0/2).
                let sigma = energy.force_rms();
                if sigma > 0.0 {
                    0.5 * self.a0 / sigma
                } else {
                    1.0
                }
            }
        }
    }

    /// Runs the solver.
    pub fn solve(&self, energy: &HigherOrderIsing) -> HigherOrderSbResult {
        let n = energy.num_spins();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.1..=0.1)).collect();
        let mut y: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.1..=0.1)).collect();
        let c0 = self.resolve_c0(energy);
        let max_iters = self.stop.max_iterations();
        let sample_every = self.stop.sample_every();
        let mut stop_state = StopState::new(self.stop.clone());

        let mut best_state = SpinVector::from_signs(&x);
        let mut best_energy = energy.energy(&best_state);
        let mut force = vec![0.0; n];
        let mut signs = vec![0.0; n];
        let mut stop_reason = StopReason::IterationLimit;
        let mut iterations = max_iters;

        for t in 0..max_iters {
            let a_t = self.a0 * (t as f64 / max_iters as f64);
            if self.discrete {
                for i in 0..n {
                    signs[i] = if x[i] >= 0.0 { 1.0 } else { -1.0 };
                }
                energy.force(&signs, &mut force);
            } else {
                energy.force(&x, &mut force);
            }
            for i in 0..n {
                y[i] += (-(self.a0 - a_t) * x[i] + c0 * force[i]) * self.dt;
                x[i] += self.a0 * y[i] * self.dt;
                if x[i].abs() > 1.0 {
                    x[i] = x[i].signum();
                    y[i] = 0.0;
                }
            }
            if (t + 1) % sample_every == 0 || t + 1 == max_iters {
                let readout = SpinVector::from_signs(&x);
                let e = energy.energy(&readout);
                if e < best_energy {
                    best_energy = e;
                    best_state = readout;
                }
                if stop_state.record(e) {
                    stop_reason = StopReason::EnergySettled;
                    iterations = t + 1;
                    break;
                }
            }
        }

        HigherOrderSbResult {
            best_state,
            best_energy,
            iterations,
            stop_reason,
        }
    }

    /// Runs `replicas` independent trajectories and keeps the best.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn solve_batch(&self, energy: &HigherOrderIsing, replicas: usize) -> HigherOrderSbResult {
        assert!(replicas > 0, "need at least one replica");
        (0..replicas)
            .map(|r| {
                self.clone()
                    .seed(self.seed.wrapping_add(r as u64))
                    .solve(energy)
            })
            .min_by(|a, b| a.best_energy.total_cmp(&b.best_energy))
            .expect("replicas > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_parity_problem() {
        // E = -σ0σ1σ2 - σ1σ2σ3: satisfied when both products are +1.
        let mut e = HigherOrderIsing::new(4);
        e.add_term(&[0, 1, 2], -1.0);
        e.add_term(&[1, 2, 3], -1.0);
        let r = HigherOrderSb::new().solve_batch(&e, 4);
        assert_eq!(r.best_energy, -2.0);
    }

    #[test]
    fn matches_exhaustive_on_random_cubics() {
        use rand::Rng as _;
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..5 {
            let mut e = HigherOrderIsing::new(8);
            for _ in 0..12 {
                let mut idx: Vec<usize> = (0..8).collect();
                use rand::seq::SliceRandom;
                idx.shuffle(&mut rng);
                let deg = rng.gen_range(1..=3);
                e.add_term(&idx[..deg], rng.gen_range(-1.0..1.0));
            }
            let (_, exact) = e.solve_exhaustive();
            // Ballistic dynamics are approximate; demand within 30% of the
            // ground energy. The discrete variant should be near-exact.
            let b = HigherOrderSb::new().solve_batch(&e, 16);
            assert!(
                b.best_energy <= exact * (1.0 - 0.30) + 1e-9,
                "ho-bsb {} vs exact {exact}",
                b.best_energy
            );
            let d = HigherOrderSb::new().discrete(true).solve_batch(&e, 16);
            assert!(
                d.best_energy <= exact * (1.0 - 0.02) + 1e-9,
                "ho-dsb {} vs exact {exact}",
                d.best_energy
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut e = HigherOrderIsing::new(5);
        e.add_term(&[0, 1, 2], 1.0);
        e.add_term(&[2, 3, 4], -0.5);
        let a = HigherOrderSb::new().seed(4).solve(&e);
        let b = HigherOrderSb::new().seed(4).solve(&e);
        assert_eq!(a.best_state, b.best_state);
    }

    #[test]
    fn agrees_with_second_order_bsb_on_quadratic() {
        use adis_ising::IsingBuilder;
        let p = IsingBuilder::new(6)
            .coupling(0, 1, 1.0)
            .coupling(1, 2, 1.0)
            .coupling(2, 3, 1.0)
            .coupling(3, 4, 1.0)
            .coupling(4, 5, 1.0)
            .build();
        let ho = HigherOrderIsing::from_ising(&p);
        let r = HigherOrderSb::new().solve_batch(&ho, 4);
        assert_eq!(r.best_energy, -5.0);
    }
}
