//! Simulated bifurcation (SB) solvers for Ising problems.
//!
//! SB simulates each spin with a Kerr-nonlinear parametric oscillator and
//! integrates the network's Hamiltonian dynamics; after the pump ramps up,
//! the sign of each oscillator position reads out a spin. Unlike simulated
//! annealing, all spins update in parallel per step — the property the paper
//! exploits for a high-throughput COP solver.
//!
//! The bSB update rule (Goto 2021), integrated with symplectic Euler at
//! time step `dt`:
//!
//! ```text
//! yᵢ ← yᵢ + [ −(a₀ − a(t))·xᵢ + c₀·(Σⱼ J_ij xⱼ + hᵢ) ]·dt
//! xᵢ ← xᵢ + a₀·yᵢ·dt ,   and if |xᵢ| > 1:  xᵢ ← sgn xᵢ, yᵢ ← 0
//! ```
//!
//! with the pump `a(t)` ramping linearly `0 → a₀` (see
//! [`SbSolver::ramp`]). dSB replaces `xⱼ` by `sgn xⱼ` in the coupling sum;
//! aSB adds the Kerr term `−xᵢ³` and drops the walls ([`SbVariant`]).
//!
//! Provided here:
//!
//! - [`SbSolver`]: second-order solver with the adiabatic (aSB), ballistic
//!   (bSB — the paper's choice) and discrete (dSB) dynamics;
//! - [`StopCriterion`]: fixed iteration counts or the paper's **dynamic
//!   variance stop** (Section 3.3.1) — sample the energy every `f`
//!   iterations, stop when the variance of the last `s` samples falls
//!   below `ε`;
//! - one observer-generic entry point ([`SbSolver::solve_with`]) combining
//!   intervention hooks at every sampling point — used by the paper's
//!   type-reset heuristic (Section 3.3.2) — with observability: any
//!   [`adis_telemetry::SolveObserver`] receives per-sample energy /
//!   best-so-far / mean-amplitude telemetry and the stop decision, at zero
//!   cost when the null observer is passed;
//! - reusable integration buffers ([`SbSolver::solve_in`], [`SbScratch`],
//!   [`ScratchPool`]) so sweeps over many instances allocate per worker,
//!   not per solve;
//! - a structure-of-arrays **batch integrator**
//!   ([`SbSolver::solve_batch_with`], [`SbBatchScratch`]) advancing all
//!   replicas of a problem in one pass — the coupling matrix is read once
//!   per iteration for the whole batch, lanes retire independently under
//!   the dynamic stop, and every lane is bit-identical to its sequential
//!   run — plus the best-replica convenience wrappers
//!   ([`SbSolver::solve_batch`], [`SbSolver::solve_batch_in`]) with
//!   deterministic seed assignment and selection;
//! - a **fused multi-COP integrator**
//!   ([`SbSolver::solve_fused_with`], [`FusedScratch`], [`FusedUnit`])
//!   packing units of *different* problems that share one CSR sparsity
//!   pattern into the lanes of a single batch — each CSR entry loads a
//!   lane-vector of per-problem weights instead of a scalar broadcast,
//!   every lane carries its own clock/ramp/`c₀`/stop state, and retired
//!   lanes are refilled immediately from the pending queue
//!   (continuous batching); occupancy is reported via [`FusedStats`];
//! - a reduced-precision dSB kernel ([`KernelPrecision::I16`], selected
//!   with [`SbSolver::precision`]): the coupling field accumulates `i16`
//!   fixed-point weights over integer sign-mask rows — masked adds
//!   instead of multiplies, in `i16` lanes when the instance's row bounds
//!   allow and `i32` otherwise — and only the accumulated field is
//!   converted back to `f64` for the momentum update (energies stay
//!   exact `f64`);
//! - [`HigherOrderSb`]: bSB for k-local energies (Kanao–Goto), needed by
//!   the third-order row-based formulation.
//!
//! # Example
//!
//! ```
//! use adis_ising::IsingBuilder;
//! use adis_sb::{SbSolver, StopCriterion};
//!
//! let p = IsingBuilder::new(3)
//!     .coupling(0, 1, 1.0)
//!     .coupling(1, 2, 1.0)
//!     .build();
//! let r = SbSolver::new()
//!     .stop(StopCriterion::paper_small())
//!     .solve(&p);
//! assert_eq!(r.best_energy, -2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod config;
mod fused;
mod higher_order;
mod quantized;
mod scratch;
mod solver;
mod stop;

pub use batch::SbBatchScratch;
pub use config::ConfigError;
pub use fused::{FusedScratch, FusedStats, FusedUnit};
pub use higher_order::{HigherOrderSb, HigherOrderSbResult};
pub use quantized::KernelPrecision;
pub use scratch::{SbScratch, ScratchGuard, ScratchPool};
pub use solver::{SbResult, SbSolver, SbState, SbVariant};
pub use stop::{StopCriterion, StopReason, StopState};
