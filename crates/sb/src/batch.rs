//! Structure-of-arrays multi-replica integration.
//!
//! The sequential path ([`SbSolver::solve_in`]) integrates one trajectory at
//! a time, so a batch of `R` replicas reads the coupling matrix `R` times
//! per iteration. The batch integrator here advances all replicas in one
//! pass instead: positions and momenta are stored **spin-major ×
//! replica-minor** (`x[i·R + r]` is spin `i` of replica `r`), so each CSR
//! row of the problem is traversed once per iteration and its weight
//! multiplies `R` contiguous lanes — a layout the compiler turns into wide
//! vector arithmetic without any per-replica pointer chasing.
//!
//! # Bit-identity
//!
//! Batching is purely a memory-layout change, never a numerical one. For
//! every lane the floating-point operation order is exactly the sequential
//! order:
//!
//! - lane `r` seeds its own `ChaCha8Rng` from `seed + r` and draws all
//!   positions, then all momenta — the same stream as a sequential run;
//! - the coupling field accumulates each CSR row in packed (ascending
//!   neighbor) order, matching [`IsingProblem::local_field`];
//! - the fused momentum/position/wall update touches each lane's scalars in
//!   the same order as the sequential integrator's split loops (spin `i`'s
//!   update reads only spin `i`'s own state plus the precomputed field, so
//!   fusing across spins cannot change any lane's arithmetic);
//! - sampling gathers a lane into a contiguous buffer and runs the *same*
//!   readout/energy code a sequential run uses.
//!
//! Lanes retire independently: when a lane's dynamic-variance criterion
//! fires, its result is frozen and it stops sampling (and intervening),
//! exactly where the sequential run would have stopped; integration ends
//! once every lane has retired.

use crate::quantized::{batch_field_i16, batch_field_i32, sign_masks_i32, spin_signs_i16};
use crate::{KernelPrecision, SbResult, SbSolver, SbState, SbVariant, StopReason, StopState};
use adis_ising::{IsingProblem, QuantizedCsr, SpinVector};
use adis_telemetry::{trace_span, NullObserver, SolveObserver};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Reusable buffers for one batched multi-replica integration.
///
/// Pass to [`SbSolver::solve_batch_in`] /
/// [`SbSolver::solve_batch_with`] to reuse the `O(n·R)` lane arrays across
/// batches. Every buffer is (re)sized and overwritten before use, so
/// results are bit-identical whether the scratch is fresh or recycled.
#[derive(Debug, Default)]
pub struct SbBatchScratch {
    /// Positions, spin-major × replica-minor: `x[i*R + r]`.
    x: Vec<f64>,
    /// Momenta, same layout.
    y: Vec<f64>,
    /// Coupling field `h + J·x` per lane, same layout.
    field: Vec<f64>,
    /// Sign readout of `x` (dSB coupling source), same layout.
    signs: Vec<f64>,
    /// One lane's positions, gathered contiguously for sampling.
    lane_x: Vec<f64>,
    /// One lane's momenta, gathered contiguously for sampling.
    lane_y: Vec<f64>,
    /// Sign-mask rows, one `i32` per lane (`0` or `−1`), spin-major, so
    /// the fixed-point field kernel reads contiguous rows (quantized dSB
    /// with `i32` accumulation only).
    masks32: Vec<i32>,
    /// `±1` spin-sign rows (quantized dSB with `i16` accumulation — that
    /// kernel multiplies signs instead of masked-adding).
    signs16: Vec<i16>,
    /// Fixed-point field accumulator, same layout as `field`.
    qfield32: Vec<i32>,
    /// `i16` twin of `qfield32`.
    qfield16: Vec<i16>,
    /// Biases narrowed to `i16` (valid whenever
    /// [`QuantizedCsr::acc_fits_i16`] holds — `|qb|` is bounded by the
    /// row accumulation bound).
    qb16: Vec<i16>,
}

impl SbBatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes every buffer for `replicas` lanes of an `n`-spin problem.
    /// Contents are unspecified until the integrator writes them. The
    /// fixed-point buffers are only sized when `quantized` integration was
    /// requested (the accumulator width the problem supports); otherwise
    /// they are emptied. The narrowed bias staging is filled here — it is
    /// per-problem, not per-iteration, state.
    pub(crate) fn reset(&mut self, n: usize, replicas: usize, quantized: Option<&QuantizedCsr>) {
        let lanes = n * replicas;
        for buf in [&mut self.x, &mut self.y, &mut self.field, &mut self.signs] {
            buf.clear();
            buf.resize(lanes, 0.0);
        }
        for buf in [&mut self.lane_x, &mut self.lane_y] {
            buf.clear();
            buf.resize(n, 0.0);
        }
        self.masks32.clear();
        self.signs16.clear();
        self.qfield32.clear();
        self.qfield16.clear();
        self.qb16.clear();
        match quantized {
            Some(q) if q.acc_fits_i16() => {
                self.signs16.resize(lanes, 0);
                self.qfield16.resize(lanes, 0);
                self.qb16.extend(q.biases().iter().map(|&b| b as i16));
            }
            Some(_) => {
                self.masks32.resize(lanes, 0);
                self.qfield32.resize(lanes, 0);
            }
            None => {}
        }
    }
}

/// Per-replica bookkeeping while its lane integrates.
struct Lane {
    best_state: SpinVector,
    best_energy: f64,
    trace: Vec<(usize, f64)>,
    stop: StopState,
    iterations: usize,
    stop_reason: StopReason,
    active: bool,
    /// Buffered `(iteration, energy, best, mean_amp)` observer samples,
    /// replayed per replica after integration so an enabled observer sees
    /// the exact stream sequential solves would have produced.
    samples: Vec<(usize, f64, f64, f64)>,
}

/// Per-iteration constants of the fused quantized-dSB update pass.
#[derive(Clone, Copy)]
struct DsbStep {
    inv: f64,
    c0: f64,
    decay: f64,
    dt: f64,
    a0: f64,
}

/// Converts each lane's fixed-point field and advances its momentum,
/// position, and inelastic wall in one pass.
///
/// Bit-identity: the conversion is the sequential reduced-precision
/// path's `f64::from(qf) * inv`, and the update applies the same scalar
/// operations in the same per-lane order as the split field-then-update
/// loops — the wall is expressed as selects, which compute exactly the
/// values the sequential branch does (a NaN position never "hits": its
/// `abs() > 1.0` compare is false either way).
fn fused_dsb_update<T: Copy + Into<f64>>(qfield: &[T], s: DsbStep, x: &mut [f64], y: &mut [f64]) {
    for ((xi, yi), &qf) in x.iter_mut().zip(y.iter_mut()).zip(qfield.iter()) {
        let f = qf.into() * s.inv;
        let yv = *yi + (-s.decay * *xi + s.c0 * f) * s.dt;
        let xv = *xi + s.a0 * yv * s.dt;
        let hit = xv.abs() > 1.0;
        *xi = if hit { xv.signum() } else { xv };
        *yi = if hit { 0.0 } else { yv };
    }
}

/// Writes `out[i·R..][..R] = h[i] + Σⱼ J_ij · src[j·R..][..R]` for all spins.
///
/// Each CSR row accumulates in packed (ascending-neighbor) order, so lane
/// `r`'s scalar operation sequence is exactly
/// [`IsingProblem::local_field`]'s. Common replica counts dispatch to a
/// const-width kernel whose per-row accumulator is a stack array the
/// compiler keeps in vector registers; the dynamic fallback accumulates
/// through `out`. Both run the identical per-lane operation sequence
/// (init to `hᵢ`, then one fused `+ J·s` per CSR entry), so which kernel
/// runs never changes a single bit of the result.
fn batch_field(
    row_ptr: &[u32],
    cols: &[u32],
    weights: &[f64],
    h: &[f64],
    src: &[f64],
    out: &mut [f64],
    replicas: usize,
) {
    match replicas {
        1 => batch_field_const::<1>(row_ptr, cols, weights, h, src, out),
        2 => batch_field_const::<2>(row_ptr, cols, weights, h, src, out),
        4 => batch_field_const::<4>(row_ptr, cols, weights, h, src, out),
        8 => batch_field_const::<8>(row_ptr, cols, weights, h, src, out),
        16 => batch_field_const::<16>(row_ptr, cols, weights, h, src, out),
        32 => batch_field_const::<32>(row_ptr, cols, weights, h, src, out),
        64 => batch_field_const::<64>(row_ptr, cols, weights, h, src, out),
        128 => batch_field_const::<128>(row_ptr, cols, weights, h, src, out),
        _ => batch_field_dyn(row_ptr, cols, weights, h, src, out, replicas),
    }
}

/// Const-width field kernel: the `L`-lane accumulator is a stack array,
/// so every CSR entry costs one broadcast-multiply-add over registers
/// instead of a load-modify-store round trip through `out`.
fn batch_field_const<const L: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    weights: &[f64],
    h: &[f64],
    src: &[f64],
    out: &mut [f64],
) {
    for (i, &hi) in h.iter().enumerate() {
        let mut acc = [hi; L];
        let (start, end) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        for (&v, &c) in weights[start..end].iter().zip(&cols[start..end]) {
            let col: &[f64; L] = src[c as usize * L..][..L].try_into().expect("lane width");
            for l in 0..L {
                acc[l] += v * col[l];
            }
        }
        out[i * L..][..L].copy_from_slice(&acc);
    }
}

/// Arbitrary-width fallback; accumulates in place.
fn batch_field_dyn(
    row_ptr: &[u32],
    cols: &[u32],
    weights: &[f64],
    h: &[f64],
    src: &[f64],
    out: &mut [f64],
    replicas: usize,
) {
    for (i, &hi) in h.iter().enumerate() {
        let row = &mut out[i * replicas..(i + 1) * replicas];
        row.fill(hi);
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let v = weights[e];
            let col = &src[cols[e] as usize * replicas..][..replicas];
            for (o, &s) in row.iter_mut().zip(col) {
                *o += v * s;
            }
        }
    }
}

impl SbSolver {
    /// Advances `replicas` trajectories (seeds `seed..seed+replicas`)
    /// through the structure-of-arrays batch integrator and returns every
    /// replica's result, in replica order.
    ///
    /// This is the batch counterpart of [`solve_with`](SbSolver::solve_with):
    /// `intervene(r, state)` fires for replica `r` at each of its sampling
    /// points (skipped once the lane has retired, as a sequential run would
    /// have ended), and `observer` receives each replica's full
    /// `sb_start`/`sb_sample`/`sb_stop` stream — replayed per replica after
    /// integration, so the stream is indistinguishable from `replicas`
    /// sequential [`solve_with`](SbSolver::solve_with) calls — plus one
    /// [`sb_batch`](SolveObserver::sb_batch) event reporting the batch
    /// width and how many lanes the dynamic stop retired early.
    ///
    /// Element `r` of the returned vector is bit-identical (best state,
    /// best energy, iterations, stop reason, full trace) to
    /// `self.seed(seed + r).solve(problem)`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or the configuration is invalid (see
    /// [`try_solve_batch`](SbSolver::try_solve_batch) for the fallible
    /// form).
    pub fn solve_batch_with<F, O>(
        &self,
        problem: &IsingProblem,
        replicas: usize,
        scratch: &mut SbBatchScratch,
        intervene: F,
        observer: &mut O,
    ) -> Vec<SbResult>
    where
        F: FnMut(usize, &mut SbState<'_>),
        O: SolveObserver,
    {
        self.solve_batch_until(problem, replicas, scratch, &|| false, intervene, observer)
            .0
    }

    /// [`solve_batch_with`](SbSolver::solve_batch_with) with a cooperative
    /// stop hook: `should_stop` is polled once per sampling boundary
    /// (i.e. at [`StopCriterion::sample_every`](crate::StopCriterion)
    /// granularity, after every live lane has sampled), and when it returns
    /// `true` integration ends early. Every still-active lane keeps its
    /// best-so-far state with `iterations` frozen at the interrupting
    /// sample, so the results are always valid (never empty) answers.
    ///
    /// Returns the per-replica results plus whether the hook fired. With a
    /// hook that never fires this is bit-identical to
    /// [`solve_batch_with`](SbSolver::solve_batch_with).
    pub fn solve_batch_until<F, O>(
        &self,
        problem: &IsingProblem,
        replicas: usize,
        scratch: &mut SbBatchScratch,
        should_stop: &dyn Fn() -> bool,
        mut intervene: F,
        observer: &mut O,
    ) -> (Vec<SbResult>, bool)
    where
        F: FnMut(usize, &mut SbState<'_>),
        O: SolveObserver,
    {
        assert!(replicas > 0, "need at least one replica");
        if let Err(e) = self.validate() {
            panic!("invalid SbSolver configuration: {e}");
        }
        let n = problem.num_spins();
        let rl = replicas;
        let _span =
            trace_span!("SbSolver::solve_batch {:?} n={n} replicas={rl}", self.variant);
        // Reduced-precision dSB runs the fixed-point masked-add kernel
        // when the problem has a quantized companion; otherwise fall back
        // to f64.
        let quantized = match self.precision {
            KernelPrecision::I16 => problem.quantized(),
            KernelPrecision::F64 => None,
        };
        scratch.reset(n, rl, quantized);
        let SbBatchScratch {
            x,
            y,
            field,
            signs,
            lane_x,
            lane_y,
            masks32,
            signs16,
            qfield32,
            qfield16,
            qb16,
        } = scratch;

        // Seed every lane exactly as its sequential run would: an own RNG
        // from `seed + r`, drawing all positions then all momenta.
        for r in 0..rl {
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(r as u64));
            for i in 0..n {
                x[i * rl + r] = rng.gen_range(-self.init_amplitude..=self.init_amplitude);
            }
            for i in 0..n {
                y[i * rl + r] = rng.gen_range(-self.init_amplitude..=self.init_amplitude);
            }
        }

        let c0 = self.resolve_c0(problem);
        let max_iters = self.stop.max_iterations();
        let sample_every = self.stop.sample_every();
        let ramp = self.ramp.unwrap_or(max_iters).min(max_iters).max(1);
        let settle_after = self.ramp.map(|r| r.min(max_iters)).unwrap_or(0);
        let observing = observer.enabled();

        let mut lanes: Vec<Lane> = (0..rl)
            .map(|r| {
                for i in 0..n {
                    lane_x[i] = x[i * rl + r];
                }
                let best_state = SpinVector::from_signs(lane_x);
                let best_energy = problem.energy(&best_state);
                Lane {
                    best_state,
                    best_energy,
                    trace: Vec::with_capacity(max_iters / sample_every + 1),
                    stop: StopState::new(self.stop.clone()),
                    iterations: max_iters,
                    stop_reason: StopReason::IterationLimit,
                    active: true,
                    samples: Vec::new(),
                }
            })
            .collect();
        let mut active_lanes = rl;

        let (row_ptr, cols, weights) = problem.csr();
        let h = problem.biases();
        let mut interrupted = false;

        for t in 0..max_iters {
            let a_t = self.a0 * ((t as f64 / ramp as f64).min(1.0));
            let decay = self.a0 - a_t;
            let (dt, a0) = (self.dt, self.a0);
            let mut fused = false;
            match self.variant {
                SbVariant::Discrete => {
                    if let Some(q) = quantized {
                        // Fixed-point field, then a fused convert/update
                        // pass: each lane converts its integer field with
                        // the same `f64::from(qf) * inv` multiply the
                        // sequential reduced-precision path uses, so no
                        // separate f64 field array is ever materialized.
                        let step = DsbStep { inv: 1.0 / q.scale(), c0, decay, dt, a0 };
                        if q.acc_fits_i16() {
                            spin_signs_i16(x, signs16);
                            batch_field_i16(row_ptr, cols, q.weights(), qb16, signs16, qfield16, rl);
                            fused_dsb_update(qfield16, step, x, y);
                        } else {
                            sign_masks_i32(x, masks32);
                            batch_field_i32(row_ptr, cols, q.weights(), q.biases(), masks32, qfield32, rl);
                            fused_dsb_update(qfield32, step, x, y);
                        }
                        fused = true;
                    } else {
                        for (s, &v) in signs.iter_mut().zip(x.iter()) {
                            *s = if v >= 0.0 { 1.0 } else { -1.0 };
                        }
                        batch_field(row_ptr, cols, weights, h, signs, field, rl);
                    }
                }
                _ => batch_field(row_ptr, cols, weights, h, x, field, rl),
            }
            // Fused momentum/position/wall update. Spin i's update reads
            // only its own lane scalars and the precomputed field, so
            // fusing the sequential integrator's split loops changes no
            // lane's operation order. (The quantized path already updated
            // inside its fused pass above.)
            if !fused {
                match self.variant {
                    SbVariant::Adiabatic => {
                        for ((xi, yi), fi) in x.iter_mut().zip(y.iter_mut()).zip(field.iter()) {
                            let xv = *xi;
                            *yi += (-xv * xv * xv - decay * xv + c0 * *fi) * dt;
                            *xi += a0 * *yi * dt;
                        }
                    }
                    _ => {
                        for ((xi, yi), fi) in x.iter_mut().zip(y.iter_mut()).zip(field.iter()) {
                            *yi += (-decay * *xi + c0 * *fi) * dt;
                            *xi += a0 * *yi * dt;
                            // Perfectly inelastic walls at ±1.
                            if xi.abs() > 1.0 {
                                *xi = xi.signum();
                                *yi = 0.0;
                            }
                        }
                    }
                }
            }

            if (t + 1) % sample_every == 0 || t + 1 == max_iters {
                for (r, lane) in lanes.iter_mut().enumerate() {
                    if !lane.active {
                        continue;
                    }
                    for i in 0..n {
                        lane_x[i] = x[i * rl + r];
                        lane_y[i] = y[i * rl + r];
                    }
                    let mut state = SbState {
                        x: &mut lane_x[..],
                        y: &mut lane_y[..],
                        iteration: t + 1,
                    };
                    intervene(r, &mut state);
                    let readout = SpinVector::from_signs(lane_x);
                    let energy = problem.energy(&readout);
                    lane.trace.push((t + 1, energy));
                    if energy < lane.best_energy {
                        lane.best_energy = energy;
                        lane.best_state = readout;
                    }
                    if observing {
                        let mean_amp = if n > 0 {
                            lane_x.iter().map(|v| v.abs()).sum::<f64>() / n as f64
                        } else {
                            0.0
                        };
                        lane.samples.push((t + 1, energy, lane.best_energy, mean_amp));
                    }
                    // The hook may have rewritten the lane; scatter back.
                    for i in 0..n {
                        x[i * rl + r] = lane_x[i];
                        y[i * rl + r] = lane_y[i];
                    }
                    if t + 1 >= settle_after && lane.stop.record(energy) {
                        lane.stop_reason = StopReason::EnergySettled;
                        lane.iterations = t + 1;
                        lane.active = false;
                        active_lanes -= 1;
                    }
                }
                if active_lanes == 0 {
                    break;
                }
                // Cooperative cancellation: polled at sampling granularity
                // only, after every live lane has recorded this boundary's
                // sample, so an uninterrupted run is bit-identical and an
                // interrupted lane still carries a valid best-so-far state.
                if should_stop() {
                    interrupted = true;
                    for lane in lanes.iter_mut() {
                        if lane.active {
                            lane.iterations = t + 1;
                            lane.active = false;
                        }
                    }
                    break;
                }
            }
        }

        let retired = lanes
            .iter()
            .filter(|l| l.stop_reason == StopReason::EnergySettled)
            .count();
        observer.sb_batch(rl, retired);
        // Replay each lane's observer stream in replica order: identical to
        // what `replicas` sequential solves would have reported.
        let mut results = Vec::with_capacity(rl);
        for lane in lanes {
            observer.sb_start(n, max_iters);
            for (iteration, energy, best, mean_amp) in lane.samples {
                observer.sb_sample(iteration, energy, best, mean_amp);
            }
            observer.sb_stop(
                lane.iterations,
                lane.best_energy,
                lane.stop_reason == StopReason::EnergySettled,
            );
            results.push(SbResult {
                best_state: lane.best_state,
                best_energy: lane.best_energy,
                iterations: lane.iterations,
                stop_reason: lane.stop_reason,
                trace: lane.trace,
            });
        }
        (results, interrupted)
    }

    /// [`solve_batch`](SbSolver::solve_batch), reusing caller-owned batch
    /// buffers instead of allocating per call.
    ///
    /// Selection is deterministic: replicas are scanned in order with a
    /// strict `<`, so the earliest replica wins energy ties — exactly the
    /// sequential semantics.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn solve_batch_in(
        &self,
        problem: &IsingProblem,
        replicas: usize,
        scratch: &mut SbBatchScratch,
    ) -> SbResult {
        self.solve_batch_with(problem, replicas, scratch, |_, _| {}, &mut NullObserver)
            .into_iter()
            .reduce(|best, candidate| {
                if candidate.best_energy < best.best_energy {
                    candidate
                } else {
                    best
                }
            })
            .expect("replicas > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopCriterion;
    use adis_ising::IsingBuilder;

    fn random_problem(n: usize, seed: u64) -> IsingProblem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = IsingBuilder::new(n);
        for i in 0..n {
            b.add_bias(i, rng.gen_range(-1.0..1.0));
            for j in (i + 1)..n {
                b.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        b.build()
    }

    fn assert_results_identical(a: &SbResult, b: &SbResult) {
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.stop_reason, b.stop_reason);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn every_lane_matches_its_sequential_replica() {
        let p = random_problem(11, 41);
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let solver = SbSolver::new()
                .variant(variant)
                .stop(StopCriterion::FixedIterations(300))
                .seed(9);
            let mut scratch = SbBatchScratch::new();
            let batch =
                solver.solve_batch_with(&p, 5, &mut scratch, |_, _| {}, &mut NullObserver);
            for (r, lane) in batch.iter().enumerate() {
                let sequential = solver.clone().seed(9 + r as u64).solve(&p);
                assert_results_identical(lane, &sequential);
            }
        }
    }

    #[test]
    fn lanes_retire_independently_under_dynamic_stop() {
        let p = random_problem(9, 47);
        let solver = SbSolver::new()
            .stop(StopCriterion::DynamicVariance {
                sample_every: 5,
                window: 5,
                threshold: 1e-8,
                max_iterations: 50_000,
            })
            .seed(3);
        let mut scratch = SbBatchScratch::new();
        let batch = solver.solve_batch_with(&p, 6, &mut scratch, |_, _| {}, &mut NullObserver);
        for (r, lane) in batch.iter().enumerate() {
            let sequential = solver.clone().seed(3 + r as u64).solve(&p);
            assert_results_identical(lane, &sequential);
        }
    }

    #[test]
    fn batch_interventions_match_sequential_interventions() {
        let p = random_problem(8, 53);
        let solver = SbSolver::new().stop(StopCriterion::FixedIterations(200)).seed(1);
        // Hook clamps spin 0 positive in every replica.
        let clamp = |state: &mut SbState<'_>| {
            state.x[0] = 1.0;
            state.y[0] = 0.0;
        };
        let mut scratch = SbBatchScratch::new();
        let batch = solver.solve_batch_with(
            &p,
            4,
            &mut scratch,
            |_, state| clamp(state),
            &mut NullObserver,
        );
        for (r, lane) in batch.iter().enumerate() {
            let sequential = solver.clone().seed(1 + r as u64).solve_with(
                &p,
                clamp,
                &mut NullObserver,
            );
            assert_results_identical(lane, &sequential);
            assert_eq!(lane.best_state.get(0), 1);
        }
    }

    #[test]
    fn reused_batch_scratch_is_bit_identical_to_fresh() {
        let mut scratch = SbBatchScratch::new();
        for (n, replicas, seed) in [(12usize, 4usize, 61u64), (5, 7, 62), (9, 2, 63)] {
            let p = random_problem(n, seed);
            let solver = SbSolver::new().seed(seed);
            let fresh = solver.solve_batch(&p, replicas);
            let reused = solver.solve_batch_in(&p, replicas, &mut scratch);
            assert_results_identical(&fresh, &reused);
        }
    }

    #[test]
    fn observer_stream_matches_sequential_replay() {
        use adis_telemetry::Recorder;
        let p = random_problem(8, 71);
        let solver = SbSolver::new().stop(StopCriterion::FixedIterations(150)).seed(2);
        let mut batch_rec = Recorder::new();
        let mut scratch = SbBatchScratch::new();
        solver.solve_batch_with(&p, 3, &mut scratch, |_, _| {}, &mut batch_rec);
        let mut seq_rec = Recorder::new();
        for r in 0..3u64 {
            solver
                .clone()
                .seed(2 + r)
                .solve_with(&p, |_| {}, &mut seq_rec);
        }
        assert_eq!(batch_rec.sb.runs, seq_rec.sb.runs);
        assert_eq!(batch_rec.sb.total_iterations, seq_rec.sb.total_iterations);
        assert_eq!(batch_rec.sb.samples, seq_rec.sb.samples);
        assert_eq!(batch_rec.sb.best_energy, seq_rec.sb.best_energy);
        assert_eq!(
            batch_rec.trajectory.samples(),
            seq_rec.trajectory.samples()
        );
        // Plus the batch-level event the sequential loop doesn't emit.
        assert_eq!(batch_rec.sb.batched_lanes, 3);
        assert_eq!(batch_rec.sb.max_batch, 3);
        assert_eq!(seq_rec.sb.batched_lanes, 0);
    }

    #[test]
    fn never_firing_stop_hook_is_bit_identical() {
        let p = random_problem(10, 83);
        let solver = SbSolver::new().stop(StopCriterion::FixedIterations(250)).seed(7);
        let mut scratch = SbBatchScratch::new();
        let plain = solver.solve_batch_with(&p, 4, &mut scratch, |_, _| {}, &mut NullObserver);
        let (hooked, interrupted) = solver.solve_batch_until(
            &p,
            4,
            &mut scratch,
            &|| false,
            |_, _| {},
            &mut NullObserver,
        );
        assert!(!interrupted);
        for (a, b) in plain.iter().zip(&hooked) {
            assert_results_identical(a, b);
        }
    }

    #[test]
    fn stop_hook_interrupts_at_sample_granularity_with_valid_results() {
        use std::cell::Cell;
        let p = random_problem(10, 89);
        let sample_every = 10;
        let solver = SbSolver::new()
            .stop(StopCriterion::DynamicVariance {
                sample_every,
                window: 20,
                threshold: 0.0, // never settles
                max_iterations: 100_000,
            })
            .seed(4);
        // Fire after the second poll: integration must stop at the next
        // sampling boundary, far short of the iteration budget.
        let polls = Cell::new(0usize);
        let mut scratch = SbBatchScratch::new();
        let (results, interrupted) = solver.solve_batch_until(
            &p,
            3,
            &mut scratch,
            &|| {
                polls.set(polls.get() + 1);
                polls.get() >= 2
            },
            |_, _| {},
            &mut NullObserver,
        );
        assert!(interrupted);
        assert_eq!(results.len(), 3);
        for lane in &results {
            assert_eq!(lane.iterations, 2 * sample_every);
            assert_eq!(lane.stop_reason, StopReason::IterationLimit);
            assert!(lane.best_energy.is_finite());
            assert!(!lane.trace.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let p = IsingBuilder::new(2).coupling(0, 1, 1.0).build();
        SbSolver::new().solve_batch(&p, 0);
    }

    #[test]
    fn quantized_lanes_match_sequential_quantized_replicas() {
        // Integer field accumulation is associative, so the batched i16
        // kernel must be bit-identical per lane to sequential quantized
        // solves — across const-word widths (≤64, ≤128) and the dynamic
        // fallback (>128), including non-multiple-of-64 lane counts.
        let p = random_problem(9, 43);
        assert!(p.quantized().is_some());
        let solver = SbSolver::new()
            .variant(SbVariant::Discrete)
            .precision(KernelPrecision::I16)
            .stop(StopCriterion::FixedIterations(120))
            .seed(17);
        for replicas in [3usize, 64, 70, 128, 130] {
            let mut scratch = SbBatchScratch::new();
            let batch =
                solver.solve_batch_with(&p, replicas, &mut scratch, |_, _| {}, &mut NullObserver);
            // Spot-check a few lanes; a full scan of 130 sequential solves
            // would dominate the suite's runtime.
            for r in [0, 1, replicas / 2, replicas - 1] {
                let sequential = solver.clone().seed(17 + r as u64).solve(&p);
                assert_results_identical(&batch[r], &sequential);
            }
        }
    }

    #[test]
    fn integral_weights_make_i16_bit_identical_to_f64_dsb() {
        // With integral coefficients the quantizer is exact (scale 1), and
        // both i32 and f64 accumulate small integers exactly — so the
        // reduced-precision path reproduces full-precision dSB bit for bit.
        let mut b = IsingBuilder::new(8);
        let mut state = 0xfeed_u64;
        for i in 0..8usize {
            for j in (i + 1)..8 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                b.add_coupling(i, j, ((state >> 32) % 21) as f64 - 10.0);
            }
        }
        let p = b.build();
        assert!(p.quantized().expect("integral").exact());
        let f64_solver = SbSolver::new()
            .variant(SbVariant::Discrete)
            .stop(StopCriterion::FixedIterations(200))
            .seed(5);
        let i16_solver = f64_solver.clone().precision(KernelPrecision::I16);
        let mut s1 = SbBatchScratch::new();
        let mut s2 = SbBatchScratch::new();
        let full = f64_solver.solve_batch_with(&p, 64, &mut s1, |_, _| {}, &mut NullObserver);
        let quant = i16_solver.solve_batch_with(&p, 64, &mut s2, |_, _| {}, &mut NullObserver);
        for (a, b) in full.iter().zip(&quant) {
            assert_results_identical(a, b);
        }
    }

    #[test]
    fn unquantizable_problem_falls_back_to_f64_arithmetic() {
        // A NaN coupling has no fixed-point companion; the I16 request must
        // degrade to the f64 sign path instead of panicking. The run's
        // energies are garbage (NaN problem), but it must complete.
        let p = IsingBuilder::new(3)
            .coupling(0, 1, f64::NAN)
            .coupling(1, 2, 1.0)
            .build();
        assert!(p.quantized().is_none());
        let solver = SbSolver::new()
            .variant(SbVariant::Discrete)
            .precision(KernelPrecision::I16)
            .stop(StopCriterion::FixedIterations(40));
        let mut scratch = SbBatchScratch::new();
        let results =
            solver.solve_batch_with(&p, 4, &mut scratch, |_, _| {}, &mut NullObserver);
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn quantized_batch_finds_the_ferromagnetic_ground_state() {
        let mut b = IsingBuilder::new(12);
        for i in 0..11 {
            b.add_coupling(i, i + 1, 1.0);
        }
        let p = b.build();
        let solver = SbSolver::new()
            .variant(SbVariant::Discrete)
            .precision(KernelPrecision::I16)
            .stop(StopCriterion::FixedIterations(400))
            .seed(2);
        let mut scratch = SbBatchScratch::new();
        let best = solver.solve_batch_in(&p, 64, &mut scratch);
        assert_eq!(best.best_energy, -11.0);
    }

    #[test]
    fn const_and_dyn_field_kernels_agree_bitwise() {
        let n = 13;
        let p = random_problem(n, 91);
        let (row_ptr, cols, weights) = p.csr();
        let h = p.biases();
        for lanes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let src: Vec<f64> = (0..n * lanes)
                .map(|k| ((k * 37 % 101) as f64 - 50.0) / 50.0)
                .collect();
            let mut dispatched = vec![0.0; n * lanes];
            let mut fallback = vec![0.0; n * lanes];
            batch_field(row_ptr, cols, weights, h, &src, &mut dispatched, lanes);
            batch_field_dyn(row_ptr, cols, weights, h, &src, &mut fallback, lanes);
            assert_eq!(dispatched, fallback, "lanes = {lanes}");
        }
    }
}
