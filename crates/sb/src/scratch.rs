//! Reusable solver workspaces.
//!
//! Every SB trajectory needs the same set of dense buffers (positions,
//! momenta, the coupling field, a sign readout). Allocating them per solve
//! is wasted work when a sweep runs thousands of related instances — the
//! amortization that high-parallel SB implementations are built around.
//! [`SbScratch`] owns one trajectory's buffers; [`ScratchPool`] hands them
//! out to worker threads and takes them back when the guard drops, so a
//! rayon sweep allocates at most one scratch per worker, not one per solve.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Reusable integration buffers for one simulated-bifurcation trajectory.
///
/// Pass to [`SbSolver::solve_in`](crate::SbSolver::solve_in) to reuse the
/// allocations across solves. The solver overwrites every buffer before
/// reading it, so a scratch carries no state between solves — results are
/// bit-identical whether the scratch is fresh or reused.
#[derive(Debug, Default)]
pub struct SbScratch {
    pub(crate) x: Vec<f64>,
    pub(crate) y: Vec<f64>,
    pub(crate) field: Vec<f64>,
    pub(crate) signs: Vec<f64>,
}

impl SbScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes every buffer for an `n`-spin problem. Contents are
    /// unspecified until the solver writes them.
    pub(crate) fn reset(&mut self, n: usize) {
        self.x.clear();
        self.x.resize(n, 0.0);
        self.y.clear();
        self.y.resize(n, 0.0);
        self.field.clear();
        self.field.resize(n, 0.0);
        self.signs.clear();
        self.signs.resize(n, 0.0);
    }
}

/// A lock-guarded free list of reusable scratch values.
///
/// [`acquire`](ScratchPool::acquire) pops a previously returned value (or
/// default-constructs one the first time a thread needs it); dropping the
/// guard pushes it back. Under a rayon sweep this bounds live allocations
/// by the number of concurrently running workers.
///
/// ```
/// use adis_sb::{ScratchPool, SbScratch};
///
/// let pool: ScratchPool<SbScratch> = ScratchPool::new();
/// {
///     let _scratch = pool.acquire(); // fresh on first use
/// }
/// assert_eq!(pool.pooled(), 1);      // returned on drop
/// ```
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Borrows a scratch value: a pooled one if available, otherwise
    /// `T::default()`. The value returns to the pool when the guard drops.
    pub fn acquire(&self) -> ScratchGuard<'_, T> {
        let pooled = self
            .free
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop();
        ScratchGuard {
            slot: Some(pooled.unwrap_or_default()),
            pool: self,
        }
    }

    /// How many values are currently parked in the pool (not borrowed).
    pub fn pooled(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }
}

/// RAII borrow of a pooled scratch value; derefs to `T` and returns the
/// value to its [`ScratchPool`] on drop.
#[derive(Debug)]
pub struct ScratchGuard<'a, T> {
    slot: Option<T>,
    pool: &'a ScratchPool<T>,
}

impl<T> Deref for ScratchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.slot.as_ref().expect("scratch present until drop")
    }
}

impl<T> DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.slot.as_mut().expect("scratch present until drop")
    }
}

impl<T> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(value) = self.slot.take() {
            self.pool
                .free
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_returned_values() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        assert_eq!(pool.pooled(), 0);
        {
            let mut a = pool.acquire();
            a.push(7);
            let b = pool.acquire();
            assert!(b.is_empty(), "second borrow is a distinct value");
        }
        assert_eq!(pool.pooled(), 2);
        // The recycled value keeps its contents/capacity (that's the
        // point); the borrower is responsible for resetting it. Locals drop
        // in reverse declaration order, so `a` was pushed last.
        let recycled = pool.acquire();
        assert_eq!(pool.pooled(), 1);
        assert_eq!(&*recycled, &[7]);
    }

    #[test]
    fn reset_sizes_every_buffer() {
        let mut s = SbScratch::new();
        s.reset(5);
        assert_eq!(s.x.len(), 5);
        assert_eq!(s.y.len(), 5);
        assert_eq!(s.field.len(), 5);
        assert_eq!(s.signs.len(), 5);
        s.reset(2);
        assert_eq!(s.x.len(), 2);
    }
}
