//! Reduced-precision field kernels for discrete SB.
//!
//! Discrete SB only ever reads the *signs* of the positions, so its
//! coupling field is a sum of `±J_ij` — exact integer arithmetic whenever
//! the weights are integers (which the COP→Ising reduction's are). The
//! [`KernelPrecision::I16`] path exploits that (the discrete-SB line of
//! arXiv:2510.12407):
//!
//! - couplings come from the problem's fixed-point companion CSR
//!   (`adis_ising::QuantizedCsr`): `i16` weights and `i32` biases at a
//!   common scale, accumulated in `i32` — or in `i16` lanes when the
//!   builder proved every row's worst-case sum fits
//!   ([`QuantizedCsr::acc_fits_i16`](adis_ising::QuantizedCsr::acc_fits_i16)),
//!   doubling the SIMD width (the builder's overflow guards make
//!   wrap-around impossible in both);
//! - spin signs are materialized once per iteration as one integer *sign
//!   row* per spin (spin-major like every other batch buffer), so each
//!   CSR entry in the hot loop is one branchless conditional negation per
//!   lane over a contiguous row. The two accumulator widths spell that
//!   differently, each matching what baseline x86-64 can vectorize: the
//!   `i16` kernels store signs as `±1` and multiply (`acc += qJ · s` —
//!   SSE2 has a native 16-bit lane multiply, so this is one multiply and
//!   one add per vector), while the `i32` kernels store signs as masks
//!   `∈ {0, −1}` and do a masked add (`acc += (v ^ m) − m`, since there
//!   is no baseline 32-bit lane multiply). Both compute the exact same
//!   integers.
//!
//! An earlier shape of this kernel bit-packed the signs into `u64` words
//! (`⌈R/64⌉` per spin) and extracted each lane's bit inside the field
//! loop. The packing is maximally compact, but the per-entry
//! variable-distance shift defeats vectorization, and even packing once
//! and expanding to sign rows per iteration costs more than an order of
//! magnitude more than deriving the rows straight from the positions
//! (one vectorizable compare per lane). The sign-row layout keeps the
//! multiply-free conditional negation — the point of the representation —
//! and drops the bit extraction.
//!
//! The kernels never make a rounding decision: they compute the exact
//! integer `scale · field` and hand it back; the integrator converts with
//! one `f64` multiply per lane, exactly like the sequential
//! reduced-precision path. Integer addition is associative and every
//! kernel accumulates in CSR row order, so batched lanes are bit-identical
//! to sequential reduced-precision solves — and on *exact* (unit-scale)
//! instances, to the f64 dSB path itself.

/// Selects the arithmetic of the coupling-field kernel.
///
/// `F64` is the default full-precision path every variant supports. `I16`
/// runs discrete SB's field accumulation over the problem's fixed-point
/// companion CSR (falling back to `F64` arithmetic when
/// [`quantized`](adis_ising::IsingProblem::quantized) is `None`); it is
/// only meaningful for sign-readout dynamics, so any variant other than
/// [`Discrete`](crate::SbVariant::Discrete) is rejected at validation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelPrecision {
    /// Full-precision `f64` field accumulation (every variant).
    #[default]
    F64,
    /// Fixed-point `i16`-weight field accumulation (discrete SB only).
    I16,
}

/// Writes the sign-mask row layout for all spins: `masks[k] = −1` if
/// position `k` reads as spin −1 (negative or NaN, matching the f64
/// sign readout `v >= 0.0`), else `0`.
pub(crate) fn sign_masks_i32(x: &[f64], masks: &mut [i32]) {
    for (m, &v) in masks.iter_mut().zip(x.iter()) {
        *m = -i32::from(v < 0.0 || v.is_nan());
    }
}

/// Writes the `±1` sign-row layout for the `i16`-accumulator kernels:
/// `signs[k] = −1` if position `k` reads as spin −1 (negative or NaN,
/// matching the f64 sign readout `v >= 0.0`), else `+1`. The `i16`
/// kernels multiply by these signs — SSE2's native 16-bit lane multiply
/// makes that cheaper than the mask form — so they carry the spin value,
/// not a mask.
pub(crate) fn spin_signs_i16(x: &[f64], signs: &mut [i16]) {
    for (s, &v) in signs.iter_mut().zip(x.iter()) {
        *s = 1 - 2 * i16::from(v < 0.0 || v.is_nan());
    }
}

/// Writes `out[i·R..][..R] = qb[i] + Σⱼ qJ_ij · sgn(x_j)` (in quantization
/// units) for all spins, accumulating in `i32`.
///
/// Dispatches const-width kernels for the wide lane counts the precision
/// path targets (R = 64, 128) whose accumulators stay in registers across
/// a whole CSR row; other widths take the dynamic fallback. All paths run
/// the same per-lane integer additions in CSR row order, and integer
/// addition is associative, so the kernels agree exactly.
pub(crate) fn batch_field_i32(
    row_ptr: &[u32],
    cols: &[u32],
    qweights: &[i16],
    qbiases: &[i32],
    masks: &[i32],
    out: &mut [i32],
    replicas: usize,
) {
    match replicas {
        64 => batch_field_i32_const::<64>(row_ptr, cols, qweights, qbiases, masks, out),
        128 => batch_field_i32_const::<128>(row_ptr, cols, qweights, qbiases, masks, out),
        _ => batch_field_i32_dyn(row_ptr, cols, qweights, qbiases, masks, out, replicas),
    }
}

/// [`batch_field_i32`] with `i16` accumulator lanes — twice the SIMD
/// width — reading `±1` sign rows from [`spin_signs_i16`] instead of
/// masks. Callers must hold a
/// [`QuantizedCsr::acc_fits_i16`](adis_ising::QuantizedCsr::acc_fits_i16)
/// guarantee (every row's `Σ|qJ| + |qb|` ≤ `i16::MAX`), which makes the
/// narrower accumulation produce identical values. (`qJ · ±1` itself can
/// never wrap: the quantizer's scale cap bounds `|qJ| ≤ i16::MAX`, so
/// `−qJ` is always representable.)
pub(crate) fn batch_field_i16(
    row_ptr: &[u32],
    cols: &[u32],
    qweights: &[i16],
    qbiases: &[i16],
    signs: &[i16],
    out: &mut [i16],
    replicas: usize,
) {
    match replicas {
        64 => batch_field_i16_const::<64>(row_ptr, cols, qweights, qbiases, signs, out),
        128 => batch_field_i16_const::<128>(row_ptr, cols, qweights, qbiases, signs, out),
        _ => batch_field_i16_dyn(row_ptr, cols, qweights, qbiases, signs, out, replicas),
    }
}

/// Const-width masked-add kernel: the `R`-lane accumulator is a stack
/// array, and each CSR entry is an xor/sub/add sweep over one contiguous
/// mask row.
fn batch_field_i32_const<const R: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    qweights: &[i16],
    qbiases: &[i32],
    masks: &[i32],
    out: &mut [i32],
) {
    for (i, &qb) in qbiases.iter().enumerate() {
        let mut acc = [qb; R];
        let (start, end) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        for (&qw, &c) in qweights[start..end].iter().zip(&cols[start..end]) {
            let v = i32::from(qw);
            let mrow: &[i32; R] = masks[c as usize * R..][..R].try_into().expect("mask row");
            for (lane, &m) in acc.iter_mut().zip(mrow.iter()) {
                *lane += (v ^ m) - m;
            }
        }
        out[i * R..(i + 1) * R].copy_from_slice(&acc);
    }
}

/// `i16`-accumulator twin of [`batch_field_i32_const`]: one native
/// 16-bit multiply and one add per lane — a shorter dependency chain
/// than the three-op mask form, which SSE2 only needs because it lacks a
/// 32-bit lane multiply.
fn batch_field_i16_const<const R: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    qweights: &[i16],
    qbiases: &[i16],
    signs: &[i16],
    out: &mut [i16],
) {
    for (i, &qb) in qbiases.iter().enumerate() {
        let mut acc = [qb; R];
        let (start, end) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        for (&qw, &c) in qweights[start..end].iter().zip(&cols[start..end]) {
            let srow: &[i16; R] = signs[c as usize * R..][..R].try_into().expect("sign row");
            for (lane, &s) in acc.iter_mut().zip(srow.iter()) {
                *lane += qw * s;
            }
        }
        out[i * R..(i + 1) * R].copy_from_slice(&acc);
    }
}

/// Arbitrary-width fallback; accumulates in place through `out` with the
/// same contiguous mask-row sweep.
fn batch_field_i32_dyn(
    row_ptr: &[u32],
    cols: &[u32],
    qweights: &[i16],
    qbiases: &[i32],
    masks: &[i32],
    out: &mut [i32],
    replicas: usize,
) {
    for (i, &qb) in qbiases.iter().enumerate() {
        let row = &mut out[i * replicas..(i + 1) * replicas];
        row.fill(qb);
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let v = i32::from(qweights[e]);
            let mrow = &masks[cols[e] as usize * replicas..][..replicas];
            for (o, &m) in row.iter_mut().zip(mrow.iter()) {
                *o += (v ^ m) - m;
            }
        }
    }
}

/// `i16`-accumulator twin of [`batch_field_i32_dyn`], multiplying `±1`
/// sign rows like [`batch_field_i16_const`].
fn batch_field_i16_dyn(
    row_ptr: &[u32],
    cols: &[u32],
    qweights: &[i16],
    qbiases: &[i16],
    signs: &[i16],
    out: &mut [i16],
    replicas: usize,
) {
    for (i, &qb) in qbiases.iter().enumerate() {
        let row = &mut out[i * replicas..(i + 1) * replicas];
        row.fill(qb);
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let v = qweights[e];
            let srow = &signs[cols[e] as usize * replicas..][..replicas];
            for (o, &s) in row.iter_mut().zip(srow.iter()) {
                *o += v * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: per-lane scalar accumulation straight from the signs.
    fn reference_field(
        row_ptr: &[u32],
        cols: &[u32],
        qweights: &[i16],
        qbiases: &[i32],
        x: &[f64],
        replicas: usize,
    ) -> Vec<i32> {
        let n = qbiases.len();
        let mut out = vec![0i32; n * replicas];
        for i in 0..n {
            for r in 0..replicas {
                let mut acc = qbiases[i];
                for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                    let s = if x[cols[e] as usize * replicas + r] >= 0.0 { 1 } else { -1 };
                    acc += i32::from(qweights[e]) * s;
                }
                out[i * replicas + r] = acc;
            }
        }
        out
    }

    fn toy_csr() -> (Vec<u32>, Vec<u32>, Vec<i16>, Vec<i32>) {
        // 5 spins, ring + one chord, mixed-sign weights.
        let pairs = [(0usize, 1usize, 7i16), (1, 2, -3), (2, 3, 11), (3, 4, -1), (0, 4, 2), (1, 3, 5)];
        let n = 5;
        let mut rows: Vec<Vec<(u32, i16)>> = vec![Vec::new(); n];
        for &(i, j, v) in &pairs {
            rows[i].push((j as u32, v));
            rows[j].push((i as u32, v));
        }
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::new();
        let mut qw = Vec::new();
        for mut row in rows {
            row.sort_unstable();
            for (j, v) in row {
                cols.push(j);
                qw.push(v);
            }
            row_ptr.push(cols.len() as u32);
        }
        let qb = vec![3, -200, 0, 17, -4];
        (row_ptr, cols, qw, qb)
    }

    fn positions(n: usize, replicas: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n * replicas)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn i32_kernels_match_scalar_reference_at_all_widths() {
        let (row_ptr, cols, qw, qb) = toy_csr();
        let n = qb.len();
        for replicas in [1usize, 3, 17, 63, 64, 65, 100, 128, 129, 192] {
            let x = positions(n, replicas, 0x5eed ^ replicas as u64);
            let mut masks = vec![0i32; n * replicas];
            sign_masks_i32(&x, &mut masks);
            let mut out = vec![0i32; n * replicas];
            batch_field_i32(&row_ptr, &cols, &qw, &qb, &masks, &mut out, replicas);
            let expect = reference_field(&row_ptr, &cols, &qw, &qb, &x, replicas);
            assert_eq!(out, expect, "replicas = {replicas}");
        }
    }

    #[test]
    fn i16_accumulator_kernels_match_the_i32_values_at_all_widths() {
        let (row_ptr, cols, qw, qb) = toy_csr();
        // Row bounds here are tiny, so i16 accumulation cannot wrap and
        // must reproduce the i32 values exactly at every width.
        let qb16: Vec<i16> = qb.iter().map(|&v| v as i16).collect();
        let n = qb.len();
        for replicas in [1usize, 3, 17, 63, 64, 65, 100, 128, 129, 192] {
            let x = positions(n, replicas, 0xbeef ^ replicas as u64);
            let mut signs = vec![0i16; n * replicas];
            spin_signs_i16(&x, &mut signs);
            let mut out = vec![0i16; n * replicas];
            batch_field_i16(&row_ptr, &cols, &qw, &qb16, &signs, &mut out, replicas);
            let expect = reference_field(&row_ptr, &cols, &qw, &qb, &x, replicas);
            let widened: Vec<i32> = out.iter().map(|&v| i32::from(v)).collect();
            assert_eq!(widened, expect, "replicas = {replicas}");
        }
    }

    #[test]
    fn const_and_dyn_kernels_agree_exactly() {
        let (row_ptr, cols, qw, qb) = toy_csr();
        let qb16: Vec<i16> = qb.iter().map(|&v| v as i16).collect();
        let n = qb.len();
        for replicas in [64usize, 128] {
            let x = positions(n, replicas, 99);
            let mut masks32 = vec![0i32; n * replicas];
            let mut signs16 = vec![0i16; n * replicas];
            sign_masks_i32(&x, &mut masks32);
            spin_signs_i16(&x, &mut signs16);
            let mut dispatched32 = vec![0i32; n * replicas];
            let mut fallback32 = vec![0i32; n * replicas];
            batch_field_i32(&row_ptr, &cols, &qw, &qb, &masks32, &mut dispatched32, replicas);
            batch_field_i32_dyn(&row_ptr, &cols, &qw, &qb, &masks32, &mut fallback32, replicas);
            assert_eq!(dispatched32, fallback32, "i32, replicas = {replicas}");
            let mut dispatched16 = vec![0i16; n * replicas];
            let mut fallback16 = vec![0i16; n * replicas];
            batch_field_i16(&row_ptr, &cols, &qw, &qb16, &signs16, &mut dispatched16, replicas);
            batch_field_i16_dyn(&row_ptr, &cols, &qw, &qb16, &signs16, &mut fallback16, replicas);
            assert_eq!(dispatched16, fallback16, "i16, replicas = {replicas}");
        }
    }

    #[test]
    fn zero_reads_as_spin_up() {
        let x = [0.0, -0.0, 1.0, -1.0];
        let mut masks = vec![7i32; 4];
        sign_masks_i32(&x, &mut masks);
        // +0 reads as spin +1; −0 compares >= 0 too.
        assert_eq!(masks, [0, 0, 0, -1]);
    }

    #[test]
    fn nan_positions_mask_as_negative_like_the_f64_readout() {
        // The f64 sign readout maps NaN to −1 (`v >= 0.0` is false); the
        // mask/sign rows must agree so I16 and F64 runs see the same spins.
        let x = [f64::NAN, 2.0];
        let mut masks32 = vec![0i32; 2];
        let mut signs16 = vec![0i16; 2];
        sign_masks_i32(&x, &mut masks32);
        spin_signs_i16(&x, &mut signs16);
        assert_eq!(masks32, [-1, 0]);
        assert_eq!(signs16, [-1, 1]);
    }

    #[test]
    fn sign_rows_are_plus_minus_one() {
        let x = [0.0, -0.0, 1.0, -1.0];
        let mut signs = vec![0i16; 4];
        spin_signs_i16(&x, &mut signs);
        // ±0 both read as spin +1, matching `v >= 0.0`.
        assert_eq!(signs, [1, 1, 1, -1]);
    }
}
