//! Fused multi-COP batch integration with continuous lane refill.
//!
//! [`SbSolver::solve_batch_with`] advances many replicas of *one* problem;
//! a decomposition sweep instead produces thousands of small problems that
//! share one CSR sparsity pattern (same `(rows, cols, mode)` COP cell ⇒
//! same `row_ptr`/`cols`, different weights). The fused integrator here
//! packs units from *different* problems into the lanes of one
//! structure-of-arrays batch:
//!
//! - positions/momenta stay spin-major × lane-minor (`x[i·L + l]`), but the
//!   coupling weights become a **weight plane** (`w[e·L + l]` for CSR entry
//!   `e`): each entry loads a lane-vector of weights instead of
//!   broadcasting one scalar, so one pass advances `L` different problems;
//! - every lane carries its own clock, pump ramp, `c₀` and stop state;
//!   when a lane's unit retires (dynamic-variance settle or iteration
//!   budget) the lane is refilled **immediately** with the next pending
//!   unit — continuous batching — instead of idling until the batch drains;
//! - the fixed-point dSB path gets the same treatment: `i16` weight planes
//!   with per-lane bias/scale rows, accumulated in `i16` lanes when every
//!   unit's row bounds allow and `i32` otherwise.
//!
//! # Bit-identity
//!
//! Lane `l` running unit `u` performs exactly the scalar operation sequence
//! of `solver.seed(u.seed).solve(u.problem)`:
//!
//! - the lane seeds its own `ChaCha8Rng` from `u.seed` and draws all
//!   positions then all momenta — the sequential stream;
//! - the field kernel accumulates each CSR row in packed ascending order
//!   with the lane's own weights, matching `IsingProblem::local_field`;
//! - the update uses the lane's own `c₀`/decay/scale scalars, and each
//!   lane's local clock drives its pump ramp and sampling boundaries — so
//!   a unit filled into a lane mid-run integrates exactly as if it had
//!   started fresh;
//! - sampling gathers the lane contiguously and runs the same
//!   readout/energy code a sequential run uses, against the unit's own
//!   problem.
//!
//! Which units share a batch, the lane width, and the packing order
//! therefore never change a single bit of any unit's result.

use crate::{KernelPrecision, SbResult, SbSolver, SbState, SbVariant, StopReason, StopState};
use adis_ising::{IsingProblem, SpinVector};
use adis_telemetry::{trace_span, SolveObserver};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One schedulable unit of a fused batch: a problem plus the RNG seed its
/// lane integrates from (content-derived in the sweep engine, so packing
/// order cannot leak into outcomes).
#[derive(Debug, Clone, Copy)]
pub struct FusedUnit<'a> {
    /// The Ising instance this unit integrates. All units of one fused
    /// call must share a CSR sparsity pattern
    /// ([`IsingProblem::shares_pattern`]).
    pub problem: &'a IsingProblem,
    /// The lane's RNG seed, used exactly as a sequential
    /// [`SbSolver::seed`] would be.
    pub seed: u64,
}

/// Occupancy accounting for one (or, after [`merge`](FusedStats::merge),
/// several) fused batch runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Lane width of the batch (max across merged batches).
    pub lane_width: usize,
    /// Units drained from the queue.
    pub units: usize,
    /// Total lane fills (initial packing + refills).
    pub lanes_filled: usize,
    /// Fills that replaced a retired lane mid-run.
    pub refills: usize,
    /// Lane-iterations spent integrating a live unit.
    pub busy_lane_iterations: u64,
    /// Lane-iterations spent idle (queue empty, lane already drained).
    pub idle_lane_iterations: u64,
    /// Units whose dynamic-variance criterion fired.
    pub settled: usize,
}

impl FusedStats {
    /// Mean lane occupancy in `[0, 1]`: busy lane-iterations over all
    /// lane-iterations. `0.0` when nothing integrated.
    pub fn occupancy(&self) -> f64 {
        let total = self.busy_lane_iterations + self.idle_lane_iterations;
        if total == 0 {
            0.0
        } else {
            self.busy_lane_iterations as f64 / total as f64
        }
    }

    /// Accumulates another batch's counters (sums, except `lane_width`
    /// which keeps the maximum) — the engine aggregates per-chunk batches
    /// into one per-run figure.
    pub fn merge(&mut self, other: &FusedStats) {
        self.lane_width = self.lane_width.max(other.lane_width);
        self.units += other.units;
        self.lanes_filled += other.lanes_filled;
        self.refills += other.refills;
        self.busy_lane_iterations += other.busy_lane_iterations;
        self.idle_lane_iterations += other.idle_lane_iterations;
        self.settled += other.settled;
    }
}

/// Which arithmetic the fused batch runs. Decided once per call from the
/// solver precision and the units' quantized companions, exactly like the
/// single-problem batch: `i16` accumulation needs *every* unit's row
/// bounds to fit (the values are identical either way, so grouping
/// fit and non-fit units only costs SIMD width, never bits).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    F64,
    QuantI32,
    QuantI16,
}

/// Reusable buffers for one fused multi-problem integration. Every buffer
/// is (re)sized and zeroed before use, so results are independent of the
/// scratch's previous contents.
#[derive(Debug, Default)]
pub struct FusedScratch {
    /// Positions, spin-major × lane-minor: `x[i·L + l]`.
    x: Vec<f64>,
    /// Momenta, same layout.
    y: Vec<f64>,
    /// Coupling field per lane, same layout.
    field: Vec<f64>,
    /// Sign readout of `x` (dSB f64 coupling source), same layout.
    signs: Vec<f64>,
    /// One lane's positions, gathered contiguously for sampling.
    lane_x: Vec<f64>,
    /// One lane's momenta, gathered contiguously for sampling.
    lane_y: Vec<f64>,
    /// Weight plane: `wplane[e·L + l]` is CSR entry `e`'s weight in lane
    /// `l`'s problem.
    wplane: Vec<f64>,
    /// Bias plane, spin-major × lane-minor.
    hplane: Vec<f64>,
    /// Per-lane resolved `c₀`.
    c0row: Vec<f64>,
    /// Per-lane `1 / scale` of the quantized companion.
    invrow: Vec<f64>,
    /// Per-lane pump decay `a₀ − a(t_l)`, recomputed each iteration from
    /// the lane's local clock.
    decayrow: Vec<f64>,
    /// Fixed-point weight plane (`i16` weights, both accumulator widths).
    qwplane: Vec<i16>,
    /// Fixed-point bias plane, `i32` accumulator layout.
    qb32: Vec<i32>,
    /// Fixed-point bias plane, `i16` accumulator layout.
    qb16: Vec<i16>,
    /// Sign-mask rows (`0`/`−1`) for the `i32` kernels.
    masks32: Vec<i32>,
    /// `±1` sign rows for the `i16` kernels.
    signs16: Vec<i16>,
    /// Fixed-point field accumulator, `i32`.
    qfield32: Vec<i32>,
    /// Fixed-point field accumulator, `i16`.
    qfield16: Vec<i16>,
}

impl FusedScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize, nnz: usize, lanes: usize, mode: Mode) {
        let plane = n * lanes;
        for buf in [&mut self.x, &mut self.y] {
            buf.clear();
            buf.resize(plane, 0.0);
        }
        for buf in [&mut self.lane_x, &mut self.lane_y] {
            buf.clear();
            buf.resize(n, 0.0);
        }
        for buf in [&mut self.c0row, &mut self.invrow, &mut self.decayrow] {
            buf.clear();
            buf.resize(lanes, 0.0);
        }
        self.field.clear();
        self.signs.clear();
        self.wplane.clear();
        self.hplane.clear();
        self.qwplane.clear();
        self.qb32.clear();
        self.qb16.clear();
        self.masks32.clear();
        self.signs16.clear();
        self.qfield32.clear();
        self.qfield16.clear();
        match mode {
            Mode::F64 => {
                self.field.resize(plane, 0.0);
                self.signs.resize(plane, 0.0);
                self.wplane.resize(nnz * lanes, 0.0);
                self.hplane.resize(plane, 0.0);
            }
            Mode::QuantI32 => {
                self.qwplane.resize(nnz * lanes, 0);
                self.qb32.resize(plane, 0);
                self.masks32.resize(plane, 0);
                self.qfield32.resize(plane, 0);
            }
            Mode::QuantI16 => {
                self.qwplane.resize(nnz * lanes, 0);
                self.qb16.resize(plane, 0);
                self.signs16.resize(plane, 0);
                self.qfield16.resize(plane, 0);
            }
        }
    }
}

/// Per-lane bookkeeping while its unit integrates.
struct LaneSlot {
    unit: usize,
    /// Local clock: iterations this unit has completed.
    t: usize,
    best_state: SpinVector,
    best_energy: f64,
    trace: Vec<(usize, f64)>,
    stop: StopState,
    /// Buffered observer samples, replayed per unit after the batch.
    samples: Vec<(usize, f64, f64, f64)>,
}

/// Seeds lane `l` with `unit` and packs its weight/bias planes. Free
/// function (not a closure) so the call sites can keep disjoint borrows of
/// the destructured scratch.
#[allow(clippy::too_many_arguments)]
fn fill_lane(
    solver: &SbSolver,
    unit: &FusedUnit<'_>,
    unit_idx: usize,
    l: usize,
    lanes: usize,
    mode: Mode,
    max_iters: usize,
    sample_every: usize,
    x: &mut [f64],
    y: &mut [f64],
    wplane: &mut [f64],
    hplane: &mut [f64],
    qwplane: &mut [i16],
    qb32: &mut [i32],
    qb16: &mut [i16],
    c0row: &mut [f64],
    invrow: &mut [f64],
    lane_x: &mut [f64],
    stats: &mut FusedStats,
    is_refill: bool,
) -> LaneSlot {
    let problem = unit.problem;
    let n = problem.num_spins();
    // Sequential seeding stream: all positions, then all momenta.
    let mut rng = ChaCha8Rng::seed_from_u64(unit.seed);
    for i in 0..n {
        x[i * lanes + l] = rng.gen_range(-solver.init_amplitude..=solver.init_amplitude);
    }
    for i in 0..n {
        y[i * lanes + l] = rng.gen_range(-solver.init_amplitude..=solver.init_amplitude);
    }
    match mode {
        Mode::F64 => {
            let (_, _, weights) = problem.csr();
            for (e, &w) in weights.iter().enumerate() {
                wplane[e * lanes + l] = w;
            }
            for (i, &h) in problem.biases().iter().enumerate() {
                hplane[i * lanes + l] = h;
            }
        }
        Mode::QuantI32 | Mode::QuantI16 => {
            let q = problem.quantized().expect("mode requires a quantized companion");
            for (e, &qw) in q.weights().iter().enumerate() {
                qwplane[e * lanes + l] = qw;
            }
            if mode == Mode::QuantI16 {
                for (i, &qb) in q.biases().iter().enumerate() {
                    qb16[i * lanes + l] = qb as i16;
                }
            } else {
                for (i, &qb) in q.biases().iter().enumerate() {
                    qb32[i * lanes + l] = qb;
                }
            }
            invrow[l] = 1.0 / q.scale();
        }
    }
    c0row[l] = solver.resolve_c0(problem);
    // The initial best is the energy of the initial sign readout, exactly
    // as the sequential run records before its first iteration.
    for i in 0..n {
        lane_x[i] = x[i * lanes + l];
    }
    let best_state = SpinVector::from_signs(lane_x);
    let best_energy = problem.energy(&best_state);
    stats.lanes_filled += 1;
    if is_refill {
        stats.refills += 1;
    }
    LaneSlot {
        unit: unit_idx,
        t: 0,
        best_state,
        best_energy,
        trace: Vec::with_capacity(max_iters / sample_every + 1),
        stop: StopState::new(solver.stop.clone()),
        samples: Vec::new(),
    }
}

/// Writes `out[i·L + l] = hplane[i·L + l] + Σₑ wplane[e·L + l] · src[cₑ·L + l]`:
/// the multi-problem twin of the batch field kernel — each CSR entry loads
/// a lane-vector of weights instead of broadcasting one scalar. Per lane,
/// the accumulation order is exactly [`IsingProblem::local_field`]'s.
fn fused_field(
    row_ptr: &[u32],
    cols: &[u32],
    wplane: &[f64],
    hplane: &[f64],
    src: &[f64],
    out: &mut [f64],
    lanes: usize,
) {
    match lanes {
        4 => fused_field_const::<4>(row_ptr, cols, wplane, hplane, src, out),
        8 => fused_field_const::<8>(row_ptr, cols, wplane, hplane, src, out),
        16 => fused_field_const::<16>(row_ptr, cols, wplane, hplane, src, out),
        32 => fused_field_const::<32>(row_ptr, cols, wplane, hplane, src, out),
        _ => fused_field_dyn(row_ptr, cols, wplane, hplane, src, out, lanes),
    }
}

fn fused_field_const<const L: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    wplane: &[f64],
    hplane: &[f64],
    src: &[f64],
    out: &mut [f64],
) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let mut acc: [f64; L] = hplane[i * L..][..L].try_into().expect("bias row");
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let w: &[f64; L] = wplane[e * L..][..L].try_into().expect("weight row");
            let s: &[f64; L] = src[cols[e] as usize * L..][..L].try_into().expect("lane row");
            for l in 0..L {
                acc[l] += w[l] * s[l];
            }
        }
        out[i * L..][..L].copy_from_slice(&acc);
    }
}

fn fused_field_dyn(
    row_ptr: &[u32],
    cols: &[u32],
    wplane: &[f64],
    hplane: &[f64],
    src: &[f64],
    out: &mut [f64],
    lanes: usize,
) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let row = &mut out[i * lanes..(i + 1) * lanes];
        row.copy_from_slice(&hplane[i * lanes..(i + 1) * lanes]);
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let w = &wplane[e * lanes..][..lanes];
            let s = &src[cols[e] as usize * lanes..][..lanes];
            for ((o, &wl), &sl) in row.iter_mut().zip(w).zip(s) {
                *o += wl * sl;
            }
        }
    }
}

/// Fixed-point fused field, `i32` accumulation: per-lane weights with the
/// masked-add form (`acc += (v ^ m) − m`, no 32-bit lane multiply in
/// baseline SSE2).
fn fused_field_i32(
    row_ptr: &[u32],
    cols: &[u32],
    qwplane: &[i16],
    qbplane: &[i32],
    masks: &[i32],
    out: &mut [i32],
    lanes: usize,
) {
    match lanes {
        8 => fused_field_i32_const::<8>(row_ptr, cols, qwplane, qbplane, masks, out),
        16 => fused_field_i32_const::<16>(row_ptr, cols, qwplane, qbplane, masks, out),
        32 => fused_field_i32_const::<32>(row_ptr, cols, qwplane, qbplane, masks, out),
        _ => fused_field_i32_dyn(row_ptr, cols, qwplane, qbplane, masks, out, lanes),
    }
}

fn fused_field_i32_const<const L: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    qwplane: &[i16],
    qbplane: &[i32],
    masks: &[i32],
    out: &mut [i32],
) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let mut acc: [i32; L] = qbplane[i * L..][..L].try_into().expect("bias row");
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let w: &[i16; L] = qwplane[e * L..][..L].try_into().expect("weight row");
            let m: &[i32; L] = masks[cols[e] as usize * L..][..L].try_into().expect("mask row");
            for l in 0..L {
                let v = i32::from(w[l]);
                acc[l] += (v ^ m[l]) - m[l];
            }
        }
        out[i * L..][..L].copy_from_slice(&acc);
    }
}

fn fused_field_i32_dyn(
    row_ptr: &[u32],
    cols: &[u32],
    qwplane: &[i16],
    qbplane: &[i32],
    masks: &[i32],
    out: &mut [i32],
    lanes: usize,
) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let row = &mut out[i * lanes..(i + 1) * lanes];
        row.copy_from_slice(&qbplane[i * lanes..(i + 1) * lanes]);
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let w = &qwplane[e * lanes..][..lanes];
            let m = &masks[cols[e] as usize * lanes..][..lanes];
            for ((o, &wl), &ml) in row.iter_mut().zip(w).zip(m) {
                let v = i32::from(wl);
                *o += (v ^ ml) - ml;
            }
        }
    }
}

/// Fixed-point fused field, `i16` accumulation: per-lane weights with the
/// `±1`-sign multiply form. Every unit of the batch must satisfy
/// [`QuantizedCsr::acc_fits_i16`](adis_ising::QuantizedCsr::acc_fits_i16)
/// (idle lanes keep a previously packed — hence also bounded — plane, and
/// never-filled lanes are zero, so no lane can wrap).
fn fused_field_i16(
    row_ptr: &[u32],
    cols: &[u32],
    qwplane: &[i16],
    qbplane: &[i16],
    signs: &[i16],
    out: &mut [i16],
    lanes: usize,
) {
    match lanes {
        8 => fused_field_i16_const::<8>(row_ptr, cols, qwplane, qbplane, signs, out),
        16 => fused_field_i16_const::<16>(row_ptr, cols, qwplane, qbplane, signs, out),
        32 => fused_field_i16_const::<32>(row_ptr, cols, qwplane, qbplane, signs, out),
        _ => fused_field_i16_dyn(row_ptr, cols, qwplane, qbplane, signs, out, lanes),
    }
}

fn fused_field_i16_const<const L: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    qwplane: &[i16],
    qbplane: &[i16],
    signs: &[i16],
    out: &mut [i16],
) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let mut acc: [i16; L] = qbplane[i * L..][..L].try_into().expect("bias row");
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let w: &[i16; L] = qwplane[e * L..][..L].try_into().expect("weight row");
            let s: &[i16; L] = signs[cols[e] as usize * L..][..L].try_into().expect("sign row");
            for l in 0..L {
                acc[l] += w[l] * s[l];
            }
        }
        out[i * L..][..L].copy_from_slice(&acc);
    }
}

fn fused_field_i16_dyn(
    row_ptr: &[u32],
    cols: &[u32],
    qwplane: &[i16],
    qbplane: &[i16],
    signs: &[i16],
    out: &mut [i16],
    lanes: usize,
) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let row = &mut out[i * lanes..(i + 1) * lanes];
        row.copy_from_slice(&qbplane[i * lanes..(i + 1) * lanes]);
        for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            let w = &qwplane[e * lanes..][..lanes];
            let s = &signs[cols[e] as usize * lanes..][..lanes];
            for ((o, &wl), &sl) in row.iter_mut().zip(w).zip(s) {
                *o += wl * sl;
            }
        }
    }
}

/// Walled (bSB/dSB) momentum/position update with per-lane constants. The
/// selects compute exactly the values the sequential branch form does.
#[allow(clippy::too_many_arguments)]
fn fused_walled_update(
    field: &[f64],
    c0row: &[f64],
    decayrow: &[f64],
    dt: f64,
    a0: f64,
    x: &mut [f64],
    y: &mut [f64],
    lanes: usize,
) {
    for ((xrow, yrow), frow) in x
        .chunks_exact_mut(lanes)
        .zip(y.chunks_exact_mut(lanes))
        .zip(field.chunks_exact(lanes))
    {
        for ((((xi, yi), &fi), &c0), &decay) in xrow
            .iter_mut()
            .zip(yrow.iter_mut())
            .zip(frow)
            .zip(c0row)
            .zip(decayrow)
        {
            let yv = *yi + (-decay * *xi + c0 * fi) * dt;
            let xv = *xi + a0 * yv * dt;
            let hit = xv.abs() > 1.0;
            *xi = if hit { xv.signum() } else { xv };
            *yi = if hit { 0.0 } else { yv };
        }
    }
}

/// aSB update with per-lane constants: Kerr term `−x³`, no walls.
#[allow(clippy::too_many_arguments)]
fn fused_kerr_update(
    field: &[f64],
    c0row: &[f64],
    decayrow: &[f64],
    dt: f64,
    a0: f64,
    x: &mut [f64],
    y: &mut [f64],
    lanes: usize,
) {
    for ((xrow, yrow), frow) in x
        .chunks_exact_mut(lanes)
        .zip(y.chunks_exact_mut(lanes))
        .zip(field.chunks_exact(lanes))
    {
        for ((((xi, yi), &fi), &c0), &decay) in xrow
            .iter_mut()
            .zip(yrow.iter_mut())
            .zip(frow)
            .zip(c0row)
            .zip(decayrow)
        {
            let xv = *xi;
            *yi += (-xv * xv * xv - decay * xv + c0 * fi) * dt;
            *xi += a0 * *yi * dt;
        }
    }
}

/// Fixed-point dSB: converts each lane's integer field with its own
/// `f64::from(qf) · inv` multiply (the sequential reduced-precision
/// conversion) and applies the walled update in the same pass.
#[allow(clippy::too_many_arguments)]
fn fused_quantized_update<T: Copy + Into<f64>>(
    qfield: &[T],
    invrow: &[f64],
    c0row: &[f64],
    decayrow: &[f64],
    dt: f64,
    a0: f64,
    x: &mut [f64],
    y: &mut [f64],
    lanes: usize,
) {
    for ((xrow, yrow), frow) in x
        .chunks_exact_mut(lanes)
        .zip(y.chunks_exact_mut(lanes))
        .zip(qfield.chunks_exact(lanes))
    {
        for (((((xi, yi), &qf), &inv), &c0), &decay) in xrow
            .iter_mut()
            .zip(yrow.iter_mut())
            .zip(frow)
            .zip(invrow)
            .zip(c0row)
            .zip(decayrow)
        {
            let f = qf.into() * inv;
            let yv = *yi + (-decay * *xi + c0 * f) * dt;
            let xv = *xi + a0 * yv * dt;
            let hit = xv.abs() > 1.0;
            *xi = if hit { xv.signum() } else { xv };
            *yi = if hit { 0.0 } else { yv };
        }
    }
}

impl SbSolver {
    /// Integrates every unit of `units` through `lane_width` persistent
    /// lanes with continuous refill, returning one [`SbResult`] per unit
    /// (in unit order) plus the batch's occupancy statistics.
    ///
    /// All units must share one CSR sparsity pattern
    /// ([`IsingProblem::shares_pattern`]); with [`KernelPrecision::I16`]
    /// they must additionally agree on whether a quantized companion
    /// exists (the engine groups cells so both hold by construction).
    ///
    /// `intervene(unit_idx, state)` fires at each unit's sampling points —
    /// the index is the unit's position in `units`, so callers can apply
    /// per-problem hooks (the type-reset heuristic). `observer` receives
    /// each unit's full `sb_start`/`sb_sample`/`sb_stop` stream, replayed
    /// in unit order after integration, plus one
    /// [`fused_batch`](SolveObserver::fused_batch) event.
    ///
    /// Element `u` of the returned vector is bit-identical (best state,
    /// best energy, iterations, stop reason, full trace) to
    /// `self.seed(units[u].seed).solve(units[u].problem)`.
    ///
    /// # Panics
    ///
    /// Panics if `units` mix sparsity patterns (or quantized-ness under
    /// `I16`), if `lane_width == 0` while units are pending, or if the
    /// configuration is invalid.
    pub fn solve_fused_with<F, O>(
        &self,
        units: &[FusedUnit<'_>],
        lane_width: usize,
        scratch: &mut FusedScratch,
        mut intervene: F,
        observer: &mut O,
    ) -> (Vec<SbResult>, FusedStats)
    where
        F: FnMut(usize, &mut SbState<'_>),
        O: SolveObserver,
    {
        if let Err(e) = self.validate() {
            panic!("invalid SbSolver configuration: {e}");
        }
        let mut stats = FusedStats {
            lane_width,
            units: units.len(),
            ..FusedStats::default()
        };
        if units.is_empty() {
            return (Vec::new(), stats);
        }
        assert!(lane_width > 0, "need at least one lane");
        let first = units[0].problem;
        assert!(
            units.iter().all(|u| u.problem.shares_pattern(first)),
            "fused units must share one CSR sparsity pattern (shared sparsity group)"
        );
        let n = first.num_spins();
        let (row_ptr, cols, _) = first.csr();
        let nnz = cols.len();
        let lanes = lane_width;
        let _span = trace_span!(
            "SbSolver::solve_fused {:?} n={n} units={} lanes={lanes}",
            self.variant,
            units.len()
        );

        let mode = match self.precision {
            KernelPrecision::F64 => Mode::F64,
            KernelPrecision::I16 => {
                let quantized = units.iter().filter(|u| u.problem.quantized().is_some()).count();
                if quantized == units.len() {
                    if units
                        .iter()
                        .all(|u| u.problem.quantized().expect("counted").acc_fits_i16())
                    {
                        Mode::QuantI16
                    } else {
                        Mode::QuantI32
                    }
                } else {
                    assert!(
                        quantized == 0,
                        "fused I16 batch mixes quantized and unquantized units"
                    );
                    Mode::F64
                }
            }
        };

        scratch.reset(n, nnz, lanes, mode);
        let FusedScratch {
            x,
            y,
            field,
            signs,
            lane_x,
            lane_y,
            wplane,
            hplane,
            c0row,
            invrow,
            decayrow,
            qwplane,
            qb32,
            qb16,
            masks32,
            signs16,
            qfield32,
            qfield16,
        } = scratch;

        let max_iters = self.stop.max_iterations();
        let sample_every = self.stop.sample_every();
        let ramp = self.ramp.unwrap_or(max_iters).min(max_iters).max(1);
        let settle_after = self.ramp.map(|r| r.min(max_iters)).unwrap_or(0);
        let observing = observer.enabled();

        let mut results: Vec<Option<SbResult>> = units.iter().map(|_| None).collect();
        let mut unit_samples: Vec<Vec<(usize, f64, f64, f64)>> =
            units.iter().map(|_| Vec::new()).collect();
        let mut slots: Vec<Option<LaneSlot>> = (0..lanes).map(|_| None).collect();
        let mut next = 0usize;
        let mut busy = 0usize;

        let finalize = |slot: LaneSlot,
                            reason: StopReason,
                            iterations: usize,
                            stats: &mut FusedStats,
                            results: &mut Vec<Option<SbResult>>,
                            unit_samples: &mut Vec<Vec<(usize, f64, f64, f64)>>| {
            if reason == StopReason::EnergySettled {
                stats.settled += 1;
            }
            unit_samples[slot.unit] = slot.samples;
            results[slot.unit] = Some(SbResult {
                best_state: slot.best_state,
                best_energy: slot.best_energy,
                iterations,
                stop_reason: reason,
                trace: slot.trace,
            });
        };

        // Initial packing: fill each lane from the queue. A zero-iteration
        // budget never reaches a sampling point, so such units finalize at
        // fill (initial readout, zero iterations) and the lane keeps
        // draining the queue.
        for (l, slot) in slots.iter_mut().enumerate() {
            let mut first_fill = true;
            while next < units.len() {
                let filled = fill_lane(
                    self, &units[next], next, l, lanes, mode, max_iters, sample_every, x, y,
                    wplane, hplane, qwplane, qb32, qb16, c0row, invrow, lane_x, &mut stats,
                    !first_fill,
                );
                next += 1;
                first_fill = false;
                if max_iters == 0 {
                    finalize(
                        filled,
                        StopReason::IterationLimit,
                        max_iters,
                        &mut stats,
                        &mut results,
                        &mut unit_samples,
                    );
                } else {
                    *slot = Some(filled);
                    busy += 1;
                    break;
                }
            }
        }

        while busy > 0 {
            stats.busy_lane_iterations += busy as u64;
            stats.idle_lane_iterations += (lanes - busy) as u64;
            // Per-lane pump decay from each lane's local clock. Idle lanes
            // get the fully-pumped value; their dynamics are never read.
            for (d, slot) in decayrow.iter_mut().zip(slots.iter()) {
                *d = match slot {
                    Some(s) => self.a0 - self.a0 * ((s.t as f64 / ramp as f64).min(1.0)),
                    None => self.a0,
                };
            }

            match (self.variant, mode) {
                (SbVariant::Discrete, Mode::QuantI16) => {
                    crate::quantized::spin_signs_i16(x, signs16);
                    fused_field_i16(row_ptr, cols, qwplane, qb16, signs16, qfield16, lanes);
                    fused_quantized_update(
                        qfield16, invrow, c0row, decayrow, self.dt, self.a0, x, y, lanes,
                    );
                }
                (SbVariant::Discrete, Mode::QuantI32) => {
                    crate::quantized::sign_masks_i32(x, masks32);
                    fused_field_i32(row_ptr, cols, qwplane, qb32, masks32, qfield32, lanes);
                    fused_quantized_update(
                        qfield32, invrow, c0row, decayrow, self.dt, self.a0, x, y, lanes,
                    );
                }
                (SbVariant::Discrete, Mode::F64) => {
                    for (s, &v) in signs.iter_mut().zip(x.iter()) {
                        *s = if v >= 0.0 { 1.0 } else { -1.0 };
                    }
                    fused_field(row_ptr, cols, wplane, hplane, signs, field, lanes);
                    fused_walled_update(field, c0row, decayrow, self.dt, self.a0, x, y, lanes);
                }
                (SbVariant::Adiabatic, _) => {
                    fused_field(row_ptr, cols, wplane, hplane, x, field, lanes);
                    fused_kerr_update(field, c0row, decayrow, self.dt, self.a0, x, y, lanes);
                }
                (SbVariant::Ballistic, _) => {
                    fused_field(row_ptr, cols, wplane, hplane, x, field, lanes);
                    fused_walled_update(field, c0row, decayrow, self.dt, self.a0, x, y, lanes);
                }
            }

            for l in 0..lanes {
                let Some(slot) = slots[l].as_mut() else { continue };
                slot.t += 1;
                if !(slot.t % sample_every == 0 || slot.t == max_iters) {
                    continue;
                }
                let unit = &units[slot.unit];
                for i in 0..n {
                    lane_x[i] = x[i * lanes + l];
                    lane_y[i] = y[i * lanes + l];
                }
                let mut state = SbState {
                    x: &mut lane_x[..],
                    y: &mut lane_y[..],
                    iteration: slot.t,
                };
                intervene(slot.unit, &mut state);
                let readout = SpinVector::from_signs(lane_x);
                let energy = unit.problem.energy(&readout);
                slot.trace.push((slot.t, energy));
                if energy < slot.best_energy {
                    slot.best_energy = energy;
                    slot.best_state = readout;
                }
                if observing {
                    let mean_amp = if n > 0 {
                        lane_x.iter().map(|v| v.abs()).sum::<f64>() / n as f64
                    } else {
                        0.0
                    };
                    slot.samples.push((slot.t, energy, slot.best_energy, mean_amp));
                }
                // The hook may have rewritten the lane; scatter back.
                for i in 0..n {
                    x[i * lanes + l] = lane_x[i];
                    y[i * lanes + l] = lane_y[i];
                }
                let retired = if slot.t >= settle_after && slot.stop.record(energy) {
                    Some((StopReason::EnergySettled, slot.t))
                } else if slot.t == max_iters {
                    Some((StopReason::IterationLimit, max_iters))
                } else {
                    None
                };
                if let Some((reason, iterations)) = retired {
                    let done = slots[l].take().expect("slot was busy");
                    busy -= 1;
                    finalize(done, reason, iterations, &mut stats, &mut results, &mut unit_samples);
                    // Continuous refill: the freed lane immediately takes
                    // the next pending unit (its clock restarts at 0).
                    while next < units.len() {
                        let filled = fill_lane(
                            self, &units[next], next, l, lanes, mode, max_iters, sample_every,
                            x, y, wplane, hplane, qwplane, qb32, qb16, c0row, invrow, lane_x,
                            &mut stats, true,
                        );
                        next += 1;
                        if max_iters == 0 {
                            finalize(
                                filled,
                                StopReason::IterationLimit,
                                max_iters,
                                &mut stats,
                                &mut results,
                                &mut unit_samples,
                            );
                        } else {
                            slots[l] = Some(filled);
                            busy += 1;
                            break;
                        }
                    }
                }
            }
        }

        observer.fused_batch(
            lanes,
            units.len(),
            stats.refills,
            stats.busy_lane_iterations,
            stats.idle_lane_iterations,
        );
        // Replay each unit's observer stream in unit order: identical to
        // what sequential solves would have reported.
        if observing {
            for (samples, result) in unit_samples.iter().zip(results.iter()) {
                let result = result.as_ref().expect("all units drained");
                observer.sb_start(n, max_iters);
                for &(iteration, energy, best, mean_amp) in samples {
                    observer.sb_sample(iteration, energy, best, mean_amp);
                }
                observer.sb_stop(
                    result.iterations,
                    result.best_energy,
                    result.stop_reason == StopReason::EnergySettled,
                );
            }
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("all units drained"))
            .collect();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopCriterion;
    use adis_ising::IsingBuilder;
    use adis_telemetry::{NullObserver, Recorder};

    /// Problems with identical dense structure (same CSR pattern content)
    /// but different weights — the shape a COP cell produces.
    fn patterned_problems(n: usize, count: usize, seed: u64) -> Vec<IsingProblem> {
        (0..count)
            .map(|k| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed + k as u64);
                let mut b = IsingBuilder::new(n);
                for i in 0..n {
                    let mut h = rng.gen_range(-1.0..1.0);
                    if h == 0.0 {
                        h = 0.5;
                    }
                    b.add_bias(i, h);
                    for j in (i + 1)..n {
                        let mut w = rng.gen_range(-1.0..1.0);
                        if w == 0.0 {
                            w = 0.5;
                        }
                        b.add_coupling(i, j, w);
                    }
                }
                b.build()
            })
            .collect()
    }

    fn units_of(problems: &[IsingProblem], base_seed: u64) -> Vec<FusedUnit<'_>> {
        problems
            .iter()
            .enumerate()
            .map(|(k, p)| FusedUnit {
                problem: p,
                seed: base_seed + 10 * k as u64,
            })
            .collect()
    }

    fn assert_results_identical(a: &SbResult, b: &SbResult) {
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.stop_reason, b.stop_reason);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn fused_units_match_sequential_solves_across_variants() {
        let problems = patterned_problems(9, 7, 1000);
        let units = units_of(&problems, 500);
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let solver = SbSolver::new()
                .variant(variant)
                .stop(StopCriterion::FixedIterations(200));
            let mut scratch = FusedScratch::new();
            let (results, stats) =
                solver.solve_fused_with(&units, 3, &mut scratch, |_, _| {}, &mut NullObserver);
            assert_eq!(results.len(), 7);
            for (unit, result) in units.iter().zip(&results) {
                let sequential = solver.clone().seed(unit.seed).solve(unit.problem);
                assert_results_identical(result, &sequential);
            }
            assert_eq!(stats.lane_width, 3);
            assert_eq!(stats.units, 7);
            assert_eq!(stats.lanes_filled, 7);
            assert_eq!(stats.refills, 4);
            // 7 units × 200 iterations each, on 3 lanes over 600 global
            // iterations (3 generations of retirement at t = 200).
            assert_eq!(stats.busy_lane_iterations, 1400);
            assert_eq!(stats.idle_lane_iterations, 400);
            assert!((stats.occupancy() - 1400.0 / 1800.0).abs() < 1e-12);
        }
    }

    #[test]
    fn continuous_refill_under_dynamic_stop_matches_sequential() {
        let problems = patterned_problems(8, 6, 2000);
        let units = units_of(&problems, 70);
        let solver = SbSolver::new()
            .stop(StopCriterion::DynamicVariance {
                sample_every: 5,
                window: 5,
                threshold: 1e-8,
                max_iterations: 50_000,
            })
            .ramp(100);
        let mut scratch = FusedScratch::new();
        let (results, stats) =
            solver.solve_fused_with(&units, 2, &mut scratch, |_, _| {}, &mut NullObserver);
        let mut settled = 0;
        for (unit, result) in units.iter().zip(&results) {
            let sequential = solver.clone().seed(unit.seed).solve(unit.problem);
            assert_results_identical(result, &sequential);
            if result.stop_reason == StopReason::EnergySettled {
                settled += 1;
            }
        }
        assert_eq!(stats.refills, 4, "lanes must refill as units settle");
        assert_eq!(stats.settled, settled);
        assert!(settled > 0, "dynamic stop should fire on these instances");
    }

    #[test]
    fn fused_quantized_lanes_match_sequential_quantized_solves() {
        let problems = patterned_problems(9, 6, 3000);
        assert!(problems.iter().all(|p| p.quantized().is_some()));
        let units = units_of(&problems, 40);
        let solver = SbSolver::new()
            .variant(SbVariant::Discrete)
            .precision(KernelPrecision::I16)
            .stop(StopCriterion::FixedIterations(150));
        // Cover a const width (4 is f64-only; 8 dispatches integer const
        // kernels) and the dynamic fallback.
        for lane_width in [3usize, 8] {
            let mut scratch = FusedScratch::new();
            let (results, _) = solver.solve_fused_with(
                &units,
                lane_width,
                &mut scratch,
                |_, _| {},
                &mut NullObserver,
            );
            for (unit, result) in units.iter().zip(&results) {
                let sequential = solver.clone().seed(unit.seed).solve(unit.problem);
                assert_results_identical(result, &sequential);
            }
        }
    }

    #[test]
    fn fused_interventions_route_to_the_right_unit() {
        let problems = patterned_problems(7, 5, 4000);
        let units = units_of(&problems, 90);
        let solver = SbSolver::new().stop(StopCriterion::FixedIterations(120));
        // Clamp spin (unit_idx mod n) positive: each unit gets a
        // *different* hook, so routing errors cannot cancel out.
        let clamp = |u: usize, state: &mut SbState<'_>| {
            let i = u % state.x.len();
            state.x[i] = 1.0;
            state.y[i] = 0.0;
        };
        let mut scratch = FusedScratch::new();
        let (results, _) =
            solver.solve_fused_with(&units, 2, &mut scratch, clamp, &mut NullObserver);
        for (u, (unit, result)) in units.iter().zip(&results).enumerate() {
            let sequential = solver.clone().seed(unit.seed).solve_with(
                unit.problem,
                |state| clamp(u, state),
                &mut NullObserver,
            );
            assert_results_identical(result, &sequential);
            assert_eq!(result.best_state.get(u % 7), 1);
        }
    }

    #[test]
    fn fused_observer_stream_matches_sequential_replay() {
        let problems = patterned_problems(8, 4, 5000);
        let units = units_of(&problems, 11);
        let solver = SbSolver::new().stop(StopCriterion::FixedIterations(100));
        let mut fused_rec = Recorder::new();
        let mut scratch = FusedScratch::new();
        solver.solve_fused_with(&units, 2, &mut scratch, |_, _| {}, &mut fused_rec);
        let mut seq_rec = Recorder::new();
        for unit in &units {
            solver
                .clone()
                .seed(unit.seed)
                .solve_with(unit.problem, |_| {}, &mut seq_rec);
        }
        assert_eq!(fused_rec.sb.runs, seq_rec.sb.runs);
        assert_eq!(fused_rec.sb.total_iterations, seq_rec.sb.total_iterations);
        assert_eq!(fused_rec.sb.samples, seq_rec.sb.samples);
        assert_eq!(fused_rec.sb.best_energy, seq_rec.sb.best_energy);
        assert_eq!(fused_rec.trajectory.samples(), seq_rec.trajectory.samples());
    }

    #[test]
    fn zero_iteration_budget_retires_every_unit_at_fill() {
        let problems = patterned_problems(6, 5, 6000);
        let units = units_of(&problems, 7);
        let solver = SbSolver::new().stop(StopCriterion::FixedIterations(0));
        let mut scratch = FusedScratch::new();
        let (results, stats) =
            solver.solve_fused_with(&units, 2, &mut scratch, |_, _| {}, &mut NullObserver);
        for (unit, result) in units.iter().zip(&results) {
            let sequential = solver.clone().seed(unit.seed).solve(unit.problem);
            assert_results_identical(result, &sequential);
            assert_eq!(result.iterations, 0);
            assert_eq!(result.stop_reason, StopReason::IterationLimit);
            assert!(result.trace.is_empty());
        }
        assert_eq!(stats.lanes_filled, 5);
        assert_eq!(stats.busy_lane_iterations, 0);
    }

    #[test]
    fn more_lanes_than_units_stays_correct() {
        let problems = patterned_problems(7, 3, 7000);
        let units = units_of(&problems, 21);
        let solver = SbSolver::new().stop(StopCriterion::FixedIterations(80));
        let mut scratch = FusedScratch::new();
        let (results, stats) =
            solver.solve_fused_with(&units, 8, &mut scratch, |_, _| {}, &mut NullObserver);
        for (unit, result) in units.iter().zip(&results) {
            let sequential = solver.clone().seed(unit.seed).solve(unit.problem);
            assert_results_identical(result, &sequential);
        }
        assert_eq!(stats.lanes_filled, 3);
        assert_eq!(stats.refills, 0);
        assert_eq!(stats.busy_lane_iterations, 3 * 80);
        assert_eq!(stats.idle_lane_iterations, 5 * 80);
    }

    #[test]
    fn reused_fused_scratch_is_bit_identical_to_fresh() {
        let mut scratch = FusedScratch::new();
        for (n, count, seed) in [(9usize, 5usize, 81u64), (6, 3, 82), (11, 4, 83)] {
            let problems = patterned_problems(n, count, seed);
            let units = units_of(&problems, seed * 3);
            let solver = SbSolver::new().stop(StopCriterion::FixedIterations(90));
            let mut fresh = FusedScratch::new();
            let (a, _) =
                solver.solve_fused_with(&units, 2, &mut fresh, |_, _| {}, &mut NullObserver);
            let (b, _) =
                solver.solve_fused_with(&units, 2, &mut scratch, |_, _| {}, &mut NullObserver);
            for (ra, rb) in a.iter().zip(&b) {
                assert_results_identical(ra, rb);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shared sparsity")]
    fn mixed_patterns_are_rejected() {
        let a = IsingBuilder::new(3).coupling(0, 1, 1.0).build();
        let b = IsingBuilder::new(3).coupling(1, 2, 1.0).build();
        let units = [
            FusedUnit { problem: &a, seed: 1 },
            FusedUnit { problem: &b, seed: 2 },
        ];
        SbSolver::new().solve_fused_with(
            &units,
            2,
            &mut FusedScratch::new(),
            |_, _| {},
            &mut NullObserver,
        );
    }

    #[test]
    fn empty_unit_list_is_a_no_op() {
        let (results, stats) = SbSolver::new().solve_fused_with(
            &[],
            4,
            &mut FusedScratch::new(),
            |_, _| {},
            &mut NullObserver,
        );
        assert!(results.is_empty());
        assert_eq!(stats.lanes_filled, 0);
        assert_eq!(stats.occupancy(), 0.0);
    }
}
