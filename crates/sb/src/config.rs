//! Validation of [`SbSolver`](crate::SbSolver) configurations.
//!
//! Mirrors the `adis_core::Framework` convention: builder-style setters
//! never panic, every constraint is checked in one place
//! ([`SbSolver::validate`](crate::SbSolver::validate)), the `try_*` entry
//! points surface a [`ConfigError`], and the infallible entry points panic
//! with the error's `Display` message.

use crate::StopCriterion;
use std::fmt;

/// An invalid [`SbSolver`](crate::SbSolver) (or derived Ising-COP solver)
/// configuration.
///
/// # Examples
///
/// ```
/// use adis_ising::IsingBuilder;
/// use adis_sb::{ConfigError, SbSolver};
///
/// let p = IsingBuilder::new(2).coupling(0, 1, 1.0).build();
/// let err = SbSolver::new().dt(0.0).try_solve(&p).unwrap_err();
/// assert_eq!(err, ConfigError::NonPositiveDt(0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `dt` must be positive and finite: the symplectic Euler update
    /// multiplies every force by `dt`.
    NonPositiveDt(f64),
    /// `a0` must be positive and finite: it is both the pump ceiling and
    /// the position-update gain.
    NonPositiveA0(f64),
    /// A zero-length pump ramp never turns the pump on.
    ZeroRamp,
    /// The initial-state amplitude must be finite and non-negative (the
    /// initial positions/momenta are drawn from `[-amp, amp]`).
    InvalidInitAmplitude(f64),
    /// A dynamic-variance window below 2 samples has zero variance by
    /// definition, so the criterion would fire on the very first sample
    /// regardless of the threshold.
    DegenerateWindow(usize),
    /// Batch/replica entry points need at least one replica.
    ZeroReplicas,
    /// The `i16` fixed-point kernel reads only spin *signs*, which is the
    /// discrete (dSB) coupling force; aSB/bSB need analog positions in the
    /// field, so reduced precision is rejected for them.
    PrecisionRequiresDiscrete,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositiveDt(dt) => {
                write!(f, "time step dt must be positive and finite, got {dt}")
            }
            ConfigError::NonPositiveA0(a0) => {
                write!(f, "pump ceiling a0 must be positive and finite, got {a0}")
            }
            ConfigError::ZeroRamp => write!(f, "pump ramp must span at least one iteration"),
            ConfigError::InvalidInitAmplitude(amp) => write!(
                f,
                "initial-state amplitude must be finite and non-negative, got {amp}"
            ),
            ConfigError::DegenerateWindow(w) => write!(
                f,
                "dynamic-variance window must hold at least 2 samples, got {w} \
                 (variance of fewer samples is identically 0, stopping immediately)"
            ),
            ConfigError::ZeroReplicas => write!(f, "need at least one replica"),
            ConfigError::PrecisionRequiresDiscrete => write!(
                f,
                "the i16 fixed-point kernel requires the discrete (dSB) variant \
                 (aSB/bSB coupling forces need analog positions)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl StopCriterion {
    /// Checks the criterion's own constraints: a
    /// [`DynamicVariance`](StopCriterion::DynamicVariance) window must hold
    /// at least 2 samples (`sample_every` is silently normalized by
    /// [`sample_every()`](StopCriterion::sample_every) instead, matching
    /// the long-standing behavior tests rely on).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            StopCriterion::FixedIterations(_) => Ok(()),
            StopCriterion::DynamicVariance { window, .. } => {
                if window < 2 {
                    Err(ConfigError::DegenerateWindow(window))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_windows_rejected() {
        for window in [0, 1] {
            let c = StopCriterion::DynamicVariance {
                sample_every: 5,
                window,
                threshold: 1e-8,
                max_iterations: 100,
            };
            assert_eq!(c.validate(), Err(ConfigError::DegenerateWindow(window)));
        }
        assert!(StopCriterion::paper_small().validate().is_ok());
        assert!(StopCriterion::FixedIterations(0).validate().is_ok());
    }

    #[test]
    fn errors_display_and_box() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::DegenerateWindow(1));
        assert!(e.to_string().contains("window"));
        assert!(ConfigError::NonPositiveDt(f64::NAN).to_string().contains("dt"));
    }
}
