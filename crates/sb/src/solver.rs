//! Simulated bifurcation solvers: adiabatic (aSB), ballistic (bSB) and
//! discrete (dSB) variants with symplectic Euler integration.

use crate::{KernelPrecision, SbBatchScratch, SbScratch, StopCriterion, StopReason, StopState};
use adis_ising::{IsingProblem, SpinVector};
use adis_telemetry::{trace_span, NullObserver, SolveObserver};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which simulated-bifurcation dynamics to integrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SbVariant {
    /// Adiabatic SB (Goto 2019): Kerr term `−x³`, no position walls.
    Adiabatic,
    /// Ballistic SB (Goto 2021): the paper's solver. Positions are confined
    /// by perfectly inelastic walls at `±1`.
    #[default]
    Ballistic,
    /// Discrete SB (Goto 2021): like bSB but the coupling force uses
    /// `sgn(x_j)` instead of `x_j`, suppressing analog error.
    Discrete,
}

/// Mutable integrator state handed to [interventions](SbSolver::solve_with)
/// at every sampling point.
#[derive(Debug)]
pub struct SbState<'a> {
    /// Oscillator positions (one per spin); sign = current spin readout.
    pub x: &'a mut [f64],
    /// Oscillator momenta.
    pub y: &'a mut [f64],
    /// Completed iteration count.
    pub iteration: usize,
}

/// Outcome of a simulated-bifurcation run.
#[derive(Debug, Clone)]
pub struct SbResult {
    /// Best (lowest-energy) spin configuration sampled during the run.
    pub best_state: SpinVector,
    /// Its energy, including the problem offset.
    pub best_energy: f64,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Why the run ended.
    pub stop_reason: StopReason,
    /// Sampled `(iteration, energy)` trace (energies of the sign readout).
    pub trace: Vec<(usize, f64)>,
}

/// A configured simulated-bifurcation solver.
///
/// Construct with [`SbSolver::new`], adjust with the builder-style methods,
/// then call [`solve`](SbSolver::solve). The solver is deterministic for a
/// fixed seed.
///
/// # Examples
///
/// ```
/// use adis_ising::IsingBuilder;
/// use adis_sb::{SbSolver, SbVariant};
///
/// let p = IsingBuilder::new(2).coupling(0, 1, 1.0).build();
/// let result = SbSolver::new()
///     .variant(SbVariant::Ballistic)
///     .seed(42)
///     .solve(&p);
/// // Ferromagnetic pair: ground energy −1.
/// assert_eq!(result.best_energy, -1.0);
/// ```
///
/// The full builder surface — dynamics variant, stop criterion, decoupled
/// pump ramp, and seed — chains freely:
///
/// ```
/// use adis_ising::IsingBuilder;
/// use adis_sb::{SbSolver, SbVariant, StopCriterion, StopReason};
///
/// let p = IsingBuilder::new(4)
///     .coupling(0, 1, 1.0)
///     .coupling(1, 2, 1.0)
///     .coupling(2, 3, 1.0)
///     .build();
/// let result = SbSolver::new()
///     .variant(SbVariant::Discrete)
///     .stop(StopCriterion::DynamicVariance {
///         sample_every: 5,
///         window: 5,
///         threshold: 1e-8,
///         max_iterations: 50_000,
///     })
///     .ramp(200)   // pump reaches a₀ after 200 iterations
///     .seed(7)
///     .solve(&p);
/// assert_eq!(result.best_energy, -3.0);
/// assert_eq!(result.stop_reason, StopReason::EnergySettled);
/// ```
#[derive(Debug, Clone)]
pub struct SbSolver {
    pub(crate) variant: SbVariant,
    pub(crate) stop: StopCriterion,
    pub(crate) dt: f64,
    pub(crate) a0: f64,
    pub(crate) c0: Option<f64>,
    pub(crate) seed: u64,
    pub(crate) init_amplitude: f64,
    pub(crate) ramp: Option<usize>,
    pub(crate) precision: KernelPrecision,
}

impl Default for SbSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SbSolver {
    /// A bSB solver with the defaults used throughout the reproduction:
    /// `dt = 0.25`, `a0 = 1`, auto `c0`, 1500 fixed iterations.
    pub fn new() -> Self {
        SbSolver {
            variant: SbVariant::Ballistic,
            stop: StopCriterion::FixedIterations(1500),
            dt: 0.25,
            a0: 1.0,
            c0: None,
            seed: 0,
            init_amplitude: 0.1,
            ramp: None,
            precision: KernelPrecision::F64,
        }
    }

    /// Length of the pump ramp in iterations. By default the ramp spans the
    /// full iteration budget; decoupling it (e.g. `ramp(500)`) lets the
    /// dynamic stop criterion fire soon after bifurcation instead of
    /// tracking a ramp stretched over `max_iterations`. Zero is rejected by
    /// [`validate`](SbSolver::validate)/[`try_solve`](SbSolver::try_solve),
    /// not here.
    pub fn ramp(mut self, iterations: usize) -> Self {
        self.ramp = Some(iterations);
        self
    }

    /// Selects the SB dynamics.
    pub fn variant(mut self, v: SbVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the stop criterion.
    pub fn stop(mut self, s: StopCriterion) -> Self {
        self.stop = s;
        self
    }

    /// Sets the Euler time step. Non-positive/non-finite values are
    /// rejected by [`validate`](SbSolver::validate)/
    /// [`try_solve`](SbSolver::try_solve), not here.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the detuning/pump ceiling `a₀`. Non-positive/non-finite values
    /// are rejected by [`validate`](SbSolver::validate)/
    /// [`try_solve`](SbSolver::try_solve), not here.
    pub fn a0(mut self, a0: f64) -> Self {
        self.a0 = a0;
        self
    }

    /// Overrides the coupling strength `c₀`. By default it follows Goto's
    /// prescription `c₀ = a₀ / (2·σ_J·√N)`.
    pub fn c0(mut self, c0: f64) -> Self {
        self.c0 = Some(c0);
        self
    }

    /// Sets the RNG seed used for the initial positions/momenta.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the coupling-field arithmetic.
    /// [`KernelPrecision::I16`] runs dSB's field accumulation over the
    /// problem's fixed-point companion CSR with integer sign masks (see
    /// the crate-level discussion of the quantized kernel); it requires
    /// [`SbVariant::Discrete`] — any other variant is rejected by
    /// [`validate`](SbSolver::validate)/[`try_solve`](SbSolver::try_solve) —
    /// and falls back to `F64` arithmetic on problems without a quantized
    /// companion (`IsingProblem::quantized()` returning `None`).
    pub fn precision(mut self, p: KernelPrecision) -> Self {
        self.precision = p;
        self
    }

    /// Sets the amplitude of the random initial state (default `0.1`).
    pub fn init_amplitude(mut self, amp: f64) -> Self {
        self.init_amplitude = amp;
        self
    }

    /// Resolved `c₀` for `problem`.
    pub fn resolve_c0(&self, problem: &IsingProblem) -> f64 {
        match self.c0 {
            Some(c) => c,
            None => {
                let sigma = problem.coupling_rms();
                let n = problem.num_spins().max(1) as f64;
                if sigma > 0.0 {
                    0.5 * self.a0 / (sigma * n.sqrt())
                } else {
                    // Bias-only problem: scale against the largest field.
                    let m = problem.max_abs_coefficient();
                    if m > 0.0 {
                        self.a0 / m
                    } else {
                        1.0
                    }
                }
            }
        }
    }

    /// Checks every configuration constraint: `dt > 0`, `a0 > 0` (both
    /// finite), a non-empty pump ramp, a finite non-negative initial-state
    /// amplitude, and a well-formed stop criterion
    /// ([`StopCriterion::validate`]).
    pub fn validate(&self) -> Result<(), crate::ConfigError> {
        if !(self.dt > 0.0 && self.dt.is_finite()) {
            return Err(crate::ConfigError::NonPositiveDt(self.dt));
        }
        if !(self.a0 > 0.0 && self.a0.is_finite()) {
            return Err(crate::ConfigError::NonPositiveA0(self.a0));
        }
        if self.ramp == Some(0) {
            return Err(crate::ConfigError::ZeroRamp);
        }
        if !(self.init_amplitude >= 0.0 && self.init_amplitude.is_finite()) {
            return Err(crate::ConfigError::InvalidInitAmplitude(self.init_amplitude));
        }
        if self.precision == KernelPrecision::I16 && self.variant != SbVariant::Discrete {
            return Err(crate::ConfigError::PrecisionRequiresDiscrete);
        }
        self.stop.validate()
    }

    /// Runs the solver.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`try_solve`](SbSolver::try_solve) for the fallible form).
    pub fn solve(&self, problem: &IsingProblem) -> SbResult {
        self.solve_with(problem, |_| {}, &mut NullObserver)
    }

    /// Runs the solver, or reports why the configuration cannot run.
    pub fn try_solve(&self, problem: &IsingProblem) -> Result<SbResult, crate::ConfigError> {
        self.validate()?;
        Ok(self.solve(problem))
    }

    /// [`solve_batch`](SbSolver::solve_batch), with configuration errors
    /// (including `replicas == 0`) reported instead of panicking.
    pub fn try_solve_batch(
        &self,
        problem: &IsingProblem,
        replicas: usize,
    ) -> Result<SbResult, crate::ConfigError> {
        if replicas == 0 {
            return Err(crate::ConfigError::ZeroReplicas);
        }
        self.validate()?;
        Ok(self.solve_batch(problem, replicas))
    }

    /// The observer-generic entry point: runs the solver, invoking
    /// `intervene` on the integrator state at every sampling point (the
    /// hook used by the paper's type-reset heuristic, Section 3.3.2) and
    /// reporting the trajectory to `observer` — one
    /// [`sb_start`](SolveObserver::sb_start), an
    /// [`sb_sample`](SolveObserver::sb_sample) per sampling point (energy,
    /// running best, mean oscillator amplitude `⟨|x|⟩`), and an
    /// [`sb_stop`](SolveObserver::sb_stop) with the stop reason.
    ///
    /// The hook may rewrite positions/momenta in place; the integration
    /// continues from the modified state, and samples are reported after
    /// the hook ran. Pass `|_| {}` when no intervention is needed; passing
    /// [`NullObserver`] makes this identical to [`solve`](SbSolver::solve) —
    /// the observer is a generic parameter, so the empty inline hooks
    /// compile away and no per-sample payload (the amplitude mean) is even
    /// computed.
    pub fn solve_with<F, O>(
        &self,
        problem: &IsingProblem,
        intervene: F,
        observer: &mut O,
    ) -> SbResult
    where
        F: FnMut(&mut SbState<'_>),
        O: SolveObserver,
    {
        let mut scratch = SbScratch::new();
        self.solve_in(problem, &mut scratch, intervene, observer)
    }

    /// [`solve_with`](SbSolver::solve_with), reusing caller-owned
    /// integration buffers instead of allocating per solve.
    ///
    /// Every buffer is (re)sized and overwritten before use, so the result
    /// is bit-identical to a fresh-allocation run — `scratch` only recycles
    /// capacity. Sweeps solving many instances should hold scratches in a
    /// [`ScratchPool`](crate::ScratchPool) so allocations are bounded by
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`try_solve`](SbSolver::try_solve) for the fallible form).
    pub fn solve_in<F, O>(
        &self,
        problem: &IsingProblem,
        scratch: &mut SbScratch,
        mut intervene: F,
        observer: &mut O,
    ) -> SbResult
    where
        F: FnMut(&mut SbState<'_>),
        O: SolveObserver,
    {
        if let Err(e) = self.validate() {
            panic!("invalid SbSolver configuration: {e}");
        }
        let n = problem.num_spins();
        let _span = trace_span!("SbSolver::solve {:?} n={n}", self.variant);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        scratch.reset(n);
        let SbScratch { x, y, field, signs } = scratch;
        // RNG draw order (x fully, then y fully) matches the historical
        // per-solve allocation path, keeping seeds bit-compatible.
        for v in x.iter_mut() {
            *v = rng.gen_range(-self.init_amplitude..=self.init_amplitude);
        }
        for v in y.iter_mut() {
            *v = rng.gen_range(-self.init_amplitude..=self.init_amplitude);
        }
        let c0 = self.resolve_c0(problem);
        let max_iters = self.stop.max_iterations();
        let sample_every = self.stop.sample_every();
        let mut stop_state = StopState::new(self.stop.clone());

        let mut best_state = SpinVector::from_signs(x);
        let mut best_energy = problem.energy(&best_state);
        // Every run samples at most ⌈max_iters / sample_every⌉ times plus
        // the forced final sample; reserve up front so the trace never
        // reallocates mid-integration.
        let mut trace = Vec::with_capacity(max_iters / sample_every + 1);
        let mut stop_reason = StopReason::IterationLimit;
        let mut iterations = max_iters;
        observer.sb_start(n, max_iters);

        let ramp = self.ramp.unwrap_or(max_iters).min(max_iters).max(1);
        // With an explicit (shorter) ramp, defer the steady-state check
        // until the pump completes; the paper's default (ramp == budget)
        // applies the criterion throughout.
        let settle_after = self.ramp.map(|r| r.min(max_iters)).unwrap_or(0);
        // Reduced-precision dSB: accumulate the field over the fixed-point
        // companion CSR in i32, in the same row order as the batch kernel
        // (integer adds are associative, so the two are bit-identical).
        let quantized = match self.precision {
            KernelPrecision::I16 => problem.quantized(),
            KernelPrecision::F64 => None,
        };
        for t in 0..max_iters {
            // Linear pump ramp a(t): 0 → a0 over `ramp` iterations.
            let a_t = self.a0 * ((t as f64 / ramp as f64).min(1.0));
            match self.variant {
                SbVariant::Ballistic => {
                    problem.field(x, field);
                    for i in 0..n {
                        y[i] += (-(self.a0 - a_t) * x[i] + c0 * field[i]) * self.dt;
                    }
                }
                SbVariant::Discrete => {
                    if let Some(q) = quantized {
                        let (row_ptr, cols, _) = problem.csr();
                        let (qw, qb) = (q.weights(), q.biases());
                        let inv = 1.0 / q.scale();
                        for i in 0..n {
                            let mut acc = qb[i];
                            for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                                let v = i32::from(qw[e]);
                                acc += if x[cols[e] as usize] >= 0.0 { v } else { -v };
                            }
                            field[i] = f64::from(acc) * inv;
                        }
                    } else {
                        for i in 0..n {
                            signs[i] = if x[i] >= 0.0 { 1.0 } else { -1.0 };
                        }
                        problem.field(signs, field);
                    }
                    for i in 0..n {
                        y[i] += (-(self.a0 - a_t) * x[i] + c0 * field[i]) * self.dt;
                    }
                }
                SbVariant::Adiabatic => {
                    problem.field(x, field);
                    for i in 0..n {
                        y[i] += (-x[i] * x[i] * x[i] - (self.a0 - a_t) * x[i]
                            + c0 * field[i])
                            * self.dt;
                    }
                }
            }
            for i in 0..n {
                x[i] += self.a0 * y[i] * self.dt;
            }
            if self.variant != SbVariant::Adiabatic {
                // Perfectly inelastic walls at ±1.
                for i in 0..n {
                    if x[i].abs() > 1.0 {
                        x[i] = x[i].signum();
                        y[i] = 0.0;
                    }
                }
            }

            if (t + 1) % sample_every == 0 || t + 1 == max_iters {
                let mut state = SbState {
                    x: &mut x[..],
                    y: &mut y[..],
                    iteration: t + 1,
                };
                intervene(&mut state);
                let readout = SpinVector::from_signs(x);
                let energy = problem.energy(&readout);
                trace.push((t + 1, energy));
                if energy < best_energy {
                    best_energy = energy;
                    best_state = readout;
                }
                if observer.enabled() {
                    let mean_amp = if n > 0 {
                        x.iter().map(|v| v.abs()).sum::<f64>() / n as f64
                    } else {
                        0.0
                    };
                    observer.sb_sample(t + 1, energy, best_energy, mean_amp);
                }
                // Steady state is only judged after the pump has ramped.
                if t + 1 >= settle_after && stop_state.record(energy) {
                    stop_reason = StopReason::EnergySettled;
                    iterations = t + 1;
                    break;
                }
            }
        }
        observer.sb_stop(iterations, best_energy, stop_reason == StopReason::EnergySettled);

        SbResult {
            best_state,
            best_energy,
            iterations,
            stop_reason,
            trace,
        }
    }

    /// Runs `replicas` independent trajectories (seeds `seed..seed+replicas`)
    /// and keeps the best result.
    ///
    /// All replicas advance through the structure-of-arrays batch
    /// integrator ([`solve_batch_with`](SbSolver::solve_batch_with)) in a
    /// single pass, so the coupling matrix is read once per iteration for
    /// the whole batch. The result is bit-identical to the sequential loop
    /// this replaces: replica `r` still integrates from seed `seed + r`
    /// with the same floating-point operation order, and on equal best
    /// energies the lowest-index replica wins.
    ///
    /// Allocates a fresh [`SbBatchScratch`] per call; use
    /// [`solve_batch_in`](SbSolver::solve_batch_in) to reuse caller-owned
    /// buffers across batches.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or the configuration is invalid (see
    /// [`try_solve_batch`](SbSolver::try_solve_batch) for the fallible
    /// form).
    pub fn solve_batch(&self, problem: &IsingProblem, replicas: usize) -> SbResult {
        let mut scratch = SbBatchScratch::new();
        self.solve_batch_in(problem, replicas, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_ising::{solve_exhaustive, IsingBuilder};

    fn random_problem(n: usize, seed: u64) -> IsingProblem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = IsingBuilder::new(n);
        for i in 0..n {
            b.add_bias(i, rng.gen_range(-1.0..1.0));
            for j in (i + 1)..n {
                b.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        b.build()
    }

    #[test]
    fn solves_ferromagnetic_chain() {
        let p = IsingBuilder::new(8)
            .coupling(0, 1, 1.0)
            .coupling(1, 2, 1.0)
            .coupling(2, 3, 1.0)
            .coupling(3, 4, 1.0)
            .coupling(4, 5, 1.0)
            .coupling(5, 6, 1.0)
            .coupling(6, 7, 1.0)
            .build();
        for variant in [SbVariant::Ballistic, SbVariant::Discrete, SbVariant::Adiabatic] {
            let r = SbSolver::new().variant(variant).seed(1).solve(&p);
            assert_eq!(r.best_energy, -7.0, "{variant:?} must find the ground state");
        }
    }

    #[test]
    fn near_ground_state_on_random_instances() {
        // bSB is the fast-but-approximate variant (Goto 2021): demand it
        // lands within 10% of the ground energy, while dSB — the
        // accuracy-oriented variant — should find the exact ground state on
        // these small dense instances.
        for seed in 0..5 {
            let p = random_problem(10, seed);
            let exact = solve_exhaustive(&p);
            let b = SbSolver::new().seed(seed).solve_batch(&p, 16);
            assert!(
                b.best_energy <= exact.energy * (1.0 - 0.10) + 1e-9,
                "seed {seed}: bSB {} vs exact {}",
                b.best_energy,
                exact.energy
            );
            let d = SbSolver::new()
                .variant(SbVariant::Discrete)
                .seed(seed)
                .solve_batch(&p, 16);
            assert!(
                d.best_energy <= exact.energy + 1e-9,
                "seed {seed}: dSB {} vs exact {}",
                d.best_energy,
                exact.energy
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = random_problem(12, 3);
        let a = SbSolver::new().seed(7).solve(&p);
        let b = SbSolver::new().seed(7).solve(&p);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn dynamic_stop_terminates_early() {
        let p = random_problem(8, 5);
        let r = SbSolver::new()
            .stop(StopCriterion::DynamicVariance {
                sample_every: 5,
                window: 5,
                threshold: 1e-8,
                max_iterations: 100_000,
            })
            .seed(2)
            .solve(&p);
        assert_eq!(r.stop_reason, StopReason::EnergySettled);
        assert!(r.iterations < 100_000);
    }

    #[test]
    fn intervention_hook_fires_and_can_rewrite() {
        let p = random_problem(6, 8);
        let mut calls = 0;
        let r = SbSolver::new()
            .stop(StopCriterion::FixedIterations(100))
            .solve_with(
                &p,
                |state| {
                    calls += 1;
                    // Clamp spin 0 positive: the readout must respect it.
                    state.x[0] = 1.0;
                    state.y[0] = 0.0;
                },
                &mut NullObserver,
            );
        assert!(calls > 0);
        assert_eq!(r.best_state.get(0), 1);
    }

    #[test]
    fn trace_is_recorded_and_monotone_in_iteration() {
        let p = random_problem(6, 9);
        let r = SbSolver::new()
            .stop(StopCriterion::FixedIterations(200))
            .solve(&p);
        assert!(!r.trace.is_empty());
        assert!(r.trace.windows(2).all(|w| w[0].0 < w[1].0));
        let min_trace = r.trace.iter().map(|&(_, e)| e).fold(f64::INFINITY, f64::min);
        assert!((r.best_energy - min_trace).abs() < 1e-12 || r.best_energy < min_trace);
    }

    #[test]
    fn batch_is_no_worse_than_single() {
        let p = random_problem(12, 11);
        let single = SbSolver::new().seed(0).solve(&p);
        let batch = SbSolver::new().seed(0).solve_batch(&p, 6);
        assert!(batch.best_energy <= single.best_energy + 1e-12);
    }

    #[test]
    fn positions_stay_walled_for_bsb() {
        let p = random_problem(5, 13);
        // Interventions see x during the run; verify walls hold there.
        SbSolver::new()
            .stop(StopCriterion::FixedIterations(500))
            .solve_with(
                &p,
                |state| {
                    assert!(state.x.iter().all(|&v| v.abs() <= 1.0 + 1e-12));
                },
                &mut NullObserver,
            );
    }

    #[test]
    fn null_observer_changes_nothing() {
        // The disabled observer must add no samples and leave the solve
        // byte-identical: same best state/energy, same trace, and the
        // amplitude payload is never even computed (observer disabled).
        use adis_telemetry::NullObserver;
        let p = random_problem(10, 21);
        let plain = SbSolver::new().seed(4).solve(&p);
        let observed = SbSolver::new()
            .seed(4)
            .solve_with(&p, |_| {}, &mut NullObserver);
        assert_eq!(plain.best_state, observed.best_state);
        assert_eq!(plain.best_energy, observed.best_energy);
        assert_eq!(plain.trace, observed.trace);
        assert_eq!(plain.iterations, observed.iterations);
        assert_eq!(std::mem::size_of::<NullObserver>(), 0);
    }

    #[test]
    fn observer_sees_every_sample_and_the_stop() {
        use adis_telemetry::Recorder;
        let p = random_problem(8, 22);
        let mut rec = Recorder::new();
        let r = SbSolver::new()
            .stop(StopCriterion::FixedIterations(200))
            .seed(1)
            .solve_with(&p, |_| {}, &mut rec);
        // One sb_sample per trace entry, in the same order.
        assert_eq!(rec.trajectory.samples(), r.trace.as_slice());
        assert_eq!(rec.sb.runs, 1);
        assert_eq!(rec.sb.total_iterations, r.iterations);
        assert_eq!(rec.sb.settled, 0);
        assert_eq!(rec.sb.best_energy, r.best_energy);
        // Amplitudes were computed and lie in the walled range.
        assert!(rec.sb.samples > 0);
    }

    #[test]
    fn parallel_batch_matches_sequential_selection() {
        let p = random_problem(12, 23);
        let solver = SbSolver::new().seed(5);
        let batch = solver.solve_batch(&p, 8);
        // Recompute the sequential reference selection.
        let mut best: Option<SbResult> = None;
        for r in 0..8u64 {
            let result = solver.clone().seed(5 + r).solve(&p);
            best = Some(match best {
                None => result,
                Some(b) if result.best_energy < b.best_energy => result,
                Some(b) => b,
            });
        }
        let best = best.unwrap();
        assert_eq!(batch.best_state, best.best_state);
        assert_eq!(batch.best_energy, best.best_energy);
        assert_eq!(batch.trace, best.trace);
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        // Solving problems of different sizes through one dirty scratch
        // must match fresh-allocation solves exactly.
        let mut scratch = SbScratch::new();
        for (n, seed) in [(12usize, 31u64), (5, 32), (9, 33)] {
            let p = random_problem(n, seed);
            let solver = SbSolver::new().seed(seed);
            let fresh = solver.solve(&p);
            let reused = solver.solve_in(&p, &mut scratch, |_| {}, &mut NullObserver);
            assert_eq!(fresh.best_state, reused.best_state);
            assert_eq!(fresh.best_energy, reused.best_energy);
            assert_eq!(fresh.trace, reused.trace);
            assert_eq!(fresh.iterations, reused.iterations);
        }
    }

    #[test]
    fn degenerate_sample_period_does_not_panic() {
        // Regression: `DynamicVariance { sample_every: 0, .. }` must be
        // normalized to 1, not reach the integrator's `%` untouched.
        let p = random_problem(6, 77);
        let criterion = StopCriterion::DynamicVariance {
            sample_every: 0,
            window: 3,
            threshold: 1e-12,
            max_iterations: 50,
        };
        let r = SbSolver::new().stop(criterion.clone()).seed(1).solve(&p);
        assert!(!r.trace.is_empty());
        let b = SbSolver::new().stop(criterion).seed(1).solve_batch(&p, 3);
        assert!(!b.trace.is_empty());
    }

    #[test]
    fn invalid_configs_are_config_errors_not_builder_panics() {
        use crate::ConfigError;
        let p = random_problem(4, 1);
        // Setters never panic; the error surfaces at the solve boundary.
        let cases: Vec<(SbSolver, ConfigError)> = vec![
            (SbSolver::new().dt(0.0), ConfigError::NonPositiveDt(0.0)),
            (SbSolver::new().dt(-0.5), ConfigError::NonPositiveDt(-0.5)),
            (
                SbSolver::new().dt(f64::INFINITY),
                ConfigError::NonPositiveDt(f64::INFINITY),
            ),
            (SbSolver::new().a0(0.0), ConfigError::NonPositiveA0(0.0)),
            (SbSolver::new().ramp(0), ConfigError::ZeroRamp),
            (
                SbSolver::new().init_amplitude(-0.1),
                ConfigError::InvalidInitAmplitude(-0.1),
            ),
            (
                SbSolver::new().stop(StopCriterion::DynamicVariance {
                    sample_every: 5,
                    window: 1,
                    threshold: 1e-8,
                    max_iterations: 100,
                }),
                ConfigError::DegenerateWindow(1),
            ),
            (
                SbSolver::new().precision(crate::KernelPrecision::I16),
                ConfigError::PrecisionRequiresDiscrete,
            ),
            (
                SbSolver::new()
                    .variant(SbVariant::Adiabatic)
                    .precision(crate::KernelPrecision::I16),
                ConfigError::PrecisionRequiresDiscrete,
            ),
        ];
        for (solver, expected) in cases {
            assert_eq!(solver.validate(), Err(expected));
            assert_eq!(solver.try_solve(&p).unwrap_err(), expected);
            assert_eq!(solver.try_solve_batch(&p, 2).unwrap_err(), expected);
        }
        // NaN compares unequal to itself; check the variant shape instead.
        assert!(matches!(
            SbSolver::new().dt(f64::NAN).validate(),
            Err(ConfigError::NonPositiveDt(d)) if d.is_nan()
        ));
        assert_eq!(
            SbSolver::new().try_solve_batch(&p, 0).unwrap_err(),
            ConfigError::ZeroReplicas
        );
        // A valid config round-trips through the fallible entry points.
        let ok = SbSolver::new().seed(3);
        let direct = ok.solve(&p);
        let fallible = ok.try_solve(&p).unwrap();
        assert_eq!(direct.best_state, fallible.best_state);
        assert_eq!(direct.trace, fallible.trace);
    }

    #[test]
    #[should_panic(expected = "invalid SbSolver configuration")]
    fn infallible_solve_panics_with_display_message() {
        let p = random_problem(3, 2);
        SbSolver::new().dt(0.0).solve(&p);
    }

    #[test]
    #[should_panic(expected = "invalid SbSolver configuration")]
    fn infallible_batch_panics_with_display_message() {
        let p = random_problem(3, 2);
        SbSolver::new().a0(-1.0).solve_batch(&p, 2);
    }

    #[test]
    fn c0_auto_positive() {
        let p = random_problem(7, 17);
        assert!(SbSolver::new().resolve_c0(&p) > 0.0);
        let bias_only = IsingBuilder::new(3).bias(0, 2.0).build();
        assert!(SbSolver::new().resolve_c0(&bias_only) > 0.0);
        let empty = IsingBuilder::new(3).build();
        assert_eq!(SbSolver::new().resolve_c0(&empty), 1.0);
    }
}
