//! Stop criteria for the Euler integration, including the paper's dynamic
//! variance-based criterion (Section 3.3.1).

use std::collections::VecDeque;

/// When to stop the SB Euler integration.
#[derive(Debug, Clone, PartialEq)]
pub enum StopCriterion {
    /// Run exactly this many iterations (the conventional choice).
    FixedIterations(usize),
    /// The paper's dynamic criterion: sample the energy every
    /// `sample_every` iterations (`f`), keep the last `window` samples
    /// (`s`), and stop once their variance drops below `threshold` (`ε`).
    /// `max_iterations` bounds the search if the system never settles.
    DynamicVariance {
        /// Sampling period `f` in iterations.
        sample_every: usize,
        /// Number of retained samples `s`.
        window: usize,
        /// Variance threshold `ε`.
        threshold: f64,
        /// Hard iteration cap.
        max_iterations: usize,
    },
}

impl StopCriterion {
    /// The paper's large-scale (`n = 16`) setting: `f = s = 10`, `ε = 1e-8`.
    pub fn paper_large() -> Self {
        StopCriterion::DynamicVariance {
            sample_every: 10,
            window: 10,
            threshold: 1e-8,
            max_iterations: 10_000,
        }
    }

    /// The paper's small-scale (`n = 9`) setting: `f = s = 20`, `ε = 1e-8`.
    pub fn paper_small() -> Self {
        StopCriterion::DynamicVariance {
            sample_every: 20,
            window: 20,
            threshold: 1e-8,
            max_iterations: 10_000,
        }
    }

    /// Upper bound on iterations implied by the criterion.
    pub fn max_iterations(&self) -> usize {
        match *self {
            StopCriterion::FixedIterations(n) => n,
            StopCriterion::DynamicVariance { max_iterations, .. } => max_iterations,
        }
    }

    /// Sampling period: how often the run should evaluate its energy (also
    /// the cadence at which interventions fire). Always at least 1 — the
    /// integrators take `iteration % sample_every`, so a zero period (a
    /// `DynamicVariance { sample_every: 0, .. }` or a tiny fixed budget)
    /// must never escape this accessor.
    pub fn sample_every(&self) -> usize {
        let raw = match *self {
            // Sample fixed runs occasionally so traces/interventions work.
            StopCriterion::FixedIterations(n) => n / 50,
            StopCriterion::DynamicVariance { sample_every, .. } => sample_every,
        };
        raw.max(1)
    }

    /// Retained-sample count `s` for the dynamic criterion, normalized to
    /// at least 2: the variance of fewer than two samples is identically 0,
    /// so a smaller window would stop on the very first sample regardless
    /// of the threshold. Configurations with `window < 2` are rejected by
    /// [`validate`](StopCriterion::validate); this accessor is the
    /// defense-in-depth for states built without validation. Returns 2 for
    /// fixed criteria (which never evaluate a window).
    pub fn window(&self) -> usize {
        match *self {
            StopCriterion::FixedIterations(_) => 2,
            StopCriterion::DynamicVariance { window, .. } => window.max(2),
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The fixed/maximum iteration count was reached.
    IterationLimit,
    /// The dynamic variance criterion fired.
    EnergySettled,
}

/// Streaming evaluator for a [`StopCriterion`]: feed it sampled energies,
/// ask whether to stop.
#[derive(Debug, Clone)]
pub struct StopState {
    criterion: StopCriterion,
    samples: VecDeque<f64>,
}

impl StopState {
    /// Creates the evaluator for `criterion`.
    pub fn new(criterion: StopCriterion) -> Self {
        StopState {
            criterion,
            samples: VecDeque::new(),
        }
    }

    /// Records a sampled energy; returns `true` if the run should stop now.
    pub fn record(&mut self, energy: f64) -> bool {
        match self.criterion {
            StopCriterion::FixedIterations(_) => false,
            StopCriterion::DynamicVariance { threshold, .. } => {
                // The normalized window (≥ 2): a raw window of 0/1 would
                // make `variance() == 0.0 < threshold` true after the very
                // first sample.
                let window = self.criterion.window();
                self.samples.push_back(energy);
                if self.samples.len() > window {
                    self.samples.pop_front();
                }
                self.samples.len() == window && self.variance() < threshold
            }
        }
    }

    /// Variance of the retained samples (population variance; 0 for < 2
    /// samples).
    pub fn variance(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean: f64 = self.samples.iter().sum::<f64>() / n as f64;
        self.samples
            .iter()
            .map(|&e| (e - mean) * (e - mean))
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_never_stops_early() {
        let mut s = StopState::new(StopCriterion::FixedIterations(100));
        for i in 0..200 {
            assert!(!s.record(i as f64));
        }
    }

    #[test]
    fn dynamic_stops_on_constant_energy() {
        let c = StopCriterion::DynamicVariance {
            sample_every: 1,
            window: 5,
            threshold: 1e-8,
            max_iterations: 1000,
        };
        let mut s = StopState::new(c);
        // Needs a full window before it can fire.
        for _ in 0..4 {
            assert!(!s.record(3.0));
        }
        assert!(s.record(3.0));
    }

    #[test]
    fn dynamic_keeps_running_when_noisy() {
        let c = StopCriterion::DynamicVariance {
            sample_every: 1,
            window: 4,
            threshold: 1e-8,
            max_iterations: 1000,
        };
        let mut s = StopState::new(c);
        for i in 0..50 {
            assert!(!s.record(if i % 2 == 0 { 1.0 } else { -1.0 }));
        }
    }

    #[test]
    fn window_slides() {
        let c = StopCriterion::DynamicVariance {
            sample_every: 1,
            window: 3,
            threshold: 1e-6,
            max_iterations: 1000,
        };
        let mut s = StopState::new(c);
        // Noisy prefix followed by a settled tail: must stop once the
        // window contains only the tail.
        assert!(!s.record(10.0));
        assert!(!s.record(-10.0));
        assert!(!s.record(5.0));
        assert!(!s.record(5.0));
        assert!(s.record(5.0));
    }

    #[test]
    fn variance_matches_definition() {
        let c = StopCriterion::DynamicVariance {
            sample_every: 1,
            window: 3,
            threshold: 0.0,
            max_iterations: 10,
        };
        let mut s = StopState::new(c);
        s.record(1.0);
        s.record(2.0);
        s.record(3.0);
        // mean 2, var = (1 + 0 + 1)/3
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_presets() {
        assert_eq!(StopCriterion::paper_large().sample_every(), 10);
        assert_eq!(StopCriterion::paper_small().sample_every(), 20);
    }

    #[test]
    fn sample_every_is_never_zero() {
        // Regression: a zero period would `% 0` inside the integrators.
        assert_eq!(StopCriterion::FixedIterations(0).sample_every(), 1);
        assert_eq!(StopCriterion::FixedIterations(49).sample_every(), 1);
        let degenerate = StopCriterion::DynamicVariance {
            sample_every: 0,
            window: 5,
            threshold: 1e-8,
            max_iterations: 100,
        };
        assert_eq!(degenerate.sample_every(), 1);
    }

    #[test]
    fn degenerate_window_never_stops_on_first_sample() {
        // Regression: with window 0 or 1 the retained-sample variance is
        // identically 0, so an unclamped check would report "settled" on
        // the very first sample even though the energy is still moving.
        for window in [0, 1] {
            let c = StopCriterion::DynamicVariance {
                sample_every: 1,
                window,
                threshold: 1e-8,
                max_iterations: 1000,
            };
            assert_eq!(c.window(), 2);
            let mut s = StopState::new(c);
            assert!(!s.record(5.0), "window {window}: must not stop after one sample");
            assert!(!s.record(-5.0), "window {window}: variance is huge here");
            // Two equal samples now fill the clamped window: settles.
            let mut settled = StopState::new(StopCriterion::DynamicVariance {
                sample_every: 1,
                window,
                threshold: 1e-8,
                max_iterations: 1000,
            });
            assert!(!settled.record(3.0));
            assert!(settled.record(3.0));
        }
        // Well-formed windows are untouched.
        let c = StopCriterion::DynamicVariance {
            sample_every: 1,
            window: 7,
            threshold: 1e-8,
            max_iterations: 1000,
        };
        assert_eq!(c.window(), 7);
        assert_eq!(StopCriterion::FixedIterations(10).window(), 2);
    }
}
