//! Exact disjoint decomposition: the row-based (Theorem 1) and column-based
//! (Theorem 2) characterizations, decomposition settings, and extraction of
//! the sub-functions `φ` and `F` with `g(X) = F(φ(B), A)`.

use crate::{BitVec, BooleanMatrix, Partition, TruthTable};

/// The four admissible row types of Theorem 1.
///
/// Paper numbering: 1 = all zeros, 2 = all ones, 3 = the fixed pattern `V`,
/// 4 = the complement of `V`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowType {
    /// All-zeros row (paper type 1).
    Zeros,
    /// All-ones row (paper type 2).
    Ones,
    /// The fixed pattern `V` (paper type 3).
    Pattern,
    /// The complement of `V` (paper type 4).
    Complement,
}

impl RowType {
    /// The paper's 1-based type index.
    pub fn paper_index(self) -> u8 {
        match self {
            RowType::Zeros => 1,
            RowType::Ones => 2,
            RowType::Pattern => 3,
            RowType::Complement => 4,
        }
    }

    /// Parses the paper's 1-based type index.
    pub fn from_paper_index(idx: u8) -> Option<Self> {
        match idx {
            1 => Some(RowType::Zeros),
            2 => Some(RowType::Ones),
            3 => Some(RowType::Pattern),
            4 => Some(RowType::Complement),
            _ => None,
        }
    }
}

/// A row-based decomposition setting `(V, S)` for a fixed partition:
/// the row pattern `V` (length `c`) and the per-row type vector `S`
/// (length `r`).
///
/// Together with the partition this determines the (possibly approximate)
/// function value at every matrix cell; see [`RowSetting::value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSetting {
    /// The fixed row pattern `V`, one bit per column.
    pub v: BitVec,
    /// Row types, one per row.
    pub s: Vec<RowType>,
}

impl RowSetting {
    /// The matrix value implied by the setting at `(i, j)`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> bool {
        match self.s[i] {
            RowType::Zeros => false,
            RowType::Ones => true,
            RowType::Pattern => self.v.get(j),
            RowType::Complement => !self.v.get(j),
        }
    }

    /// Number of rows `r`.
    pub fn rows(&self) -> usize {
        self.s.len()
    }

    /// Number of columns `c`.
    pub fn cols(&self) -> usize {
        self.v.len()
    }

    /// Number of cells where the setting disagrees with `m`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mismatch_count(&self, m: &BooleanMatrix) -> usize {
        assert_eq!(m.rows(), self.rows(), "row count mismatch");
        assert_eq!(m.cols(), self.cols(), "column count mismatch");
        let mut n = 0;
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                if self.value(i, j) != m.get(i, j) {
                    n += 1;
                }
            }
        }
        n
    }

    /// The bound-set function `φ(B)`: its truth table over `|B|` inputs is
    /// exactly `V`.
    pub fn phi(&self, w: &Partition) -> TruthTable {
        assert_eq!(w.cols(), self.cols(), "partition column count mismatch");
        TruthTable::from_bits(w.bound().len() as u32, self.v.clone())
    }

    /// The free-set function `F(φ, A)` over `|A| + 1` inputs. Input bit 0 is
    /// the `φ` value; input bit `1 + t` is row bit `t` (variable `A[t]`).
    pub fn compose_f(&self, w: &Partition) -> TruthTable {
        assert_eq!(w.rows(), self.rows(), "partition row count mismatch");
        let a = w.free().len() as u32;
        TruthTable::from_fn(a + 1, |p| {
            let phi = p & 1 == 1;
            let i = (p >> 1) as usize;
            match self.s[i] {
                RowType::Zeros => false,
                RowType::Ones => true,
                RowType::Pattern => phi,
                RowType::Complement => !phi,
            }
        })
    }

    /// The full function the setting represents, as a truth table over the
    /// original `n` inputs.
    pub fn reconstruct(&self, w: &Partition) -> TruthTable {
        TruthTable::from_fn(w.inputs(), |p| {
            let (i, j) = w.split(p);
            self.value(i, j)
        })
    }

    /// Converts to the equivalent column-based setting: columns where
    /// `V_j = 0` form pattern 1, columns where `V_j = 1` form pattern 2
    /// (so `T = V`).
    pub fn to_column_setting(&self) -> ColumnSetting {
        let r = self.rows();
        let v1 = BitVec::from_fn(r, |i| match self.s[i] {
            RowType::Zeros => false,
            RowType::Ones => true,
            RowType::Pattern => false,
            RowType::Complement => true,
        });
        let v2 = BitVec::from_fn(r, |i| match self.s[i] {
            RowType::Zeros => false,
            RowType::Ones => true,
            RowType::Pattern => true,
            RowType::Complement => false,
        });
        ColumnSetting {
            v1,
            v2,
            t: self.v.clone(),
        }
    }
}

/// A column-based decomposition setting `(V₁, V₂, T)` for a fixed partition
/// (Section 3.1 of the paper): two column patterns of length `r` and the
/// per-column type vector `T` of length `c` (`T_j = 0` selects `V₁`,
/// `T_j = 1` selects `V₂`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSetting {
    /// Column pattern 1 (selected where `T_j = 0`).
    pub v1: BitVec,
    /// Column pattern 2 (selected where `T_j = 1`).
    pub v2: BitVec,
    /// Column type vector.
    pub t: BitVec,
}

impl ColumnSetting {
    /// The matrix value implied by the setting at `(i, j)`:
    /// `Ô_ij = (1 − T_j)·V₁ᵢ + T_j·V₂ᵢ` (Eq. 3).
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> bool {
        if self.t.get(j) {
            self.v2.get(i)
        } else {
            self.v1.get(i)
        }
    }

    /// Number of rows `r`.
    pub fn rows(&self) -> usize {
        self.v1.len()
    }

    /// Number of columns `c`.
    pub fn cols(&self) -> usize {
        self.t.len()
    }

    /// Number of cells where the setting disagrees with `m`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mismatch_count(&self, m: &BooleanMatrix) -> usize {
        assert_eq!(m.rows(), self.rows(), "row count mismatch");
        assert_eq!(m.cols(), self.cols(), "column count mismatch");
        let mut n = 0;
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                if self.value(i, j) != m.get(i, j) {
                    n += 1;
                }
            }
        }
        n
    }

    /// The bound-set function `φ(B)`: its truth table is the type vector `T`.
    pub fn phi(&self, w: &Partition) -> TruthTable {
        assert_eq!(w.cols(), self.cols(), "partition column count mismatch");
        TruthTable::from_bits(w.bound().len() as u32, self.t.clone())
    }

    /// The free-set function `F(φ, A)` over `|A| + 1` inputs. Input bit 0 is
    /// the `φ` value (`F(0, i) = V₁ᵢ`, `F(1, i) = V₂ᵢ`); input bit `1 + t` is
    /// row bit `t`.
    pub fn compose_f(&self, w: &Partition) -> TruthTable {
        assert_eq!(w.rows(), self.rows(), "partition row count mismatch");
        let a = w.free().len() as u32;
        TruthTable::from_fn(a + 1, |p| {
            let i = (p >> 1) as usize;
            if p & 1 == 1 {
                self.v2.get(i)
            } else {
                self.v1.get(i)
            }
        })
    }

    /// The full function the setting represents, over the original inputs.
    pub fn reconstruct(&self, w: &Partition) -> TruthTable {
        TruthTable::from_fn(w.inputs(), |p| {
            let (i, j) = w.split(p);
            self.value(i, j)
        })
    }
}

/// Evaluates the decomposed form `F(φ(B), A)` back into a flat truth table.
///
/// `phi` must have `|B|` inputs and `f` must have `|A| + 1` inputs with the
/// `φ` value as input bit 0 (the convention produced by
/// [`RowSetting::compose_f`] / [`ColumnSetting::compose_f`]).
///
/// # Panics
///
/// Panics if the arities disagree with the partition.
pub fn apply_decomposition(phi: &TruthTable, f: &TruthTable, w: &Partition) -> TruthTable {
    assert_eq!(
        phi.inputs() as usize,
        w.bound().len(),
        "phi arity must equal |B|"
    );
    assert_eq!(
        f.inputs() as usize,
        w.free().len() + 1,
        "F arity must equal |A| + 1"
    );
    TruthTable::from_fn(w.inputs(), |p| {
        let (i, j) = w.split(p);
        let phi_val = phi.eval(j as u64);
        f.eval(((i as u64) << 1) | u64::from(phi_val))
    })
}

/// Checks Theorem 1 and, when it holds, returns a row-based setting.
///
/// A function decomposes over the partition iff every row of the Boolean
/// matrix is all-0, all-1, a common pattern `V`, or `V`'s complement.
pub fn find_row_setting(m: &BooleanMatrix) -> Option<RowSetting> {
    let (r, c) = (m.rows(), m.cols());
    let mut v: Option<BitVec> = None;
    let mut s = Vec::with_capacity(r);
    for i in 0..r {
        let row = m.row(i);
        if row.all_zeros() {
            s.push(RowType::Zeros);
        } else if row.all_ones() {
            s.push(RowType::Ones);
        } else {
            match &v {
                None => {
                    v = Some(row);
                    s.push(RowType::Pattern);
                }
                Some(pat) => {
                    if row == *pat {
                        s.push(RowType::Pattern);
                    } else if row.is_complement_of(pat) {
                        s.push(RowType::Complement);
                    } else {
                        return None;
                    }
                }
            }
        }
    }
    // All rows constant: any pattern works; pick all-zeros.
    let v = v.unwrap_or_else(|| BitVec::zeros(c));
    Some(RowSetting { v, s })
}

/// Checks Theorem 2 and, when it holds, returns a column-based setting.
///
/// A function decomposes over the partition iff the Boolean matrix has at
/// most two distinct column types.
pub fn find_column_setting(m: &BooleanMatrix) -> Option<ColumnSetting> {
    let distinct = m.distinct_columns();
    match distinct.len() {
        0 => None, // zero-column matrix cannot arise from a valid partition
        1 => {
            let col = distinct.into_iter().next().expect("one column");
            Some(ColumnSetting {
                v1: col.clone(),
                v2: col,
                t: BitVec::zeros(m.cols()),
            })
        }
        2 => {
            let mut it = distinct.into_iter();
            let v1 = it.next().expect("first column");
            let v2 = it.next().expect("second column");
            let t = BitVec::from_fn(m.cols(), |j| m.column(j) == v2);
            Some(ColumnSetting { v1, v2, t })
        }
        _ => None,
    }
}

/// Whether `table` has an exact disjoint decomposition over `w`
/// (row-based check).
pub fn is_row_decomposable(table: &TruthTable, w: &Partition) -> bool {
    find_row_setting(&BooleanMatrix::build(table, w)).is_some()
}

/// Whether `table` has an exact disjoint decomposition over `w`
/// (column-based check). Agrees with [`is_row_decomposable`] by the
/// equivalence of Theorems 1 and 2.
pub fn is_column_decomposable(table: &TruthTable, w: &Partition) -> bool {
    find_column_setting(&BooleanMatrix::build(table, w)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 re-indexed to our bit order: row index bit 0 = paper x1,
    /// column index bit 0 = paper x3 (see `matrix::tests::fig2_matrix`).
    fn fig2() -> (TruthTable, Partition, BooleanMatrix) {
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let rows = [
            [true, false, true, false],   // V in our column order
            [true, true, true, true],     // ones
            [false, false, false, false], // zeros
            [false, true, false, true],   // ~V
        ];
        let tt = TruthTable::from_fn(4, |p| {
            let (i, j) = w.split(p);
            rows[i][j]
        });
        let m = BooleanMatrix::build(&tt, &w);
        (tt, w, m)
    }

    #[test]
    fn fig2_row_setting_matches_paper() {
        let (_, _, m) = fig2();
        let s = find_row_setting(&m).expect("Fig. 2 is decomposable");
        // Paper: V = (1,1,0,0) in display order = (1,0,1,0) in our order;
        // S = (3,1,2,4) over display rows = (Pattern, Ones, Zeros, Complement)
        // over our rows.
        assert_eq!(s.v, BitVec::from_bools([true, false, true, false]));
        assert_eq!(
            s.s,
            vec![
                RowType::Pattern,
                RowType::Ones,
                RowType::Zeros,
                RowType::Complement
            ]
        );
        assert_eq!(s.mismatch_count(&m), 0);
    }

    #[test]
    fn fig2_column_setting() {
        let (_, _, m) = fig2();
        let s = find_column_setting(&m).expect("Fig. 2 is decomposable");
        assert_eq!(s.mismatch_count(&m), 0);
        // Paper: column types (1,0,1,0) and (0,0,1,1) in display order,
        // which re-index to (1,1,0,0) and (0,1,0,1) over our rows.
        assert_eq!(s.v1, BitVec::from_bools([true, true, false, false]));
        assert_eq!(s.v2, BitVec::from_bools([false, true, false, true]));
        assert_eq!(s.t, BitVec::from_bools([false, true, false, true]));
    }

    #[test]
    fn theorems_agree_on_fig2() {
        let (tt, w, _) = fig2();
        assert!(is_row_decomposable(&tt, &w));
        assert!(is_column_decomposable(&tt, &w));
    }

    #[test]
    fn reconstruct_round_trips() {
        let (tt, w, m) = fig2();
        let rs = find_row_setting(&m).unwrap();
        assert_eq!(rs.reconstruct(&w), tt);
        let cs = find_column_setting(&m).unwrap();
        assert_eq!(cs.reconstruct(&w), tt);
    }

    #[test]
    fn phi_matches_paper_example1() {
        // Example 1: φ(x3, x4) = !x3. Our bound vars are {x2, x3} 0-based,
        // with column bit 0 = x2 (the paper's x3).
        let (_, w, m) = fig2();
        let rs = find_row_setting(&m).unwrap();
        let phi = rs.phi(&w);
        for j in 0..4u64 {
            assert_eq!(phi.eval(j), j & 1 == 0, "phi must be NOT(column bit 0)");
        }
    }

    #[test]
    fn apply_decomposition_round_trips() {
        let (tt, w, m) = fig2();
        for setting_fns in [
            {
                let rs = find_row_setting(&m).unwrap();
                (rs.phi(&w), rs.compose_f(&w))
            },
            {
                let cs = find_column_setting(&m).unwrap();
                (cs.phi(&w), cs.compose_f(&w))
            },
        ] {
            let (phi, f) = setting_fns;
            assert_eq!(apply_decomposition(&phi, &f, &w), tt);
        }
    }

    #[test]
    fn row_to_column_conversion_preserves_values() {
        let (_, _, m) = fig2();
        let rs = find_row_setting(&m).unwrap();
        let cs = rs.to_column_setting();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(rs.value(i, j), cs.value(i, j));
            }
        }
    }

    #[test]
    fn non_decomposable_function_rejected() {
        // 3 distinct non-complementary rows: no decomposition.
        let rows = [
            [true, false, false, false],
            [false, true, false, false],
            [false, false, true, false],
            [false, false, false, true],
        ];
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let tt = TruthTable::from_fn(4, |p| {
            let (i, j) = w.split(p);
            rows[i][j]
        });
        assert!(!is_row_decomposable(&tt, &w));
        assert!(!is_column_decomposable(&tt, &w));
    }

    #[test]
    fn constant_function_decomposes() {
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let tt = TruthTable::constant(4, true);
        assert!(is_row_decomposable(&tt, &w));
        assert!(is_column_decomposable(&tt, &w));
    }

    #[test]
    fn row_type_paper_indices() {
        for idx in 1..=4 {
            let t = RowType::from_paper_index(idx).unwrap();
            assert_eq!(t.paper_index(), idx);
        }
        assert_eq!(RowType::from_paper_index(0), None);
        assert_eq!(RowType::from_paper_index(5), None);
    }
}
