//! Error metrics for approximate functions: error rate (ER), mean error
//! distance (MED), and friends, weighted by an input distribution.

use crate::{MultiOutputFn, TruthTable};
use std::fmt;

/// A probability distribution over the `2^n` input patterns.
///
/// The paper weights every error metric by the occurrence probability `p_X`
/// of each input pattern; the experiments use the uniform distribution, but
/// the machinery is generic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum InputDist {
    /// Every pattern equally likely.
    #[default]
    Uniform,
    /// Explicit per-pattern probabilities (must sum to 1 within tolerance).
    Explicit(Vec<f64>),
}

/// Error building an explicit [`InputDist`].
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// Probabilities must be non-negative.
    Negative(usize),
    /// Probabilities must sum to 1 (±1e-9 per entry).
    NotNormalized(f64),
    /// Length must be a power of two (one entry per input pattern).
    BadLength(usize),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Negative(i) => write!(f, "probability at index {i} is negative"),
            DistError::NotNormalized(s) => write!(f, "probabilities sum to {s}, expected 1"),
            DistError::BadLength(n) => write!(f, "length {n} is not a power of two"),
        }
    }
}

impl std::error::Error for DistError {}

impl InputDist {
    /// Builds an explicit distribution, validating it.
    ///
    /// # Errors
    ///
    /// Returns an error if any entry is negative, the length is not a power
    /// of two, or the sum deviates from 1 by more than `1e-6`.
    pub fn explicit(probs: Vec<f64>) -> Result<Self, DistError> {
        if !probs.len().is_power_of_two() {
            return Err(DistError::BadLength(probs.len()));
        }
        if let Some(i) = probs.iter().position(|&p| p < 0.0) {
            return Err(DistError::Negative(i));
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(DistError::NotNormalized(sum));
        }
        Ok(InputDist::Explicit(probs))
    }

    /// Probability of input pattern `pattern` among `2^inputs` patterns.
    ///
    /// # Supported width
    ///
    /// At most 63 inputs: the pattern space `2^inputs` must fit a `u64`
    /// (wider functions cannot be tabulated here anyway). Without this
    /// guard `1u64 << 64` would wrap to 1 in release builds and silently
    /// report probability 1 for every pattern.
    ///
    /// # Panics
    ///
    /// Panics if `inputs >= 64` or an explicit distribution's length
    /// disagrees with `inputs`.
    #[inline]
    pub fn prob(&self, pattern: u64, inputs: u32) -> f64 {
        assert!(
            inputs < 64,
            "InputDist supports at most 63 inputs (2^inputs patterns must fit a u64), got {inputs}"
        );
        match self {
            InputDist::Uniform => 1.0 / (1u64 << inputs) as f64,
            InputDist::Explicit(p) => {
                assert_eq!(
                    p.len() as u64,
                    1u64 << inputs,
                    "distribution length disagrees with input count"
                );
                p[pattern as usize]
            }
        }
    }
}

/// Error rate of a single-output approximation: `Σ_X p_X · [g(X) ≠ ĝ(X)]`.
///
/// # Panics
///
/// Panics if input counts differ.
pub fn error_rate(exact: &TruthTable, approx: &TruthTable, dist: &InputDist) -> f64 {
    assert_eq!(exact.inputs(), approx.inputs(), "input count mismatch");
    match dist {
        InputDist::Uniform => {
            exact.error_count(approx) as f64 / exact.num_entries() as f64
        }
        InputDist::Explicit(_) => {
            let n = exact.num_entries() as u64;
            (0..n)
                .filter(|&p| exact.eval(p) != approx.eval(p))
                .map(|p| dist.prob(p, exact.inputs()))
                .sum()
        }
    }
}

/// Error rate of a multi-output approximation: the probability that the
/// output *word* differs.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn error_rate_multi(exact: &MultiOutputFn, approx: &MultiOutputFn, dist: &InputDist) -> f64 {
    assert_eq!(exact.inputs(), approx.inputs(), "input count mismatch");
    assert_eq!(exact.outputs(), approx.outputs(), "output count mismatch");
    let n = exact.num_entries() as u64;
    (0..n)
        .filter(|&p| exact.eval_word(p) != approx.eval_word(p))
        .map(|p| dist.prob(p, exact.inputs()))
        .sum()
}

/// Mean error distance (Eq. 2):
/// `MED(G, Ĝ) = Σ_X p_X · |Bin(G(X)) − Bin(Ĝ(X))|`.
///
/// # Exactness
///
/// The per-pattern distance is an integer below `2^m` for `m` outputs
/// (output bit `l` carries word weight `2^{l-1}` in the paper's 1-based
/// indexing). Its conversion to `f64` — and hence the joint-mode objective
/// built from these distances — is exact only for `m ≤ 53` outputs; beyond
/// that the distance is correctly rounded to 53 significant bits, not
/// exact. Functions in this reproduction have `m ≤ 64` by construction
/// (words are `u64`).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mean_error_distance(
    exact: &MultiOutputFn,
    approx: &MultiOutputFn,
    dist: &InputDist,
) -> f64 {
    assert_eq!(exact.inputs(), approx.inputs(), "input count mismatch");
    assert_eq!(exact.outputs(), approx.outputs(), "output count mismatch");
    let n = exact.num_entries() as u64;
    (0..n)
        .map(|p| {
            let d = exact.eval_word(p).abs_diff(approx.eval_word(p));
            dist.prob(p, exact.inputs()) * d as f64
        })
        .sum()
}

/// Maximum error distance over all input patterns (unweighted).
pub fn max_error_distance(exact: &MultiOutputFn, approx: &MultiOutputFn) -> u64 {
    assert_eq!(exact.inputs(), approx.inputs(), "input count mismatch");
    assert_eq!(exact.outputs(), approx.outputs(), "output count mismatch");
    let n = exact.num_entries() as u64;
    (0..n)
        .map(|p| exact.eval_word(p).abs_diff(approx.eval_word(p)))
        .max()
        .unwrap_or(0)
}

/// Mean squared error distance, `Σ_X p_X · (Bin(G) − Bin(Ĝ))²`.
pub fn mean_squared_error(
    exact: &MultiOutputFn,
    approx: &MultiOutputFn,
    dist: &InputDist,
) -> f64 {
    assert_eq!(exact.inputs(), approx.inputs(), "input count mismatch");
    assert_eq!(exact.outputs(), approx.outputs(), "output count mismatch");
    let n = exact.num_entries() as u64;
    (0..n)
        .map(|p| {
            let d = exact.eval_word(p).abs_diff(approx.eval_word(p)) as f64;
            dist.prob(p, exact.inputs()) * d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_error_rate() {
        let a = TruthTable::from_fn(3, |p| p < 4);
        let mut b = a.clone();
        b.set(0, !b.eval(0));
        b.set(7, !b.eval(7));
        assert!((error_rate(&a, &b, &InputDist::Uniform) - 2.0 / 8.0).abs() < 1e-12);
        assert_eq!(error_rate(&a, &a, &InputDist::Uniform), 0.0);
    }

    #[test]
    fn explicit_dist_validation() {
        assert!(InputDist::explicit(vec![0.5, 0.5]).is_ok());
        assert!(matches!(
            InputDist::explicit(vec![0.5, 0.6]),
            Err(DistError::NotNormalized(_))
        ));
        assert!(matches!(
            InputDist::explicit(vec![-0.1, 1.1]),
            Err(DistError::Negative(0))
        ));
        assert!(matches!(
            InputDist::explicit(vec![0.3, 0.3, 0.4]),
            Err(DistError::BadLength(3))
        ));
    }

    #[test]
    fn weighted_error_rate() {
        let a = TruthTable::from_fn(1, |_| false);
        let b = TruthTable::from_fn(1, |p| p == 1);
        let d = InputDist::explicit(vec![0.25, 0.75]).unwrap();
        assert!((error_rate(&a, &b, &d) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn med_identity_adder() {
        // G = identity on 2 bits, Ĝ = G + 1 (mod 4): every |diff| is 1 or 3.
        let g = MultiOutputFn::from_word_fn(2, 2, |p| p);
        let h = MultiOutputFn::from_word_fn(2, 2, |p| (p + 1) % 4);
        // diffs: |0-1|=1, |1-2|=1, |2-3|=1, |3-0|=3 → MED = 6/4 = 1.5.
        let med = mean_error_distance(&g, &h, &InputDist::Uniform);
        assert!((med - 1.5).abs() < 1e-12);
        assert_eq!(max_error_distance(&g, &h), 3);
    }

    #[test]
    fn er_multi_counts_word_mismatch_once() {
        let g = MultiOutputFn::from_word_fn(2, 2, |p| p);
        let h = MultiOutputFn::from_word_fn(2, 2, |p| p ^ 0b11);
        // Every word differs → ER = 1 even though 2 bits flip.
        assert!((error_rate_multi(&g, &h, &InputDist::Uniform) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let g = MultiOutputFn::from_word_fn(1, 2, |_| 0);
        let h = MultiOutputFn::from_word_fn(1, 2, |p| if p == 0 { 0 } else { 3 });
        let mse = mean_squared_error(&g, &h, &InputDist::Uniform);
        assert!((mse - 4.5).abs() < 1e-12); // (0 + 9)/2
    }

    #[test]
    fn prob_supports_up_to_63_inputs() {
        // 63 is the widest representable pattern space; the probability is
        // tiny but well-defined.
        let p = InputDist::Uniform.prob(0, 63);
        assert!(p > 0.0 && p < 1e-18);
    }

    #[test]
    #[should_panic(expected = "at most 63 inputs")]
    fn prob_rejects_64_inputs() {
        // Regression: `1u64 << 64` wraps to 1 in release builds, which
        // would silently report probability 1.0 for every pattern.
        InputDist::Uniform.prob(0, 64);
    }

    #[test]
    #[should_panic(expected = "disagrees with input count")]
    fn prob_rejects_mismatched_explicit_length() {
        let d = InputDist::explicit(vec![0.25; 4]).unwrap();
        d.prob(0, 3);
    }

    #[test]
    fn med_weighted_hand_computation() {
        // Explicit dist + 3-bit words, fully by hand:
        // G(p) = p, Ĝ(p) = p XOR 0b100 → |diff| = 4 for every pattern.
        let g = MultiOutputFn::from_word_fn(2, 3, |p| p);
        let h = MultiOutputFn::from_word_fn(2, 3, |p| p ^ 0b100);
        let d = InputDist::explicit(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let med = mean_error_distance(&g, &h, &d);
        assert!((med - 4.0).abs() < 1e-12);
        // Flipping only the LSB weights the distance by each pattern's
        // probability: MED = Σ p_X · 1 = 1.
        let l = MultiOutputFn::from_word_fn(2, 3, |p| p ^ 0b001);
        assert!((mean_error_distance(&g, &l, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_error_metrics_on_identical() {
        let g = MultiOutputFn::from_word_fn(3, 3, |p| p.wrapping_mul(5) & 7);
        assert_eq!(mean_error_distance(&g, &g, &InputDist::Uniform), 0.0);
        assert_eq!(max_error_distance(&g, &g), 0);
        assert_eq!(error_rate_multi(&g, &g, &InputDist::Uniform), 0.0);
    }
}
