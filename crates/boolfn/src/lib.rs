//! Boolean-function substrate for Ising-model-based approximate disjoint
//! decomposition.
//!
//! This crate provides everything the decomposition framework needs to talk
//! about Boolean functions:
//!
//! - [`BitVec`]: packed bit vectors;
//! - [`TruthTable`] / [`MultiOutputFn`]: completely specified single- and
//!   multi-output Boolean functions;
//! - [`Partition`]: input partitions `w = {A, B}` into a free and a bound
//!   set;
//! - [`BooleanMatrix`]: the `2^|A| × 2^|B|` matrix view of a function under a
//!   partition;
//! - [`decompose`]: the exact disjoint-decomposition characterizations —
//!   row-based ([`find_row_setting`], Theorem 1) and column-based
//!   ([`find_column_setting`], Theorem 2) — plus extraction of the `φ` and
//!   `F` sub-functions;
//! - [`metrics`]: error rate (ER) and mean error distance (MED) weighted by
//!   an [`InputDist`].
//!
//! # Example
//!
//! Exactly decomposing a function that satisfies Theorem 2:
//!
//! ```
//! use adis_boolfn::{
//!     apply_decomposition, find_column_setting, BooleanMatrix, Partition, TruthTable,
//! };
//!
//! // g(x) = x0 XOR x2 decomposes over A = {x0, x1}, B = {x2, x3}.
//! let g = TruthTable::from_fn(4, |p| (p & 1) ^ ((p >> 2) & 1) == 1);
//! let w = Partition::new(4, vec![0, 1], vec![2, 3])?;
//! let m = BooleanMatrix::build(&g, &w);
//! let setting = find_column_setting(&m).expect("g is decomposable");
//! let (phi, f) = (setting.phi(&w), setting.compose_f(&w));
//! assert_eq!(apply_decomposition(&phi, &f, &w), g);
//! # Ok::<(), adis_boolfn::PartitionError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitvec;
pub mod decompose;
mod function;
mod matrix;
pub mod metrics;
mod partition;
mod truth_table;

pub use bitvec::BitVec;
pub use decompose::{
    apply_decomposition, find_column_setting, find_row_setting, is_column_decomposable,
    is_row_decomposable, ColumnSetting, RowSetting, RowType,
};
pub use function::MultiOutputFn;
pub use matrix::BooleanMatrix;
pub use metrics::{
    error_rate, error_rate_multi, max_error_distance, mean_error_distance, mean_squared_error,
    DistError, InputDist,
};
pub use partition::{Partition, PartitionError};
pub use truth_table::TruthTable;
