//! Input partitions `w = {A, B}` into a free set and a bound set.

use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A partition of the `n` input variables into a *free set* `A` (defining the
/// rows of the Boolean matrix) and a *bound set* `B` (defining the columns).
///
/// A disjoint decomposition over the partition has the shape
/// `g(X) = F(φ(B), A)`.
///
/// Variables are 0-based indices into the input pattern bits. Within each
/// set, variables are kept sorted; row index bit `t` corresponds to
/// `free()[t]`, column index bit `t` to `bound()[t]`.
///
/// # Examples
///
/// ```
/// use adis_boolfn::Partition;
///
/// let w = Partition::new(4, vec![0, 1], vec![2, 3])?;
/// assert_eq!(w.rows(), 4);
/// assert_eq!(w.cols(), 4);
/// // Input pattern for row 0b10 (x1=1) and column 0b01 (x2=1):
/// assert_eq!(w.compose(0b10, 0b01), 0b0110);
/// # Ok::<(), adis_boolfn::PartitionError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    inputs: u32,
    free: Vec<u32>,
    bound: Vec<u32>,
}

/// Error building a [`Partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A variable index is `>= inputs`.
    VariableOutOfRange(u32),
    /// A variable appears in both sets or twice in one set.
    DuplicateVariable(u32),
    /// The union of the sets does not cover all inputs.
    IncompleteCover,
    /// One of the two sets is empty.
    EmptySet,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::VariableOutOfRange(v) => {
                write!(f, "variable x{v} is out of range")
            }
            PartitionError::DuplicateVariable(v) => {
                write!(f, "variable x{v} appears more than once")
            }
            PartitionError::IncompleteCover => {
                write!(f, "free and bound sets must cover all inputs")
            }
            PartitionError::EmptySet => write!(f, "free and bound sets must be non-empty"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// Creates a partition from explicit free (`A`) and bound (`B`) sets.
    ///
    /// # Errors
    ///
    /// Returns an error unless `A` and `B` are disjoint, non-empty, and
    /// together cover `0..inputs`.
    pub fn new(inputs: u32, free: Vec<u32>, bound: Vec<u32>) -> Result<Self, PartitionError> {
        if free.is_empty() || bound.is_empty() {
            return Err(PartitionError::EmptySet);
        }
        let mut seen = vec![false; inputs as usize];
        for &v in free.iter().chain(bound.iter()) {
            if v >= inputs {
                return Err(PartitionError::VariableOutOfRange(v));
            }
            if seen[v as usize] {
                return Err(PartitionError::DuplicateVariable(v));
            }
            seen[v as usize] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(PartitionError::IncompleteCover);
        }
        let mut free = free;
        let mut bound = bound;
        free.sort_unstable();
        bound.sort_unstable();
        Ok(Partition {
            inputs,
            free,
            bound,
        })
    }

    /// Creates a partition from the set of bound variables; the rest are free.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Partition::new`].
    pub fn from_bound(inputs: u32, bound: Vec<u32>) -> Result<Self, PartitionError> {
        let in_bound: std::collections::HashSet<u32> = bound.iter().copied().collect();
        let free: Vec<u32> = (0..inputs).filter(|v| !in_bound.contains(v)).collect();
        Partition::new(inputs, free, bound)
    }

    /// Draws a uniformly random partition with `bound_size` bound variables.
    ///
    /// # Panics
    ///
    /// Panics if `bound_size == 0` or `bound_size >= inputs`.
    pub fn random<R: Rng + ?Sized>(inputs: u32, bound_size: u32, rng: &mut R) -> Self {
        assert!(
            bound_size >= 1 && bound_size < inputs,
            "bound size must be in 1..inputs"
        );
        let mut vars: Vec<u32> = (0..inputs).collect();
        vars.shuffle(rng);
        let bound = vars[..bound_size as usize].to_vec();
        Partition::from_bound(inputs, bound).expect("random partition is valid by construction")
    }

    /// Enumerates every partition with `bound_size` bound variables.
    ///
    /// There are `C(inputs, bound_size)` of them; the paper's framework caps
    /// its `P` random partitions at this count for small `n`.
    pub fn enumerate(inputs: u32, bound_size: u32) -> Vec<Partition> {
        assert!(
            bound_size >= 1 && bound_size < inputs,
            "bound size must be in 1..inputs"
        );
        let mut out = Vec::new();
        let mut combo: Vec<u32> = (0..bound_size).collect();
        loop {
            out.push(
                Partition::from_bound(inputs, combo.clone())
                    .expect("enumerated partition is valid"),
            );
            // Next combination in lexicographic order.
            let k = bound_size as usize;
            let mut i = k;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if combo[i] < inputs - (k - i) as u32 {
                    combo[i] += 1;
                    for t in i + 1..k {
                        combo[t] = combo[t - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Number of input variables `n`.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Free-set variables `A`, sorted.
    pub fn free(&self) -> &[u32] {
        &self.free
    }

    /// Bound-set variables `B`, sorted.
    pub fn bound(&self) -> &[u32] {
        &self.bound
    }

    /// Number of rows `r = 2^|A|` of the Boolean matrix.
    pub fn rows(&self) -> usize {
        1usize << self.free.len()
    }

    /// Number of columns `c = 2^|B|` of the Boolean matrix.
    pub fn cols(&self) -> usize {
        1usize << self.bound.len()
    }

    /// Composes a (row, column) pair into a full input pattern.
    ///
    /// Row bit `t` is placed at input variable `free()[t]`, column bit `t`
    /// at `bound()[t]`.
    #[inline]
    pub fn compose(&self, row: usize, col: usize) -> u64 {
        let mut p = 0u64;
        for (t, &v) in self.free.iter().enumerate() {
            p |= (((row >> t) & 1) as u64) << v;
        }
        for (t, &v) in self.bound.iter().enumerate() {
            p |= (((col >> t) & 1) as u64) << v;
        }
        p
    }

    /// Splits a full input pattern into its (row, column) pair.
    #[inline]
    pub fn split(&self, pattern: u64) -> (usize, usize) {
        let mut row = 0usize;
        for (t, &v) in self.free.iter().enumerate() {
            row |= (((pattern >> v) & 1) as usize) << t;
        }
        let mut col = 0usize;
        for (t, &v) in self.bound.iter().enumerate() {
            col |= (((pattern >> v) & 1) as usize) << t;
        }
        (row, col)
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Partition{{A: {:?}, B: {:?}}}", self.free, self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn compose_split_round_trip() {
        let w = Partition::new(5, vec![0, 2, 4], vec![1, 3]).unwrap();
        for p in 0..32u64 {
            let (i, j) = w.split(p);
            assert_eq!(w.compose(i, j), p);
            assert!(i < w.rows() && j < w.cols());
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Partition::new(3, vec![0], vec![1]),
            Err(PartitionError::IncompleteCover)
        );
        assert_eq!(
            Partition::new(3, vec![0, 1], vec![1, 2]),
            Err(PartitionError::DuplicateVariable(1))
        );
        assert_eq!(
            Partition::new(3, vec![0, 5], vec![1, 2]),
            Err(PartitionError::VariableOutOfRange(5))
        );
        assert_eq!(
            Partition::new(2, vec![0, 1], vec![]),
            Err(PartitionError::EmptySet)
        );
    }

    #[test]
    fn from_bound_computes_free() {
        let w = Partition::from_bound(4, vec![1, 3]).unwrap();
        assert_eq!(w.free(), &[0, 2]);
        assert_eq!(w.bound(), &[1, 3]);
    }

    #[test]
    fn enumerate_counts() {
        // C(5, 2) = 10
        let all = Partition::enumerate(5, 2);
        assert_eq!(all.len(), 10);
        // All distinct.
        let set: std::collections::HashSet<_> =
            all.iter().map(|w| w.bound().to_vec()).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn random_has_requested_sizes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..20 {
            let w = Partition::random(9, 5, &mut rng);
            assert_eq!(w.bound().len(), 5);
            assert_eq!(w.free().len(), 4);
        }
    }

    // Degenerate shapes: `bound_size == 0` leaves `φ` with no inputs and
    // `bound_size == inputs` leaves `F` with only the φ wire — neither is a
    // disjoint decomposition, so the constructors reject both. These tests
    // pin that contract (the framework layer mirrors it with
    // `ConfigError::{ZeroBoundSize, BoundSizeTooLarge}`).

    #[test]
    fn degenerate_bound_sets_rejected_by_new() {
        // bound_size == 0: the bound set is empty.
        assert_eq!(
            Partition::new(3, vec![0, 1, 2], vec![]),
            Err(PartitionError::EmptySet)
        );
        // bound_size == inputs: the free set is empty.
        assert_eq!(
            Partition::new(3, vec![], vec![0, 1, 2]),
            Err(PartitionError::EmptySet)
        );
        assert_eq!(
            Partition::from_bound(3, vec![0, 1, 2]),
            Err(PartitionError::EmptySet)
        );
        assert_eq!(Partition::from_bound(3, vec![]), Err(PartitionError::EmptySet));
    }

    #[test]
    #[should_panic(expected = "bound size must be in 1..inputs")]
    fn random_rejects_zero_bound_size() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        Partition::random(4, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "bound size must be in 1..inputs")]
    fn random_rejects_full_bound_size() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        Partition::random(4, 4, &mut rng);
    }

    #[test]
    #[should_panic(expected = "bound size must be in 1..inputs")]
    fn enumerate_rejects_zero_bound_size() {
        Partition::enumerate(4, 0);
    }

    #[test]
    #[should_panic(expected = "bound size must be in 1..inputs")]
    fn enumerate_rejects_full_bound_size() {
        Partition::enumerate(4, 4);
    }

    #[test]
    fn minimal_valid_shapes_still_work() {
        // The smallest legal function (n = 2) admits exactly the two
        // single-variable bound sets — the trivial-but-valid extreme.
        let all = Partition::enumerate(2, 1);
        assert_eq!(all.len(), 2);
        for w in &all {
            assert_eq!((w.rows(), w.cols()), (2, 2));
            for p in 0..4u64 {
                let (i, j) = w.split(p);
                assert_eq!(w.compose(i, j), p);
            }
        }
    }

    #[test]
    fn paper_example_partition() {
        // Fig. 2: A = {x1, x2}, B = {x3, x4} (1-based in the paper).
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        assert_eq!(w.rows(), 4);
        assert_eq!(w.cols(), 4);
        // Row index selects (x1, x2), column index selects (x3, x4).
        assert_eq!(w.compose(0b01, 0b10), 0b1001);
    }
}
