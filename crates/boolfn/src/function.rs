//! Multi-output Boolean functions.

use crate::{BitVec, TruthTable};
use std::fmt;

/// A completely specified multi-output Boolean function
/// `G(X) = (g_1(X), …, g_m(X))`.
///
/// Following the paper's numbering, component `k = 1` is the **least**
/// significant output bit: the binary encoding of the output word is
/// `Bin(G(X)) = Σ_k 2^{k-1} g_k(X)`. In this API components are 0-indexed,
/// so `component(0)` is the LSB and carries weight `2^0`.
///
/// # Examples
///
/// ```
/// use adis_boolfn::MultiOutputFn;
///
/// // A 2-bit incrementer: out = (in + 1) mod 4.
/// let inc = MultiOutputFn::from_word_fn(2, 2, |p| (p + 1) % 4);
/// assert_eq!(inc.eval_word(0b11), 0b00);
/// assert_eq!(inc.eval_word(0b01), 0b10);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct MultiOutputFn {
    inputs: u32,
    components: Vec<TruthTable>,
}

impl MultiOutputFn {
    /// Builds a function from per-component truth tables (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or the tables disagree on input count.
    pub fn new(components: Vec<TruthTable>) -> Self {
        assert!(!components.is_empty(), "need at least one output");
        let inputs = components[0].inputs();
        assert!(
            components.iter().all(|c| c.inputs() == inputs),
            "all components must share the input count"
        );
        MultiOutputFn { inputs, components }
    }

    /// Builds a function by evaluating `f` on every input pattern; `f`
    /// returns the full output word (bit `k` = component `k`, LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `outputs > 64` or `inputs > TruthTable::MAX_INPUTS`.
    pub fn from_word_fn<F: FnMut(u64) -> u64>(inputs: u32, outputs: u32, mut f: F) -> Self {
        assert!((1..=64).contains(&outputs), "outputs must be in 1..=64");
        // Guard before `1usize << inputs`: at `inputs >= 64` the shift
        // itself overflows, and anything past MAX_INPUTS would otherwise
        // attempt enormous allocations before `from_bits` could object.
        assert!(
            inputs <= TruthTable::MAX_INPUTS,
            "too many inputs: {inputs}"
        );
        let n = 1usize << inputs;
        let mut bits: Vec<BitVec> = (0..outputs).map(|_| BitVec::zeros(n)).collect();
        for p in 0..n {
            let w = f(p as u64);
            for (k, b) in bits.iter_mut().enumerate() {
                if (w >> k) & 1 == 1 {
                    b.set(p, true);
                }
            }
        }
        MultiOutputFn {
            inputs,
            components: bits
                .into_iter()
                .map(|b| TruthTable::from_bits(inputs, b))
                .collect(),
        }
    }

    /// Number of input variables.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of output bits `m`.
    pub fn outputs(&self) -> u32 {
        self.components.len() as u32
    }

    /// Number of input patterns (`2^inputs`).
    pub fn num_entries(&self) -> usize {
        1usize << self.inputs
    }

    /// Borrow of the `k`-th component function (0-indexed, LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.outputs()`.
    pub fn component(&self, k: u32) -> &TruthTable {
        &self.components[k as usize]
    }

    /// Replaces the `k`-th component.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or the input count differs.
    pub fn set_component(&mut self, k: u32, table: TruthTable) {
        assert_eq!(table.inputs(), self.inputs, "input count mismatch");
        self.components[k as usize] = table;
    }

    /// All components, LSB first.
    pub fn components(&self) -> &[TruthTable] {
        &self.components
    }

    /// Evaluates the full output word on `pattern`.
    pub fn eval_word(&self, pattern: u64) -> u64 {
        let mut w = 0u64;
        for (k, c) in self.components.iter().enumerate() {
            if c.eval(pattern) {
                w |= 1 << k;
            }
        }
        w
    }

    /// Evaluates a single output bit.
    pub fn eval_bit(&self, k: u32, pattern: u64) -> bool {
        self.components[k as usize].eval(pattern)
    }
}

impl fmt::Debug for MultiOutputFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MultiOutputFn({} inputs, {} outputs)",
            self.inputs,
            self.outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let f = MultiOutputFn::from_word_fn(4, 3, |p| (p * 3) & 0b111);
        for p in 0..16 {
            assert_eq!(f.eval_word(p), (p * 3) & 0b111);
        }
    }

    #[test]
    fn component_is_lsb_first() {
        let f = MultiOutputFn::from_word_fn(2, 2, |p| p);
        // component 0 = LSB = x0 projection
        for p in 0..4u64 {
            assert_eq!(f.eval_bit(0, p), p & 1 == 1);
            assert_eq!(f.eval_bit(1, p), (p >> 1) & 1 == 1);
        }
    }

    #[test]
    fn new_from_tables() {
        let lsb = TruthTable::from_fn(2, |p| p & 1 == 1);
        let msb = TruthTable::from_fn(2, |p| p >> 1 == 1);
        let f = MultiOutputFn::new(vec![lsb, msb]);
        assert_eq!(f.eval_word(0b10), 0b10);
    }

    #[test]
    fn set_component_changes_word() {
        let mut f = MultiOutputFn::from_word_fn(2, 2, |_| 0);
        f.set_component(1, TruthTable::constant(2, true));
        assert_eq!(f.eval_word(0), 0b10);
    }

    #[test]
    fn full_width_output_words_round_trip() {
        // outputs = 64 exercises `w >> 63` / `1 << 63` at the word boundary.
        let f = MultiOutputFn::from_word_fn(2, 64, |p| {
            (1u64 << 63) | p // MSB always set
        });
        for p in 0..4u64 {
            assert_eq!(f.eval_word(p), (1u64 << 63) | p);
            assert!(f.eval_bit(63, p));
        }
    }

    #[test]
    #[should_panic(expected = "too many inputs")]
    fn from_word_fn_rejects_oversized_inputs_before_shifting() {
        // 64 inputs would be `1usize << 64` — a shift overflow — if the
        // guard ran after the shift.
        MultiOutputFn::from_word_fn(64, 1, |_| 0);
    }

    #[test]
    #[should_panic(expected = "share the input count")]
    fn mismatched_inputs_rejected() {
        MultiOutputFn::new(vec![
            TruthTable::constant(2, false),
            TruthTable::constant(3, false),
        ]);
    }
}
