//! Single-output Boolean functions stored as complete truth tables.

use crate::BitVec;
use std::fmt;

/// A completely specified single-output Boolean function of `n` inputs,
/// stored as a `2^n`-bit truth table.
///
/// Input patterns are encoded as integers: input variable `x_v` (0-based `v`)
/// corresponds to bit `v` of the pattern index, so pattern `p` assigns
/// `x_v = (p >> v) & 1`.
///
/// # Examples
///
/// ```
/// use adis_boolfn::TruthTable;
///
/// // 2-input AND.
/// let and = TruthTable::from_fn(2, |p| p == 0b11);
/// assert!(!and.eval(0b01));
/// assert!(and.eval(0b11));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: u32,
    bits: BitVec,
}

impl TruthTable {
    /// Maximum supported input count (keeps `2^n` within addressable range).
    pub const MAX_INPUTS: u32 = 30;

    /// Builds a truth table by evaluating `f` on every input pattern.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > Self::MAX_INPUTS`.
    pub fn from_fn<F: FnMut(u64) -> bool>(inputs: u32, mut f: F) -> Self {
        assert!(inputs <= Self::MAX_INPUTS, "too many inputs: {inputs}");
        let n = 1usize << inputs;
        TruthTable {
            inputs,
            bits: BitVec::from_fn(n, |p| f(p as u64)),
        }
    }

    /// Wraps an existing bit vector as a truth table.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != 2^inputs`.
    pub fn from_bits(inputs: u32, bits: BitVec) -> Self {
        assert!(inputs <= Self::MAX_INPUTS, "too many inputs: {inputs}");
        assert_eq!(
            bits.len(),
            1usize << inputs,
            "truth table length must be 2^inputs"
        );
        TruthTable { inputs, bits }
    }

    /// The constant-`value` function of `inputs` variables.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > Self::MAX_INPUTS`.
    pub fn constant(inputs: u32, value: bool) -> Self {
        // Check before shifting: `1 << inputs` with `inputs >= 64` is a
        // shift overflow (and 31..64 would attempt a gigantic allocation
        // before `from_bits` could reject it).
        assert!(inputs <= Self::MAX_INPUTS, "too many inputs: {inputs}");
        if value {
            TruthTable::from_bits(inputs, BitVec::ones(1 << inputs))
        } else {
            TruthTable::from_bits(inputs, BitVec::zeros(1 << inputs))
        }
    }

    /// The projection function `f(X) = x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= inputs`.
    pub fn variable(inputs: u32, var: u32) -> Self {
        assert!(var < inputs, "variable index {var} out of range {inputs}");
        TruthTable::from_fn(inputs, |p| (p >> var) & 1 == 1)
    }

    /// Number of input variables.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of truth-table entries (`2^inputs`).
    pub fn num_entries(&self) -> usize {
        1usize << self.inputs
    }

    /// Evaluates the function on input pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= 2^inputs`.
    #[inline]
    pub fn eval(&self, pattern: u64) -> bool {
        self.bits.get(pattern as usize)
    }

    /// Sets the output for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= 2^inputs`.
    pub fn set(&mut self, pattern: u64, value: bool) {
        self.bits.set(pattern as usize, value);
    }

    /// Borrow of the underlying bit vector.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Consumes the table, returning the underlying bit vector.
    pub fn into_bits(self) -> BitVec {
        self.bits
    }

    /// Number of input patterns on which `self` and `other` disagree.
    ///
    /// # Panics
    ///
    /// Panics if input counts differ.
    pub fn error_count(&self, other: &Self) -> usize {
        assert_eq!(self.inputs, other.inputs, "input count mismatch");
        self.bits.hamming_distance(&other.bits)
    }

    /// Complemented function.
    pub fn complement(&self) -> Self {
        TruthTable {
            inputs: self.inputs,
            bits: self.bits.complement(),
        }
    }

    /// Fraction of input patterns on which the function outputs 1.
    pub fn ones_fraction(&self) -> f64 {
        self.bits.count_ones() as f64 / self.num_entries() as f64
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} inputs, {:?})", self.inputs, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_gate() {
        let and = TruthTable::from_fn(2, |p| p == 3);
        assert_eq!(and.num_entries(), 4);
        assert!(!and.eval(0) && !and.eval(1) && !and.eval(2) && and.eval(3));
    }

    #[test]
    fn variable_projection() {
        let x1 = TruthTable::variable(3, 1);
        for p in 0..8 {
            assert_eq!(x1.eval(p), (p >> 1) & 1 == 1);
        }
    }

    #[test]
    fn constants() {
        assert!(TruthTable::constant(2, true).bits().all_ones());
        assert!(TruthTable::constant(2, false).bits().all_zeros());
    }

    #[test]
    fn error_count_symmetric() {
        let a = TruthTable::from_fn(3, |p| p % 2 == 0);
        let b = TruthTable::from_fn(3, |p| p < 4);
        assert_eq!(a.error_count(&b), b.error_count(&a));
        assert_eq!(a.error_count(&a), 0);
    }

    #[test]
    fn complement_doubles() {
        let a = TruthTable::from_fn(4, |p| p.count_ones() % 2 == 0);
        let c = a.complement();
        assert_eq!(a.error_count(&c), 16);
        assert_eq!(c.complement(), a);
    }

    #[test]
    fn set_mutates() {
        let mut t = TruthTable::constant(2, false);
        t.set(2, true);
        assert!(t.eval(2));
        assert_eq!(t.bits().count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "length must be 2^inputs")]
    fn from_bits_length_checked() {
        TruthTable::from_bits(2, BitVec::zeros(5));
    }

    #[test]
    #[should_panic(expected = "too many inputs")]
    fn from_fn_rejects_oversized_inputs() {
        TruthTable::from_fn(TruthTable::MAX_INPUTS + 1, |_| false);
    }

    #[test]
    #[should_panic(expected = "too many inputs")]
    fn constant_rejects_oversized_inputs_before_shifting() {
        // 64 would be a shift overflow if the guard ran after `1 << inputs`.
        TruthTable::constant(64, true);
    }

    #[test]
    #[should_panic(expected = "too many inputs")]
    fn constant_rejects_just_past_max() {
        TruthTable::constant(TruthTable::MAX_INPUTS + 1, false);
    }
}
