//! Boolean-matrix views of a truth table under an input partition.

use crate::{BitVec, Partition, TruthTable};
use std::fmt;

/// The Boolean matrix of a single-output function under a partition:
/// rows are indexed by the free-set (`A`) assignment, columns by the
/// bound-set (`B`) assignment, and entry `(i, j)` is `g(compose(i, j))`.
///
/// Both decomposition theorems (row-based, ≤ 4 row types; column-based,
/// ≤ 2 column types) are checks on this matrix.
///
/// # Examples
///
/// ```
/// use adis_boolfn::{BooleanMatrix, Partition, TruthTable};
///
/// let g = TruthTable::from_fn(4, |p| p & 1 == 1); // g = x0
/// let w = Partition::new(4, vec![0, 1], vec![2, 3])?;
/// let m = BooleanMatrix::build(&g, &w);
/// assert_eq!(m.rows(), 4);
/// assert!(m.get(1, 0)); // row 1 sets x0 = 1
/// # Ok::<(), adis_boolfn::PartitionError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BooleanMatrix {
    rows: usize,
    cols: usize,
    /// Row-major bits: entry `(i, j)` at index `i * cols + j`.
    bits: BitVec,
}

impl BooleanMatrix {
    /// Builds the Boolean matrix of `table` under partition `w`.
    ///
    /// # Panics
    ///
    /// Panics if the partition's input count differs from the table's.
    pub fn build(table: &TruthTable, w: &Partition) -> Self {
        assert_eq!(
            table.inputs(),
            w.inputs(),
            "partition and table must agree on input count"
        );
        let rows = w.rows();
        let cols = w.cols();
        let mut bits = BitVec::zeros(rows * cols);
        // Iterate over all input patterns once rather than composing per cell:
        // split() is as cheap as compose() and this keeps the access pattern
        // linear in the truth table.
        for p in 0..table.num_entries() as u64 {
            if table.eval(p) {
                let (i, j) = w.split(p);
                bits.set(i * cols + j, true);
            }
        }
        BooleanMatrix { rows, cols, bits }
    }

    /// Creates a matrix directly from row-major bits (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows * cols`.
    pub fn from_bits(rows: usize, cols: usize, bits: BitVec) -> Self {
        assert_eq!(bits.len(), rows * cols, "bit count must be rows*cols");
        BooleanMatrix { rows, cols, bits }
    }

    /// Number of rows `r = 2^|A|`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `c = 2^|B|`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.bits.get(i * self.cols + j)
    }

    /// Extracts row `i` as a bit vector of length `cols`.
    pub fn row(&self, i: usize) -> BitVec {
        BitVec::from_fn(self.cols, |j| self.get(i, j))
    }

    /// Extracts column `j` as a bit vector of length `rows`.
    pub fn column(&self, j: usize) -> BitVec {
        BitVec::from_fn(self.rows, |i| self.get(i, j))
    }

    /// All distinct columns, in order of first appearance.
    pub fn distinct_columns(&self) -> Vec<BitVec> {
        let mut seen: Vec<BitVec> = Vec::new();
        for j in 0..self.cols {
            let col = self.column(j);
            if !seen.contains(&col) {
                seen.push(col);
            }
        }
        seen
    }

    /// Number of distinct columns, stopping early once `limit` is exceeded.
    ///
    /// The column-based decomposability check only needs to know whether the
    /// count is ≤ 2, so `count_distinct_columns(2)` returns at most 3.
    pub fn count_distinct_columns(&self, limit: usize) -> usize {
        let mut seen: std::collections::HashSet<BitVec> = std::collections::HashSet::new();
        for j in 0..self.cols {
            seen.insert(self.column(j));
            if seen.len() > limit {
                return seen.len();
            }
        }
        seen.len()
    }

    /// The matrix content as row-major bits (entry `(i, j)` at
    /// `i * cols + j`).
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// A 64-bit fingerprint of the **multiset of columns**: hash each
    /// column (FNV-1a over its bits plus the row count) and combine the
    /// per-column hashes commutatively, so any permutation of columns maps
    /// to the same value.
    ///
    /// Column-based decomposability (Theorem 2) and the separate-mode COP
    /// objective are invariant under column reordering — the column types
    /// `T` just permute along — which makes this the natural cheap
    /// equivalence signature for memoizing per-matrix COP solves. It is a
    /// *fingerprint*, not a key: collisions are possible (and two matrices
    /// with equal fingerprints may still assign types to different column
    /// positions), so exact caching must compare full content.
    pub fn column_multiset_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut combined: u64 = self.rows as u64 ^ (self.cols as u64).rotate_left(32);
        for j in 0..self.cols {
            let mut h = OFFSET;
            let mut byte_feed = |b: u64| h = (h ^ b).wrapping_mul(PRIME);
            byte_feed(self.rows as u64);
            // Fold the column's bits in 64-bit chunks.
            let mut word = 0u64;
            for i in 0..self.rows {
                if self.bits.get(i * self.cols + j) {
                    word |= 1 << (i % 64);
                }
                if i % 64 == 63 {
                    byte_feed(word);
                    word = 0;
                }
            }
            if !self.rows.is_multiple_of(64) {
                byte_feed(word);
            }
            // Commutative combine (wrapping add): column order is erased.
            combined = combined.wrapping_add(h);
        }
        combined
    }

    /// Rebuilds the truth table this matrix represents under `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w`'s shape disagrees with the matrix.
    pub fn to_truth_table(&self, w: &Partition) -> TruthTable {
        assert_eq!(w.rows(), self.rows, "partition row count mismatch");
        assert_eq!(w.cols(), self.cols, "partition column count mismatch");
        TruthTable::from_fn(w.inputs(), |p| {
            let (i, j) = w.split(p);
            self.get(i, j)
        })
    }
}

impl fmt::Debug for BooleanMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BooleanMatrix {}x{}:", self.rows, self.cols)?;
        for i in 0..self.rows.min(16) {
            for j in 0..self.cols.min(64) {
                write!(f, "{}", u8::from(self.get(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 2 matrix (A = {x1, x2}, B = {x3, x4}, 1-based):
    ///
    /// ```text
    ///        x3x4: 00 01 10 11    (display order: x3 is the high digit)
    /// x1x2=00 :     1  1  0  0   (V)
    /// x1x2=01 :     0  0  0  0   (zeros)
    /// x1x2=10 :     1  1  1  1   (ones)
    /// x1x2=11 :     0  0  1  1   (complement of V)
    /// ```
    ///
    /// Our 0-based vars are x0..x3 with row index bit 0 = x0 (paper x1) and
    /// column index bit 0 = x2 (paper x3), so the display table is
    /// re-indexed below: display row `x1x2` maps to our `i = x1 + 2·x2` and
    /// display column `x3x4` to our `j = x3 + 2·x4`.
    pub(crate) fn fig2_matrix() -> (TruthTable, Partition, BooleanMatrix) {
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let rows = [
            [true, false, true, false],  // i=0: paper row 00 (V), j-order
            [true, true, true, true],    // i=1: paper row 10 (ones)
            [false, false, false, false], // i=2: paper row 01 (zeros)
            [false, true, false, true],  // i=3: paper row 11 (~V)
        ];
        let tt = TruthTable::from_fn(4, |p| {
            let (i, j) = w.split(p);
            rows[i][j]
        });
        let m = BooleanMatrix::build(&tt, &w);
        (tt, w, m)
    }

    #[test]
    fn build_matches_truth_table() {
        let (tt, w, m) = fig2_matrix();
        for p in 0..16u64 {
            let (i, j) = w.split(p);
            assert_eq!(m.get(i, j), tt.eval(p));
        }
    }

    #[test]
    fn round_trip_through_partition() {
        let (tt, w, m) = fig2_matrix();
        assert_eq!(m.to_truth_table(&w), tt);
    }

    #[test]
    fn fig2_has_two_distinct_columns() {
        let (_, _, m) = fig2_matrix();
        // Paper column types (1,0,1,0) and (0,0,1,1) in display order.
        assert_eq!(m.distinct_columns().len(), 2);
        assert_eq!(m.count_distinct_columns(2), 2);
    }

    #[test]
    fn rows_and_columns_extracted() {
        let (_, _, m) = fig2_matrix();
        assert_eq!(m.row(0), BitVec::from_bools([true, false, true, false]));
        assert_eq!(m.column(0), BitVec::from_bools([true, true, false, false]));
    }

    #[test]
    fn fingerprint_ignores_column_order_but_sees_content() {
        let (_, _, m) = fig2_matrix();
        // Reverse the column order: the multiset is unchanged.
        let reversed = BooleanMatrix::from_bits(
            m.rows(),
            m.cols(),
            BitVec::from_fn(m.rows() * m.cols(), |idx| {
                let (i, j) = (idx / m.cols(), idx % m.cols());
                m.get(i, m.cols() - 1 - j)
            }),
        );
        assert_ne!(m, reversed);
        assert_eq!(
            m.column_multiset_fingerprint(),
            reversed.column_multiset_fingerprint()
        );
        // Flip one bit: the fingerprint moves.
        let mut bits = m.bits().clone();
        bits.toggle(5);
        let flipped = BooleanMatrix::from_bits(m.rows(), m.cols(), bits);
        assert_ne!(
            m.column_multiset_fingerprint(),
            flipped.column_multiset_fingerprint()
        );
    }

    #[test]
    fn fingerprint_distinguishes_shapes() {
        // Same flat bits, different shapes → different fingerprints.
        let bits = BitVec::from_fn(16, |idx| idx % 3 == 0);
        let a = BooleanMatrix::from_bits(4, 4, bits.clone());
        let b = BooleanMatrix::from_bits(2, 8, bits);
        assert_ne!(
            a.column_multiset_fingerprint(),
            b.column_multiset_fingerprint()
        );
    }

    #[test]
    fn distinct_columns_early_exit() {
        // Identity-ish matrix: 4 distinct columns.
        let bits = BitVec::from_fn(16, |idx| idx / 4 == idx % 4);
        let m = BooleanMatrix::from_bits(4, 4, bits);
        assert!(m.count_distinct_columns(2) > 2);
        assert_eq!(m.distinct_columns().len(), 4);
    }
}
