//! A compact, fixed-length bit vector backed by `u64` words.
//!
//! Truth tables over `n` inputs store `2^n` bits; for the paper's large-scale
//! experiments (`n = 16`) that is 65 536 bits per output, so a packed
//! representation matters. [`BitVec`] provides exactly the operations the
//! decomposition code needs: random access, bulk bitwise ops, popcounts, and
//! whole-vector comparison/complement used by the row/column type checks.

use std::fmt;

/// A fixed-length vector of bits packed into `u64` words.
///
/// # Examples
///
/// ```
/// use adis_boolfn::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// assert!(v.get(3));
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitVec {
    /// Creates a bit vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; word_count(len)],
        }
    }

    /// Creates a bit vector of `len` ones.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![u64::MAX; word_count(len)],
        };
        v.mask_tail();
        v
    }

    /// Creates a bit vector from an iterator of booleans.
    ///
    /// # Examples
    ///
    /// ```
    /// use adis_boolfn::BitVec;
    ///
    /// let v = BitVec::from_bools([true, false, true]);
    /// assert_eq!(v.len(), 3);
    /// assert!(v.get(0) && !v.get(1) && v.get(2));
    /// ```
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0;
        let mut cur = 0u64;
        for b in bits {
            if b {
                cur |= 1 << (len % WORD_BITS);
            }
            len += 1;
            if len % WORD_BITS == 0 {
                words.push(cur);
                cur = 0;
            }
        }
        if len % WORD_BITS != 0 {
            words.push(cur);
        }
        BitVec { len, words }
    }

    /// Creates a bit vector of length `len` where bit `i` is `f(i)`.
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        let mut v = BitVec::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn toggle(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Whether every bit is zero.
    pub fn all_zeros(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether every bit is one.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Returns the bitwise complement (within `len`).
    pub fn complement(&self) -> Self {
        let mut v = BitVec {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        v.mask_tail();
        v
    }

    /// Number of positions where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming_distance(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in hamming_distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Whether `other` is the complement of `self`.
    pub fn is_complement_of(&self, other: &Self) -> bool {
        self.len == other.len && self.hamming_distance(other) == self.len
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> Iter<'_> {
        Iter { v: self, pos: 0 }
    }

    /// Returns the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Interprets the first 64 bits (LSB-first) as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `self.len() > 64`.
    pub fn to_u64(&self) -> u64 {
        assert!(self.len <= 64, "bit vector too long for u64");
        if self.words.is_empty() {
            0
        } else {
            self.words[0]
        }
    }

    /// Builds a bit vector of length `len` from the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut v = BitVec::zeros(len);
        if len > 0 {
            v.words[0] = if len == 64 { value } else { value & ((1 << len) - 1) };
        }
        v
    }

    /// Zeroes any bits in the final partially-used word beyond `len`.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Read-only view of the backing words (tail bits beyond `len` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len.min(128) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 128 {
            write!(f, "... ({} bits)", self.len)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

/// Iterator over the bits of a [`BitVec`].
pub struct Iter<'a> {
    v: &'a BitVec,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.pos < self.v.len {
            let b = self.v.get(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.v.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(100);
        assert_eq!(z.len(), 100);
        assert!(z.all_zeros());
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(100);
        assert!(o.all_ones());
        assert_eq!(o.count_ones(), 100);
    }

    #[test]
    fn set_get_toggle() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert_eq!(v.count_ones(), 3);
        assert!(!v.toggle(0));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn complement_respects_length() {
        let v = BitVec::from_bools([true, false, true]);
        let c = v.complement();
        assert_eq!(c.len(), 3);
        assert!(!c.get(0) && c.get(1) && !c.get(2));
        // Tail bits beyond len must stay zero so equality works.
        assert_eq!(c.as_words()[0] >> 3, 0);
        assert!(v.is_complement_of(&c));
    }

    #[test]
    fn hamming() {
        let a = BitVec::from_bools([true, true, false, false]);
        let b = BitVec::from_bools([true, false, true, false]);
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn u64_round_trip() {
        let v = BitVec::from_u64(0b1011, 4);
        assert_eq!(v.to_u64(), 0b1011);
        assert_eq!(v.len(), 4);
        let w = BitVec::from_u64(u64::MAX, 64);
        assert_eq!(w.to_u64(), u64::MAX);
    }

    #[test]
    fn from_u64_masks_high_bits() {
        let v = BitVec::from_u64(0xFF, 4);
        assert_eq!(v.to_u64(), 0xF);
    }

    #[test]
    fn iter_and_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        let bits: Vec<bool> = v.iter().collect();
        assert_eq!(bits, vec![true, false, true]);
        assert_eq!(v.iter().len(), 3);
    }

    #[test]
    fn ones_indices() {
        let v = BitVec::from_bools([false, true, false, true]);
        let idx: Vec<usize> = v.iter_ones().collect();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn from_fn_matches() {
        let v = BitVec::from_fn(70, |i| i % 3 == 0);
        for i in 0..70 {
            assert_eq!(v.get(i), i % 3 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(4).get(4);
    }
}
