//! Property-based tests for the Boolean-function substrate.

use adis_boolfn::{
    apply_decomposition, error_rate, error_rate_multi, find_column_setting, find_row_setting,
    max_error_distance, mean_error_distance, BitVec, BooleanMatrix, InputDist, MultiOutputFn,
    Partition, TruthTable,
};
use proptest::prelude::*;

/// Strategy: a random truth table over `inputs` variables.
fn truth_table(inputs: u32) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(any::<bool>(), 1 << inputs)
        .prop_map(move |bits| TruthTable::from_bits(inputs, BitVec::from_bools(bits)))
}

/// Strategy: a random partition of `inputs` variables with a random
/// bound-set size in `1..inputs`.
fn partition(inputs: u32) -> impl Strategy<Value = Partition> {
    (1..inputs).prop_flat_map(move |bsize| {
        prop::sample::subsequence((0..inputs).collect::<Vec<u32>>(), bsize as usize)
            .prop_map(move |bound| Partition::from_bound(inputs, bound).expect("valid"))
    })
}

proptest! {
    /// compose/split are mutually inverse bijections.
    #[test]
    fn partition_compose_split_bijective(w in partition(6)) {
        for p in 0..64u64 {
            let (i, j) = w.split(p);
            prop_assert_eq!(w.compose(i, j), p);
        }
        for i in 0..w.rows() {
            for j in 0..w.cols() {
                let (i2, j2) = w.split(w.compose(i, j));
                prop_assert_eq!((i2, j2), (i, j));
            }
        }
    }

    /// The matrix view round-trips through the partition.
    #[test]
    fn matrix_round_trip(tt in truth_table(6), w in partition(6)) {
        let m = BooleanMatrix::build(&tt, &w);
        prop_assert_eq!(m.to_truth_table(&w), tt);
    }

    /// Theorems 1 and 2 agree: row-decomposable iff column-decomposable.
    #[test]
    fn theorems_agree(tt in truth_table(5), w in partition(5)) {
        let m = BooleanMatrix::build(&tt, &w);
        let row = find_row_setting(&m);
        let col = find_column_setting(&m);
        prop_assert_eq!(row.is_some(), col.is_some());
    }

    /// A found setting exactly reproduces a decomposable function, and the
    /// (phi, F) pair evaluates back to the original.
    #[test]
    fn settings_reconstruct_exactly(tt in truth_table(5), w in partition(5)) {
        let m = BooleanMatrix::build(&tt, &w);
        if let Some(rs) = find_row_setting(&m) {
            prop_assert_eq!(rs.mismatch_count(&m), 0);
            prop_assert_eq!(rs.reconstruct(&w), tt.clone());
            prop_assert_eq!(apply_decomposition(&rs.phi(&w), &rs.compose_f(&w), &w), tt.clone());
        }
        if let Some(cs) = find_column_setting(&m) {
            prop_assert_eq!(cs.mismatch_count(&m), 0);
            prop_assert_eq!(cs.reconstruct(&w), tt.clone());
            prop_assert_eq!(apply_decomposition(&cs.phi(&w), &cs.compose_f(&w), &w), tt);
        }
    }

    /// Row-to-column setting conversion is value-preserving.
    #[test]
    fn row_to_column_conversion(tt in truth_table(5), w in partition(5)) {
        let m = BooleanMatrix::build(&tt, &w);
        if let Some(rs) = find_row_setting(&m) {
            let cs = rs.to_column_setting();
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    prop_assert_eq!(rs.value(i, j), cs.value(i, j));
                }
            }
        }
    }

    /// Any function constructed from two column patterns is decomposable.
    #[test]
    fn two_column_functions_decompose(
        v1 in prop::collection::vec(any::<bool>(), 8),
        v2 in prop::collection::vec(any::<bool>(), 8),
        t in prop::collection::vec(any::<bool>(), 8),
    ) {
        let w = Partition::new(6, vec![0, 1, 2], vec![3, 4, 5]).expect("valid");
        let tt = TruthTable::from_fn(6, |p| {
            let (i, j) = w.split(p);
            if t[j] { v2[i] } else { v1[i] }
        });
        let m = BooleanMatrix::build(&tt, &w);
        prop_assert!(find_column_setting(&m).is_some());
        prop_assert!(find_row_setting(&m).is_some());
    }

    /// ER is a metric-like quantity: symmetric, zero on identity, in [0, 1].
    #[test]
    fn er_properties(a in truth_table(6), b in truth_table(6)) {
        let u = InputDist::Uniform;
        let e_ab = error_rate(&a, &b, &u);
        let e_ba = error_rate(&b, &a, &u);
        prop_assert!((e_ab - e_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&e_ab));
        prop_assert_eq!(error_rate(&a, &a, &u), 0.0);
    }

    /// MED bounds: 0 <= MED <= max ED <= 2^m - 1; MED = 0 iff identical.
    #[test]
    fn med_bounds(bits in prop::collection::vec(0u64..16, 16), flips in prop::collection::vec(0u64..16, 0..4)) {
        let g = MultiOutputFn::from_word_fn(4, 4, |p| bits[p as usize]);
        let mut approx_bits = bits.clone();
        for f in &flips {
            approx_bits[*f as usize] ^= 0b101;
        }
        let h = MultiOutputFn::from_word_fn(4, 4, |p| approx_bits[p as usize]);
        let u = InputDist::Uniform;
        let med = mean_error_distance(&g, &h, &u);
        let max = max_error_distance(&g, &h);
        prop_assert!(med >= 0.0);
        prop_assert!(med <= max as f64 + 1e-12);
        prop_assert!(max <= 15);
        if g == h {
            prop_assert_eq!(med, 0.0);
        } else {
            prop_assert!(med > 0.0);
        }
    }

    /// ER over words upper-bounds ER of any single component.
    #[test]
    fn word_er_dominates_bit_er(words in prop::collection::vec(0u64..8, 16), approx in prop::collection::vec(0u64..8, 16)) {
        let g = MultiOutputFn::from_word_fn(4, 3, |p| words[p as usize]);
        let h = MultiOutputFn::from_word_fn(4, 3, |p| approx[p as usize]);
        let u = InputDist::Uniform;
        let word_er = error_rate_multi(&g, &h, &u);
        for k in 0..3 {
            let bit_er = error_rate(g.component(k), h.component(k), &u);
            prop_assert!(bit_er <= word_er + 1e-12);
        }
    }

    /// BitVec complement is an involution and flips every bit.
    #[test]
    fn bitvec_complement_involution(bits in prop::collection::vec(any::<bool>(), 1..200)) {
        let v = BitVec::from_bools(bits.clone());
        let c = v.complement();
        prop_assert_eq!(c.complement(), v.clone());
        prop_assert_eq!(v.hamming_distance(&c), bits.len());
        prop_assert_eq!(v.count_ones() + c.count_ones(), bits.len());
    }
}
