//! 0-1 integer linear program models.

use std::fmt;

/// Identifier of a binary variable within an [`IlpModel`].
pub type VarId = usize;

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// A linear constraint `Σ coeffs·x (op) rhs` over binary variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Terms `(variable, coefficient)`; a variable may appear once.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A 0-1 integer linear program: minimize `c·x + c₀` subject to linear
/// constraints, `x ∈ {0, 1}^n`.
///
/// This deliberately models only what the decomposition framework needs —
/// binary variables and a minimization objective — but that class contains
/// the paper's row-based core COP formulation exactly.
///
/// # Examples
///
/// ```
/// use adis_ilp::{BranchAndBound, IlpModel};
///
/// // Minimize x0 + 2·x1 subject to x0 + x1 ≥ 1: optimum picks x0.
/// let mut m = IlpModel::new();
/// let x0 = m.add_var();
/// let x1 = m.add_var();
/// m.set_objective_coeff(x0, 1.0);
/// m.set_objective_coeff(x1, 2.0);
/// m.add_ge(&[(x0, 1.0), (x1, 1.0)], 1.0);
/// let sol = BranchAndBound::new().solve(&m);
/// assert_eq!(sol.objective, 1.0);
/// assert!(sol.values[x0] && !sol.values[x1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IlpModel {
    objective: Vec<f64>,
    objective_constant: f64,
    constraints: Vec<Constraint>,
}

impl IlpModel {
    /// An empty model.
    pub fn new() -> Self {
        IlpModel::default()
    }

    /// Adds a binary variable with zero objective coefficient.
    pub fn add_var(&mut self) -> VarId {
        self.objective.push(0.0);
        self.objective.len() - 1
    }

    /// Adds `n` binary variables, returning the id of the first.
    pub fn add_vars(&mut self, n: usize) -> VarId {
        let first = self.objective.len();
        self.objective.resize(first + n, 0.0);
        first
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of `v` (minimization sense).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_objective_coeff(&mut self, v: VarId, c: f64) {
        self.objective[v] = c;
    }

    /// Adds `c` to the objective coefficient of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn add_objective_coeff(&mut self, v: VarId, c: f64) {
        self.objective[v] += c;
    }

    /// Adds `c` to the constant term of the objective.
    pub fn add_objective_constant(&mut self, c: f64) {
        self.objective_constant += c;
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The objective constant.
    pub fn objective_constant(&self) -> f64 {
        self.objective_constant
    }

    /// Adds a constraint. Terms referencing the same variable are merged.
    ///
    /// # Panics
    ///
    /// Panics if any variable id is out of range.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: ConstraintOp, rhs: f64) {
        let mut merged: std::collections::BTreeMap<VarId, f64> = std::collections::BTreeMap::new();
        for &(v, c) in terms {
            assert!(v < self.num_vars(), "variable {v} out of range");
            *merged.entry(v).or_insert(0.0) += c;
        }
        self.constraints.push(Constraint {
            terms: merged.into_iter().filter(|&(_, c)| c != 0.0).collect(),
            op,
            rhs,
        });
    }

    /// Convenience: `Σ terms ≤ rhs`.
    pub fn add_le(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Le, rhs);
    }

    /// Convenience: `Σ terms ≥ rhs`.
    pub fn add_ge(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Ge, rhs);
    }

    /// Convenience: `Σ terms = rhs`.
    pub fn add_eq(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Eq, rhs);
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective value of a full assignment (ignores feasibility).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective_value(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "assignment length mismatch");
        let mut v = self.objective_constant;
        for (i, &c) in self.objective.iter().enumerate() {
            if x[i] {
                v += c;
            }
        }
        v
    }

    /// Whether a full assignment satisfies every constraint (with a small
    /// numerical tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn is_feasible(&self, x: &[bool]) -> bool {
        assert_eq!(x.len(), self.num_vars(), "assignment length mismatch");
        const TOL: f64 = 1e-9;
        self.constraints.iter().all(|c| {
            let lhs: f64 = c
                .terms
                .iter()
                .map(|&(v, coef)| if x[v] { coef } else { 0.0 })
                .sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + TOL,
                ConstraintOp::Ge => lhs >= c.rhs - TOL,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= TOL,
            }
        })
    }
}

impl fmt::Display for IlpModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ilp: {} binary vars, {} constraints",
            self.num_vars(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_evaluation() {
        let mut m = IlpModel::new();
        let a = m.add_var();
        let b = m.add_var();
        m.set_objective_coeff(a, 2.0);
        m.set_objective_coeff(b, -1.0);
        m.add_objective_constant(0.5);
        assert_eq!(m.objective_value(&[true, true]), 1.5);
        assert_eq!(m.objective_value(&[false, true]), -0.5);
    }

    #[test]
    fn feasibility_check() {
        let mut m = IlpModel::new();
        let a = m.add_var();
        let b = m.add_var();
        m.add_ge(&[(a, 1.0), (b, 1.0)], 1.0);
        m.add_le(&[(a, 1.0), (b, 1.0)], 1.0);
        assert!(!m.is_feasible(&[false, false]));
        assert!(m.is_feasible(&[true, false]));
        assert!(!m.is_feasible(&[true, true]));
    }

    #[test]
    fn duplicate_terms_merged() {
        let mut m = IlpModel::new();
        let a = m.add_var();
        m.add_eq(&[(a, 1.0), (a, 2.0)], 3.0);
        assert_eq!(m.constraints()[0].terms, vec![(a, 3.0)]);
        assert!(m.is_feasible(&[true]));
        assert!(!m.is_feasible(&[false]));
    }

    #[test]
    fn add_vars_bulk() {
        let mut m = IlpModel::new();
        let first = m.add_vars(5);
        assert_eq!(first, 0);
        assert_eq!(m.num_vars(), 5);
    }
}
