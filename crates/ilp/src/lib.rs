//! Exact 0-1 integer linear programming by branch and bound.
//!
//! The paper solves the row-based core COP with Gurobi under a 3600 s cap,
//! taking the incumbent when the cap fires. This crate is the open
//! substitute: an exact DFS branch-and-bound over binary variables with
//! objective-relaxation bounding, per-constraint interval pruning, and the
//! same best-incumbent-at-timeout contract ([`BranchAndBound::time_limit`]).
//!
//! Only what the reproduction needs is modeled — binary variables, linear
//! constraints, minimization — which keeps the solver small enough to trust
//! and test exhaustively.
//!
//! # Example
//!
//! ```
//! use adis_ilp::{BranchAndBound, IlpModel, IlpStatus};
//!
//! // Vertex cover of a triangle: at least one endpoint per edge.
//! let mut m = IlpModel::new();
//! let v: Vec<_> = (0..3).map(|_| m.add_var()).collect();
//! for &x in &v {
//!     m.set_objective_coeff(x, 1.0);
//! }
//! m.add_ge(&[(v[0], 1.0), (v[1], 1.0)], 1.0);
//! m.add_ge(&[(v[1], 1.0), (v[2], 1.0)], 1.0);
//! m.add_ge(&[(v[0], 1.0), (v[2], 1.0)], 1.0);
//! let sol = BranchAndBound::new().solve(&m);
//! assert_eq!(sol.status, IlpStatus::Optimal);
//! assert_eq!(sol.objective, 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod model;
mod solve;

pub use model::{Constraint, ConstraintOp, IlpModel, VarId};
pub use solve::{BranchAndBound, IlpSolution, IlpStatus};
