//! Exact branch-and-bound solver for 0-1 ILPs.
//!
//! Plays the role Gurobi plays in the paper: an exact solver with a runtime
//! bound that returns its best incumbent when the bound is hit (the paper
//! caps Gurobi at 3600 s per core COP and takes the current best solution).

use crate::{ConstraintOp, IlpModel};
use adis_telemetry::{trace_span, NullObserver, SolveObserver};
use std::time::{Duration, Instant};

/// Solver outcome status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpStatus {
    /// Optimality proven.
    Optimal,
    /// Stopped at the time/node limit with a feasible incumbent.
    Feasible,
    /// No feasible assignment exists.
    Infeasible,
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct IlpSolution {
    /// Best assignment found (meaningless when `status == Infeasible`).
    pub values: Vec<bool>,
    /// Its objective value.
    pub objective: f64,
    /// Outcome status.
    pub status: IlpStatus,
    /// Search nodes expanded.
    pub nodes: u64,
}

/// Depth-first branch-and-bound with objective-relaxation bounding and
/// per-constraint feasibility propagation.
///
/// See [`IlpModel`] for a usage example.
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    time_limit: Option<Duration>,
    node_limit: Option<u64>,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-variable fixing state during search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fix {
    Free,
    Zero,
    One,
}

impl BranchAndBound {
    /// A solver with no time or node limit.
    pub fn new() -> Self {
        BranchAndBound {
            time_limit: None,
            node_limit: None,
        }
    }

    /// Bounds the wall-clock runtime; the best incumbent is returned with
    /// status [`IlpStatus::Feasible`] if the limit fires.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Bounds the number of expanded nodes.
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Solves the model to optimality (or to the limit).
    pub fn solve(&self, model: &IlpModel) -> IlpSolution {
        self.solve_with(model, &mut NullObserver)
    }

    /// [`solve`](BranchAndBound::solve) with telemetry: reports the expanded
    /// node count (`bnb_nodes` counter), whether a limit fired
    /// (`bnb_limit_hits` counter) and the total search wall time
    /// (`bnb_search` stage) to `observer`. With
    /// [`adis_telemetry::NullObserver`] this is exactly
    /// [`solve`](BranchAndBound::solve).
    pub fn solve_with<O: SolveObserver>(
        &self,
        model: &IlpModel,
        observer: &mut O,
    ) -> IlpSolution {
        self.solve_interruptible(model, &|| false, observer)
    }

    /// [`solve_with`](BranchAndBound::solve_with), additionally polling a
    /// cooperative `interrupt` hook at the same amortized cadence as the
    /// time limit (every 256 expanded nodes). When the hook fires the
    /// search unwinds and the best incumbent so far is returned with
    /// status [`IlpStatus::Feasible`] — exactly as if a time limit had
    /// fired. A hook that never fires leaves the search bit-identical to
    /// [`solve_with`](BranchAndBound::solve_with).
    pub fn solve_interruptible<O: SolveObserver>(
        &self,
        model: &IlpModel,
        interrupt: &dyn Fn() -> bool,
        observer: &mut O,
    ) -> IlpSolution {
        let _span = trace_span!(
            "BranchAndBound::solve vars={} constraints={}",
            model.num_vars(),
            model.num_constraints()
        );
        let n = model.num_vars();
        let start = Instant::now();
        let mut occurs = vec![Vec::new(); n];
        for (ci, c) in model.constraints().iter().enumerate() {
            for &(v, _) in &c.terms {
                occurs[v].push(ci);
            }
        }
        let mut search = Search {
            model,
            // Branch order: largest |objective coefficient| first, so the
            // bound tightens quickly.
            order: {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| {
                    model.objective()[b]
                        .abs()
                        .total_cmp(&model.objective()[a].abs())
                });
                idx
            },
            fixes: vec![Fix::Free; n],
            trail: Vec::new(),
            occurs,
            best: None,
            nodes: 0,
            deadline: self.time_limit.map(|l| start + l),
            node_limit: self.node_limit,
            interrupt,
            hit_limit: false,
        };
        if search.all_constraints_feasible() {
            search.dfs();
        }

        observer.counter("bnb_nodes", search.nodes);
        if search.hit_limit {
            observer.counter("bnb_limit_hits", 1);
        }
        observer.stage_end("bnb_search", start.elapsed());
        match search.best {
            Some((values, objective)) => IlpSolution {
                values,
                objective,
                status: if search.hit_limit {
                    IlpStatus::Feasible
                } else {
                    IlpStatus::Optimal
                },
                nodes: search.nodes,
            },
            None => IlpSolution {
                values: vec![false; n],
                objective: f64::INFINITY,
                status: IlpStatus::Infeasible,
                nodes: search.nodes,
            },
        }
    }
}

struct Search<'a> {
    model: &'a IlpModel,
    order: Vec<usize>,
    fixes: Vec<Fix>,
    /// Variables fixed by branching/propagation, for undo.
    trail: Vec<usize>,
    /// For each variable, the constraints mentioning it.
    occurs: Vec<Vec<usize>>,
    best: Option<(Vec<bool>, f64)>,
    nodes: u64,
    deadline: Option<Instant>,
    node_limit: Option<u64>,
    interrupt: &'a dyn Fn() -> bool,
    hit_limit: bool,
}

const TOL: f64 = 1e-9;

impl Search<'_> {
    /// Objective lower bound for the current partial fixing: fixed
    /// contributions plus every negative free coefficient.
    fn objective_bound(&self) -> f64 {
        let mut b = self.model.objective_constant();
        for (i, &c) in self.model.objective().iter().enumerate() {
            match self.fixes[i] {
                Fix::One => b += c,
                Fix::Free if c < 0.0 => b += c,
                _ => {}
            }
        }
        b
    }

    /// The reachable LHS interval of constraint `ci` under current fixes.
    fn constraint_interval(&self, ci: usize) -> (f64, f64) {
        let c = &self.model.constraints()[ci];
        let mut lo = 0.0;
        let mut hi = 0.0;
        for &(v, coef) in &c.terms {
            match self.fixes[v] {
                Fix::One => {
                    lo += coef;
                    hi += coef;
                }
                Fix::Zero => {}
                Fix::Free => {
                    if coef < 0.0 {
                        lo += coef;
                    } else {
                        hi += coef;
                    }
                }
            }
        }
        (lo, hi)
    }

    fn interval_feasible(op: ConstraintOp, lo: f64, hi: f64, rhs: f64) -> bool {
        match op {
            ConstraintOp::Le => lo <= rhs + TOL,
            ConstraintOp::Ge => hi >= rhs - TOL,
            ConstraintOp::Eq => lo <= rhs + TOL && hi >= rhs - TOL,
        }
    }

    /// Fixes `var` and propagates all logical consequences. Returns false
    /// on contradiction. All fixes are pushed on the trail.
    fn assign_and_propagate(&mut self, var: usize, value: bool) -> bool {
        let mark = self.trail.len();
        self.fixes[var] = if value { Fix::One } else { Fix::Zero };
        self.trail.push(var);
        let mut queue = mark;
        while queue < self.trail.len() {
            let v = self.trail[queue];
            queue += 1;
            for ci in 0..self.occurs[v].len() {
                let cidx = self.occurs[v][ci];
                let c = &self.model.constraints()[cidx];
                let (lo, hi) = self.constraint_interval(cidx);
                if !Self::interval_feasible(c.op, lo, hi, c.rhs) {
                    return false;
                }
                // Try to force free variables of this constraint.
                for &(u, coef) in &c.terms {
                    if self.fixes[u] != Fix::Free {
                        continue;
                    }
                    // Interval if u = 1: shift by coef when coef was
                    // counted on the other side.
                    let (lo1, hi1) = if coef < 0.0 {
                        (lo, hi + coef)
                    } else {
                        (lo + coef, hi)
                    };
                    // Interval if u = 0: remove u's contribution.
                    let (lo0, hi0) = if coef < 0.0 {
                        (lo - coef, hi)
                    } else {
                        (lo, hi - coef)
                    };
                    let can1 = Self::interval_feasible(c.op, lo1, hi1, c.rhs);
                    let can0 = Self::interval_feasible(c.op, lo0, hi0, c.rhs);
                    match (can0, can1) {
                        (false, false) => return false,
                        (false, true) => {
                            self.fixes[u] = Fix::One;
                            self.trail.push(u);
                        }
                        (true, false) => {
                            self.fixes[u] = Fix::Zero;
                            self.trail.push(u);
                        }
                        (true, true) => {}
                    }
                }
            }
        }
        true
    }

    /// Undoes trail entries beyond `mark`.
    fn backtrack(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail non-empty");
            self.fixes[v] = Fix::Free;
        }
    }

    fn all_constraints_feasible(&self) -> bool {
        (0..self.model.num_constraints()).all(|ci| {
            let c = &self.model.constraints()[ci];
            let (lo, hi) = self.constraint_interval(ci);
            Self::interval_feasible(c.op, lo, hi, c.rhs)
        })
    }

    fn dfs(&mut self) {
        self.nodes += 1;
        if self.hit_limit {
            return;
        }
        if self.nodes.is_multiple_of(256) {
            // Amortize the clock read and the interrupt poll.
            if self.deadline.is_some_and(|d| Instant::now() >= d) || (self.interrupt)() {
                self.hit_limit = true;
                return;
            }
        }
        if let Some(nl) = self.node_limit {
            if self.nodes > nl {
                self.hit_limit = true;
                return;
            }
        }
        if let Some((_, incumbent)) = &self.best {
            if self.objective_bound() >= *incumbent - 1e-12 {
                return;
            }
        }
        // Pick the first unfixed variable in priority order.
        let var = self.order.iter().copied().find(|&v| self.fixes[v] == Fix::Free);
        let Some(var) = var else {
            let values: Vec<bool> = self.fixes.iter().map(|&f| f == Fix::One).collect();
            let obj = self.model.objective_value(&values);
            if self
                .best
                .as_ref()
                .map(|&(_, b)| obj < b - 1e-12)
                .unwrap_or(true)
            {
                self.best = Some((values, obj));
            }
            return;
        };
        // Explore the objective-preferred value first.
        let prefer_one = self.model.objective()[var] < 0.0;
        for &value in &[prefer_one, !prefer_one] {
            let mark = self.trail.len();
            if self.assign_and_propagate(var, value) {
                self.dfs();
            }
            self.backtrack(mark);
            if self.hit_limit {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_optimum(model: &IlpModel) -> Option<f64> {
        let n = model.num_vars();
        assert!(n <= 20);
        let mut best: Option<f64> = None;
        for k in 0..(1u32 << n) {
            let x: Vec<bool> = (0..n).map(|i| (k >> i) & 1 == 1).collect();
            if model.is_feasible(&x) {
                let v = model.objective_value(&x);
                best = Some(best.map_or(v, |b: f64| b.min(v)));
            }
        }
        best
    }

    #[test]
    fn unconstrained_picks_negative_coeffs() {
        let mut m = IlpModel::new();
        let a = m.add_var();
        let b = m.add_var();
        let c = m.add_var();
        m.set_objective_coeff(a, -1.0);
        m.set_objective_coeff(b, 2.0);
        m.set_objective_coeff(c, -3.0);
        let sol = BranchAndBound::new().solve(&m);
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert_eq!(sol.objective, -4.0);
        assert_eq!(sol.values, vec![true, false, true]);
    }

    #[test]
    fn knapsack() {
        // max 3a + 4b + 5c s.t. 2a + 3b + 4c <= 5 → minimize negative.
        let mut m = IlpModel::new();
        let a = m.add_var();
        let b = m.add_var();
        let c = m.add_var();
        m.set_objective_coeff(a, -3.0);
        m.set_objective_coeff(b, -4.0);
        m.set_objective_coeff(c, -5.0);
        m.add_le(&[(a, 2.0), (b, 3.0), (c, 4.0)], 5.0);
        let sol = BranchAndBound::new().solve(&m);
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert_eq!(sol.objective, -7.0); // a + b
        assert!(m.is_feasible(&sol.values));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = IlpModel::new();
        let a = m.add_var();
        m.add_ge(&[(a, 1.0)], 2.0);
        let sol = BranchAndBound::new().solve(&m);
        assert_eq!(sol.status, IlpStatus::Infeasible);
    }

    #[test]
    fn equality_constraints() {
        let mut m = IlpModel::new();
        let vars: Vec<_> = (0..6).map(|_| m.add_var()).collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coeff(v, (i as f64) - 2.5);
        }
        // Exactly 3 ones.
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_eq(&terms, 3.0);
        let sol = BranchAndBound::new().solve(&m);
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert_eq!(sol.values.iter().filter(|&&b| b).count(), 3);
        // Picks the three smallest coefficients: -2.5, -1.5, -0.5.
        assert_eq!(sol.objective, -4.5);
    }

    #[test]
    fn matches_exhaustive_on_random_models() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        for _ in 0..20 {
            let mut m = IlpModel::new();
            let n = rng.gen_range(4..10);
            let vars: Vec<_> = (0..n).map(|_| m.add_var()).collect();
            for &v in &vars {
                m.set_objective_coeff(v, rng.gen_range(-5.0..5.0));
            }
            for _ in 0..rng.gen_range(0..4) {
                let mut terms = Vec::new();
                for &v in &vars {
                    if rng.gen_bool(0.7) {
                        terms.push((v, rng.gen_range(-3.0..3.0)));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let rhs = rng.gen_range(-2.0..4.0);
                match rng.gen_range(0..3) {
                    0 => m.add_le(&terms, rhs),
                    1 => m.add_ge(&terms, rhs),
                    _ => m.add_eq(&terms, rhs.round()),
                }
            }
            let sol = BranchAndBound::new().solve(&m);
            match exhaustive_optimum(&m) {
                Some(opt) => {
                    assert_eq!(sol.status, IlpStatus::Optimal);
                    assert!(
                        (sol.objective - opt).abs() < 1e-9,
                        "bb {} vs exhaustive {opt}",
                        sol.objective
                    );
                    assert!(m.is_feasible(&sol.values));
                }
                None => assert_eq!(sol.status, IlpStatus::Infeasible),
            }
        }
    }

    #[test]
    fn node_limit_returns_incumbent() {
        let mut m = IlpModel::new();
        let vars: Vec<_> = (0..16).map(|_| m.add_var()).collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coeff(v, if i % 2 == 0 { -1.0 } else { 1.0 });
        }
        // A constraint web to slow pruning down.
        for i in 0..15 {
            m.add_le(&[(vars[i], 1.0), (vars[i + 1], 1.0)], 1.0);
        }
        let sol = BranchAndBound::new().node_limit(10).solve(&m);
        // Limit so small only part of the tree is seen; status must reflect it
        // unless the tree was fully explored anyway.
        if sol.status == IlpStatus::Feasible {
            assert!(m.is_feasible(&sol.values));
        }
    }

    #[test]
    fn interrupt_hook_unwinds_promptly_with_the_incumbent() {
        // An infeasible parity instance (even coefficients, odd target):
        // interval propagation cannot see the parity argument, so proving
        // infeasibility visits nearly the whole 2²⁰ tree when left alone.
        let mut m = IlpModel::new();
        let vars: Vec<_> = (0..20).map(|_| m.add_var()).collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_eq(&terms, 19.0);
        let polls = std::cell::Cell::new(0u32);
        let sol = BranchAndBound::new().solve_interruptible(
            &m,
            &|| {
                polls.set(polls.get() + 1);
                true
            },
            &mut NullObserver,
        );
        // The hook is polled at node 256 and fires immediately: the search
        // stops right there instead of exploring the full tree.
        assert!(polls.get() >= 1);
        assert!(sol.nodes <= 256, "search kept expanding: {} nodes", sol.nodes);
        if sol.status == IlpStatus::Feasible {
            assert!(m.is_feasible(&sol.values));
        }
    }

    #[test]
    fn never_firing_interrupt_is_bit_identical_to_solve() {
        let mut m = IlpModel::new();
        let vars: Vec<_> = (0..10).map(|_| m.add_var()).collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coeff(v, ((i * 31) % 7) as f64 - 3.0);
        }
        m.add_le(&[(vars[0], 1.0), (vars[3], 1.0), (vars[7], 1.0)], 1.0);
        let plain = BranchAndBound::new().solve(&m);
        let hooked =
            BranchAndBound::new().solve_interruptible(&m, &|| false, &mut NullObserver);
        assert_eq!(plain.values, hooked.values);
        assert_eq!(plain.objective, hooked.objective);
        assert_eq!(plain.nodes, hooked.nodes);
        assert_eq!(plain.status, hooked.status);
    }

    #[test]
    fn time_limit_is_respected() {
        let mut m = IlpModel::new();
        let vars: Vec<_> = (0..24).map(|_| m.add_var()).collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coeff(v, ((i * 7919) % 13) as f64 - 6.0);
        }
        for i in 0..23 {
            m.add_le(&[(vars[i], 1.0), (vars[i + 1], 1.0), (vars[(i * 5) % 24], 1.0)], 2.0);
        }
        let start = Instant::now();
        let _ = BranchAndBound::new()
            .time_limit(Duration::from_millis(50))
            .solve(&m);
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
