//! Property-based validation of the branch-and-bound ILP solver against
//! exhaustive enumeration.

use adis_ilp::{BranchAndBound, ConstraintOp, IlpModel, IlpStatus};
use proptest::prelude::*;

/// Strategy: a random small 0-1 ILP.
fn model() -> impl Strategy<Value = IlpModel> {
    (3usize..9).prop_flat_map(|n| {
        let objective = prop::collection::vec(-4.0..4.0f64, n);
        let constraints = prop::collection::vec(
            (
                prop::collection::vec(prop::option::of(-3.0..3.0f64), n),
                prop::sample::select(vec![ConstraintOp::Le, ConstraintOp::Ge, ConstraintOp::Eq]),
                -3.0..5.0f64,
            ),
            0..5,
        );
        (objective, constraints).prop_map(move |(obj, cons)| {
            let mut m = IlpModel::new();
            let vars: Vec<_> = (0..n).map(|_| m.add_var()).collect();
            for (v, c) in vars.iter().zip(&obj) {
                m.set_objective_coeff(*v, *c);
            }
            for (coeffs, op, rhs) in cons {
                let terms: Vec<_> = coeffs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.map(|c| (vars[i], c)))
                    .collect();
                if !terms.is_empty() {
                    let rhs = if op == ConstraintOp::Eq { rhs.round() } else { rhs };
                    m.add_constraint(&terms, op, rhs);
                }
            }
            m
        })
    })
}

fn exhaustive(m: &IlpModel) -> Option<f64> {
    let n = m.num_vars();
    let mut best: Option<f64> = None;
    for k in 0..(1u32 << n) {
        let x: Vec<bool> = (0..n).map(|i| (k >> i) & 1 == 1).collect();
        if m.is_feasible(&x) {
            let v = m.objective_value(&x);
            best = Some(best.map_or(v, |b: f64| b.min(v)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branch-and-bound finds exactly the exhaustive optimum (or proves
    /// infeasibility) on every random model.
    #[test]
    fn bb_equals_exhaustive(m in model()) {
        let sol = BranchAndBound::new().solve(&m);
        match exhaustive(&m) {
            Some(opt) => {
                prop_assert_eq!(sol.status, IlpStatus::Optimal);
                prop_assert!((sol.objective - opt).abs() < 1e-9,
                    "bb {} vs exhaustive {}", sol.objective, opt);
                prop_assert!(m.is_feasible(&sol.values));
                prop_assert!((m.objective_value(&sol.values) - sol.objective).abs() < 1e-9);
            }
            None => prop_assert_eq!(sol.status, IlpStatus::Infeasible),
        }
    }

    /// Adding a constraint can never improve the optimum.
    #[test]
    fn constraints_monotone(m in model(), keep in any::<prop::sample::Index>()) {
        let sol_full = BranchAndBound::new().solve(&m);
        if m.num_constraints() == 0 {
            return Ok(());
        }
        // Rebuild with one constraint dropped.
        let drop = keep.index(m.num_constraints());
        let mut relaxed = IlpModel::new();
        let vars: Vec<_> = (0..m.num_vars()).map(|_| relaxed.add_var()).collect();
        for (i, &c) in m.objective().iter().enumerate() {
            relaxed.set_objective_coeff(vars[i], c);
        }
        for (ci, c) in m.constraints().iter().enumerate() {
            if ci != drop {
                relaxed.add_constraint(&c.terms, c.op, c.rhs);
            }
        }
        let sol_relaxed = BranchAndBound::new().solve(&relaxed);
        if sol_full.status == IlpStatus::Optimal {
            prop_assert_eq!(sol_relaxed.status, IlpStatus::Optimal);
            prop_assert!(sol_relaxed.objective <= sol_full.objective + 1e-9);
        }
    }
}
