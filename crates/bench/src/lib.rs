//! Shared harness for regenerating the paper's tables and figures.
//!
//! The binaries (`table1`, `fig4`, `ablations`) and the Criterion benches
//! all drive the same [`run_method`] entry point, so every number reported
//! comes from the identical pipeline the library exposes publicly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use adis_benchfn::{Benchmark, QuantScheme};
use adis_boolfn::MultiOutputFn;
use adis_core::{baselines::BaParams, CopSolverKind, Framework, IsingCopSolver, Mode};
use adis_sb::StopCriterion;
use adis_telemetry::{Json, Recorder, ReportCell, RunReport};
use std::time::Duration;

/// The solution methods compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The proposed Ising-model (bSB) solver.
    Proposed,
    /// Exact row-COP solving with a per-COP time limit — "DALTA-ILP".
    DaltaIlp,
    /// The DALTA heuristic.
    Dalta,
    /// The BA (simulated annealing) framework.
    Ba,
}

impl Method {
    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            Method::Proposed => "Prop.",
            Method::DaltaIlp => "DALTA-ILP",
            Method::Dalta => "DALTA",
            Method::Ba => "BA",
        }
    }
}

/// Scaled-down/up run parameters (the paper's `P`, `R`, and the ILP cap).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Candidate partitions per component per round (paper: 1000, capped
    /// at the number of distinct partitions).
    pub partitions: usize,
    /// Rounds `R` (paper: 5).
    pub rounds: usize,
    /// Per-COP limit for the exact solver (paper: 3600 s for Gurobi).
    pub ilp_time_limit: Duration,
    /// Base RNG seed.
    pub seed: u64,
    /// bSB replicas per COP for the proposed method.
    pub replicas: usize,
    /// Whether the sweep engine's COP memo table is enabled (`--no-cache`
    /// disables it; results are bit-identical either way).
    pub cache: bool,
}

impl RunConfig {
    /// A configuration that completes quickly (CI-scale). Shapes are
    /// preserved; absolute MEDs are a little higher than full runs.
    pub fn fast() -> Self {
        RunConfig {
            partitions: 8,
            rounds: 1,
            ilp_time_limit: Duration::from_millis(250),
            seed: 1,
            replicas: 1,
            cache: true,
        }
    }

    /// The paper's parameters (`P = 1000`, `R = 5`, 3600 s ILP cap). A full
    /// Table-1 run takes hours, exactly like the original.
    pub fn paper() -> Self {
        RunConfig {
            partitions: 1000,
            rounds: 5,
            ilp_time_limit: Duration::from_secs(3600),
            seed: 1,
            replicas: 1,
            cache: true,
        }
    }

    /// Parses `--full` / `--partitions N` / `--rounds N` / `--seed N` /
    /// `--no-cache` from command-line arguments, starting from
    /// [`RunConfig::fast`].
    pub fn from_args() -> Self {
        let mut cfg = RunConfig::fast();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => cfg = RunConfig::paper(),
                "--partitions" => {
                    i += 1;
                    cfg.partitions = args[i].parse().expect("--partitions takes a number");
                }
                "--rounds" => {
                    i += 1;
                    cfg.rounds = args[i].parse().expect("--rounds takes a number");
                }
                "--seed" => {
                    i += 1;
                    cfg.seed = args[i].parse().expect("--seed takes a number");
                }
                "--replicas" => {
                    i += 1;
                    cfg.replicas = args[i].parse().expect("--replicas takes a number");
                }
                "--ilp-limit-ms" => {
                    i += 1;
                    cfg.ilp_time_limit =
                        Duration::from_millis(args[i].parse().expect("--ilp-limit-ms ms"));
                }
                "--no-cache" => cfg.cache = false,
                other => panic!("unknown argument: {other}"),
            }
            i += 1;
        }
        cfg
    }
}

/// The paper's dynamic-stop parameters for a scheme (Section 4).
pub fn stop_for(scheme: QuantScheme) -> StopCriterion {
    match scheme {
        QuantScheme::Small => StopCriterion::paper_small(),
        QuantScheme::Large => StopCriterion::paper_large(),
    }
}

/// Builds the framework for `(method, mode, scheme)` under `cfg`.
pub fn framework_for(
    method: Method,
    mode: Mode,
    scheme: QuantScheme,
    cfg: &RunConfig,
) -> Framework {
    let solver = match method {
        Method::Proposed => CopSolverKind::Ising(
            IsingCopSolver::new()
                .stop(stop_for(scheme))
                .replicas(cfg.replicas),
        ),
        Method::DaltaIlp => CopSolverKind::Exact {
            time_limit: Some(cfg.ilp_time_limit),
        },
        Method::Dalta => CopSolverKind::DaltaHeuristic { restarts: 4 },
        Method::Ba => CopSolverKind::Ba(BaParams::default()),
    };
    Framework::new(mode, scheme.bound_size())
        .solver(solver)
        .partitions(cfg.partitions)
        .rounds(cfg.rounds)
        .seed(cfg.seed)
        .cache(cfg.cache)
}

/// Result of one (benchmark × method) cell.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Mean error distance of the final approximation.
    pub med: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Core-COP instances solved.
    pub cop_solves: usize,
    /// bSB Euler iterations, summed over every trajectory.
    pub sb_iterations: usize,
}

/// Runs one method on one pre-built function.
pub fn run_method(
    f: &MultiOutputFn,
    method: Method,
    mode: Mode,
    scheme: QuantScheme,
    cfg: &RunConfig,
) -> MethodResult {
    let outcome = framework_for(method, mode, scheme, cfg).decompose(f);
    MethodResult {
        med: outcome.med,
        seconds: outcome.elapsed.as_secs_f64(),
        cop_solves: outcome.cop_solves,
        sb_iterations: outcome.sb_iterations,
    }
}

/// [`run_method`] with full telemetry: the decomposition runs under an
/// [`adis_telemetry::Recorder`], and the aggregates (stage timings, COP
/// counters, SB trajectory statistics) come back as a [`ReportCell`] named
/// `benchmark`, ready to [`RunReport::push`].
pub fn run_method_reported(
    f: &MultiOutputFn,
    benchmark: &str,
    method: Method,
    mode: Mode,
    scheme: QuantScheme,
    cfg: &RunConfig,
) -> (MethodResult, ReportCell) {
    // Aggregates only — a full decomposition runs thousands of
    // trajectories, so storing every sample would dominate memory.
    let mut rec = Recorder::new().keep_trajectory(false);
    let outcome = framework_for(method, mode, scheme, cfg).decompose_with(f, &mut rec);
    let result = MethodResult {
        med: outcome.med,
        seconds: outcome.elapsed.as_secs_f64(),
        cop_solves: outcome.cop_solves,
        sb_iterations: outcome.sb_iterations,
    };
    let mut cell = ReportCell::new(benchmark, format!("{mode:?}"), method.name()).absorb(&rec);
    cell.objective = outcome.med;
    cell.seconds = result.seconds;
    cell.extra.push(("er".to_string(), Json::Num(outcome.er)));
    (result, cell)
}

/// Starts a [`RunReport`] for `tool` with this configuration recorded under
/// its `config` key.
pub fn report_for(tool: &str, cfg: &RunConfig) -> RunReport {
    let mut report = RunReport::new(tool, cfg.seed);
    report
        .config("partitions", Json::Num(cfg.partitions as f64))
        .config("rounds", Json::Num(cfg.rounds as f64))
        .config("replicas", Json::Num(cfg.replicas as f64))
        .config(
            "ilp_time_limit_s",
            Json::Num(cfg.ilp_time_limit.as_secs_f64()),
        )
        .config("cache", Json::Bool(cfg.cache));
    report
}

/// Writes `report` into `results/` (relative to the working directory) and
/// prints where it landed; failures are reported but not fatal, so a
/// read-only checkout still prints the table.
pub fn write_report(report: &RunReport) {
    match report.write("results") {
        Ok(path) => println!("\nrun report: {}", path.display()),
        Err(e) => eprintln!("\ncould not write run report: {e}"),
    }
}

/// The paper's Table 1 reference values `(MED, seconds)` per function, in
/// [`adis_benchfn::ContinuousFn::ALL`] order, for annotating our output.
pub mod paper_reference {
    /// Separate mode, DALTA-ILP.
    pub const T1_SEP_ILP: [(f64, f64); 6] = [
        (11.64, 258.37),
        (10.91, 236.32),
        (9.26, 242.58),
        (8.32, 224.68),
        (5.07, 139.6),
        (10.91, 229.25),
    ];
    /// Separate mode, proposed.
    pub const T1_SEP_PROP: [(f64, f64); 6] = [
        (8.33, 0.56),
        (10.45, 0.56),
        (7.07, 0.74),
        (6.57, 0.49),
        (4.61, 0.42),
        (9.69, 0.46),
    ];
    /// Joint mode, DALTA heuristic.
    pub const T1_JOINT_DALTA: [(f64, f64); 6] = [
        (2.96, 3.06),
        (3.24, 2.83),
        (4.22, 2.72),
        (4.69, 6.77),
        (1.85, 2.76),
        (4.75, 2.81),
    ];
    /// Joint mode, DALTA-ILP (runtime = the 3600 s cap).
    pub const T1_JOINT_ILP: [(f64, f64); 6] = [
        (2.48, 3600.0),
        (2.62, 3600.0),
        (3.55, 3600.0),
        (2.55, 3600.0),
        (2.66, 3600.0),
        (3.38, 3600.0),
    ];
    /// Joint mode, BA.
    pub const T1_JOINT_BA: [(f64, f64); 6] = [
        (2.46, 1.54),
        (2.84, 1.57),
        (3.01, 1.5),
        (2.9, 1.49),
        (2.66, 1.38),
        (4.27, 1.51),
    ];
    /// Joint mode, proposed.
    pub const T1_JOINT_PROP: [(f64, f64); 6] = [
        (2.5, 1.75),
        (2.5, 1.87),
        (2.66, 1.92),
        (2.72, 2.77),
        (1.9, 1.55),
        (2.8, 1.51),
    ];
    /// Fig. 4 headline: average MED ratio (Prop/DALTA) and speedup.
    pub const FIG4_AVG_MED_RATIO: f64 = 0.89;
    /// Fig. 4 headline speedup (DALTA time / Prop time).
    pub const FIG4_AVG_SPEEDUP: f64 = 1.16;
}

/// Returns all large-scale (Fig. 4) benchmarks with their functions built.
pub fn fig4_benchmarks() -> Vec<(Benchmark, MultiOutputFn)> {
    Benchmark::all()
        .into_iter()
        .map(|b| {
            let f = b.function(QuantScheme::Large).expect("all support large");
            (b, f)
        })
        .collect()
}

/// Formats a MED/time pair as a fixed-width table cell.
pub fn cell(med: f64, secs: f64) -> String {
    format!("{med:>8.2} {secs:>9.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_benchfn::ContinuousFn;

    #[test]
    fn fast_config_runs_table1_cell() {
        let f = ContinuousFn::Erf.function(7, 5).expect("valid widths");
        let cfg = RunConfig {
            partitions: 3,
            rounds: 1,
            ilp_time_limit: Duration::from_millis(50),
            seed: 1,
            replicas: 1,
            cache: true,
        };
        for method in [Method::Proposed, Method::DaltaIlp, Method::Dalta, Method::Ba] {
            let r = run_method(&f, method, Mode::Joint, QuantScheme::Small, &cfg);
            assert!(r.med.is_finite() && r.med >= 0.0, "{method:?}");
            assert!(r.seconds > 0.0);
        }
    }

    #[test]
    fn stop_parameters_match_paper() {
        match stop_for(QuantScheme::Small) {
            StopCriterion::DynamicVariance {
                sample_every,
                window,
                threshold,
                ..
            } => {
                assert_eq!((sample_every, window), (20, 20));
                assert_eq!(threshold, 1e-8);
            }
            _ => panic!("expected dynamic criterion"),
        }
        match stop_for(QuantScheme::Large) {
            StopCriterion::DynamicVariance {
                sample_every,
                window,
                ..
            } => assert_eq!((sample_every, window), (10, 10)),
            _ => panic!("expected dynamic criterion"),
        }
    }

    #[test]
    fn reference_averages_match_paper_text() {
        // Paper: joint-mode proposed average MED 2.51, DALTA-ILP 2.87,
        // BA 3.02, DALTA 3.61.
        let avg = |t: &[(f64, f64); 6]| t.iter().map(|&(m, _)| m).sum::<f64>() / 6.0;
        assert!((avg(&paper_reference::T1_JOINT_PROP) - 2.51).abs() < 0.01);
        assert!((avg(&paper_reference::T1_JOINT_ILP) - 2.87).abs() < 0.01);
        assert!((avg(&paper_reference::T1_JOINT_BA) - 3.02).abs() < 0.01);
        assert!((avg(&paper_reference::T1_JOINT_DALTA) - 3.61).abs() < 0.015);
        assert!((avg(&paper_reference::T1_SEP_ILP) - 9.35).abs() < 0.015);
        // The paper prints 7.83 as the separate-mode average; the listed
        // per-function MEDs average to 7.79 (their rounding), so allow it.
        assert!((avg(&paper_reference::T1_SEP_PROP) - 7.83).abs() < 0.06);
    }
}
