//! Ablation studies of the paper's design choices (DESIGN.md A1–A3):
//!
//! - **A1** — dynamic stop criterion (Section 3.3.1) vs fixed iteration
//!   budgets: solution quality vs iterations spent;
//! - **A2** — the Theorem-3 type-reset heuristic (Section 3.3.2) on/off;
//! - **A3** — the column-based second-order formulation vs solving the
//!   row-based COP directly with a third-order Ising model (Section 3.1's
//!   motivating claim).
//!
//! All ablations run on real core-COP instances: every output bit of the
//! quantized `exp(x)` and `denoise(x)` benchmarks at `n = 9` under the
//! paper's partition sizes.
//!
//! Usage: `cargo run --release -p adis-bench --bin ablations [-- --seed N]`

use adis_bench::{report_for, write_report, RunConfig};
use adis_benchfn::ContinuousFn;
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{ColumnCop, IsingCopSolver, RowCop};
use adis_sb::StopCriterion;
use adis_telemetry::{Recorder, ReportCell};
use std::time::Instant;

/// All per-bit COPs of a benchmark at n = 9 under a fixed 4|5 partition.
fn cops(f: ContinuousFn, seed: u64) -> Vec<(ColumnCop, RowCop)> {
    use rand::SeedableRng;
    let table = f.function(9, 9).expect("paper widths");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..9)
        .map(|k| {
            let w = Partition::random(9, 5, &mut rng);
            let m = BooleanMatrix::build(table.component(k), &w);
            (
                ColumnCop::separate(&m, &w, &InputDist::Uniform),
                RowCop::separate(&m, &w, &InputDist::Uniform),
            )
        })
        .collect()
}

fn main() {
    let cfg = RunConfig::from_args();
    let run_start = Instant::now();
    let mut report = report_for("ablations", &cfg);
    let instances: Vec<(ColumnCop, RowCop)> = [ContinuousFn::Exp, ContinuousFn::Denoise]
        .into_iter()
        .flat_map(|f| cops(f, cfg.seed))
        .collect();
    println!("ablations over {} benchmark COP instances\n", instances.len());

    // ---------- A1: dynamic stop vs fixed iteration budgets ----------
    println!("A1 — stop criterion (avg ER, avg iterations, avg ms per COP)");
    println!("{:<26} {:>10} {:>12} {:>10}", "criterion", "ER", "iters", "ms");
    let criteria: Vec<(String, StopCriterion)> = vec![
        ("fixed 100".into(), StopCriterion::FixedIterations(100)),
        ("fixed 500".into(), StopCriterion::FixedIterations(500)),
        ("fixed 2000".into(), StopCriterion::FixedIterations(2000)),
        ("fixed 10000".into(), StopCriterion::FixedIterations(10000)),
        (
            "dynamic f=s=20, 1e-8".into(),
            StopCriterion::paper_small(),
        ),
    ];
    for (name, crit) in criteria {
        let mut rec = Recorder::new().keep_trajectory(false);
        let mut er = 0.0;
        let mut iters = 0usize;
        let t0 = Instant::now();
        for (cop, _) in &instances {
            let sol = IsingCopSolver::new()
                .stop(crit.clone())
                .seed(cfg.seed)
                .solve_with(cop, &mut rec);
            er += sol.objective;
            iters += sol.stats.iterations;
        }
        let elapsed = t0.elapsed();
        println!(
            "{:<26} {:>10.4} {:>12.0} {:>10.2}",
            name,
            er / instances.len() as f64,
            iters as f64 / instances.len() as f64,
            elapsed.as_secs_f64() * 1000.0 / instances.len() as f64
        );
        let mut cell = ReportCell::new("A1", "Separate", &name).absorb(&rec);
        cell.objective = er / instances.len() as f64;
        cell.seconds = elapsed.as_secs_f64();
        report.push(cell);
    }

    // ---------- A2: type-reset heuristic on/off ----------
    println!("\nA2 — Theorem-3 type-reset heuristic (avg ER, avg ms)");
    println!("{:<26} {:>10} {:>10}", "variant", "ER", "ms");
    for (name, on) in [("heuristic ON", true), ("heuristic OFF", false)] {
        let mut rec = Recorder::new().keep_trajectory(false);
        let mut er = 0.0;
        let t0 = Instant::now();
        for (cop, _) in &instances {
            er += IsingCopSolver::new()
                .heuristic(on)
                .seed(cfg.seed)
                .solve_with(cop, &mut rec)
                .objective;
        }
        let elapsed = t0.elapsed();
        println!(
            "{:<26} {:>10.4} {:>10.2}",
            name,
            er / instances.len() as f64,
            elapsed.as_secs_f64() * 1000.0 / instances.len() as f64
        );
        let mut cell = ReportCell::new("A2", "Separate", name).absorb(&rec);
        cell.objective = er / instances.len() as f64;
        cell.seconds = elapsed.as_secs_f64();
        report.push(cell);
    }

    // ---------- A3: 2nd-order column vs 3rd-order row formulation ------
    println!("\nA3 — column-based 2nd-order vs row-based 3rd-order Ising");
    println!("{:<26} {:>10} {:>10}", "formulation", "ER", "ms");
    {
        let mut rec = Recorder::new().keep_trajectory(false);
        let mut er = 0.0;
        let t0 = Instant::now();
        for (cop, _) in &instances {
            er += IsingCopSolver::new()
                .seed(cfg.seed)
                .solve_with(cop, &mut rec)
                .objective;
        }
        let elapsed = t0.elapsed();
        println!(
            "{:<26} {:>10.4} {:>10.2}",
            "column (bSB, 2nd order)",
            er / instances.len() as f64,
            elapsed.as_secs_f64() * 1000.0 / instances.len() as f64
        );
        let mut cell = ReportCell::new("A3", "Separate", "column 2nd-order").absorb(&rec);
        cell.objective = er / instances.len() as f64;
        cell.seconds = elapsed.as_secs_f64();
        report.push(cell);
        let mut er3 = 0.0;
        let t0 = Instant::now();
        for (_, row) in &instances {
            er3 += row.solve_ising3(1, cfg.seed).objective;
        }
        let elapsed3 = t0.elapsed();
        println!(
            "{:<26} {:>10.4} {:>10.2}",
            "row (HO-SB, 3rd order)",
            er3 / instances.len() as f64,
            elapsed3.as_secs_f64() * 1000.0 / instances.len() as f64
        );
        let mut cell3 = ReportCell::new("A3", "Separate", "row 3rd-order");
        cell3.objective = er3 / instances.len() as f64;
        cell3.seconds = elapsed3.as_secs_f64();
        report.push(cell3);
        // Reference: the exact optimum.
        let mut opt = 0.0;
        for (_, row) in &instances {
            opt += row.solve_exact(None).objective;
        }
        println!(
            "{:<26} {:>10.4} {:>10}",
            "exact optimum (reference)",
            opt / instances.len() as f64,
            "-"
        );
    }
    println!("\n(lower ER is better; the paper's design choices should win A1–A3)");

    report.total_wall(run_start.elapsed());
    write_report(&report);
}
