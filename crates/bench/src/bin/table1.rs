//! Regenerates **Table 1**: approximate disjoint decomposition of the six
//! continuous functions at `n = m = 9` (free 4 / bound 5), comparing
//! DALTA-ILP vs the proposed Ising solver in separate mode, and DALTA /
//! DALTA-ILP / BA / the proposed solver in joint mode. MED and runtime per
//! cell, with the paper's numbers printed alongside.
//!
//! Usage:
//!   cargo run --release -p adis-bench --bin table1            # fast profile
//!   cargo run --release -p adis-bench --bin table1 -- --full  # paper P/R
//!   ... --partitions N --rounds N --seed N --ilp-limit-ms N

use adis_bench::{
    paper_reference as paper, report_for, run_method_reported, write_report, Method, RunConfig,
};
use adis_benchfn::{ContinuousFn, QuantScheme};
use adis_core::Mode;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let run_start = Instant::now();
    let mut report = report_for("table1", &cfg);
    println!("Table 1 reproduction — n = 9, m = 9, |A| = 4, |B| = 5");
    println!(
        "config: P = {} partitions, R = {} rounds, ILP cap {:?}, seed {}\n",
        cfg.partitions, cfg.rounds, cfg.ilp_time_limit, cfg.seed
    );

    #[allow(clippy::type_complexity)]
    let columns: [(Mode, Method, &[(f64, f64); 6]); 6] = [
        (Mode::Separate, Method::DaltaIlp, &paper::T1_SEP_ILP),
        (Mode::Separate, Method::Proposed, &paper::T1_SEP_PROP),
        (Mode::Joint, Method::Dalta, &paper::T1_JOINT_DALTA),
        (Mode::Joint, Method::DaltaIlp, &paper::T1_JOINT_ILP),
        (Mode::Joint, Method::Ba, &paper::T1_JOINT_BA),
        (Mode::Joint, Method::Proposed, &paper::T1_JOINT_PROP),
    ];

    println!(
        "{:<10} {:<22} {:>9} {:>10} | {:>9} {:>10}",
        "function", "mode/method", "MED", "time(s)", "paperMED", "paper(s)"
    );
    println!("{}", "-".repeat(78));

    let mut sums = vec![(0.0f64, 0.0f64); columns.len()];
    for (fi, f) in ContinuousFn::ALL.iter().enumerate() {
        let table = f
            .function(9, 9)
            .expect("paper quantization widths are valid");
        for (ci, (mode, method, reference)) in columns.iter().enumerate() {
            let (r, cell) =
                run_method_reported(&table, f.name(), *method, *mode, QuantScheme::Small, &cfg);
            report.push(cell);
            let (pm, pt) = reference[fi];
            println!(
                "{:<10} {:<22} {:>9.2} {:>10.2} | {:>9.2} {:>10.2}",
                f.name(),
                format!("{:?}/{}", mode, method.name()),
                r.med,
                r.seconds,
                pm,
                pt
            );
            sums[ci].0 += r.med;
            sums[ci].1 += r.seconds;
        }
        println!();
    }

    println!("averages over the six functions:");
    for (ci, (mode, method, reference)) in columns.iter().enumerate() {
        let pm: f64 = reference.iter().map(|&(m, _)| m).sum::<f64>() / 6.0;
        let pt: f64 = reference.iter().map(|&(_, t)| t).sum::<f64>() / 6.0;
        println!(
            "{:<33} {:>9.2} {:>10.2} | {:>9.2} {:>10.2}",
            format!("{:?}/{}", mode, method.name()),
            sums[ci].0 / 6.0,
            sums[ci].1 / 6.0,
            pm,
            pt
        );
    }

    // The headline shape checks the paper reports for this table.
    let sep_ilp = sums[0].0 / 6.0;
    let sep_prop = sums[1].0 / 6.0;
    let joint_dalta = sums[2].0 / 6.0;
    let joint_prop = sums[5].0 / 6.0;
    println!("\nshape checks (paper values in brackets):");
    println!(
        "  separate: Prop./ILP MED ratio   {:.2}  [0.84 — Prop. 16% better]",
        sep_prop / sep_ilp
    );
    println!(
        "  separate: ILP/Prop. time ratio  {:.0}x  [≈418x]",
        (sums[0].1 / 6.0) / (sums[1].1 / 6.0).max(1e-9)
    );
    println!(
        "  joint: Prop./DALTA MED ratio    {:.2}  [0.70 — Prop. clearly better]",
        joint_prop / joint_dalta
    );
    println!(
        "  joint < separate MED (Prop.)    {}  [true]",
        joint_prop < sep_prop
    );

    report.total_wall(run_start.elapsed());
    write_report(&report);
}
