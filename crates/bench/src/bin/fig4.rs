//! Regenerates **Fig. 4**: joint-mode decomposition at `n = 16` (free 7 /
//! bound 9) over the ten large-scale benchmarks, reporting the MED ratio
//! and runtime ratio of the proposed Ising solver versus DALTA, with
//! DALTA's absolute MED/runtime as the baseline series.
//!
//! Usage:
//!   cargo run --release -p adis-bench --bin fig4              # fast profile
//!   cargo run --release -p adis-bench --bin fig4 -- --full    # paper P/R (slow!)
//!   ... --partitions N --rounds N --seed N

use adis_bench::{
    fig4_benchmarks, paper_reference as paper, report_for, run_method_reported, write_report,
    Method, RunConfig,
};
use adis_benchfn::QuantScheme;
use adis_core::Mode;
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_args();
    let run_start = Instant::now();
    let mut report = report_for("fig4", &cfg);
    println!("Fig. 4 reproduction — n = 16, joint mode, |A| = 7, |B| = 9");
    println!(
        "config: P = {} partitions, R = {} rounds, seed {}\n",
        cfg.partitions, cfg.rounds, cfg.seed
    );
    println!(
        "{:<12} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9}",
        "benchmark", "m", "DALTA MED", "DALTA s", "Prop MED", "Prop s", "MED r.", "time r."
    );
    println!("{}", "-".repeat(92));

    let mut med_ratios = Vec::new();
    let mut time_ratios = Vec::new();
    for (b, f) in fig4_benchmarks() {
        let (dalta, dalta_cell) =
            run_method_reported(&f, b.name(), Method::Dalta, Mode::Joint, QuantScheme::Large, &cfg);
        let (prop, prop_cell) = run_method_reported(
            &f,
            b.name(),
            Method::Proposed,
            Mode::Joint,
            QuantScheme::Large,
            &cfg,
        );
        report.push(dalta_cell);
        report.push(prop_cell);
        let med_ratio = prop.med / dalta.med.max(1e-12);
        let time_ratio = prop.seconds / dalta.seconds.max(1e-12);
        med_ratios.push(med_ratio);
        time_ratios.push(time_ratio);
        println!(
            "{:<12} {:>5} | {:>10.2} {:>10.2} | {:>10.2} {:>10.2} | {:>9.3} {:>9.3}",
            b.name(),
            b.output_bits(QuantScheme::Large),
            dalta.med,
            dalta.seconds,
            prop.med,
            prop.seconds,
            med_ratio,
            time_ratio
        );
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let wins = med_ratios
        .iter()
        .zip(&time_ratios)
        .filter(|(&m, &t)| m < 1.0 && t < 1.0)
        .count();
    println!("\nsummary (a ratio < 1 favours the proposed method):");
    println!(
        "  average MED ratio   : {:.3}   [paper ≈ {:.2} — 11% smaller MED]",
        avg(&med_ratios),
        paper::FIG4_AVG_MED_RATIO
    );
    println!(
        "  average speedup     : {:.2}x  [paper ≈ {:.2}x]",
        1.0 / avg(&time_ratios).max(1e-12),
        paper::FIG4_AVG_SPEEDUP
    );
    println!(
        "  improved on both    : {wins}/10 benchmarks  [paper: 7/10]"
    );

    report.total_wall(run_start.elapsed());
    write_report(&report);
}
