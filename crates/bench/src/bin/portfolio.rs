//! Portfolio racing benchmark: each fixed roster member solo vs the raced
//! [`PortfolioSolver`] on real benchmark core COPs.
//!
//! For every instance (continuous-function components at the paper's
//! `n = m = 9`, free 4 / bound 5 split) the bench measures:
//!
//! - each member's solo wall-clock and objective under an identical
//!   [`SolveCtx`] seed (best of `ADIS_PORTFOLIO_REPS` repetitions);
//! - the raced portfolio's wall-clock, winner and objective;
//! - **racing overhead** — portfolio wall-clock vs the best fixed member
//!   (the portfolio should track the fastest fixed choice to within ~10%);
//! - **cancel effectiveness** — aggregated lane work (bSB/SimCIM/DOCH
//!   iterations) in the portfolio run vs the sum of full solo runs:
//!   first-to-finish cancellation (or, on a host with no spare cores, the
//!   static-selection fallback that skips the losing lanes entirely)
//!   should keep the ratio well below 1.0.
//!
//! The portfolio adapts to the host: with spare cores it races one scoped
//! thread per member; on a single-CPU host racing would only time-slice
//! the lanes, so it runs the member named by the static selection table.
//! The artifact records `available_parallelism` so the two regimes are
//! distinguishable.
//!
//! Writes `results/BENCH_portfolio.json` and prints a per-instance table.
//! Knobs: `ADIS_PORTFOLIO_ITERS` (lane iteration budget, default 4000) and
//! `ADIS_PORTFOLIO_REPS` (timing repetitions, default 21).
//!
//! Usage:
//!   cargo run --release -p adis-bench --bin portfolio

use adis_anneal::{Doch, SimCim};
use adis_benchfn::ContinuousFn;
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{
    ColumnCop, CopScratch, CopSolver, DaltaHeuristic, DochCopSolver, IsingCopSolver, Mode,
    PortfolioSolver, SimCimCopSolver, SolveCtx,
};
use adis_sb::StopCriterion;
use adis_telemetry::Json;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

const SEED: u64 = 11;

/// Reads a positive integer knob from the environment, falling back to
/// `default`. Lets CI run the comparison on a reduced budget.
fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Benchmark core COPs: components of the paper's continuous functions at
/// `n = m = 9` under the free `{0..3}` / bound `{4..8}` split — the same
/// construction the solver microbenchmarks use, across several functions
/// and components so no single member is favored by accident.
fn instances() -> Vec<(String, ColumnCop)> {
    let w = Partition::new(9, vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]).expect("valid partition");
    let mut out = Vec::new();
    for f in ContinuousFn::ALL.iter() {
        for component in [2u32, 6] {
            let table = f.function(9, 9).expect("paper quantization widths");
            let m = BooleanMatrix::build(table.component(component), &w);
            out.push((
                format!("{}[{component}]", f.name()),
                ColumnCop::separate(&m, &w, &InputDist::Uniform),
            ));
        }
    }
    out
}

/// The raced roster with explicit, comparable iteration budgets. Every
/// member polls its context frequently (bSB at `sample_every`, SimCIM at
/// `sample_every`, DOCH inside the fixed-point loop, DALTA per start), so
/// race-join latency stays a small fraction of any lane's runtime.
fn roster(iters: usize) -> Vec<(&'static str, Box<dyn CopSolver>)> {
    // Budgets are balanced so every lane runs for a comparable, non-trivial
    // time on the benchmark instances: the race's fixed overhead (four
    // thread spawns plus the losers noticing cancellation) is a few hundred
    // microseconds, so millisecond-scale lanes keep it under 10%.
    vec![
        (
            "bsb",
            Box::new(
                IsingCopSolver::new()
                    .stop(StopCriterion::DynamicVariance {
                        sample_every: 8,
                        window: 4,
                        threshold: 1e-12,
                        max_iterations: iters,
                    })
                    .replicas(24),
            ),
        ),
        (
            "simcim",
            Box::new(SimCimCopSolver::with(
                SimCim::new()
                    .iterations((iters / 8).max(64))
                    .restarts(2)
                    .sample_every(8),
            )),
        ),
        (
            "doch",
            Box::new(DochCopSolver::with(
                Doch::new()
                    .max_iters(iters / 4)
                    .restarts((iters / 32).max(8)),
            )),
        ),
        (
            "dalta",
            Box::new(DaltaHeuristic {
                restarts: (iters / 4).max(16),
            }),
        ),
    ]
}

fn portfolio(iters: usize) -> PortfolioSolver {
    roster(iters)
        .into_iter()
        .fold(PortfolioSolver::new(), |p, (name, solver)| {
            p.member_boxed(name, solver)
        })
        .race(true)
}

fn main() {
    let iters = env_knob("ADIS_PORTFOLIO_ITERS", 4000);
    let reps = env_knob("ADIS_PORTFOLIO_REPS", 21);
    let members = roster(iters);
    let raced = portfolio(iters);
    println!(
        "portfolio racing bench — roster {:?}, iters {iters}, best of {reps}",
        members.iter().map(|(n, _)| *n).collect::<Vec<_>>()
    );
    println!(
        "{:<10} {:>9} {:>16} {:>16} {:>8} {:>9} {:>6}",
        "instance", "race(ms)", "best fixed", "worst fixed", "±10%", "winner", "work"
    );

    let mut rows = Vec::new();
    let mut overall_tally: BTreeMap<String, u64> = BTreeMap::new();
    let mut all_within = true;
    let mut beats_worst_somewhere = false;
    for (name, cop) in instances() {
        let mut scratch = CopScratch::new();

        // Best-of-`reps` wall clock per member and for the portfolio, with
        // the solo and portfolio measurements *interleaved* round-robin:
        // background load on the host then biases every contender equally
        // instead of whichever phase it coincided with.
        let mut solo_best = vec![f64::INFINITY; members.len()];
        let mut solo_outs: Vec<Option<adis_core::CopOutcome>> = vec![None; members.len()];
        let mut race_ms = f64::INFINITY;
        let mut race_out = None;
        let mut tally: BTreeMap<String, u64> = BTreeMap::new();
        // One untimed warmup absorbs cold caches and lazy page faults.
        for (_, solver) in &members {
            solver.solve_cop(&cop, &SolveCtx::new(SEED), &mut scratch);
        }
        raced.solve_cop(&cop, &SolveCtx::new(SEED), &mut scratch);
        for _ in 0..reps {
            for (i, (_, solver)) in members.iter().enumerate() {
                let t0 = Instant::now();
                let res = solver.solve_cop(&cop, &SolveCtx::new(SEED), &mut scratch);
                solo_best[i] = solo_best[i].min(t0.elapsed().as_secs_f64() * 1e3);
                solo_outs[i] = Some(res);
            }
            let t0 = Instant::now();
            let res = raced.solve_cop(&cop, &SolveCtx::new(SEED), &mut scratch);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            *tally
                .entry(res.winner.clone().unwrap_or_default())
                .or_insert(0) += 1;
            if ms < race_ms {
                race_ms = ms;
                race_out = Some(res);
            }
        }
        let race_out = race_out.expect("at least one rep");
        let mut solo = Vec::new();
        let mut solo_work_sum = 0u64;
        for (i, (member, _)) in members.iter().enumerate() {
            let out = solo_outs[i].as_ref().expect("at least one rep");
            solo_work_sum += out.sb_iterations as u64 + out.bnb_nodes;
            solo.push((*member, solo_best[i], out.objective));
        }
        let winner = race_out.winner.clone().unwrap_or_default();
        for (w, n) in &tally {
            *overall_tally.entry(w.clone()).or_insert(0) += n;
        }

        let (best_name, best_ms, _) = solo
            .iter()
            .cloned()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty roster");
        let (worst_name, worst_ms, _) = solo
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty roster");
        let within = race_ms <= best_ms * 1.10;
        all_within &= within;
        beats_worst_somewhere |= race_ms < worst_ms;
        let race_work = race_out.sb_iterations as u64 + race_out.bnb_nodes;
        let work_ratio = race_work as f64 / solo_work_sum.max(1) as f64;

        let weights = cop.weights();
        let spread = weights.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
            - weights.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        let static_pick = PortfolioSolver::select_for(cop.rows(), cop.cols(), spread, Mode::Separate);

        println!(
            "{:<10} {:>9.3} {:>16} {:>16} {:>8} {:>9} {:>6.2}",
            name,
            race_ms,
            format!("{best_name} {best_ms:.3}"),
            format!("{worst_name} {worst_ms:.3}"),
            if within { "yes" } else { "NO" },
            winner,
            work_ratio
        );

        rows.push(Json::Obj(vec![
            ("instance".into(), Json::str(name)),
            ("rows".into(), Json::Num(cop.rows() as f64)),
            ("cols".into(), Json::Num(cop.cols() as f64)),
            ("weight_spread".into(), Json::Num(spread)),
            (
                "solo".into(),
                Json::Arr(
                    solo.iter()
                        .map(|(m, ms, obj)| {
                            Json::Obj(vec![
                                ("member".into(), Json::str(*m)),
                                ("ms".into(), Json::Num(*ms)),
                                ("objective".into(), Json::Num(*obj)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("portfolio_ms".into(), Json::Num(race_ms)),
            ("portfolio_objective".into(), Json::Num(race_out.objective)),
            ("winner".into(), Json::str(winner)),
            (
                "winner_tally".into(),
                Json::Obj(
                    tally
                        .iter()
                        .map(|(w, n)| (w.clone(), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
            ("best_fixed".into(), Json::str(best_name)),
            ("best_fixed_ms".into(), Json::Num(best_ms)),
            ("worst_fixed".into(), Json::str(worst_name)),
            ("worst_fixed_ms".into(), Json::Num(worst_ms)),
            ("within_10pct_of_best".into(), Json::Bool(within)),
            ("speedup_vs_worst".into(), Json::Num(worst_ms / race_ms)),
            ("race_work".into(), Json::Num(race_work as f64)),
            ("solo_work_sum".into(), Json::Num(solo_work_sum as f64)),
            ("cancel_work_ratio".into(), Json::Num(work_ratio)),
            ("static_pick".into(), Json::str(static_pick)),
        ]));
    }

    println!(
        "\nall instances within 10% of best fixed: {all_within}; \
         beats the worst fixed choice somewhere: {beats_worst_somewhere}"
    );
    println!("overall winner tally: {overall_tally:?}");

    let report = Json::Obj(vec![
        ("bench".into(), Json::str("portfolio")),
        (
            "roster".into(),
            Json::Arr(members.iter().map(|(n, _)| Json::str(*n)).collect()),
        ),
        ("iters".into(), Json::Num(iters as f64)),
        ("timing_reps".into(), Json::Num(reps as f64)),
        (
            "available_parallelism".into(),
            Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("seed".into(), Json::Num(SEED as f64)),
        ("all_within_10pct_of_best".into(), Json::Bool(all_within)),
        (
            "beats_worst_fixed_somewhere".into(),
            Json::Bool(beats_worst_somewhere),
        ),
        (
            "overall_winner_tally".into(),
            Json::Obj(
                overall_tally
                    .iter()
                    .map(|(w, n)| (w.clone(), Json::Num(*n as f64)))
                    .collect(),
            ),
        ),
        ("results".into(), Json::Arr(rows)),
    ]);
    // Anchor to the workspace root so the artifact lands in the same
    // `results/` directory as the run reports, regardless of CWD.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_portfolio.json");
    std::fs::write(&path, report.render_pretty()).expect("write BENCH_portfolio.json");
    println!("wrote {}", path.display());
}
