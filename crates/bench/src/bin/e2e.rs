//! End-to-end fused-batch timing: the Table-1 workload (six continuous
//! functions, `n = m = 9`, joint mode) decomposed three ways through one
//! generic-path Ising solver — the engine's fused multi-COP batch
//! scheduler, the per-COP parallel sweep, and the sequential oracle —
//! asserting bit-identical results and unchanged memo accounting while
//! timing the fused speedup.
//!
//! Writes `results/BENCH_e2e.json` (a deterministic name, so CI can
//! upload it as an artifact) with per-function cells for all three
//! variants, per-function speedups, and the aggregate speedup.
//!
//! Usage:
//!   cargo run --release -p adis-bench --bin e2e                 # fast profile
//!   ... --partitions N --rounds N --seed N --replicas N
//!   ... --min-speedup X   # exit nonzero unless fused/per-COP ≥ X

use adis_bench::stop_for;
use adis_benchfn::{ContinuousFn, QuantScheme};
use adis_core::{DecompositionOutcome, Framework, IsingCopSolver, Mode};
use adis_telemetry::{Json, Recorder, ReportCell, RunReport};
use std::time::Instant;

struct E2eConfig {
    partitions: usize,
    rounds: usize,
    seed: u64,
    replicas: usize,
    min_speedup: Option<f64>,
}

fn parse_args() -> E2eConfig {
    let mut cfg = E2eConfig {
        partitions: 8,
        rounds: 1,
        seed: 1,
        replicas: 1,
        min_speedup: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--partitions" => {
                i += 1;
                cfg.partitions = args[i].parse().expect("--partitions takes a number");
            }
            "--rounds" => {
                i += 1;
                cfg.rounds = args[i].parse().expect("--rounds takes a number");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes a number");
            }
            "--replicas" => {
                i += 1;
                cfg.replicas = args[i].parse().expect("--replicas takes a number");
            }
            "--min-speedup" => {
                i += 1;
                cfg.min_speedup = Some(args[i].parse().expect("--min-speedup takes a number"));
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }
    cfg
}

/// The framework every variant shares: joint mode on the paper's small
/// scheme, with the solver forced onto the generic Ising path (the one
/// the fused scheduler batches) so all three variants integrate the same
/// dynamics.
fn base_framework(cfg: &E2eConfig) -> Framework {
    Framework::new(Mode::Joint, 5)
        .solver(
            IsingCopSolver::new()
                .structured(false)
                .stop(stop_for(QuantScheme::Small))
                .replicas(cfg.replicas),
        )
        .partitions(cfg.partitions)
        .rounds(cfg.rounds)
        .seed(cfg.seed)
}

/// Whole-outcome bit-identity (the same comparison the adis-check
/// fused-batch family sweeps randomized configs with).
fn identical(a: &DecompositionOutcome, b: &DecompositionOutcome) -> bool {
    a.med.to_bits() == b.med.to_bits()
        && a.er.to_bits() == b.er.to_bits()
        && a.approx == b.approx
        && a.cop_solves == b.cop_solves
        && a.sb_iterations == b.sb_iterations
        && a.cache_hits == b.cache_hits
        && a.cache_misses == b.cache_misses
        && a.choices.len() == b.choices.len()
        && a.choices.iter().zip(&b.choices).all(|(ca, cb)| {
            ca.partition.bound() == cb.partition.bound()
                && ca.setting == cb.setting
                && ca.objective.to_bits() == cb.objective.to_bits()
        })
}

fn main() {
    let cfg = parse_args();
    let run_start = Instant::now();
    let mut report = RunReport::new("e2e", cfg.seed);
    report
        .config("partitions", Json::Num(cfg.partitions as f64))
        .config("rounds", Json::Num(cfg.rounds as f64))
        .config("replicas", Json::Num(cfg.replicas as f64));
    println!("Fused-batch e2e — Table-1 workload, n = 9, m = 9, joint mode");
    println!(
        "config: P = {} partitions, R = {} rounds, {} replicas, seed {}\n",
        cfg.partitions, cfg.rounds, cfg.replicas, cfg.seed
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>9} {:>10} {:>5}",
        "function", "fused(s)", "percop(s)", "seq(s)", "speedup", "occupancy", "bits"
    );
    println!("{}", "-".repeat(70));

    let mut fused_total = 0.0f64;
    let mut percop_total = 0.0f64;
    let mut all_identical = true;
    for f in ContinuousFn::ALL.iter() {
        let table = f
            .function(9, 9)
            .expect("paper quantization widths are valid");

        let run = |label: &str, fw: Framework| -> (DecompositionOutcome, ReportCell) {
            let mut rec = Recorder::new().keep_trajectory(false);
            let outcome = fw.decompose_with(&table, &mut rec);
            let mut cell = ReportCell::new(f.name(), "Joint", label).absorb(&rec);
            cell.objective = outcome.med;
            cell.seconds = outcome.elapsed.as_secs_f64();
            (outcome, cell)
        };
        let (fused, mut fused_cell) = run("fused", base_framework(&cfg).parallel(true));
        let (percop, percop_cell) =
            run("per-cop", base_framework(&cfg).parallel(true).fused(false));
        let (seq, seq_cell) = run("sequential", base_framework(&cfg).parallel(false));

        let bits = identical(&fused, &percop) && identical(&fused, &seq);
        all_identical &= bits;
        let speedup = percop.elapsed.as_secs_f64() / fused.elapsed.as_secs_f64().max(1e-9);
        fused_total += fused.elapsed.as_secs_f64();
        percop_total += percop.elapsed.as_secs_f64();
        let occupancy = fused.fused_stats.occupancy();
        fused_cell
            .extra
            .push(("speedup_vs_per_cop".to_string(), Json::Num(speedup)));
        fused_cell
            .extra
            .push(("bit_identical".to_string(), Json::Bool(bits)));
        report.push(fused_cell);
        report.push(percop_cell);
        report.push(seq_cell);
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x {:>10.2} {:>5}",
            f.name(),
            fused.elapsed.as_secs_f64(),
            percop.elapsed.as_secs_f64(),
            seq.elapsed.as_secs_f64(),
            speedup,
            occupancy,
            if bits { "ok" } else { "DIFF" }
        );
        assert!(
            fused.fused_stats.units > 0,
            "{}: the fused path never engaged — the timing compares nothing",
            f.name()
        );
    }

    let speedup = percop_total / fused_total.max(1e-9);
    println!("{}", "-".repeat(70));
    println!(
        "aggregate: fused {fused_total:.3}s vs per-COP {percop_total:.3}s — {speedup:.2}x, \
         bit_identical = {all_identical}"
    );
    report
        .config("aggregate_speedup", Json::Num(speedup))
        .config("bit_identical", Json::Bool(all_identical))
        .total_wall(run_start.elapsed());
    match report.write_named("results", "BENCH_e2e.json") {
        Ok(path) => println!("run report: {}", path.display()),
        Err(e) => eprintln!("could not write run report: {e}"),
    }

    assert!(all_identical, "fused results diverged from the oracle");
    if let Some(min) = cfg.min_speedup {
        if speedup < min {
            eprintln!("FAIL: aggregate speedup {speedup:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
        println!("speedup floor {min:.2}x satisfied");
    }
}
