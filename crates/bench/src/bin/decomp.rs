//! Large-`n` decomposition benchmark: a 16-input extended benchfn entry
//! decomposed end-to-end through the partitioned block-coordinate COP
//! path and the recursive multi-level cascade path, against the
//! single-instance Ising baseline.
//!
//! Records the **quality-vs-budget** curve (partitioned MED as the
//! coordination-sweep budget grows) and **wall-clock** for every variant,
//! so the trade the partitioned solver makes — many small Ising instances
//! instead of one `2r + c`-spin instance — is visible in one report.
//!
//! Writes `results/BENCH_decomp.json` (a deterministic name, so CI can
//! upload it as an artifact).
//!
//! Usage:
//!   cargo run --release -p adis-bench --bin decomp            # defaults
//!   ... --bench rsqrt|sigmoid --partitions N --rounds N --seed N
//!   ... --block-cols N --budgets 1,2,4 --levels N
//!   ... --max-med X   # exit nonzero if any variant's MED exceeds X

use adis_bench::stop_for;
use adis_benchfn::{Benchmark, QuantScheme};
use adis_core::{
    Framework, IsingCopSolver, Mode, MultiLevelFramework, PartitionedCopSolver,
};
use adis_telemetry::{Json, Recorder, ReportCell, RunReport};
use std::time::Instant;

struct DecompConfig {
    bench: String,
    partitions: usize,
    rounds: usize,
    seed: u64,
    block_cols: usize,
    /// Coordination-sweep budgets for the quality-vs-budget curve.
    budgets: Vec<usize>,
    /// Multi-level recursion depth (`--levels 1` skips refinement).
    levels: usize,
    max_med: Option<f64>,
}

fn parse_args() -> DecompConfig {
    let mut cfg = DecompConfig {
        bench: "rsqrt".to_string(),
        partitions: 2,
        rounds: 1,
        seed: 1,
        block_cols: 64,
        budgets: vec![1, 2, 4],
        levels: 2,
        max_med: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                cfg.bench = args[i].clone();
            }
            "--partitions" => {
                i += 1;
                cfg.partitions = args[i].parse().expect("--partitions takes a number");
            }
            "--rounds" => {
                i += 1;
                cfg.rounds = args[i].parse().expect("--rounds takes a number");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes a number");
            }
            "--block-cols" => {
                i += 1;
                cfg.block_cols = args[i].parse().expect("--block-cols takes a number");
            }
            "--budgets" => {
                i += 1;
                cfg.budgets = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--budgets takes n,n,..."))
                    .collect();
                assert!(!cfg.budgets.is_empty(), "--budgets needs at least one entry");
            }
            "--levels" => {
                i += 1;
                cfg.levels = args[i].parse().expect("--levels takes a number");
            }
            "--max-med" => {
                i += 1;
                cfg.max_med = Some(args[i].parse().expect("--max-med takes a number"));
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }
    cfg
}

fn benchmark_by_name(name: &str) -> Benchmark {
    Benchmark::extended()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark: {name}"))
}

/// The outer framework every variant shares: joint mode on the paper's
/// large scheme (`n = 16`, `|B| = 9` — COPs of 128 rows × 512 columns,
/// 768 spins on the single-instance path).
fn base_framework(cfg: &DecompConfig) -> Framework {
    Framework::new(Mode::Joint, QuantScheme::Large.bound_size())
        .partitions(cfg.partitions)
        .rounds(cfg.rounds)
        .seed(cfg.seed)
}

fn main() {
    let cfg = parse_args();
    let run_start = Instant::now();
    let bench = benchmark_by_name(&cfg.bench);
    let f = bench
        .function(QuantScheme::Large)
        .expect("extended entries support the large scheme");
    assert!(
        f.inputs() >= 16,
        "decomp benchmark requires a large-n (>= 16 input) entry"
    );

    let mut report = RunReport::new("decomp", cfg.seed);
    report
        .config("bench", Json::Str(cfg.bench.clone()))
        .config("partitions", Json::Num(cfg.partitions as f64))
        .config("rounds", Json::Num(cfg.rounds as f64))
        .config("block_cols", Json::Num(cfg.block_cols as f64))
        .config(
            "budgets",
            Json::Arr(cfg.budgets.iter().map(|&s| Json::Num(s as f64)).collect()),
        )
        .config("levels", Json::Num(cfg.levels as f64));
    println!(
        "Large-n decomposition — {} (n = {}, m = {}), joint mode, |B| = {}",
        cfg.bench,
        f.inputs(),
        f.outputs(),
        QuantScheme::Large.bound_size()
    );
    println!(
        "config: P = {} partitions, R = {} rounds, block_cols = {}, seed {}\n",
        cfg.partitions, cfg.rounds, cfg.block_cols, cfg.seed
    );
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>12}",
        "variant", "med", "time(s)", "vs single", "bits"
    );
    println!("{}", "-".repeat(64));

    let mut meds: Vec<(String, f64)> = Vec::new();

    // Single-instance baseline: one bSB run over the full 2r + c spins.
    let single = {
        let mut rec = Recorder::new().keep_trajectory(false);
        let fw = base_framework(&cfg)
            .solver(IsingCopSolver::new().stop(stop_for(QuantScheme::Large)));
        let outcome = fw.decompose_with(&f, &mut rec);
        let mut cell = ReportCell::new(&cfg.bench, "Joint", "single").absorb(&rec);
        cell.objective = outcome.med;
        cell.seconds = outcome.elapsed.as_secs_f64();
        cell.extra.push(("er".to_string(), Json::Num(outcome.er)));
        report.push(cell);
        println!(
            "{:<18} {:>10.4} {:>10.3} {:>9} {:>12}",
            "single",
            outcome.med,
            outcome.elapsed.as_secs_f64(),
            "1.00x",
            outcome.to_lut().size_bits()
        );
        meds.push(("single".to_string(), outcome.med));
        outcome
    };
    let single_secs = single.elapsed.as_secs_f64();

    // Quality-vs-budget: the partitioned solver at increasing
    // coordination-sweep budgets, same outer framework.
    for &sweeps in &cfg.budgets {
        let mut rec = Recorder::new().keep_trajectory(false);
        let solver = PartitionedCopSolver::new()
            .inner(IsingCopSolver::new().stop(stop_for(QuantScheme::Large)))
            .block_cols(cfg.block_cols)
            .sweeps(sweeps);
        let fw = base_framework(&cfg).solver(solver);
        let outcome = fw.decompose_with(&f, &mut rec);
        let label = format!("partitioned-s{sweeps}");
        let mut cell = ReportCell::new(&cfg.bench, "Joint", &label).absorb(&rec);
        cell.objective = outcome.med;
        cell.seconds = outcome.elapsed.as_secs_f64();
        let speedup = single_secs / outcome.elapsed.as_secs_f64().max(1e-9);
        cell.extra.push(("er".to_string(), Json::Num(outcome.er)));
        cell.extra
            .push(("sweeps".to_string(), Json::Num(sweeps as f64)));
        cell.extra
            .push(("block_cols".to_string(), Json::Num(cfg.block_cols as f64)));
        cell.extra
            .push(("speedup_vs_single".to_string(), Json::Num(speedup)));
        report.push(cell);
        println!(
            "{:<18} {:>10.4} {:>10.3} {:>8.2}x {:>12}",
            label,
            outcome.med,
            outcome.elapsed.as_secs_f64(),
            speedup,
            outcome.to_lut().size_bits()
        );
        meds.push((label, outcome.med));
    }

    // Multi-level cascade over the partitioned solver: the extracted φ/F
    // sub-functions are themselves decomposed, shrinking the LUTs further.
    {
        let mut rec = Recorder::new().keep_trajectory(false);
        let base = base_framework(&cfg).solver(
            PartitionedCopSolver::new()
                .inner(IsingCopSolver::new().stop(stop_for(QuantScheme::Large)))
                .block_cols(cfg.block_cols)
                .sweeps(*cfg.budgets.last().expect("budgets is non-empty")),
        );
        let ml = MultiLevelFramework::new(base, cfg.levels).min_inputs(8);
        let outcome = ml
            .decompose_with(&f, &mut rec)
            .expect("multi-level configuration is valid");
        let mut cell = ReportCell::new(&cfg.bench, "Joint", "multilevel").absorb(&rec);
        cell.objective = outcome.med;
        cell.seconds = outcome.elapsed.as_secs_f64();
        let speedup = single_secs / outcome.elapsed.as_secs_f64().max(1e-9);
        cell.extra.push(("er".to_string(), Json::Num(outcome.er)));
        cell.extra
            .push(("levels".to_string(), Json::Num(outcome.levels.len() as f64)));
        cell.extra.push((
            "cascade_bits".to_string(),
            Json::Num(outcome.cascade_bits as f64),
        ));
        cell.extra.push((
            "direct_bits".to_string(),
            Json::Num(outcome.direct_bits as f64),
        ));
        cell.extra
            .push(("speedup_vs_single".to_string(), Json::Num(speedup)));
        report.push(cell);
        println!(
            "{:<18} {:>10.4} {:>10.3} {:>8.2}x {:>12}",
            "multilevel",
            outcome.med,
            outcome.elapsed.as_secs_f64(),
            speedup,
            outcome.cascade_bits
        );
        meds.push(("multilevel".to_string(), outcome.med));
        assert!(
            outcome.cascade_bits < outcome.direct_bits,
            "the cascade must be smaller than the direct table"
        );
    }

    println!("{}", "-".repeat(64));
    report.total_wall(run_start.elapsed());
    match report.write_named("results", "BENCH_decomp.json") {
        Ok(path) => println!("run report: {}", path.display()),
        Err(e) => eprintln!("could not write run report: {e}"),
    }

    for (label, med) in &meds {
        assert!(
            med.is_finite() && *med >= 0.0,
            "{label}: MED must be finite and non-negative"
        );
    }
    if let Some(max) = cfg.max_med {
        let worst = meds
            .iter()
            .map(|(_, m)| *m)
            .fold(f64::NEG_INFINITY, f64::max);
        if worst > max {
            eprintln!("FAIL: worst MED {worst:.4} > allowed {max:.4}");
            std::process::exit(1);
        }
        println!("MED ceiling {max:.4} satisfied (worst {worst:.4})");
    }
}
