//! Criterion microbenchmarks of the Ising solvers on standard random
//! instances and on real core-COP instances: bSB/dSB/aSB throughput,
//! simulated annealing, and the exact reference solvers.

use adis_anneal::{Annealer, Schedule};
use adis_benchfn::ContinuousFn;
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{ColumnCop, IsingCopSolver, RowCop};
use adis_ising::random::sherrington_kirkpatrick;
use adis_sb::{SbSolver, SbVariant, StopCriterion};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn benchmark_cop() -> (ColumnCop, RowCop) {
    let table = ContinuousFn::Exp.function(9, 9).expect("paper widths");
    let w = Partition::new(9, vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]).expect("valid");
    let m = BooleanMatrix::build(table.component(6), &w);
    (
        ColumnCop::separate(&m, &w, &InputDist::Uniform),
        RowCop::separate(&m, &w, &InputDist::Uniform),
    )
}

fn bench_sb_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("sb_variants_sk");
    for n in [32usize, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = sherrington_kirkpatrick(n, &mut rng);
        for (name, variant) in [
            ("bSB", SbVariant::Ballistic),
            ("dSB", SbVariant::Discrete),
            ("aSB", SbVariant::Adiabatic),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &p, |b, p| {
                b.iter(|| {
                    SbSolver::new()
                        .variant(variant)
                        .stop(StopCriterion::FixedIterations(500))
                        .solve(p)
                        .best_energy
                })
            });
        }
    }
    group.finish();
}

fn bench_cop_solvers(c: &mut Criterion) {
    let (col, row) = benchmark_cop();
    let mut group = c.benchmark_group("core_cop_solvers");
    group.bench_function("ising_bsb_proposed", |b| {
        b.iter(|| IsingCopSolver::new().solve(&col).objective)
    });
    group.bench_function("ising_bsb_no_heuristic", |b| {
        b.iter(|| IsingCopSolver::new().heuristic(false).solve(&col).objective)
    });
    group.bench_function("exact_branch_and_bound", |b| {
        b.iter(|| row.solve_exact(None).objective)
    });
    group.bench_function("dalta_heuristic", |b| {
        b.iter(|| adis_core::baselines::solve_dalta_heuristic(&row, 4, 1).objective)
    });
    group.bench_function("ba_annealing", |b| {
        b.iter(|| {
            adis_core::baselines::solve_ba(&row, &adis_core::baselines::BaParams::default(), 1)
                .objective
        })
    });
    group.bench_function("sa_on_ising_model", |b| {
        let ising = col.to_ising();
        b.iter(|| {
            Annealer::new()
                .schedule(Schedule::geometric(1.0, 1e-3, 100))
                .solve(&ising)
                .best_energy
        })
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let (col, row) = benchmark_cop();
    let mut group = c.benchmark_group("formulation");
    group.bench_function("column_to_ising", |b| b.iter(|| col.to_ising()));
    group.bench_function("row_to_ising3", |b| b.iter(|| row.to_ising3()));
    group.bench_function("theorem3_reset", |b| {
        let s = col.alternate(adis_boolfn::BitVec::zeros(col.cols()), 10);
        b.iter(|| col.optimal_t(&s.v1, &s.v2))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sb_variants, bench_cop_solvers, bench_encoding
}
criterion_main!(benches);
