//! Criterion microbenchmarks of the Ising solvers on standard random
//! instances and on real core-COP instances: bSB/dSB/aSB throughput,
//! simulated annealing, and the exact reference solvers.

use adis_anneal::{Annealer, Schedule};
use adis_benchfn::ContinuousFn;
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{ColumnCop, IsingCopSolver, RowCop};
use adis_ising::random::sherrington_kirkpatrick;
use adis_ising::IsingProblem;
use adis_sb::{KernelPrecision, SbBatchScratch, SbScratch, SbSolver, SbVariant, StopCriterion};
use adis_telemetry::{Json, NullObserver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::Path;
use std::time::Instant;

fn benchmark_cop() -> (ColumnCop, RowCop) {
    let table = ContinuousFn::Exp.function(9, 9).expect("paper widths");
    let w = Partition::new(9, vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]).expect("valid");
    let m = BooleanMatrix::build(table.component(6), &w);
    (
        ColumnCop::separate(&m, &w, &InputDist::Uniform),
        RowCop::separate(&m, &w, &InputDist::Uniform),
    )
}

fn bench_sb_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("sb_variants_sk");
    for n in [32usize, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = sherrington_kirkpatrick(n, &mut rng);
        for (name, variant) in [
            ("bSB", SbVariant::Ballistic),
            ("dSB", SbVariant::Discrete),
            ("aSB", SbVariant::Adiabatic),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &p, |b, p| {
                b.iter(|| {
                    SbSolver::new()
                        .variant(variant)
                        .stop(StopCriterion::FixedIterations(500))
                        .solve(p)
                        .best_energy
                })
            });
        }
    }
    group.finish();
}

fn bench_cop_solvers(c: &mut Criterion) {
    let (col, row) = benchmark_cop();
    let mut group = c.benchmark_group("core_cop_solvers");
    group.bench_function("ising_bsb_proposed", |b| {
        b.iter(|| IsingCopSolver::new().solve(&col).objective)
    });
    group.bench_function("ising_bsb_no_heuristic", |b| {
        b.iter(|| IsingCopSolver::new().heuristic(false).solve(&col).objective)
    });
    group.bench_function("exact_branch_and_bound", |b| {
        b.iter(|| row.solve_exact(None).objective)
    });
    group.bench_function("dalta_heuristic", |b| {
        b.iter(|| adis_core::baselines::solve_dalta_heuristic(&row, 4, 1).objective)
    });
    group.bench_function("ba_annealing", |b| {
        b.iter(|| {
            adis_core::baselines::solve_ba(&row, &adis_core::baselines::BaParams::default(), 1)
                .objective
        })
    });
    group.bench_function("sa_on_ising_model", |b| {
        let ising = col.to_ising();
        b.iter(|| {
            Annealer::new()
                .schedule(Schedule::geometric(1.0, 1e-3, 100))
                .solve(&ising)
                .best_energy
        })
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let (col, row) = benchmark_cop();
    let mut group = c.benchmark_group("formulation");
    group.bench_function("column_to_ising", |b| b.iter(|| col.to_ising()));
    group.bench_function("row_to_ising3", |b| b.iter(|| row.to_ising3()));
    group.bench_function("theorem3_reset", |b| {
        let s = col.alternate(adis_boolfn::BitVec::zeros(col.cols()), 10);
        b.iter(|| col.optimal_t(&s.v1, &s.v2))
    });
    group.finish();
}

/// Reads a positive integer knob from the environment, falling back to
/// `default`. Lets CI run the kernel comparison on a reduced budget.
fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Best-of-`reps` wall clock for `f`, in milliseconds.
fn best_of_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs `replicas` independent sequential trajectories — the pre-batch
/// `solve_batch` implementation — reusing one scratch across replicas.
fn sequential_replicas(
    solver: &SbSolver,
    seed: u64,
    problem: &IsingProblem,
    replicas: usize,
    scratch: &mut SbScratch,
) -> Vec<adis_sb::SbResult> {
    (0..replicas)
        .map(|r| {
            solver
                .clone()
                .seed(seed.wrapping_add(r as u64))
                .solve_in(problem, scratch, |_| {}, &mut NullObserver)
        })
        .collect()
}

/// Kernel microbenchmark: the SoA batch integrator against sequential
/// replica trajectories on the paper's benchmark COP Ising instance —
/// both the f64 bSB kernel (the original comparison) and the i16
/// fixed-point dSB kernel at the wide lane counts it was built for.
///
/// Besides the criterion timings, this writes a standalone
/// `results/BENCH_kernel.json` artifact (best-of-`ADIS_KERNEL_REPS`
/// wall-clock per path, one row per precision × replica count) and
/// asserts that every batched lane is bit-identical to its sequential
/// counterpart of the *same* precision. Knobs: `ADIS_KERNEL_ITERS`
/// (iteration budget, default 1500) and `ADIS_KERNEL_REPS` (timing
/// repetitions, default 5).
fn bench_kernel(c: &mut Criterion) {
    let (col, _) = benchmark_cop();
    let ising = col.to_ising();
    let iters = env_knob("ADIS_KERNEL_ITERS", 1500);
    let reps = env_knob("ADIS_KERNEL_REPS", 5);
    let seed = 11u64;
    let solver = SbSolver::new()
        .stop(StopCriterion::FixedIterations(iters))
        .seed(seed);
    // The i16 rows measure the *field kernel*, so the energy-sampling
    // cadence — a per-lane f64 evaluation both the batched path and its
    // sequential baseline pay identically — is made explicit and sparse
    // instead of inheriting FixedIterations' iters/50. A zero threshold
    // can never fire (the variance comparison is strict), so this is a
    // fixed-budget run with a chosen cadence, not an early-stopping one.
    let dsb_stop = StopCriterion::DynamicVariance {
        sample_every: (iters / 10).max(1),
        window: 2,
        threshold: 0.0,
        max_iterations: iters,
    };
    let dsb_i16 = SbSolver::new()
        .variant(SbVariant::Discrete)
        .precision(KernelPrecision::I16)
        .stop(dsb_stop)
        .seed(seed);

    let mut group = c.benchmark_group("kernel_replicas");
    for r in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("sequential", r), &r, |b, &r| {
            let mut scratch = SbScratch::new();
            b.iter(|| sequential_replicas(&solver, seed, &ising, r, &mut scratch).len())
        });
        group.bench_with_input(BenchmarkId::new("batched", r), &r, |b, &r| {
            let mut scratch = SbBatchScratch::new();
            b.iter(|| solver.solve_batch_in(&ising, r, &mut scratch).best_energy)
        });
    }
    for r in [64usize, 128] {
        group.bench_with_input(BenchmarkId::new("batched_i16_dsb", r), &r, |b, &r| {
            let mut scratch = SbBatchScratch::new();
            b.iter(|| dsb_i16.solve_batch_in(&ising, r, &mut scratch).best_energy)
        });
    }
    group.finish();

    write_kernel_report(&ising, &solver, &dsb_i16, seed, iters, reps);
}

/// A denser column COP (14-input function, bound-set size 8): ~11x the
/// coupling degree of [`benchmark_cop`]'s instance (n = 384 spins,
/// ~65k directed couplings, mean degree ~170), so the field kernel — the
/// part the i16 path accelerates — dominates the iteration. The i16 rows
/// are emitted for both instances; this is the one where the fixed-point
/// kernel's speedup is field-limited rather than update/sampling-limited.
fn dense_benchmark_cop() -> ColumnCop {
    let table = ContinuousFn::Exp.function(14, 14).expect("paper widths");
    let free: Vec<u32> = (0..6).collect();
    let bound: Vec<u32> = (6..14).collect();
    let w = Partition::new(14, free, bound).expect("valid");
    let m = BooleanMatrix::build(table.component(8), &w);
    ColumnCop::separate(&m, &w, &InputDist::Uniform)
}

/// Measures every path outside criterion, checks per-lane bit-identity
/// within each precision, and writes `results/BENCH_kernel.json` at the
/// workspace root.
fn write_kernel_report(
    ising: &IsingProblem,
    solver: &SbSolver,
    dsb_i16: &SbSolver,
    seed: u64,
    iters: usize,
    reps: usize,
) {
    let mut rows = Vec::new();
    for r in [4usize, 16] {
        let mut batch_scratch = SbBatchScratch::new();
        let mut seq_scratch = SbScratch::new();

        let lanes =
            solver.solve_batch_with(ising, r, &mut batch_scratch, |_, _| {}, &mut NullObserver);
        let reference = sequential_replicas(solver, seed, ising, r, &mut seq_scratch);
        for (lane, (b, s)) in lanes.iter().zip(&reference).enumerate() {
            assert!(
                b.best_state == s.best_state
                    && b.best_energy == s.best_energy
                    && b.iterations == s.iterations
                    && b.trace == s.trace,
                "batched lane {lane} of R={r} diverged from its sequential replica"
            );
        }

        let seq_ms = best_of_ms(reps, || {
            sequential_replicas(solver, seed, ising, r, &mut seq_scratch);
        });
        let batch_ms = best_of_ms(reps, || {
            solver.solve_batch_in(ising, r, &mut batch_scratch);
        });
        let speedup = seq_ms / batch_ms;
        eprintln!(
            "kernel f64 bSB R={r}: sequential {seq_ms:.3} ms, batched {batch_ms:.3} ms, {speedup:.2}x"
        );
        rows.push(Json::Obj(vec![
            ("instance".into(), Json::str("base")),
            ("replicas".into(), Json::Num(r as f64)),
            ("precision".into(), Json::str("f64")),
            ("variant".into(), Json::str("bsb")),
            ("sequential_ms".into(), Json::Num(seq_ms)),
            ("batched_ms".into(), Json::Num(batch_ms)),
            ("speedup".into(), Json::Num(speedup)),
            ("bit_identical".into(), Json::Bool(true)),
        ]));
    }

    let dense = dense_benchmark_cop().to_ising();
    for (instance, problem) in [("base", ising), ("dense", &dense)] {
        i16_rows(instance, problem, dsb_i16, seed, reps, &mut rows);
    }

    let report = Json::Obj(vec![
        ("bench".into(), Json::str("kernel")),
        ("problem".into(), Json::str("benchmark_cop column COP -> Ising")),
        ("spins".into(), Json::Num(ising.num_spins() as f64)),
        ("couplings".into(), Json::Num(ising.num_couplings() as f64)),
        ("dense_spins".into(), Json::Num(dense.num_spins() as f64)),
        ("dense_couplings".into(), Json::Num(dense.num_couplings() as f64)),
        ("iterations".into(), Json::Num(iters as f64)),
        ("timing_reps".into(), Json::Num(reps as f64)),
        ("results".into(), Json::Arr(rows)),
    ]);
    // Anchor to the workspace root so the artifact lands in the same
    // `results/` directory as the run reports, regardless of bench CWD.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_kernel.json");
    std::fs::write(&path, report.render_pretty()).expect("write BENCH_kernel.json");
    eprintln!("wrote {}", path.display());
}

/// Emits the i16-dSB rows for one instance: bit-identity against the
/// sequential reduced-precision replicas, then end-to-end timings against
/// the *sequential f64 dSB* baseline — the paper-honest reference (same
/// dynamics, scalar double-precision arithmetic) for the tentpole's
/// discrete low-precision kernel.
fn i16_rows(
    instance: &str,
    ising: &IsingProblem,
    dsb_i16: &SbSolver,
    seed: u64,
    reps: usize,
    rows: &mut Vec<Json>,
) {
    assert!(
        ising.quantized().is_some(),
        "benchmark instance {instance} must quantize, or the i16 rows silently measure the f64 fallback"
    );
    let dsb_f64 = dsb_i16.clone().precision(KernelPrecision::F64);
    for r in [64usize, 128] {
        let mut batch_scratch = SbBatchScratch::new();
        let mut seq_scratch = SbScratch::new();

        // Bit-identity holds within the i16 precision (integer field
        // accumulation is associative), not across precisions.
        let lanes =
            dsb_i16.solve_batch_with(ising, r, &mut batch_scratch, |_, _| {}, &mut NullObserver);
        let reference = sequential_replicas(dsb_i16, seed, ising, r, &mut seq_scratch);
        for (lane, (b, s)) in lanes.iter().zip(&reference).enumerate() {
            assert!(
                b.best_state == s.best_state
                    && b.best_energy == s.best_energy
                    && b.trace == s.trace,
                "batched i16 lane {lane} of R={r} ({instance}) diverged from its sequential i16 replica"
            );
        }

        let seq_f64_ms = best_of_ms(reps, || {
            sequential_replicas(&dsb_f64, seed, ising, r, &mut seq_scratch);
        });
        let batch_i16_ms = best_of_ms(reps, || {
            dsb_i16.solve_batch_in(ising, r, &mut batch_scratch);
        });
        let speedup = seq_f64_ms / batch_i16_ms;
        eprintln!(
            "kernel i16 dSB R={r} ({instance}): sequential f64 {seq_f64_ms:.3} ms, batched i16 {batch_i16_ms:.3} ms, {speedup:.2}x"
        );
        rows.push(Json::Obj(vec![
            ("instance".into(), Json::str(instance)),
            ("replicas".into(), Json::Num(r as f64)),
            ("precision".into(), Json::str("i16")),
            ("variant".into(), Json::str("dsb")),
            ("sequential_ms".into(), Json::Num(seq_f64_ms)),
            ("batched_ms".into(), Json::Num(batch_i16_ms)),
            ("speedup_vs_f64".into(), Json::Num(speedup)),
            ("bit_identical".into(), Json::Bool(true)),
        ]));
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sb_variants, bench_cop_solvers, bench_encoding, bench_kernel
}
criterion_main!(benches);
