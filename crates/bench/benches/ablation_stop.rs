//! Criterion bench for **Ablation A1**: the dynamic stop criterion versus
//! fixed iteration budgets on a real core COP (runtime side; the quality
//! side is reported by the `ablations` binary).

use adis_benchfn::ContinuousFn;
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{ColumnCop, IsingCopSolver};
use adis_sb::StopCriterion;
use criterion::{criterion_group, criterion_main, Criterion};

fn cop() -> ColumnCop {
    let f = ContinuousFn::Denoise.function(9, 9).expect("paper widths");
    let w = Partition::new(9, vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]).expect("valid");
    ColumnCop::separate(
        &BooleanMatrix::build(f.component(5), &w),
        &w,
        &InputDist::Uniform,
    )
}

fn bench_stop_criteria(c: &mut Criterion) {
    let cop = cop();
    let mut group = c.benchmark_group("ablation_stop_criterion");
    group.sample_size(20);
    for (name, crit) in [
        ("fixed_500", StopCriterion::FixedIterations(500)),
        ("fixed_2000", StopCriterion::FixedIterations(2000)),
        ("fixed_10000", StopCriterion::FixedIterations(10000)),
        ("dynamic_paper", StopCriterion::paper_small()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| IsingCopSolver::new().stop(crit.clone()).solve(&cop).objective)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stop_criteria);
criterion_main!(benches);
