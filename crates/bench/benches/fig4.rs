//! Criterion bench backing **Fig. 4**: one joint-mode core-COP solve per
//! method at the large-scale shape (`n = 16`: 128×512 Boolean matrix, 768
//! spins). The `fig4` binary regenerates the whole figure; this bench
//! tracks the per-COP cost ratio between the proposed solver and DALTA's
//! heuristic — the quantity Fig. 4's runtime ratio is made of.

use adis_bench::stop_for;
use adis_benchfn::{Benchmark, ContinuousFn, QuantScheme};
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{baselines, ColumnCop, IsingCopSolver, RowCop};
use criterion::{criterion_group, criterion_main, Criterion};

fn large_cop() -> (ColumnCop, RowCop) {
    let f = Benchmark::Continuous(ContinuousFn::Exp)
        .function(QuantScheme::Large)
        .expect("large scheme");
    // Fixed 7|9 partition; bit 12 is a structured mid-significance bit.
    let w = Partition::new(16, vec![0, 1, 2, 3, 4, 5, 6], vec![7, 8, 9, 10, 11, 12, 13, 14, 15])
        .expect("valid");
    let m = BooleanMatrix::build(f.component(12), &w);
    (
        ColumnCop::separate(&m, &w, &InputDist::Uniform),
        RowCop::separate(&m, &w, &InputDist::Uniform),
    )
}

fn bench_fig4_cop(c: &mut Criterion) {
    let (col, row) = large_cop();
    let mut group = c.benchmark_group("fig4_large_cop");
    group.sample_size(10);
    group.bench_function("proposed_bsb_768_spins", |b| {
        b.iter(|| {
            IsingCopSolver::new()
                .stop(stop_for(QuantScheme::Large))
                .solve(&col)
                .objective
        })
    });
    group.bench_function("dalta_heuristic", |b| {
        b.iter(|| baselines::solve_dalta_heuristic(&row, 4, 1).objective)
    });
    group.bench_function("ba_annealing", |b| {
        b.iter(|| {
            baselines::solve_ba(
                &row,
                &baselines::BaParams {
                    sweeps: 50,
                    restarts: 1,
                    ..Default::default()
                },
                1,
            )
            .objective
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4_cop);
criterion_main!(benches);
