//! Criterion bench backing **Table 1**: one full decomposition per method
//! on a representative small-scheme benchmark (`erf`, the fastest of the
//! six), at reduced `P` so a Criterion sample stays tractable. The
//! `table1` binary regenerates the full table; this bench tracks the
//! runtime column's *ordering* across code changes.

use adis_bench::{framework_for, Method, RunConfig};
use adis_benchfn::{ContinuousFn, QuantScheme};
use adis_core::Mode;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_table1_cell(c: &mut Criterion) {
    let f = ContinuousFn::Erf.function(9, 9).expect("paper widths");
    let cfg = RunConfig {
        partitions: 4,
        rounds: 1,
        ilp_time_limit: Duration::from_millis(100),
        seed: 1,
        replicas: 1,
        cache: true,
    };
    let mut group = c.benchmark_group("table1_erf_joint");
    group.sample_size(10);
    for method in [Method::Proposed, Method::Dalta, Method::Ba, Method::DaltaIlp] {
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                framework_for(method, Mode::Joint, QuantScheme::Small, &cfg)
                    .decompose(&f)
                    .med
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table1_erf_separate");
    group.sample_size(10);
    for method in [Method::Proposed, Method::DaltaIlp] {
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                framework_for(method, Mode::Separate, QuantScheme::Small, &cfg)
                    .decompose(&f)
                    .med
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_cell);
criterion_main!(benches);
