//! Criterion bench for **Ablation A2**: the Theorem-3 type-reset heuristic
//! on versus off (runtime cost of the intervention; quality is reported by
//! the `ablations` binary), plus the third-order row formulation of
//! **Ablation A3** at the same instance shape.

use adis_benchfn::ContinuousFn;
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{ColumnCop, IsingCopSolver, RowCop};
use criterion::{criterion_group, criterion_main, Criterion};

fn cops() -> (ColumnCop, RowCop) {
    let f = ContinuousFn::Tan.function(9, 9).expect("paper widths");
    let w = Partition::new(9, vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]).expect("valid");
    let m = BooleanMatrix::build(f.component(6), &w);
    (
        ColumnCop::separate(&m, &w, &InputDist::Uniform),
        RowCop::separate(&m, &w, &InputDist::Uniform),
    )
}

fn bench_heuristic(c: &mut Criterion) {
    let (col, row) = cops();
    let mut group = c.benchmark_group("ablation_heuristic_and_order");
    group.sample_size(10);
    group.bench_function("heuristic_on", |b| {
        b.iter(|| IsingCopSolver::new().heuristic(true).solve(&col).objective)
    });
    group.bench_function("heuristic_off", |b| {
        b.iter(|| IsingCopSolver::new().heuristic(false).solve(&col).objective)
    });
    group.bench_function("third_order_row_hosb", |b| {
        b.iter(|| row.solve_ising3(1, 1).objective)
    });
    group.finish();
}

criterion_group!(benches, bench_heuristic);
criterion_main!(benches);
