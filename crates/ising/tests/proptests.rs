//! Property-based tests for the Ising substrate.

use adis_ising::{
    solve_exhaustive, HigherOrderIsing, IsingBuilder, IsingProblem, Qubo, SpinVector,
};
use proptest::prelude::*;

/// Strategy: a random small Ising problem.
fn ising_problem(max_spins: usize) -> impl Strategy<Value = IsingProblem> {
    (2..=max_spins).prop_flat_map(|n| {
        let biases = prop::collection::vec(-2.0..2.0f64, n);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let couplings = prop::collection::vec(prop::option::of(-2.0..2.0f64), pairs.len());
        (biases, couplings, Just(pairs)).prop_map(|(h, js, pairs)| {
            let mut b = IsingBuilder::new(h.len());
            for (i, &v) in h.iter().enumerate() {
                b.add_bias(i, v);
            }
            for ((i, j), v) in pairs.into_iter().zip(js) {
                if let Some(v) = v {
                    b.add_coupling(i, j, v);
                }
            }
            b.build()
        })
    })
}

fn spins(n: usize) -> impl Strategy<Value = SpinVector> {
    prop::collection::vec(any::<bool>(), n).prop_map(SpinVector::from_bools)
}

proptest! {
    /// Global spin flip preserves energy when all biases are zero.
    #[test]
    fn z2_symmetry_without_bias(p in ising_problem(8), seed in any::<u64>()) {
        // Rebuild without biases.
        let mut b = IsingBuilder::new(p.num_spins());
        for (i, j, v) in p.couplings() {
            b.add_coupling(i, j, v);
        }
        let p = b.build();
        let bits: Vec<bool> = (0..p.num_spins()).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let s = SpinVector::from_bools(bits.iter().copied());
        let flipped = SpinVector::from_bools(bits.iter().map(|&b| !b));
        prop_assert!((p.energy(&s) - p.energy(&flipped)).abs() < 1e-9);
    }

    /// flip_delta agrees with the explicit energy difference everywhere.
    #[test]
    fn flip_delta_consistency(p in ising_problem(7), idx in any::<prop::sample::Index>()) {
        let n = p.num_spins();
        let i = idx.index(n);
        let mut s = SpinVector::all_up(n);
        for step in 0..n {
            let e0 = p.energy(&s);
            let d = p.flip_delta(&s, i);
            s.flip(i);
            prop_assert!((p.energy(&s) - e0 - d).abs() < 1e-9);
            s.flip((step * 7 + 3) % n);
        }
    }

    /// The exhaustive ground state is no worse than any sampled state.
    #[test]
    fn exhaustive_is_minimal(p in ising_problem(7), s_seed in any::<u64>()) {
        let g = solve_exhaustive(&p);
        let bits: Vec<bool> = (0..p.num_spins()).map(|i| (s_seed >> (i % 64)) & 1 == 1).collect();
        let s = SpinVector::from_bools(bits);
        prop_assert!(g.energy <= p.energy(&s) + 1e-9);
    }

    /// QUBO → Ising conversion preserves the objective at every assignment.
    #[test]
    fn qubo_ising_equivalence(
        n in 2usize..7,
        lin in prop::collection::vec(-3.0..3.0f64, 7),
        quad in prop::collection::vec((-3.0..3.0f64, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..10),
        c in -5.0..5.0f64,
    ) {
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, lin[i]);
        }
        for (v, a, b) in quad {
            let i = a.index(n);
            let j = b.index(n);
            if i != j {
                q.add_quadratic(i, j, v);
            }
        }
        q.add_constant(c);
        let ising = q.to_ising();
        for assignment in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (assignment >> i) & 1 == 1).collect();
            let sv = SpinVector::from_bools(bits.clone());
            prop_assert!((q.value(&bits) - ising.energy(&sv)).abs() < 1e-8);
        }
    }

    /// Higher-order lift of a 2nd-order problem agrees everywhere, and its
    /// force matches a finite difference of the relaxed energy.
    #[test]
    fn higher_order_lift_agrees(p in ising_problem(6), s in spins(6)) {
        let ho = HigherOrderIsing::from_ising(&p);
        let s = SpinVector::from_bools((0..p.num_spins()).map(|i| s.len() > i && s.bit(i)));
        prop_assert!((ho.energy(&s) - p.energy(&s)).abs() < 1e-9);
    }

    /// HO force matches −∂E/∂x by finite differences for random cubics.
    #[test]
    fn ho_force_finite_difference(
        coeffs in prop::collection::vec((-2.0..2.0f64, 0usize..5, 0usize..5, 0usize..5), 1..6),
        xs in prop::collection::vec(-0.9..0.9f64, 5),
    ) {
        let mut e = HigherOrderIsing::new(5);
        for (c, a, b, d) in coeffs {
            let mut idx = vec![a, b, d];
            idx.sort_unstable();
            idx.dedup();
            e.add_term(&idx, c);
        }
        let mut force = vec![0.0; 5];
        e.force(&xs, &mut force);
        // Relaxed energy via ±h central difference on each coordinate.
        let relaxed = |x: &[f64]| -> f64 {
            // Evaluate by summing terms manually through the public API:
            // energy() needs spins, so reconstruct from term structure is
            // not available; use force-based check instead via integration
            // of a single step. Simpler: compare against numeric gradient of
            // a polynomial computed from distinct spin evaluations is
            // overkill — use the multilinear extension identity:
            // E(x) is multilinear, so E(x) = Σ_σ E(σ) Π_i (1 + σ_i x_i)/2.
            let n = 5;
            let mut total = 0.0;
            for k in 0..(1u32 << n) {
                let s = SpinVector::from_bools((0..n).map(|i| (k >> i) & 1 == 1));
                let mut weight = 1.0;
                for i in 0..n {
                    weight *= (1.0 + f64::from(s.get(i)) * x[i]) / 2.0;
                }
                total += e.energy(&s) * weight;
            }
            total
        };
        let eps = 1e-5;
        for i in 0..5 {
            let mut xp = xs.clone();
            xp[i] += eps;
            let mut xm = xs.clone();
            xm[i] -= eps;
            let grad = (relaxed(&xp) - relaxed(&xm)) / (2.0 * eps);
            prop_assert!((force[i] + grad).abs() < 1e-3, "i={i} force={} grad={}", force[i], grad);
        }
    }
}
