//! Property-based tests for the Ising substrate.

use adis_ising::{
    solve_exhaustive, HigherOrderIsing, IsingBuilder, IsingProblem, Qubo, SpinVector,
};
use proptest::prelude::*;

/// Strategy: a random small Ising problem.
fn ising_problem(max_spins: usize) -> impl Strategy<Value = IsingProblem> {
    (2..=max_spins).prop_flat_map(|n| {
        let biases = prop::collection::vec(-2.0..2.0f64, n);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let couplings = prop::collection::vec(prop::option::of(-2.0..2.0f64), pairs.len());
        (biases, couplings, Just(pairs)).prop_map(|(h, js, pairs)| {
            let mut b = IsingBuilder::new(h.len());
            for (i, &v) in h.iter().enumerate() {
                b.add_bias(i, v);
            }
            for ((i, j), v) in pairs.into_iter().zip(js) {
                if let Some(v) = v {
                    b.add_coupling(i, j, v);
                }
            }
            b.build()
        })
    })
}

fn spins(n: usize) -> impl Strategy<Value = SpinVector> {
    prop::collection::vec(any::<bool>(), n).prop_map(SpinVector::from_bools)
}

/// Strategy: a random problem plus a dense `n × n` reference matrix built
/// from the *same raw triplets*, independently of the CSR layout under
/// test.
fn problem_with_dense(
    max_spins: usize,
) -> impl Strategy<Value = (IsingProblem, Vec<f64>, Vec<f64>)> {
    (2..=max_spins).prop_flat_map(|n| {
        let biases = prop::collection::vec(-2.0..2.0f64, n);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let couplings = prop::collection::vec(prop::option::of(-2.0..2.0f64), pairs.len());
        (biases, couplings, Just((n, pairs))).prop_map(|(h, js, (n, pairs))| {
            let mut b = IsingBuilder::new(n);
            let mut dense = vec![0.0f64; n * n];
            for (i, &v) in h.iter().enumerate() {
                b.add_bias(i, v);
            }
            for ((i, j), v) in pairs.into_iter().zip(js) {
                if let Some(v) = v {
                    b.add_coupling(i, j, v);
                    dense[i * n + j] += v;
                    dense[j * n + i] += v;
                }
            }
            (b.build(), h, dense)
        })
    })
}

/// Deterministic pseudo-random relaxed positions in `[-1, 1]`.
fn positions_from_seed(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

proptest! {
    /// Global spin flip preserves energy when all biases are zero.
    #[test]
    fn z2_symmetry_without_bias(p in ising_problem(8), seed in any::<u64>()) {
        // Rebuild without biases.
        let mut b = IsingBuilder::new(p.num_spins());
        for (i, j, v) in p.couplings() {
            b.add_coupling(i, j, v);
        }
        let p = b.build();
        let bits: Vec<bool> = (0..p.num_spins()).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let s = SpinVector::from_bools(bits.iter().copied());
        let flipped = SpinVector::from_bools(bits.iter().map(|&b| !b));
        prop_assert!((p.energy(&s) - p.energy(&flipped)).abs() < 1e-9);
    }

    /// flip_delta agrees with the explicit energy difference everywhere.
    #[test]
    fn flip_delta_consistency(p in ising_problem(7), idx in any::<prop::sample::Index>()) {
        let n = p.num_spins();
        let i = idx.index(n);
        let mut s = SpinVector::all_up(n);
        for step in 0..n {
            let e0 = p.energy(&s);
            let d = p.flip_delta(&s, i);
            s.flip(i);
            prop_assert!((p.energy(&s) - e0 - d).abs() < 1e-9);
            s.flip((step * 7 + 3) % n);
        }
    }

    /// The exhaustive ground state is no worse than any sampled state.
    #[test]
    fn exhaustive_is_minimal(p in ising_problem(7), s_seed in any::<u64>()) {
        let g = solve_exhaustive(&p);
        let bits: Vec<bool> = (0..p.num_spins()).map(|i| (s_seed >> (i % 64)) & 1 == 1).collect();
        let s = SpinVector::from_bools(bits);
        prop_assert!(g.energy <= p.energy(&s) + 1e-9);
    }

    /// QUBO → Ising conversion preserves the objective at every assignment.
    #[test]
    fn qubo_ising_equivalence(
        n in 2usize..7,
        lin in prop::collection::vec(-3.0..3.0f64, 7),
        quad in prop::collection::vec((-3.0..3.0f64, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..10),
        c in -5.0..5.0f64,
    ) {
        let mut q = Qubo::new(n);
        for (i, &l) in lin.iter().enumerate().take(n) {
            q.add_linear(i, l);
        }
        for (v, a, b) in quad {
            let i = a.index(n);
            let j = b.index(n);
            if i != j {
                q.add_quadratic(i, j, v);
            }
        }
        q.add_constant(c);
        let ising = q.to_ising();
        for assignment in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (assignment >> i) & 1 == 1).collect();
            let sv = SpinVector::from_bools(bits.clone());
            prop_assert!((q.value(&bits) - ising.energy(&sv)).abs() < 1e-8);
        }
    }

    /// The CSR field kernel matches a naive O(N²) dense matvec.
    #[test]
    fn csr_field_matches_dense(pd in problem_with_dense(9), seed in any::<u64>()) {
        let (p, h, dense) = pd;
        let n = p.num_spins();
        let x = positions_from_seed(n, seed);
        let mut out = vec![0.0; n];
        p.field(&x, &mut out);
        for i in 0..n {
            let expect: f64 = h[i]
                + (0..n).map(|j| dense[i * n + j] * x[j]).sum::<f64>();
            prop_assert!((out[i] - expect).abs() < 1e-9, "field[{i}]: {} vs {expect}", out[i]);
            prop_assert!((p.local_field(&x, i) - expect).abs() < 1e-9);
        }
    }

    /// The CSR energy matches the dense quadratic form.
    #[test]
    fn csr_energy_matches_dense(pd in problem_with_dense(9), s_seed in any::<u64>()) {
        let (p, h, dense) = pd;
        let n = p.num_spins();
        let bits: Vec<bool> = (0..n).map(|i| (s_seed >> (i % 64)) & 1 == 1).collect();
        let s = SpinVector::from_bools(bits);
        let mut expect = 0.0;
        for i in 0..n {
            let si = f64::from(s.get(i));
            expect -= h[i] * si;
            for j in 0..n {
                expect -= 0.5 * si * dense[i * n + j] * f64::from(s.get(j));
            }
        }
        prop_assert!((p.energy(&s) - expect).abs() < 1e-9, "{} vs {expect}", p.energy(&s));
    }

    /// CSR flip_delta and coupling lookups match the dense reference.
    #[test]
    fn csr_flip_delta_and_lookup_match_dense(pd in problem_with_dense(8), s_seed in any::<u64>()) {
        let (p, h, dense) = pd;
        let n = p.num_spins();
        let bits: Vec<bool> = (0..n).map(|i| (s_seed >> (i % 64)) & 1 == 1).collect();
        let s = SpinVector::from_bools(bits);
        for i in 0..n {
            let si = f64::from(s.get(i));
            let field: f64 = h[i]
                + (0..n).map(|j| dense[i * n + j] * f64::from(s.get(j))).sum::<f64>();
            prop_assert!((p.flip_delta(&s, i) - 2.0 * si * field).abs() < 1e-9);
            for j in 0..n {
                // Lookups are stored values: exact equality, no tolerance.
                prop_assert_eq!(p.coupling(i, j), dense[i * n + j]);
            }
        }
    }

    /// The CSR arrays themselves are well-formed: monotone offsets, rows
    /// strictly sorted, and symmetric entries.
    #[test]
    fn csr_layout_invariants(pd in problem_with_dense(9)) {
        let (p, _, _) = pd;
        let (row_ptr, cols, weights) = p.csr();
        prop_assert_eq!(row_ptr.len(), p.num_spins() + 1);
        prop_assert_eq!(cols.len(), weights.len());
        prop_assert_eq!(*row_ptr.last().unwrap() as usize, cols.len());
        prop_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        for i in 0..p.num_spins() {
            let row = &cols[row_ptr[i] as usize..row_ptr[i + 1] as usize];
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {} not sorted", i);
            for (j, v) in p.neighbors(i) {
                prop_assert_eq!(p.coupling(j as usize, i), v, "asymmetric at ({}, {})", i, j);
            }
        }
    }

    /// Integral coefficients within i16 range encode/decode losslessly at
    /// unit scale (the `exact` branch of the quantizer).
    #[test]
    fn quantized_roundtrip_exact_on_integral_weights(
        n in 2usize..8,
        raw in prop::collection::vec((-300i32..300, any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..12),
        hs in prop::collection::vec(-300i32..300, 8),
    ) {
        let mut b = IsingBuilder::new(n);
        for (i, &v) in hs.iter().enumerate().take(n) {
            b.add_bias(i, f64::from(v));
        }
        for (v, a, c) in raw {
            let i = a.index(n);
            let j = c.index(n);
            if i != j {
                b.add_coupling(i, j, f64::from(v));
            }
        }
        let p = b.build();
        let q = p.quantized().expect("integral instance must quantize");
        prop_assert!(q.exact());
        prop_assert_eq!(q.scale(), 1.0);
        let (_, _, weights) = p.csr();
        prop_assert_eq!(weights.len(), q.weights().len());
        for (&w, &qw) in weights.iter().zip(q.weights()) {
            prop_assert_eq!(f64::from(qw), w);
        }
        for (&h, &qb) in p.biases().iter().zip(q.biases()) {
            prop_assert_eq!(f64::from(qb), h);
        }
    }

    /// Arbitrary finite coefficients quantize within half a quantization
    /// unit, and the decoded field error is bounded by the row degree.
    #[test]
    fn quantized_coefficients_within_half_unit(p in ising_problem(9)) {
        let q = p.quantized().expect("finite instance must quantize");
        let s = q.scale();
        prop_assert!(s.is_finite() && s > 0.0);
        let (row_ptr, _, weights) = p.csr();
        for (&w, &qw) in weights.iter().zip(q.weights()) {
            prop_assert!((f64::from(qw) / s - w).abs() <= 0.5 / s + 1e-12);
        }
        for (&h, &qb) in p.biases().iter().zip(q.biases()) {
            prop_assert!((f64::from(qb) / s - h).abs() <= 0.5 / s + 1e-12);
        }
        // At any spin configuration the decoded quantized local field is
        // within (degree + 1) half-units of the exact field.
        let sv = SpinVector::all_up(p.num_spins());
        for i in 0..p.num_spins() {
            let row = row_ptr[i] as usize..row_ptr[i + 1] as usize;
            let degree = row.len();
            let mut acc = i64::from(q.biases()[i]);
            for (&j, &qw) in p.csr().1[row.clone()].iter().zip(&q.weights()[row]) {
                acc += i64::from(qw) * i64::from(i32::from(sv.get(j as usize)));
            }
            let x: Vec<f64> = (0..p.num_spins()).map(|j| f64::from(sv.get(j))).collect();
            let exact = p.local_field(&x, i);
            let err = (acc as f64 / s - exact).abs();
            prop_assert!(
                err <= (degree as f64 + 1.0) * 0.5 / s + 1e-9,
                "spin {}: decoded field err {} exceeds bound", i, err
            );
        }
    }

    /// Higher-order lift of a 2nd-order problem agrees everywhere, and its
    /// force matches a finite difference of the relaxed energy.
    #[test]
    fn higher_order_lift_agrees(p in ising_problem(6), s in spins(6)) {
        let ho = HigherOrderIsing::from_ising(&p);
        let s = SpinVector::from_bools((0..p.num_spins()).map(|i| s.len() > i && s.bit(i)));
        prop_assert!((ho.energy(&s) - p.energy(&s)).abs() < 1e-9);
    }

    /// HO force matches −∂E/∂x by finite differences for random cubics.
    #[test]
    fn ho_force_finite_difference(
        coeffs in prop::collection::vec((-2.0..2.0f64, 0usize..5, 0usize..5, 0usize..5), 1..6),
        xs in prop::collection::vec(-0.9..0.9f64, 5),
    ) {
        let mut e = HigherOrderIsing::new(5);
        for (c, a, b, d) in coeffs {
            let mut idx = vec![a, b, d];
            idx.sort_unstable();
            idx.dedup();
            e.add_term(&idx, c);
        }
        let mut force = vec![0.0; 5];
        e.force(&xs, &mut force);
        // Relaxed energy via ±h central difference on each coordinate.
        let relaxed = |x: &[f64]| -> f64 {
            // Evaluate by summing terms manually through the public API:
            // energy() needs spins, so reconstruct from term structure is
            // not available; use force-based check instead via integration
            // of a single step. Simpler: compare against numeric gradient of
            // a polynomial computed from distinct spin evaluations is
            // overkill — use the multilinear extension identity:
            // E(x) is multilinear, so E(x) = Σ_σ E(σ) Π_i (1 + σ_i x_i)/2.
            let n = 5;
            let mut total = 0.0;
            for k in 0..(1u32 << n) {
                let s = SpinVector::from_bools((0..n).map(|i| (k >> i) & 1 == 1));
                let mut weight = 1.0;
                for (i, &xi) in x.iter().enumerate().take(n) {
                    weight *= (1.0 + f64::from(s.get(i)) * xi) / 2.0;
                }
                total += e.energy(&s) * weight;
            }
            total
        };
        let eps = 1e-5;
        for i in 0..5 {
            let mut xp = xs.clone();
            xp[i] += eps;
            let mut xm = xs.clone();
            xm[i] -= eps;
            let grad = (relaxed(&xp) - relaxed(&xm)) / (2.0 * eps);
            prop_assert!((force[i] + grad).abs() < 1e-3, "i={i} force={} grad={}", force[i], grad);
        }
    }
}
