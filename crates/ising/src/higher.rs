//! Higher-order (k-local) Ising energy functions.
//!
//! The paper observes that the *row-based* core COP would require a
//! third-order Ising model (Section 3.1), which is why it introduces the
//! column-based formulation. This module provides the general k-local
//! energy so that claim can be reproduced and benchmarked (Ablation A3),
//! paired with the higher-order simulated bifurcation of Kanao & Goto [19].

use crate::{IsingBuilder, IsingProblem, SpinVector};
use std::fmt;

/// A k-local Ising energy `E(σ) = Σ_t c_t · Π_{i ∈ S_t} σᵢ + offset`.
///
/// Unlike [`IsingProblem`], coefficients appear with a **plus** sign; use
/// [`HigherOrderIsing::from_ising`] / [`HigherOrderIsing::to_ising`] for the
/// sign-correct conversions.
///
/// # Examples
///
/// ```
/// use adis_ising::{HigherOrderIsing, SpinVector};
///
/// // E = σ0·σ1·σ2 — minimized when an odd number of spins are −1.
/// let mut e = HigherOrderIsing::new(3);
/// e.add_term(&[0, 1, 2], 1.0);
/// assert_eq!(e.energy(&SpinVector::all_up(3)), 1.0);
/// assert_eq!(e.energy(&SpinVector::all_down(3)), -1.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct HigherOrderIsing {
    num_spins: usize,
    /// `(sorted distinct spin indices, coefficient)`.
    terms: Vec<(Vec<u32>, f64)>,
    offset: f64,
}

impl HigherOrderIsing {
    /// An empty (constant-zero) energy over `n` spins.
    pub fn new(n: usize) -> Self {
        HigherOrderIsing {
            num_spins: n,
            terms: Vec::new(),
            offset: 0.0,
        }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.num_spins
    }

    /// Number of non-constant terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The largest term degree (0 if no terms).
    pub fn degree(&self) -> usize {
        self.terms.iter().map(|(s, _)| s.len()).max().unwrap_or(0)
    }

    /// Adds `coeff · Π_{i ∈ spins} σᵢ`. An empty `spins` slice adds to the
    /// constant offset. Duplicate indices within one term are rejected
    /// (σ² = 1 should be simplified by the caller).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or repeated within the term.
    pub fn add_term(&mut self, spins: &[usize], coeff: f64) {
        if spins.is_empty() {
            self.offset += coeff;
            return;
        }
        let mut s: Vec<u32> = spins.iter().map(|&i| i as u32).collect();
        s.sort_unstable();
        assert!(
            s.windows(2).all(|w| w[0] != w[1]),
            "repeated spin in term (apply σ² = 1 first)"
        );
        assert!(
            (*s.last().expect("non-empty") as usize) < self.num_spins,
            "spin index out of range"
        );
        self.terms.push((s, coeff));
    }

    /// Adds `v` to the constant offset.
    pub fn add_offset(&mut self, v: f64) {
        self.offset += v;
    }

    /// The constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The energy at configuration `σ`.
    ///
    /// # Panics
    ///
    /// Panics if the spin count differs.
    pub fn energy(&self, sigma: &SpinVector) -> f64 {
        assert_eq!(sigma.len(), self.num_spins, "spin count mismatch");
        let mut e = self.offset;
        for (spins, c) in &self.terms {
            let mut prod = *c;
            for &i in spins {
                prod *= f64::from(sigma.get(i as usize));
            }
            e += prod;
        }
        e
    }

    /// The force `−∂E/∂xᵢ` for all `i`, with spins relaxed to real `x`.
    ///
    /// This is the coupling term the higher-order SB integrator uses.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the spin count.
    pub fn force(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.num_spins, "position count mismatch");
        assert_eq!(out.len(), self.num_spins, "output count mismatch");
        out.fill(0.0);
        for (spins, c) in &self.terms {
            // ∂/∂x_i (c Π x_j) = c Π_{j≠i} x_j. Compute the full product and
            // per-missing-factor products; handle zeros exactly.
            let zero_count = spins.iter().filter(|&&i| x[i as usize] == 0.0).count();
            match zero_count {
                0 => {
                    let full: f64 = spins.iter().map(|&i| x[i as usize]).product();
                    for &i in spins {
                        out[i as usize] -= c * full / x[i as usize];
                    }
                }
                1 => {
                    let zi = spins
                        .iter()
                        .copied()
                        .find(|&i| x[i as usize] == 0.0)
                        .expect("one zero");
                    let prod: f64 = spins
                        .iter()
                        .filter(|&&i| i != zi)
                        .map(|&i| x[i as usize])
                        .product();
                    out[zi as usize] -= c * prod;
                }
                _ => {} // two or more zero factors: every partial is zero
            }
        }
    }

    /// Energy change if spin `i` were flipped.
    pub fn flip_delta(&self, sigma: &SpinVector, i: usize) -> f64 {
        let mut delta = 0.0;
        for (spins, c) in &self.terms {
            if spins.binary_search(&(i as u32)).is_ok() {
                let mut prod = *c;
                for &j in spins {
                    prod *= f64::from(sigma.get(j as usize));
                }
                delta -= 2.0 * prod;
            }
        }
        delta
    }

    /// Root-mean-square coupling force per spin at a random corner:
    /// `sqrt(Σ_t c_t²·|S_t| / N)`. The higher-order SB solver uses this to
    /// auto-scale its coupling strength, analogous to
    /// [`IsingProblem::coupling_rms`]. Returns 0 if there are no terms.
    pub fn force_rms(&self) -> f64 {
        if self.num_spins == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .terms
            .iter()
            .map(|(s, c)| c * c * s.len() as f64)
            .sum();
        (sum / self.num_spins as f64).sqrt()
    }

    /// Lifts a second-order problem into this representation.
    pub fn from_ising(p: &IsingProblem) -> Self {
        let mut e = HigherOrderIsing::new(p.num_spins());
        e.add_offset(p.offset());
        for (i, &h) in p.biases().iter().enumerate() {
            if h != 0.0 {
                e.add_term(&[i], -h);
            }
        }
        for (i, j, v) in p.couplings() {
            e.add_term(&[i, j], -v);
        }
        e
    }

    /// Lowers to a second-order [`IsingProblem`] when the degree allows.
    ///
    /// Returns `None` if any term has degree ≥ 3.
    pub fn to_ising(&self) -> Option<IsingProblem> {
        if self.degree() > 2 {
            return None;
        }
        let mut b = IsingBuilder::new(self.num_spins);
        b.add_offset(self.offset);
        for (spins, c) in &self.terms {
            match spins.as_slice() {
                [i] => b.add_bias(*i as usize, -c),
                [i, j] => b.add_coupling(*i as usize, *j as usize, -c),
                _ => unreachable!("degree checked above"),
            }
        }
        Some(b.build())
    }

    /// Exhaustive ground-state search (for tests; `N ≤ 24`).
    ///
    /// # Panics
    ///
    /// Panics if `N > 24`.
    pub fn solve_exhaustive(&self) -> (SpinVector, f64) {
        assert!(self.num_spins <= 24, "exhaustive limited to 24 spins");
        let mut best_state = SpinVector::all_down(self.num_spins);
        let mut best = self.energy(&best_state);
        let mut state = best_state.clone();
        for k in 1u64..(1u64 << self.num_spins) {
            let flip = k.trailing_zeros() as usize;
            state.flip(flip);
            let e = self.energy(&state);
            if e < best {
                best = e;
                best_state = state.clone();
            }
        }
        (best_state, best)
    }
}

impl fmt::Debug for HigherOrderIsing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HigherOrderIsing({} spins, {} terms, degree {})",
            self.num_spins,
            self.terms.len(),
            self.degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_exhaustive;

    #[test]
    fn cubic_energy() {
        let mut e = HigherOrderIsing::new(3);
        e.add_term(&[0, 1, 2], 2.0);
        e.add_term(&[0], -1.0);
        e.add_offset(0.5);
        let s = SpinVector::from_raw(vec![1, -1, 1]);
        // 2·(1·-1·1) + (-1)·1 + 0.5 = -2 - 1 + 0.5
        assert!((e.energy(&s) - (-2.5)).abs() < 1e-12);
    }

    #[test]
    fn flip_delta_matches_energy() {
        let mut e = HigherOrderIsing::new(4);
        e.add_term(&[0, 1, 2], 1.5);
        e.add_term(&[1, 3], -0.5);
        e.add_term(&[2], 0.25);
        for k in 0..16u32 {
            let mut s = SpinVector::from_bools((0..4).map(|i| (k >> i) & 1 == 1));
            for i in 0..4 {
                let e0 = e.energy(&s);
                let d = e.flip_delta(&s, i);
                s.flip(i);
                assert!((e.energy(&s) - e0 - d).abs() < 1e-12);
                s.flip(i);
            }
        }
    }

    #[test]
    fn round_trip_with_second_order() {
        let p = crate::IsingBuilder::new(3)
            .bias(0, 1.0)
            .bias(2, -0.5)
            .coupling(0, 1, 2.0)
            .coupling(1, 2, -1.0)
            .offset(3.0)
            .build();
        let ho = HigherOrderIsing::from_ising(&p);
        assert_eq!(ho.degree(), 2);
        let p2 = ho.to_ising().expect("degree 2");
        for k in 0..8u32 {
            let s = SpinVector::from_bools((0..3).map(|i| (k >> i) & 1 == 1));
            assert!((p.energy(&s) - ho.energy(&s)).abs() < 1e-12);
            assert!((p.energy(&s) - p2.energy(&s)).abs() < 1e-12);
        }
        let (_, ge) = ho.solve_exhaustive();
        assert!((ge - solve_exhaustive(&p).energy).abs() < 1e-12);
    }

    #[test]
    fn cubic_not_lowerable() {
        let mut e = HigherOrderIsing::new(3);
        e.add_term(&[0, 1, 2], 1.0);
        assert!(e.to_ising().is_none());
    }

    #[test]
    fn force_matches_finite_difference() {
        let mut e = HigherOrderIsing::new(3);
        e.add_term(&[0, 1, 2], 2.0);
        e.add_term(&[0, 1], -1.0);
        e.add_term(&[2], 0.5);
        let x = [0.3, -0.8, 0.6];
        let mut force = [0.0; 3];
        e.force(&x, &mut force);
        // Relaxed energy at real x.
        let energy_at = |x: &[f64; 3]| {
            2.0 * x[0] * x[1] * x[2] - x[0] * x[1] + 0.5 * x[2]
        };
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let grad = (energy_at(&xp) - energy_at(&xm)) / (2.0 * eps);
            assert!((force[i] + grad).abs() < 1e-6, "spin {i}");
        }
    }

    #[test]
    fn force_handles_zero_positions() {
        let mut e = HigherOrderIsing::new(3);
        e.add_term(&[0, 1, 2], 1.0);
        let x = [0.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        e.force(&x, &mut out);
        assert!((out[0] + 6.0).abs() < 1e-12);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "repeated spin")]
    fn repeated_index_rejected() {
        let mut e = HigherOrderIsing::new(3);
        e.add_term(&[1, 1], 1.0);
    }
}
