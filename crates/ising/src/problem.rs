//! Second-order Ising problems (Eq. 1 of the paper).

use crate::SpinVector;
use std::collections::HashSet;
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// A second-order Ising energy function over `N` spins:
///
/// ```text
/// E(σ) = −Σᵢ hᵢσᵢ − ½ ΣᵢΣⱼ J_ij σᵢσⱼ + offset
/// ```
///
/// with `J` symmetric and zero on the diagonal (the paper's Eq. 1, plus a
/// constant `offset` so the energy can track an original objective exactly —
/// e.g. so the COP energies are directly comparable to ER/MED values).
///
/// Couplings are stored in a flat CSR (compressed sparse row) layout — one
/// row-offset array plus packed neighbor-index and weight arrays, each row
/// sorted by neighbor — so the per-iteration matvec of the SB integrators
/// streams contiguous memory instead of chasing per-spin heap pointers.
/// The layout suits both the sparse bipartite problems produced by the
/// decomposition COP and random dense instances.
///
/// # Examples
///
/// ```
/// use adis_ising::{IsingBuilder, SpinVector};
///
/// // Two ferromagnetically coupled spins: aligned states minimize energy.
/// let p = IsingBuilder::new(2).coupling(0, 1, 1.0).build();
/// let aligned = p.energy(&SpinVector::all_up(2));
/// let opposed = {
///     let mut s = SpinVector::all_up(2);
///     s.flip(1);
///     p.energy(&s)
/// };
/// assert!(aligned < opposed);
/// ```
#[derive(Clone, PartialEq)]
pub struct IsingProblem {
    h: Vec<f64>,
    /// The sparsity pattern (`row_ptr`/`cols`), shared behind an [`Arc`] so
    /// that problems with identical structure — e.g. the many same-shape
    /// COPs of one partition sweep — can be interned onto one allocation
    /// and recognized as fusable by pointer comparison.
    pattern: Arc<CsrPattern>,
    /// Packed coupling values, parallel to the pattern's `cols`.
    weights: Vec<f64>,
    offset: f64,
    quantized: Option<QuantizedCsr>,
}

/// The structure half of a coupling CSR: row offsets plus packed neighbor
/// indices, without the weights.
///
/// Two [`IsingProblem`]s with equal patterns differ only in their weight
/// (and bias) *values* — their per-iteration matvecs walk the same index
/// stream. That is the precondition for the fused multi-problem kernels in
/// `adis-sb`, which advance replicas of several problems in one spin-major
/// pass by loading a lane-vector of weights per CSR entry. Patterns are
/// compared structurally ([`PartialEq`]) and shared via [`Arc`]; use a
/// [`PatternInterner`] to deduplicate the `Arc`s so sharing is visible as
/// pointer equality.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CsrPattern {
    /// CSR row offsets: row `i` occupies `row_ptr[i]..row_ptr[i+1]` in the
    /// packed arrays. Length `N + 1`.
    row_ptr: Vec<u32>,
    /// Packed neighbor indices, each row sorted ascending.
    cols: Vec<u32>,
}

impl CsrPattern {
    /// Row offsets (length `N + 1`).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Packed neighbor indices (length `nnz`).
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Number of spins `N`.
    pub fn num_spins(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored (directed) entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }
}

impl fmt::Debug for CsrPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrPattern({} spins, {} entries)",
            self.num_spins(),
            self.nnz()
        )
    }
}

/// Deduplicates [`CsrPattern`] allocations across a stream of
/// [`IsingProblem`]s.
///
/// [`intern`](PatternInterner::intern) rewrites a problem's pattern `Arc`
/// to the canonical one for its structure, so problems that *can* be fused
/// (same pattern) become recognizable by cheap `Arc::ptr_eq` instead of a
/// full `row_ptr`/`cols` comparison. Interning never changes a problem's
/// observable content — the pattern it points to afterwards is
/// structurally equal to the one it pointed to before.
///
/// The interner is internally synchronized and can be shared across
/// threads; a typical owner is one `decompose` sweep.
///
/// # Examples
///
/// ```
/// use adis_ising::{IsingBuilder, PatternInterner};
/// use std::sync::Arc;
///
/// let interner = PatternInterner::new();
/// let mut a = IsingBuilder::new(3).coupling(0, 1, 1.0).build();
/// let mut b = IsingBuilder::new(3).coupling(0, 1, -2.5).build();
/// assert!(!Arc::ptr_eq(a.pattern(), b.pattern()));
/// interner.intern(&mut a);
/// interner.intern(&mut b);
/// assert!(Arc::ptr_eq(a.pattern(), b.pattern()));
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct PatternInterner {
    inner: Mutex<HashSet<Arc<CsrPattern>>>,
}

impl PatternInterner {
    /// An empty interner.
    pub fn new() -> Self {
        PatternInterner::default()
    }

    /// Rewrites `problem`'s pattern to the canonical `Arc` for its
    /// structure, registering it as the canonical one if the structure is
    /// new. Returns `true` when the problem now shares a previously
    /// interned pattern (i.e. it is fusable with an earlier problem).
    pub fn intern(&self, problem: &mut IsingProblem) -> bool {
        let mut set = self.inner.lock().expect("pattern interner poisoned");
        if let Some(canon) = set.get(problem.pattern.as_ref()) {
            problem.pattern = Arc::clone(canon);
            true
        } else {
            set.insert(Arc::clone(&problem.pattern));
            false
        }
    }

    /// Number of distinct patterns seen so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("pattern interner poisoned").len()
    }

    /// True when no pattern has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fixed-point `i16` companion of the coupling CSR, for reduced-precision
/// field kernels (the discrete-SB line of arXiv:2510.12407).
///
/// Weights are stored as `round(J_ij · scale)` in an `i16` array parallel to
/// the f64 CSR's neighbor-index array (same `row_ptr`/`cols`), and biases as
/// `round(hᵢ · scale)` in `i32`. A field accumulated in `i32` over a row then
/// equals `scale · (hᵢ + Σⱼ J_ij σⱼ)` up to rounding of the individual
/// coefficients — dividing by [`scale`](QuantizedCsr::scale) recovers the
/// real-valued local field.
///
/// The scale is chosen by [`IsingBuilder::build`]:
///
/// - **exact**: if every coupling and bias is integral with magnitude
///   ≤ `i16::MAX`, the scale is 1 and encode/decode is lossless
///   ([`exact`](QuantizedCsr::exact) reports true);
/// - otherwise the scale maps the RMS coupling (`coupling_rms`) to 2¹⁰
///   quantization units, capped so the largest coupling still fits `i16`
///   and the largest bias stays well inside `i32` — and further capped so
///   the worst row's accumulation bound fits `i16`
///   ([`acc_fits_i16`](QuantizedCsr::acc_fits_i16), unlocking the
///   double-width `i16` field kernel), unless that would squeeze the
///   largest coupling below ~4 bits of resolution, in which case
///   resolution wins and the field accumulates in `i32`.
///
/// Problems whose coefficients are non-finite, or where a worst-case row
/// accumulation could overflow `i32`, have no quantized companion
/// ([`IsingProblem::quantized`] returns `None`).
#[derive(Clone, PartialEq)]
pub struct QuantizedCsr {
    scale: f64,
    weights: Vec<i16>,
    biases: Vec<i32>,
    exact: bool,
    acc_fits_i16: bool,
}

/// Quantization units the RMS coupling maps to when an exact unit scale is
/// not available.
const QUANT_RMS_TARGET: f64 = 1024.0;

/// Minimum quantized magnitude the largest coupling must keep for the
/// `i16`-accumulation scale cap to apply (~4 bits of weight resolution —
/// the low end of what the reduced-precision dSB literature shows to be
/// quality-neutral). Below this, the cap is skipped and the field
/// accumulates in `i32` at the finer RMS-target scale instead.
const QUANT_MIN_JMAX: f64 = 15.0;

impl QuantizedCsr {
    /// The fixed-point scale: stored values are `round(coefficient · scale)`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantized coupling weights, parallel to the f64 CSR's `cols` array.
    pub fn weights(&self) -> &[i16] {
        &self.weights
    }

    /// Quantized biases `round(hᵢ · scale)`, length `N`.
    pub fn biases(&self) -> &[i32] {
        &self.biases
    }

    /// True when encode/decode is lossless (unit scale, integral inputs).
    pub fn exact(&self) -> bool {
        self.exact
    }

    /// True when every row's worst-case accumulation `Σ|qJ| + |qb|` fits
    /// `i16`, so a field kernel may accumulate in `i16` lanes (twice the
    /// SIMD width of `i32`) without any possibility of wrap-around —
    /// producing the same values, hence staying bit-identical to the
    /// `i32` accumulation.
    pub fn acc_fits_i16(&self) -> bool {
        self.acc_fits_i16
    }

    fn build(h: &[f64], row_ptr: &[u32], weights: &[f64]) -> Option<QuantizedCsr> {
        if h.iter().chain(weights).any(|v| !v.is_finite()) {
            return None;
        }
        let jmax = weights.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let hmax = h.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let integral = h.iter().chain(weights).all(|v| v.fract() == 0.0);
        let (scale, exact) = if integral && jmax <= f64::from(i16::MAX) && hmax <= f64::from(i16::MAX)
        {
            (1.0, true)
        } else {
            let n = h.len();
            let rms = if n < 2 {
                0.0
            } else {
                let sum_sq: f64 = weights.iter().map(|&v| v * v).sum();
                (sum_sq / (n as f64 * (n as f64 - 1.0))).sqrt()
            };
            let mut s = if rms > 0.0 { QUANT_RMS_TARGET / rms } else { 1.0 };
            if jmax > 0.0 {
                s = s.min(f64::from(i16::MAX) / jmax);
            }
            if hmax > 0.0 {
                // Keep quantized biases a safe factor inside i32 so the row
                // accumulation guard below has headroom.
                s = s.min(f64::from(i32::MAX) / 4.0 / hmax);
            }
            // Prefer a scale whose worst-case row accumulation fits `i16`:
            // the masked-add field kernel then runs in twice-as-wide `i16`
            // vectors instead of `i32`. Every rounded term can contribute
            // up to 0.5 quantization units over its real value, so that
            // slack is budgeted out of the `i16` range before dividing.
            // Resolution still wins over speed: the cap is skipped when it
            // would leave the largest coupling under [`QUANT_MIN_JMAX`].
            let mut worst_abs = 0.0f64;
            let mut widest_row = 0usize;
            for (i, &hi) in h.iter().enumerate() {
                let row = row_ptr[i] as usize..row_ptr[i + 1] as usize;
                widest_row = widest_row.max(row.len());
                let bound: f64 =
                    weights[row].iter().map(|v| v.abs()).sum::<f64>() + hi.abs();
                worst_abs = worst_abs.max(bound);
            }
            if worst_abs > 0.0 {
                let fit =
                    (f64::from(i16::MAX) - 0.5 * (widest_row as f64 + 1.0)) / worst_abs;
                if fit < s && fit * jmax >= QUANT_MIN_JMAX {
                    s = fit;
                }
            }
            if !(s.is_finite() && s > 0.0) {
                return None;
            }
            (s, false)
        };
        let qweights: Vec<i16> = weights.iter().map(|&v| (v * scale).round() as i16).collect();
        let qbiases: Vec<i32> = h.iter().map(|&v| (v * scale).round() as i32).collect();
        // Worst-case |field| per row in i32 units: Σ|qw| over the row plus the
        // row's |bias|. Refuse quantization rather than risk wrap-around.
        let mut worst_row = 0i64;
        for (i, &qb) in qbiases.iter().enumerate() {
            let row = row_ptr[i] as usize..row_ptr[i + 1] as usize;
            let bound: i64 = qweights[row]
                .iter()
                .map(|&q| i64::from(q).abs())
                .sum::<i64>()
                + i64::from(qb).abs();
            if bound >= i64::from(i32::MAX) {
                return None;
            }
            worst_row = worst_row.max(bound);
        }
        Some(QuantizedCsr {
            scale,
            weights: qweights,
            biases: qbiases,
            exact,
            acc_fits_i16: worst_row <= i64::from(i16::MAX),
        })
    }
}

impl fmt::Debug for QuantizedCsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantizedCsr(scale {}, {} weights, exact {})",
            self.scale,
            self.weights.len(),
            self.exact
        )
    }
}

impl IsingProblem {
    /// Number of spins `N`.
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// The bias `hᵢ`.
    pub fn bias(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// All biases.
    pub fn biases(&self) -> &[f64] {
        &self.h
    }

    /// The constant energy offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    #[inline]
    fn row_range(&self, i: usize) -> Range<usize> {
        self.pattern.row_ptr[i] as usize..self.pattern.row_ptr[i + 1] as usize
    }

    /// The raw CSR triple `(row offsets, neighbor indices, weights)`.
    ///
    /// Row `i`'s entries occupy `row_ptr[i]..row_ptr[i+1]` of the two
    /// packed arrays; rows are sorted by neighbor index. This is the layout
    /// batch kernels iterate directly (see `adis-sb`'s SoA integrator);
    /// accumulating a row in packed order is exactly the order
    /// [`local_field`](IsingProblem::local_field) uses, which is what keeps
    /// batched and sequential integrations bit-identical.
    pub fn csr(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.pattern.row_ptr, &self.pattern.cols, &self.weights)
    }

    /// The shared sparsity pattern (`row_ptr`/`cols` without weights).
    pub fn pattern(&self) -> &Arc<CsrPattern> {
        &self.pattern
    }

    /// True when `self` and `other` have the same sparsity pattern — the
    /// precondition for fusing their SB integrations into one
    /// multi-problem batch. Checks pointer identity first (free after
    /// [`PatternInterner::intern`]), falling back to a structural
    /// comparison.
    pub fn shares_pattern(&self, other: &IsingProblem) -> bool {
        Arc::ptr_eq(&self.pattern, &other.pattern) || self.pattern == other.pattern
    }

    /// The coupling `J_ij` (zero if absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        let r = self.row_range(i);
        self.pattern.cols[r.clone()]
            .binary_search(&(j as u32))
            .map(|idx| self.weights[r.start + idx])
            .unwrap_or(0.0)
    }

    /// Neighbors of spin `i` with their couplings, sorted by neighbor.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.row_range(i);
        self.pattern.cols[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Total number of stored (undirected) couplings.
    pub fn num_couplings(&self) -> usize {
        self.weights.len() / 2
    }

    /// Iterates over each undirected coupling `(i, j, J_ij)` once (`i < j`).
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.num_spins()).flat_map(move |i| {
            self.neighbors(i)
                .filter(move |&(j, _)| (j as usize) > i)
                .map(move |(j, v)| (i, j as usize, v))
        })
    }

    /// The energy `E(σ)` including the offset.
    ///
    /// # Panics
    ///
    /// Panics if the spin count differs from `N`.
    pub fn energy(&self, sigma: &SpinVector) -> f64 {
        assert_eq!(sigma.len(), self.num_spins(), "spin count mismatch");
        let mut e = self.offset;
        for i in 0..self.num_spins() {
            let si = f64::from(sigma.get(i));
            e -= self.h[i] * si;
            let mut acc = 0.0;
            let r = self.row_range(i);
            for (&j, &v) in self.pattern.cols[r.clone()].iter().zip(&self.weights[r]) {
                acc += v * f64::from(sigma.get(j as usize));
            }
            e -= 0.5 * si * acc;
        }
        e
    }

    /// The local field `hᵢ + Σⱼ J_ij xⱼ` at spin `i` given relaxed positions.
    ///
    /// For SB dynamics this is `−∂E/∂xᵢ` of the relaxed energy.
    #[inline]
    pub fn local_field(&self, x: &[f64], i: usize) -> f64 {
        let mut f = self.h[i];
        let r = self.row_range(i);
        for (&j, &v) in self.pattern.cols[r.clone()].iter().zip(&self.weights[r]) {
            f += v * x[j as usize];
        }
        f
    }

    /// Writes the full field vector `h + J·x` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `N`.
    pub fn field(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.num_spins(), "position count mismatch");
        assert_eq!(out.len(), self.num_spins(), "output count mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.local_field(x, i);
        }
    }

    /// Energy change if spin `i` were flipped: `E(σ with i flipped) − E(σ)`.
    ///
    /// Used by single-spin-update solvers (simulated annealing).
    pub fn flip_delta(&self, sigma: &SpinVector, i: usize) -> f64 {
        let si = f64::from(sigma.get(i));
        let mut field = self.h[i];
        let r = self.row_range(i);
        for (&j, &v) in self.pattern.cols[r.clone()].iter().zip(&self.weights[r]) {
            field += v * f64::from(sigma.get(j as usize));
        }
        2.0 * si * field
    }

    /// Root-mean-square coupling `σ_J = sqrt(ΣᵢⱼJ²/(N(N−1)))` used by the
    /// SB `c₀` prescription (Goto 2021). Returns 0 for `N < 2` or no
    /// couplings.
    pub fn coupling_rms(&self) -> f64 {
        let n = self.num_spins();
        if n < 2 {
            return 0.0;
        }
        let sum_sq: f64 = self.weights.iter().map(|&v| v * v).sum();
        (sum_sq / (n as f64 * (n as f64 - 1.0))).sqrt()
    }

    /// Largest absolute bias/coupling magnitude (for scaling heuristics).
    pub fn max_abs_coefficient(&self) -> f64 {
        let hmax = self.h.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let jmax = self.weights.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        hmax.max(jmax)
    }

    /// The fixed-point `i16` companion of the coupling CSR, if one could be
    /// built (see [`QuantizedCsr`] for the scale-selection rule and the
    /// overflow guard that can make this `None`).
    pub fn quantized(&self) -> Option<&QuantizedCsr> {
        self.quantized.as_ref()
    }
}

impl fmt::Debug for IsingProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IsingProblem({} spins, {} couplings, offset {})",
            self.num_spins(),
            self.num_couplings(),
            self.offset
        )
    }
}

/// Incrementally builds an [`IsingProblem`].
///
/// Couplings added for the same pair accumulate; the pair is stored
/// symmetrically. See [`IsingProblem`] for an example.
#[derive(Debug, Clone)]
pub struct IsingBuilder {
    h: Vec<f64>,
    triplets: Vec<(u32, u32, f64)>,
    offset: f64,
}

impl IsingBuilder {
    /// Starts a problem with `n` spins, zero biases and couplings.
    pub fn new(n: usize) -> Self {
        IsingBuilder {
            h: vec![0.0; n],
            triplets: Vec::new(),
            offset: 0.0,
        }
    }

    /// Adds `value` to the bias `hᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bias(mut self, i: usize, value: f64) -> Self {
        self.add_bias(i, value);
        self
    }

    /// Adds `value` to the bias `hᵢ` (by-reference form).
    pub fn add_bias(&mut self, i: usize, value: f64) {
        self.h[i] += value;
    }

    /// Adds `value` to the symmetric coupling `J_ij = J_ji`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (the model requires `J_ii = 0`) or out of range.
    pub fn coupling(mut self, i: usize, j: usize, value: f64) -> Self {
        self.add_coupling(i, j, value);
        self
    }

    /// Adds `value` to the symmetric coupling (by-reference form).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or out of range.
    pub fn add_coupling(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "diagonal couplings are not allowed (J_ii = 0)");
        assert!(i < self.h.len() && j < self.h.len(), "spin index out of range");
        self.triplets.push((i as u32, j as u32, value));
    }

    /// Adds `value` to the constant energy offset.
    pub fn offset(mut self, value: f64) -> Self {
        self.add_offset(value);
        self
    }

    /// Adds `value` to the constant energy offset (by-reference form).
    pub fn add_offset(&mut self, value: f64) {
        self.offset += value;
    }

    /// Finalizes the problem into its flat CSR form, merging duplicate
    /// couplings and dropping pairs that cancel to exactly zero.
    pub fn build(self) -> IsingProblem {
        let n = self.h.len();
        let mut maps: Vec<std::collections::BTreeMap<u32, f64>> =
            vec![std::collections::BTreeMap::new(); n];
        for (i, j, v) in self.triplets {
            *maps[i as usize].entry(j).or_insert(0.0) += v;
            *maps[j as usize].entry(i).or_insert(0.0) += v;
        }
        let nnz: usize = maps
            .iter()
            .map(|m| m.values().filter(|&&v| v != 0.0).count())
            .sum();
        assert!(nnz <= u32::MAX as usize, "coupling count overflows CSR offsets");
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(nnz);
        let mut weights = Vec::with_capacity(nnz);
        row_ptr.push(0u32);
        for m in maps {
            for (j, v) in m {
                if v != 0.0 {
                    cols.push(j);
                    weights.push(v);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        let quantized = QuantizedCsr::build(&self.h, &row_ptr, &weights);
        IsingProblem {
            h: self.h,
            pattern: Arc::new(CsrPattern { row_ptr, cols }),
            weights,
            offset: self.offset,
            quantized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_spin() -> IsingProblem {
        // E = -h0 σ0 - h1 σ1 - J σ0 σ1 with h0=1, h1=-2, J=0.5
        IsingBuilder::new(2)
            .bias(0, 1.0)
            .bias(1, -2.0)
            .coupling(0, 1, 0.5)
            .build()
    }

    #[test]
    fn energy_matches_hand_computation() {
        let p = two_spin();
        let cases = [
            ([1i8, 1], -1.0 + 2.0 - 0.5),
            ([1, -1], -1.0 - 2.0 + 0.5),
            ([-1, 1], 1.0 + 2.0 + 0.5),
            ([-1, -1], 1.0 - 2.0 - 0.5),
        ];
        for (spins, expect) in cases {
            let s = SpinVector::from_raw(spins.to_vec());
            assert!((p.energy(&s) - expect).abs() < 1e-12, "case {spins:?}");
        }
    }

    #[test]
    fn couplings_accumulate_symmetrically() {
        let p = IsingBuilder::new(3)
            .coupling(0, 1, 1.0)
            .coupling(1, 0, 2.0)
            .build();
        assert_eq!(p.coupling(0, 1), 3.0);
        assert_eq!(p.coupling(1, 0), 3.0);
        assert_eq!(p.coupling(0, 2), 0.0);
        assert_eq!(p.num_couplings(), 1);
    }

    #[test]
    fn flip_delta_consistent_with_energy() {
        let p = two_spin();
        for bits in 0..4u8 {
            let mut s = SpinVector::from_bools([(bits & 1) == 1, (bits & 2) == 2]);
            for i in 0..2 {
                let e0 = p.energy(&s);
                let delta = p.flip_delta(&s, i);
                s.flip(i);
                let e1 = p.energy(&s);
                s.flip(i);
                assert!((e1 - e0 - delta).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn offset_shifts_energy() {
        let p = IsingBuilder::new(1).bias(0, 1.0).offset(10.0).build();
        assert!((p.energy(&SpinVector::all_up(1)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn field_is_h_plus_jx() {
        let p = two_spin();
        let x = [0.3, -0.7];
        let mut out = [0.0; 2];
        p.field(&x, &mut out);
        assert!((out[0] - (1.0 + 0.5 * -0.7)).abs() < 1e-12);
        assert!((out[1] - (-2.0 + 0.5 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn coupling_rms() {
        let p = IsingBuilder::new(2).coupling(0, 1, 2.0).build();
        // sum J^2 over both directions = 8; N(N-1) = 2 → rms = 2.
        assert!((p.coupling_rms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_couplings_dropped() {
        let p = IsingBuilder::new(2)
            .coupling(0, 1, 1.0)
            .coupling(0, 1, -1.0)
            .build();
        assert_eq!(p.num_couplings(), 0);
    }

    #[test]
    #[should_panic(expected = "diagonal couplings")]
    fn diagonal_rejected() {
        IsingBuilder::new(2).coupling(1, 1, 1.0);
    }

    #[test]
    fn couplings_iterator_visits_each_pair_once() {
        let p = IsingBuilder::new(3)
            .coupling(0, 1, 1.0)
            .coupling(1, 2, -2.0)
            .build();
        let all: Vec<_> = p.couplings().collect();
        assert_eq!(all, vec![(0, 1, 1.0), (1, 2, -2.0)]);
    }

    #[test]
    fn csr_layout_is_well_formed() {
        let p = IsingBuilder::new(4)
            .coupling(0, 2, 1.0)
            .coupling(0, 3, -2.0)
            .coupling(2, 3, 0.5)
            .build();
        let (row_ptr, cols, weights) = p.csr();
        assert_eq!(row_ptr.len(), 5);
        assert_eq!(row_ptr[0], 0);
        assert_eq!(*row_ptr.last().unwrap() as usize, cols.len());
        assert_eq!(cols.len(), weights.len());
        assert_eq!(cols.len(), 2 * p.num_couplings());
        // Rows sorted ascending, offsets monotone.
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        for i in 0..p.num_spins() {
            let row = &cols[row_ptr[i] as usize..row_ptr[i + 1] as usize];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i} sorted");
        }
        // Row 0 holds neighbors 2, 3 with the built weights.
        assert_eq!(&cols[0..2], &[2, 3]);
        assert_eq!(&weights[0..2], &[1.0, -2.0]);
    }

    #[test]
    fn integral_weights_quantize_exactly_at_unit_scale() {
        let p = IsingBuilder::new(3)
            .bias(0, 3.0)
            .bias(2, -32767.0)
            .coupling(0, 1, -5.0)
            .coupling(1, 2, 32767.0)
            .build();
        let q = p.quantized().expect("integral instance must quantize");
        assert!(q.exact());
        assert_eq!(q.scale(), 1.0);
        let (_, _, weights) = p.csr();
        for (&w, &qw) in weights.iter().zip(q.weights()) {
            assert_eq!(f64::from(qw), w);
        }
        for (&h, &qb) in p.biases().iter().zip(q.biases()) {
            assert_eq!(f64::from(qb), h);
        }
    }

    #[test]
    fn fractional_weights_quantize_within_half_unit() {
        let p = IsingBuilder::new(4)
            .bias(1, 0.375)
            .coupling(0, 1, 0.013)
            .coupling(1, 2, -0.207)
            .coupling(2, 3, 1.5)
            .build();
        let q = p.quantized().expect("finite instance must quantize");
        assert!(!q.exact());
        let s = q.scale();
        assert!(s.is_finite() && s > 0.0);
        let (_, _, weights) = p.csr();
        for (&w, &qw) in weights.iter().zip(q.weights()) {
            assert!((f64::from(qw) / s - w).abs() <= 0.5 / s + 1e-12);
        }
        for (&h, &qb) in p.biases().iter().zip(q.biases()) {
            assert!((f64::from(qb) / s - h).abs() <= 0.5 / s + 1e-12);
        }
    }

    #[test]
    fn quantized_scale_keeps_largest_coupling_in_i16() {
        let p = IsingBuilder::new(3)
            .coupling(0, 1, 1e-3)
            .coupling(1, 2, 900.5)
            .build();
        let q = p.quantized().unwrap();
        assert!(900.5 * q.scale() <= f64::from(i16::MAX) + 0.5);
        assert!(q.weights().iter().any(|&v| v != 0));
    }

    #[test]
    fn fractional_scale_is_capped_to_fit_i16_accumulation() {
        // A fractional star whose RMS-target scale would push the hub
        // row's Σ|qJ| past i16: the builder must trade scale for the
        // double-width kernel, keeping the row bound inside i16 while
        // the largest coupling stays well above the resolution floor.
        let mut b = IsingBuilder::new(41);
        for j in 1..41 {
            b.add_coupling(0, j, 1.5);
        }
        let p = b.build();
        let q = p.quantized().expect("finite instance must quantize");
        assert!(!q.exact());
        assert!(q.acc_fits_i16(), "cap must unlock i16 accumulation");
        let hub_bound: i32 = q.weights()[..40].iter().map(|&v| i32::from(v).abs()).sum();
        assert!(hub_bound <= i32::from(i16::MAX), "hub row bound {hub_bound}");
        let qjmax = q.weights().iter().map(|v| v.unsigned_abs()).max().unwrap();
        assert!(f64::from(qjmax) >= QUANT_MIN_JMAX, "resolution floor held: {qjmax}");
    }

    #[test]
    fn resolution_wins_over_the_i16_accumulation_cap() {
        // A hub so wide that fitting its row sum into i16 would leave the
        // couplings under the ~4-bit floor: the builder must keep the
        // finer scale and report i32 accumulation instead.
        let n = 2501;
        let mut b = IsingBuilder::new(n);
        for j in 1..n {
            b.add_coupling(0, j, 0.5);
        }
        let p = b.build();
        let q = p.quantized().expect("finite instance must quantize");
        assert!(!q.acc_fits_i16(), "cap would destroy resolution; keep i32");
        let qjmax = q.weights().iter().map(|v| v.unsigned_abs()).max().unwrap();
        assert!(f64::from(qjmax) >= QUANT_MIN_JMAX, "fine scale kept: {qjmax}");
    }

    #[test]
    fn non_finite_coefficients_refuse_quantization() {
        let p = IsingBuilder::new(2).coupling(0, 1, f64::NAN).build();
        assert!(p.quantized().is_none());
        let p = IsingBuilder::new(2).bias(0, f64::INFINITY).build();
        assert!(p.quantized().is_none());
    }

    #[test]
    fn empty_problem_quantizes_exactly() {
        let p = IsingBuilder::new(2).build();
        let q = p.quantized().unwrap();
        assert!(q.exact());
        assert_eq!(q.weights().len(), 0);
        assert_eq!(q.biases(), &[0, 0]);
    }

    #[test]
    fn interner_dedups_equal_patterns_only() {
        let interner = PatternInterner::new();
        assert!(interner.is_empty());
        let mut a = IsingBuilder::new(3).coupling(0, 1, 1.0).build();
        let mut b = IsingBuilder::new(3).coupling(0, 1, -7.0).build();
        let mut c = IsingBuilder::new(3).coupling(0, 2, 1.0).build();
        assert!(a.shares_pattern(&b));
        assert!(!a.shares_pattern(&c));
        assert!(!interner.intern(&mut a), "first structure is new");
        assert!(interner.intern(&mut b), "same structure shares");
        assert!(!interner.intern(&mut c), "different structure is new");
        assert!(Arc::ptr_eq(a.pattern(), b.pattern()));
        assert!(!Arc::ptr_eq(a.pattern(), c.pattern()));
        assert_eq!(interner.len(), 2);
        // Interning never changes content: the CSR views stay equal.
        let fresh = IsingBuilder::new(3).coupling(0, 1, -7.0).build();
        assert_eq!(b.csr(), fresh.csr());
        assert_eq!(b, fresh);
    }

    #[test]
    fn zero_weight_changes_pattern_not_just_values() {
        // `build` drops exact zeros, so a zero coupling is a *structural*
        // difference — exactly why fusion groups on the pattern, not on
        // the (rows, cols) shape.
        let a = IsingBuilder::new(3).coupling(0, 1, 1.0).coupling(1, 2, 1.0).build();
        let b = IsingBuilder::new(3).coupling(0, 1, 1.0).build();
        assert!(!a.shares_pattern(&b));
    }

    #[test]
    fn neighbors_iterates_in_csr_order() {
        let p = IsingBuilder::new(4)
            .coupling(1, 3, 2.0)
            .coupling(1, 0, -1.0)
            .coupling(1, 2, 0.25)
            .build();
        let row: Vec<_> = p.neighbors(1).collect();
        assert_eq!(row, vec![(0, -1.0), (2, 0.25), (3, 2.0)]);
    }
}
