//! Second-order Ising problems (Eq. 1 of the paper).

use crate::SpinVector;
use std::fmt;
use std::ops::Range;

/// A second-order Ising energy function over `N` spins:
///
/// ```text
/// E(σ) = −Σᵢ hᵢσᵢ − ½ ΣᵢΣⱼ J_ij σᵢσⱼ + offset
/// ```
///
/// with `J` symmetric and zero on the diagonal (the paper's Eq. 1, plus a
/// constant `offset` so the energy can track an original objective exactly —
/// e.g. so the COP energies are directly comparable to ER/MED values).
///
/// Couplings are stored in a flat CSR (compressed sparse row) layout — one
/// row-offset array plus packed neighbor-index and weight arrays, each row
/// sorted by neighbor — so the per-iteration matvec of the SB integrators
/// streams contiguous memory instead of chasing per-spin heap pointers.
/// The layout suits both the sparse bipartite problems produced by the
/// decomposition COP and random dense instances.
///
/// # Examples
///
/// ```
/// use adis_ising::{IsingBuilder, SpinVector};
///
/// // Two ferromagnetically coupled spins: aligned states minimize energy.
/// let p = IsingBuilder::new(2).coupling(0, 1, 1.0).build();
/// let aligned = p.energy(&SpinVector::all_up(2));
/// let opposed = {
///     let mut s = SpinVector::all_up(2);
///     s.flip(1);
///     p.energy(&s)
/// };
/// assert!(aligned < opposed);
/// ```
#[derive(Clone, PartialEq)]
pub struct IsingProblem {
    h: Vec<f64>,
    /// CSR row offsets: row `i` occupies `row_ptr[i]..row_ptr[i+1]` in the
    /// packed arrays. Length `N + 1`.
    row_ptr: Vec<u32>,
    /// Packed neighbor indices, each row sorted ascending.
    cols: Vec<u32>,
    /// Packed coupling values, parallel to `cols`.
    weights: Vec<f64>,
    offset: f64,
}

impl IsingProblem {
    /// Number of spins `N`.
    pub fn num_spins(&self) -> usize {
        self.h.len()
    }

    /// The bias `hᵢ`.
    pub fn bias(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// All biases.
    pub fn biases(&self) -> &[f64] {
        &self.h
    }

    /// The constant energy offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    #[inline]
    fn row_range(&self, i: usize) -> Range<usize> {
        self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize
    }

    /// The raw CSR triple `(row offsets, neighbor indices, weights)`.
    ///
    /// Row `i`'s entries occupy `row_ptr[i]..row_ptr[i+1]` of the two
    /// packed arrays; rows are sorted by neighbor index. This is the layout
    /// batch kernels iterate directly (see `adis-sb`'s SoA integrator);
    /// accumulating a row in packed order is exactly the order
    /// [`local_field`](IsingProblem::local_field) uses, which is what keeps
    /// batched and sequential integrations bit-identical.
    pub fn csr(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.row_ptr, &self.cols, &self.weights)
    }

    /// The coupling `J_ij` (zero if absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        let r = self.row_range(i);
        self.cols[r.clone()]
            .binary_search(&(j as u32))
            .map(|idx| self.weights[r.start + idx])
            .unwrap_or(0.0)
    }

    /// Neighbors of spin `i` with their couplings, sorted by neighbor.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.row_range(i);
        self.cols[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Total number of stored (undirected) couplings.
    pub fn num_couplings(&self) -> usize {
        self.weights.len() / 2
    }

    /// Iterates over each undirected coupling `(i, j, J_ij)` once (`i < j`).
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.num_spins()).flat_map(move |i| {
            self.neighbors(i)
                .filter(move |&(j, _)| (j as usize) > i)
                .map(move |(j, v)| (i, j as usize, v))
        })
    }

    /// The energy `E(σ)` including the offset.
    ///
    /// # Panics
    ///
    /// Panics if the spin count differs from `N`.
    pub fn energy(&self, sigma: &SpinVector) -> f64 {
        assert_eq!(sigma.len(), self.num_spins(), "spin count mismatch");
        let mut e = self.offset;
        for i in 0..self.num_spins() {
            let si = f64::from(sigma.get(i));
            e -= self.h[i] * si;
            let mut acc = 0.0;
            let r = self.row_range(i);
            for (&j, &v) in self.cols[r.clone()].iter().zip(&self.weights[r]) {
                acc += v * f64::from(sigma.get(j as usize));
            }
            e -= 0.5 * si * acc;
        }
        e
    }

    /// The local field `hᵢ + Σⱼ J_ij xⱼ` at spin `i` given relaxed positions.
    ///
    /// For SB dynamics this is `−∂E/∂xᵢ` of the relaxed energy.
    #[inline]
    pub fn local_field(&self, x: &[f64], i: usize) -> f64 {
        let mut f = self.h[i];
        let r = self.row_range(i);
        for (&j, &v) in self.cols[r.clone()].iter().zip(&self.weights[r]) {
            f += v * x[j as usize];
        }
        f
    }

    /// Writes the full field vector `h + J·x` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `N`.
    pub fn field(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.num_spins(), "position count mismatch");
        assert_eq!(out.len(), self.num_spins(), "output count mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.local_field(x, i);
        }
    }

    /// Energy change if spin `i` were flipped: `E(σ with i flipped) − E(σ)`.
    ///
    /// Used by single-spin-update solvers (simulated annealing).
    pub fn flip_delta(&self, sigma: &SpinVector, i: usize) -> f64 {
        let si = f64::from(sigma.get(i));
        let mut field = self.h[i];
        let r = self.row_range(i);
        for (&j, &v) in self.cols[r.clone()].iter().zip(&self.weights[r]) {
            field += v * f64::from(sigma.get(j as usize));
        }
        2.0 * si * field
    }

    /// Root-mean-square coupling `σ_J = sqrt(ΣᵢⱼJ²/(N(N−1)))` used by the
    /// SB `c₀` prescription (Goto 2021). Returns 0 for `N < 2` or no
    /// couplings.
    pub fn coupling_rms(&self) -> f64 {
        let n = self.num_spins();
        if n < 2 {
            return 0.0;
        }
        let sum_sq: f64 = self.weights.iter().map(|&v| v * v).sum();
        (sum_sq / (n as f64 * (n as f64 - 1.0))).sqrt()
    }

    /// Largest absolute bias/coupling magnitude (for scaling heuristics).
    pub fn max_abs_coefficient(&self) -> f64 {
        let hmax = self.h.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let jmax = self.weights.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        hmax.max(jmax)
    }
}

impl fmt::Debug for IsingProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IsingProblem({} spins, {} couplings, offset {})",
            self.num_spins(),
            self.num_couplings(),
            self.offset
        )
    }
}

/// Incrementally builds an [`IsingProblem`].
///
/// Couplings added for the same pair accumulate; the pair is stored
/// symmetrically. See [`IsingProblem`] for an example.
#[derive(Debug, Clone)]
pub struct IsingBuilder {
    h: Vec<f64>,
    triplets: Vec<(u32, u32, f64)>,
    offset: f64,
}

impl IsingBuilder {
    /// Starts a problem with `n` spins, zero biases and couplings.
    pub fn new(n: usize) -> Self {
        IsingBuilder {
            h: vec![0.0; n],
            triplets: Vec::new(),
            offset: 0.0,
        }
    }

    /// Adds `value` to the bias `hᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bias(mut self, i: usize, value: f64) -> Self {
        self.add_bias(i, value);
        self
    }

    /// Adds `value` to the bias `hᵢ` (by-reference form).
    pub fn add_bias(&mut self, i: usize, value: f64) {
        self.h[i] += value;
    }

    /// Adds `value` to the symmetric coupling `J_ij = J_ji`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (the model requires `J_ii = 0`) or out of range.
    pub fn coupling(mut self, i: usize, j: usize, value: f64) -> Self {
        self.add_coupling(i, j, value);
        self
    }

    /// Adds `value` to the symmetric coupling (by-reference form).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or out of range.
    pub fn add_coupling(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "diagonal couplings are not allowed (J_ii = 0)");
        assert!(i < self.h.len() && j < self.h.len(), "spin index out of range");
        self.triplets.push((i as u32, j as u32, value));
    }

    /// Adds `value` to the constant energy offset.
    pub fn offset(mut self, value: f64) -> Self {
        self.add_offset(value);
        self
    }

    /// Adds `value` to the constant energy offset (by-reference form).
    pub fn add_offset(&mut self, value: f64) {
        self.offset += value;
    }

    /// Finalizes the problem into its flat CSR form, merging duplicate
    /// couplings and dropping pairs that cancel to exactly zero.
    pub fn build(self) -> IsingProblem {
        let n = self.h.len();
        let mut maps: Vec<std::collections::BTreeMap<u32, f64>> =
            vec![std::collections::BTreeMap::new(); n];
        for (i, j, v) in self.triplets {
            *maps[i as usize].entry(j).or_insert(0.0) += v;
            *maps[j as usize].entry(i).or_insert(0.0) += v;
        }
        let nnz: usize = maps
            .iter()
            .map(|m| m.values().filter(|&&v| v != 0.0).count())
            .sum();
        assert!(nnz <= u32::MAX as usize, "coupling count overflows CSR offsets");
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(nnz);
        let mut weights = Vec::with_capacity(nnz);
        row_ptr.push(0u32);
        for m in maps {
            for (j, v) in m {
                if v != 0.0 {
                    cols.push(j);
                    weights.push(v);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        IsingProblem {
            h: self.h,
            row_ptr,
            cols,
            weights,
            offset: self.offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_spin() -> IsingProblem {
        // E = -h0 σ0 - h1 σ1 - J σ0 σ1 with h0=1, h1=-2, J=0.5
        IsingBuilder::new(2)
            .bias(0, 1.0)
            .bias(1, -2.0)
            .coupling(0, 1, 0.5)
            .build()
    }

    #[test]
    fn energy_matches_hand_computation() {
        let p = two_spin();
        let cases = [
            ([1i8, 1], -1.0 + 2.0 - 0.5),
            ([1, -1], -1.0 - 2.0 + 0.5),
            ([-1, 1], 1.0 + 2.0 + 0.5),
            ([-1, -1], 1.0 - 2.0 - 0.5),
        ];
        for (spins, expect) in cases {
            let s = SpinVector::from_raw(spins.to_vec());
            assert!((p.energy(&s) - expect).abs() < 1e-12, "case {spins:?}");
        }
    }

    #[test]
    fn couplings_accumulate_symmetrically() {
        let p = IsingBuilder::new(3)
            .coupling(0, 1, 1.0)
            .coupling(1, 0, 2.0)
            .build();
        assert_eq!(p.coupling(0, 1), 3.0);
        assert_eq!(p.coupling(1, 0), 3.0);
        assert_eq!(p.coupling(0, 2), 0.0);
        assert_eq!(p.num_couplings(), 1);
    }

    #[test]
    fn flip_delta_consistent_with_energy() {
        let p = two_spin();
        for bits in 0..4u8 {
            let mut s = SpinVector::from_bools([(bits & 1) == 1, (bits & 2) == 2]);
            for i in 0..2 {
                let e0 = p.energy(&s);
                let delta = p.flip_delta(&s, i);
                s.flip(i);
                let e1 = p.energy(&s);
                s.flip(i);
                assert!((e1 - e0 - delta).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn offset_shifts_energy() {
        let p = IsingBuilder::new(1).bias(0, 1.0).offset(10.0).build();
        assert!((p.energy(&SpinVector::all_up(1)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn field_is_h_plus_jx() {
        let p = two_spin();
        let x = [0.3, -0.7];
        let mut out = [0.0; 2];
        p.field(&x, &mut out);
        assert!((out[0] - (1.0 + 0.5 * -0.7)).abs() < 1e-12);
        assert!((out[1] - (-2.0 + 0.5 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn coupling_rms() {
        let p = IsingBuilder::new(2).coupling(0, 1, 2.0).build();
        // sum J^2 over both directions = 8; N(N-1) = 2 → rms = 2.
        assert!((p.coupling_rms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_couplings_dropped() {
        let p = IsingBuilder::new(2)
            .coupling(0, 1, 1.0)
            .coupling(0, 1, -1.0)
            .build();
        assert_eq!(p.num_couplings(), 0);
    }

    #[test]
    #[should_panic(expected = "diagonal couplings")]
    fn diagonal_rejected() {
        IsingBuilder::new(2).coupling(1, 1, 1.0);
    }

    #[test]
    fn couplings_iterator_visits_each_pair_once() {
        let p = IsingBuilder::new(3)
            .coupling(0, 1, 1.0)
            .coupling(1, 2, -2.0)
            .build();
        let all: Vec<_> = p.couplings().collect();
        assert_eq!(all, vec![(0, 1, 1.0), (1, 2, -2.0)]);
    }

    #[test]
    fn csr_layout_is_well_formed() {
        let p = IsingBuilder::new(4)
            .coupling(0, 2, 1.0)
            .coupling(0, 3, -2.0)
            .coupling(2, 3, 0.5)
            .build();
        let (row_ptr, cols, weights) = p.csr();
        assert_eq!(row_ptr.len(), 5);
        assert_eq!(row_ptr[0], 0);
        assert_eq!(*row_ptr.last().unwrap() as usize, cols.len());
        assert_eq!(cols.len(), weights.len());
        assert_eq!(cols.len(), 2 * p.num_couplings());
        // Rows sorted ascending, offsets monotone.
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        for i in 0..p.num_spins() {
            let row = &cols[row_ptr[i] as usize..row_ptr[i + 1] as usize];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i} sorted");
        }
        // Row 0 holds neighbors 2, 3 with the built weights.
        assert_eq!(&cols[0..2], &[2, 3]);
        assert_eq!(&weights[0..2], &[1.0, -2.0]);
    }

    #[test]
    fn neighbors_iterates_in_csr_order() {
        let p = IsingBuilder::new(4)
            .coupling(1, 3, 2.0)
            .coupling(1, 0, -1.0)
            .coupling(1, 2, 0.25)
            .build();
        let row: Vec<_> = p.neighbors(1).collect();
        assert_eq!(row, vec![(0, -1.0), (2, 0.25), (3, 2.0)]);
    }
}
