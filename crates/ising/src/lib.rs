//! The Ising model substrate: problem representations and exact reference
//! solvers.
//!
//! The paper's COP solver works on the second-order Ising energy of Eq. (1),
//!
//! ```text
//! E(σ) = −Σᵢ hᵢσᵢ − ½ ΣᵢΣⱼ J_ij σᵢσⱼ ,   σᵢ ∈ {−1, +1},
//! ```
//!
//! provided here as [`IsingProblem`] (built with [`IsingBuilder`]). The crate
//! also provides:
//!
//! - [`Qubo`]: `{0, 1}`-variable objectives with an exact, offset-tracking
//!   conversion to the Ising model (the paper's `b = (σ+1)/2` substitution);
//! - [`HigherOrderIsing`]: k-local energies, needed to express the row-based
//!   core COP the paper proves is third-order;
//! - [`solve_exhaustive`]: a Gray-code exhaustive ground-state search used to
//!   validate all heuristic solvers on small instances;
//! - [`random`]: standard random instance families (Sherrington–Kirkpatrick,
//!   sparse, bipartite) for solver benchmarking.
//!
//! [`solve_exhaustive_with`] reports enumeration counters to any
//! [`adis_telemetry::SolveObserver`]; the `trace` feature additionally logs
//! entry/exit spans to stderr.
//!
//! # Example
//!
//! ```
//! use adis_ising::{solve_exhaustive, IsingBuilder};
//!
//! // An antiferromagnetic triangle is frustrated: ground energy is −J, not −3J.
//! let p = IsingBuilder::new(3)
//!     .coupling(0, 1, -1.0)
//!     .coupling(1, 2, -1.0)
//!     .coupling(0, 2, -1.0)
//!     .build();
//! let ground = solve_exhaustive(&p);
//! assert_eq!(ground.energy, -1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod brute;
mod higher;
mod problem;
mod qubo;
pub mod random;
mod spin;

pub use brute::{solve_exhaustive, solve_exhaustive_with, GroundState, MAX_EXHAUSTIVE_SPINS};
pub use higher::HigherOrderIsing;
pub use problem::{CsrPattern, IsingBuilder, IsingProblem, PatternInterner, QuantizedCsr};
pub use qubo::Qubo;
pub use spin::SpinVector;
