//! Random Ising instance generators for solver validation and benchmarking.

use crate::{IsingBuilder, IsingProblem};
use rand::Rng;
use rand_distr_shim::StandardNormalShim;

/// A Sherrington–Kirkpatrick instance: all-to-all couplings drawn i.i.d.
/// from a normal distribution with standard deviation `1/√N`, zero biases.
///
/// This is the classic hard benchmark family used to evaluate SB solvers
/// (Goto 2019/2021).
pub fn sherrington_kirkpatrick<R: Rng + ?Sized>(n: usize, rng: &mut R) -> IsingProblem {
    let scale = 1.0 / (n.max(1) as f64).sqrt();
    let mut b = IsingBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_coupling(i, j, scale * rng.sample(StandardNormalShim));
        }
    }
    b.build()
}

/// A sparse random instance: each of the `C(N, 2)` pairs is coupled with
/// probability `density`, with coupling and bias values uniform in
/// `[-1, 1]`.
///
/// # Panics
///
/// Panics if `density` is not within `[0, 1]`.
pub fn sparse_random<R: Rng + ?Sized>(n: usize, density: f64, rng: &mut R) -> IsingProblem {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut b = IsingBuilder::new(n);
    for i in 0..n {
        b.add_bias(i, rng.gen_range(-1.0..=1.0));
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                b.add_coupling(i, j, rng.gen_range(-1.0..=1.0));
            }
        }
    }
    b.build()
}

/// A random bipartite instance shaped like the decomposition COP: `left`
/// spins each coupled to all `right` spins, mimicking the `T ↔ (V₁,V₂)`
/// structure.
pub fn bipartite_random<R: Rng + ?Sized>(left: usize, right: usize, rng: &mut R) -> IsingProblem {
    let n = left + right;
    let mut b = IsingBuilder::new(n);
    for i in 0..left {
        b.add_bias(i, rng.gen_range(-0.5..=0.5));
        for j in 0..right {
            b.add_coupling(i, left + j, rng.gen_range(-1.0..=1.0));
        }
    }
    b.build()
}

/// Minimal standard-normal sampler (Box–Muller) so we avoid an extra
/// dependency on `rand_distr`.
mod rand_distr_shim {
    use rand::distributions::Distribution;
    use rand::Rng;

    /// Samples from N(0, 1).
    pub struct StandardNormalShim;

    impl Distribution<f64> for StandardNormalShim {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller transform; u1 in (0, 1] avoids log(0).
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sk_instance_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = sherrington_kirkpatrick(10, &mut rng);
        assert_eq!(p.num_spins(), 10);
        assert_eq!(p.num_couplings(), 45);
        assert!(p.biases().iter().all(|&h| h == 0.0));
    }

    #[test]
    fn sparse_density_zero_and_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let p0 = sparse_random(8, 0.0, &mut rng);
        assert_eq!(p0.num_couplings(), 0);
        let p1 = sparse_random(8, 1.0, &mut rng);
        assert_eq!(p1.num_couplings(), 28);
    }

    #[test]
    fn bipartite_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = bipartite_random(3, 4, &mut rng);
        assert_eq!(p.num_spins(), 7);
        assert_eq!(p.num_couplings(), 12);
        // No couplings within the right side.
        for i in 3..7 {
            for (j, _) in p.neighbors(i) {
                assert!((j as usize) < 3, "right spins couple only to left");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sherrington_kirkpatrick(6, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = sherrington_kirkpatrick(6, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
