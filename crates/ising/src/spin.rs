//! Spin-state vectors.

use std::fmt;
use std::ops::Index;

/// A configuration of `N` Ising spins, each `−1` or `+1`.
///
/// # Examples
///
/// ```
/// use adis_ising::SpinVector;
///
/// let s = SpinVector::from_bools([true, false]);
/// assert_eq!(s[0], 1);
/// assert_eq!(s[1], -1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SpinVector {
    spins: Vec<i8>,
}

impl SpinVector {
    /// All spins down (`−1`).
    pub fn all_down(n: usize) -> Self {
        SpinVector { spins: vec![-1; n] }
    }

    /// All spins up (`+1`).
    pub fn all_up(n: usize) -> Self {
        SpinVector { spins: vec![1; n] }
    }

    /// Builds from booleans: `true → +1`, `false → −1`.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        SpinVector {
            spins: bits.into_iter().map(|b| if b { 1 } else { -1 }).collect(),
        }
    }

    /// Builds from the signs of real values: `x ≥ 0 → +1`, else `−1`.
    ///
    /// This is how simulated bifurcation reads out a solution from
    /// oscillator positions.
    pub fn from_signs(xs: &[f64]) -> Self {
        SpinVector {
            spins: xs.iter().map(|&x| if x >= 0.0 { 1 } else { -1 }).collect(),
        }
    }

    /// Builds from raw `±1` values.
    ///
    /// # Panics
    ///
    /// Panics if any value is not `−1` or `+1`.
    pub fn from_raw(spins: Vec<i8>) -> Self {
        assert!(
            spins.iter().all(|&s| s == 1 || s == -1),
            "spins must be ±1"
        );
        SpinVector { spins }
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        self.spins.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.spins.is_empty()
    }

    /// Spin `i` as `±1`.
    #[inline]
    pub fn get(&self, i: usize) -> i8 {
        self.spins[i]
    }

    /// Sets spin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not `±1`.
    pub fn set(&mut self, i: usize, value: i8) {
        assert!(value == 1 || value == -1, "spin must be ±1");
        self.spins[i] = value;
    }

    /// Flips spin `i` in place.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        self.spins[i] = -self.spins[i];
    }

    /// Spin `i` as a boolean (`+1 → true`).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        self.spins[i] == 1
    }

    /// Raw slice view.
    pub fn as_slice(&self) -> &[i8] {
        &self.spins
    }

    /// The spins as booleans (`+1 → true`).
    pub fn to_bools(&self) -> Vec<bool> {
        self.spins.iter().map(|&s| s == 1).collect()
    }

    /// The spins as `f64` values (for solver initialization).
    pub fn to_f64(&self) -> Vec<f64> {
        self.spins.iter().map(|&s| f64::from(s)).collect()
    }

    /// Number of positions where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming_distance(&self, other: &Self) -> usize {
        assert_eq!(self.len(), other.len(), "length mismatch");
        self.spins
            .iter()
            .zip(&other.spins)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl Index<usize> for SpinVector {
    type Output = i8;

    fn index(&self, i: usize) -> &i8 {
        &self.spins[i]
    }
}

impl fmt::Debug for SpinVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpinVector[")?;
        for (n, &s) in self.spins.iter().enumerate() {
            if n >= 64 {
                write!(f, "… ({} spins)", self.spins.len())?;
                break;
            }
            write!(f, "{}", if s == 1 { '+' } else { '-' })?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for SpinVector {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        SpinVector::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(SpinVector::all_up(3).as_slice().iter().all(|&s| s == 1));
        assert!(SpinVector::all_down(3).as_slice().iter().all(|&s| s == -1));
        let s = SpinVector::from_signs(&[0.5, -0.1, 0.0]);
        assert_eq!(s.as_slice(), &[1, -1, 1]);
    }

    #[test]
    fn flip_and_bit() {
        let mut s = SpinVector::all_down(2);
        s.flip(1);
        assert_eq!(s[1], 1);
        assert!(s.bit(1));
        assert!(!s.bit(0));
    }

    #[test]
    fn hamming() {
        let a = SpinVector::from_bools([true, true, false]);
        let b = SpinVector::from_bools([true, false, true]);
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    #[should_panic(expected = "must be ±1")]
    fn raw_validation() {
        SpinVector::from_raw(vec![1, 0]);
    }
}
