//! QUBO (quadratic unconstrained binary optimization) problems and their
//! exact conversion to the Ising model.
//!
//! The decomposition COPs are naturally expressed over `{0, 1}` variables
//! (Eq. 7/10 of the paper); the paper converts them to spin variables with
//! `b = (σ + 1)/2`. [`Qubo::to_ising`] performs that transformation in
//! general, tracking the constant term so energies match exactly.

use crate::{IsingBuilder, IsingProblem, SpinVector};
use std::fmt;

/// A QUBO objective `f(b) = Σ_{i<j} Q_ij b_i b_j + Σᵢ qᵢbᵢ + c` over binary
/// variables `b ∈ {0, 1}^N`.
///
/// # Examples
///
/// ```
/// use adis_ising::Qubo;
///
/// // Minimize b0 + b1 - 2 b0 b1 (i.e. XOR count): minima at (0,0) and (1,1).
/// let mut q = Qubo::new(2);
/// q.add_linear(0, 1.0);
/// q.add_linear(1, 1.0);
/// q.add_quadratic(0, 1, -2.0);
/// assert_eq!(q.value(&[false, false]), 0.0);
/// assert_eq!(q.value(&[true, false]), 1.0);
/// assert_eq!(q.value(&[true, true]), 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Qubo {
    linear: Vec<f64>,
    /// Upper-triangular terms `(i, j, Q_ij)` with `i < j`, merged on build.
    quadratic: Vec<(u32, u32, f64)>,
    constant: f64,
}

impl Qubo {
    /// A zero objective over `n` binary variables.
    pub fn new(n: usize) -> Self {
        Qubo {
            linear: vec![0.0; n],
            quadratic: Vec::new(),
            constant: 0.0,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.linear.len()
    }

    /// Adds `v` to the linear coefficient of `bᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_linear(&mut self, i: usize, v: f64) {
        self.linear[i] += v;
    }

    /// Adds `v` to the quadratic coefficient of `bᵢbⱼ`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (fold `bᵢ² = bᵢ` into the linear term instead) or
    /// out of range.
    pub fn add_quadratic(&mut self, i: usize, j: usize, v: f64) {
        assert!(i != j, "use add_linear for squared terms (b² = b)");
        assert!(
            i < self.num_vars() && j < self.num_vars(),
            "variable index out of range"
        );
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.quadratic.push((a as u32, b as u32, v));
    }

    /// Adds `v` to the constant term.
    pub fn add_constant(&mut self, v: f64) {
        self.constant += v;
    }

    /// The objective value at assignment `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != num_vars()`.
    pub fn value(&self, b: &[bool]) -> f64 {
        assert_eq!(b.len(), self.num_vars(), "assignment length mismatch");
        let mut v = self.constant;
        for (i, &l) in self.linear.iter().enumerate() {
            if b[i] {
                v += l;
            }
        }
        for &(i, j, q) in &self.quadratic {
            if b[i as usize] && b[j as usize] {
                v += q;
            }
        }
        v
    }

    /// Converts to the equivalent Ising problem via `bᵢ = (σᵢ + 1)/2`.
    ///
    /// The resulting [`IsingProblem::energy`] equals [`Qubo::value`] at the
    /// corresponding assignment (`σ = +1 ⇔ b = 1`) exactly, including the
    /// constant offset.
    pub fn to_ising(&self) -> IsingProblem {
        let n = self.num_vars();
        let mut b = IsingBuilder::new(n);
        let mut offset = self.constant;
        // Linear: q·b = q(σ+1)/2 → energy term +q/2·σ ⇒ h -= q/2.
        for (i, &q) in self.linear.iter().enumerate() {
            b.add_bias(i, -q / 2.0);
            offset += q / 2.0;
        }
        // Quadratic: Q b_i b_j = Q(1 + σi + σj + σiσj)/4.
        for &(i, j, q) in &self.quadratic {
            let (i, j) = (i as usize, j as usize);
            b.add_bias(i, -q / 4.0);
            b.add_bias(j, -q / 4.0);
            b.add_coupling(i, j, -q / 4.0);
            offset += q / 4.0;
        }
        b.add_offset(offset);
        b.build()
    }

    /// Converts a spin configuration to the corresponding binary assignment.
    pub fn spins_to_bits(sigma: &SpinVector) -> Vec<bool> {
        sigma.to_bools()
    }
}

impl fmt::Debug for Qubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Qubo({} vars, {} quadratic terms, constant {})",
            self.num_vars(),
            self.quadratic.len(),
            self.constant
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(q: &Qubo) {
        let ising = q.to_ising();
        let n = q.num_vars();
        for assignment in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (assignment >> i) & 1 == 1).collect();
            let sigma = SpinVector::from_bools(bits.clone());
            let qv = q.value(&bits);
            let ev = ising.energy(&sigma);
            assert!(
                (qv - ev).abs() < 1e-10,
                "mismatch at {bits:?}: qubo {qv}, ising {ev}"
            );
        }
    }

    #[test]
    fn linear_only_equivalence() {
        let mut q = Qubo::new(3);
        q.add_linear(0, 1.5);
        q.add_linear(1, -2.0);
        q.add_constant(0.25);
        assert_equivalent(&q);
    }

    #[test]
    fn quadratic_equivalence() {
        let mut q = Qubo::new(4);
        q.add_linear(0, 1.0);
        q.add_quadratic(0, 1, -2.0);
        q.add_quadratic(2, 3, 3.0);
        q.add_quadratic(1, 3, 0.5);
        q.add_constant(-1.0);
        assert_equivalent(&q);
    }

    #[test]
    fn quadratic_order_insensitive() {
        let mut a = Qubo::new(2);
        a.add_quadratic(0, 1, 2.0);
        let mut b = Qubo::new(2);
        b.add_quadratic(1, 0, 2.0);
        for bits in [[false, false], [true, false], [false, true], [true, true]] {
            assert_eq!(a.value(&bits), b.value(&bits));
        }
    }

    #[test]
    #[should_panic(expected = "squared terms")]
    fn diagonal_quadratic_rejected() {
        Qubo::new(2).add_quadratic(1, 1, 1.0);
    }
}
