//! Exhaustive ground-state search, for validating heuristic solvers on
//! small instances.

use crate::{IsingProblem, SpinVector};
use adis_telemetry::{trace_span, NullObserver, SolveObserver};

/// Result of an exhaustive search: a ground state and its energy.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundState {
    /// A minimizing spin configuration (the lexicographically first one).
    pub state: SpinVector,
    /// Its energy, including the problem offset.
    pub energy: f64,
    /// Number of configurations tied at the minimum (degeneracy).
    pub degeneracy: usize,
}

/// Maximum spin count accepted by [`solve_exhaustive`].
pub const MAX_EXHAUSTIVE_SPINS: usize = 24;

/// Finds a ground state by enumerating all `2^N` configurations.
///
/// Uses incremental flip deltas along a Gray-code walk, so the cost is
/// `O(2^N · deg)` rather than `O(2^N · N · deg)`.
///
/// # Panics
///
/// Panics if `N > MAX_EXHAUSTIVE_SPINS` (the search would not terminate in
/// reasonable time).
pub fn solve_exhaustive(problem: &IsingProblem) -> GroundState {
    solve_exhaustive_with(problem, &mut NullObserver)
}

/// [`solve_exhaustive`] with telemetry: reports the number of enumerated
/// configurations (`exhaustive_states` counter) and the ground energy
/// (`exhaustive_ground_energy` gauge) to `observer`. With
/// [`adis_telemetry::NullObserver`] this is exactly [`solve_exhaustive`].
///
/// # Panics
///
/// Panics if `N > MAX_EXHAUSTIVE_SPINS`.
pub fn solve_exhaustive_with<O: SolveObserver>(
    problem: &IsingProblem,
    observer: &mut O,
) -> GroundState {
    let n = problem.num_spins();
    assert!(
        n <= MAX_EXHAUSTIVE_SPINS,
        "exhaustive search limited to {MAX_EXHAUSTIVE_SPINS} spins, got {n}"
    );
    let _span = trace_span!("solve_exhaustive n={n}");
    let mut state = SpinVector::all_down(n);
    let mut energy = problem.energy(&state);
    let mut best = GroundState {
        state: state.clone(),
        energy,
        degeneracy: 1,
    };
    if n > 0 {
        // Gray-code walk: configuration k differs from k+1 in bit
        // trailing_zeros(k+1).
        for k in 1u64..(1u64 << n) {
            let flip = k.trailing_zeros() as usize;
            energy += problem.flip_delta(&state, flip);
            state.flip(flip);
            if energy < best.energy - 1e-12 {
                best.energy = energy;
                best.state = state.clone();
                best.degeneracy = 1;
            } else if (energy - best.energy).abs() <= 1e-12 {
                best.degeneracy += 1;
            }
        }
    }
    observer.counter("exhaustive_states", 1u64 << n);
    observer.gauge("exhaustive_ground_energy", best.energy);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsingBuilder;

    #[test]
    fn ferromagnet_ground_states() {
        // 3-spin ferromagnetic chain: two degenerate ground states (all up,
        // all down).
        let p = IsingBuilder::new(3)
            .coupling(0, 1, 1.0)
            .coupling(1, 2, 1.0)
            .build();
        let g = solve_exhaustive(&p);
        assert!((g.energy - (-2.0)).abs() < 1e-12);
        assert_eq!(g.degeneracy, 2);
    }

    #[test]
    fn bias_breaks_degeneracy() {
        let p = IsingBuilder::new(2)
            .coupling(0, 1, 1.0)
            .bias(0, 0.1)
            .build();
        let g = solve_exhaustive(&p);
        assert_eq!(g.state, SpinVector::all_up(2));
        assert_eq!(g.degeneracy, 1);
    }

    #[test]
    fn matches_naive_enumeration() {
        // Cross-check the Gray-code walk against recomputed energies.
        let p = IsingBuilder::new(4)
            .bias(0, 0.3)
            .bias(2, -0.7)
            .coupling(0, 1, 0.5)
            .coupling(1, 2, -1.25)
            .coupling(2, 3, 2.0)
            .coupling(0, 3, -0.1)
            .offset(1.0)
            .build();
        let g = solve_exhaustive(&p);
        let mut best = f64::INFINITY;
        for k in 0..16u32 {
            let s = SpinVector::from_bools((0..4).map(|i| (k >> i) & 1 == 1));
            best = best.min(p.energy(&s));
        }
        assert!((g.energy - best).abs() < 1e-12);
        assert!((p.energy(&g.state) - best).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn size_guard() {
        let p = IsingBuilder::new(25).build();
        solve_exhaustive(&p);
    }
}
