//! The column-based core COP (Section 3.1) and its exact second-order Ising
//! formulation (Section 3.2).
//!
//! For a fixed partition, the unknowns are the two column patterns
//! `V₁, V₂ ∈ {0,1}^r` and the column type vector `T ∈ {0,1}^c`; the
//! approximate cell value is `Ô_ij = (1−T_j)·V₁ᵢ + T_j·V₂ᵢ` (Eq. 3). Every
//! mode's objective reduces to a *cell-linear* form
//!
//! ```text
//! cost(Ô) = Σᵢⱼ W_ij · Ô_ij + constant,
//! ```
//!
//! with `W_ij = p_ij (1 − 2 O_ij)` in separate mode (Eq. 7) and
//! `W_ij = p_ij·q_kij` in joint mode (Eq. 13/15). [`ColumnCop`] stores that
//! form, evaluates it, converts it to an [`IsingProblem`] with an exact
//! offset (so solver energies *are* ER/MED values), and provides the exact
//! sub-solvers (Theorem 3 type reset, per-row pattern optimization,
//! alternating minimization, exhaustive search) the rest of the crate
//! builds on.

use adis_boolfn::{BitVec, BooleanMatrix, ColumnSetting, InputDist, Partition};
use adis_ising::{IsingBuilder, IsingProblem, SpinVector};

/// Maps COP variables to spin indices in the Ising encoding:
/// `V₁ᵢ ↔ i`, `V₂ᵢ ↔ r + i`, `T_j ↔ 2r + j` (N = 2r + c spins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinLayout {
    /// Number of matrix rows `r`.
    pub rows: usize,
    /// Number of matrix columns `c`.
    pub cols: usize,
}

impl SpinLayout {
    /// Spin index of `V₁ᵢ`.
    #[inline]
    pub fn v1(&self, i: usize) -> usize {
        debug_assert!(i < self.rows);
        i
    }

    /// Spin index of `V₂ᵢ`.
    #[inline]
    pub fn v2(&self, i: usize) -> usize {
        debug_assert!(i < self.rows);
        self.rows + i
    }

    /// Spin index of `T_j`.
    #[inline]
    pub fn t(&self, j: usize) -> usize {
        debug_assert!(j < self.cols);
        2 * self.rows + j
    }

    /// Total spin count `N = 2r + c`.
    pub fn num_spins(&self) -> usize {
        2 * self.rows + self.cols
    }

    /// Decodes a spin configuration into a column setting.
    ///
    /// # Panics
    ///
    /// Panics if the spin count differs from `N`.
    pub fn decode(&self, spins: &SpinVector) -> ColumnSetting {
        assert_eq!(spins.len(), self.num_spins(), "spin count mismatch");
        ColumnSetting {
            v1: BitVec::from_fn(self.rows, |i| spins.bit(self.v1(i))),
            v2: BitVec::from_fn(self.rows, |i| spins.bit(self.v2(i))),
            t: BitVec::from_fn(self.cols, |j| spins.bit(self.t(j))),
        }
    }

    /// Encodes a column setting as spins.
    ///
    /// # Panics
    ///
    /// Panics if the setting's shape disagrees with the layout.
    pub fn encode(&self, setting: &ColumnSetting) -> SpinVector {
        assert_eq!(setting.rows(), self.rows, "row count mismatch");
        assert_eq!(setting.cols(), self.cols, "column count mismatch");
        SpinVector::from_bools((0..self.num_spins()).map(|s| {
            if s < self.rows {
                setting.v1.get(s)
            } else if s < 2 * self.rows {
                setting.v2.get(s - self.rows)
            } else {
                setting.t.get(s - 2 * self.rows)
            }
        }))
    }
}

/// A column-based core COP in cell-linear form (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnCop {
    rows: usize,
    cols: usize,
    /// Row-major `W_ij`: the coefficient of `Ô_ij` in the objective.
    weights: Vec<f64>,
    /// Constant completing the objective to the true ER/MED value.
    constant: f64,
}

impl ColumnCop {
    /// Builds a COP directly from per-cell weights and a constant.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or a dimension is zero.
    pub fn from_weights(rows: usize, cols: usize, weights: Vec<f64>, constant: f64) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weights.len(), rows * cols, "weight count mismatch");
        ColumnCop {
            rows,
            cols,
            weights,
            constant,
        }
    }

    /// The **separate-mode** COP (Eq. 7): minimize the component's error
    /// rate `Σ p_ij |Ô_ij − O_ij|`, i.e. `W_ij = p_ij(1 − 2O_ij)` and
    /// constant `Σ p_ij O_ij`.
    pub fn separate(matrix: &BooleanMatrix, partition: &Partition, dist: &InputDist) -> Self {
        let (r, c) = (matrix.rows(), matrix.cols());
        let n = partition.inputs();
        let mut weights = vec![0.0; r * c];
        let mut constant = 0.0;
        for i in 0..r {
            for j in 0..c {
                let p = dist.prob(partition.compose(i, j), n);
                if matrix.get(i, j) {
                    weights[i * c + j] = -p;
                    constant += p;
                } else {
                    weights[i * c + j] = p;
                }
            }
        }
        ColumnCop {
            rows: r,
            cols: c,
            weights,
            constant,
        }
    }

    /// The **joint-mode** COP (Eqs. 10–16): minimize the whole-word MED
    /// with every other component fixed. `offsets[i][j]` must hold
    /// `D_kij = Σ_{l≠k} 2^{l} Ô_l − Σ_l 2^{l} O_l` (0-based `l`, so
    /// component `k` carries weight `2^k`) for the input pattern of cell
    /// `(i, j)`; `probs[i][j]` the pattern probability.
    ///
    /// The exact case split of Eqs. 13/15 is applied per cell:
    /// `−2^k ≤ D ≤ 0 ⟹ (q, const) = (2^k + 2D, −D)`, otherwise
    /// `(2^k·sgn D, |D|)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree or `weight_exp > 62`.
    pub fn joint(
        rows: usize,
        cols: usize,
        weight_exp: u32,
        offsets: &[i64],
        probs: &[f64],
    ) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(offsets.len(), rows * cols, "offset count mismatch");
        assert_eq!(probs.len(), rows * cols, "probability count mismatch");
        assert!(weight_exp <= 62, "weight exponent too large");
        let two_k = 1i64 << weight_exp;
        let mut weights = vec![0.0; rows * cols];
        let mut constant = 0.0;
        for idx in 0..rows * cols {
            let d = offsets[idx];
            let p = probs[idx];
            let (q, c0) = if -two_k <= d && d <= 0 {
                ((two_k + 2 * d) as f64, (-d) as f64)
            } else {
                ((two_k * d.signum()) as f64, d.abs() as f64)
            };
            weights[idx] = p * q;
            constant += p * c0;
        }
        ColumnCop {
            rows,
            cols,
            weights,
            constant,
        }
    }

    /// Number of rows `r`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `c`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The weight `W_ij`.
    #[inline]
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.cols + j]
    }

    /// The objective constant.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// All weights, row-major (for converting to other COP forms).
    pub fn weights_vec(&self) -> Vec<f64> {
        self.weights.clone()
    }

    /// Borrowed view of the row-major weights (no clone).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Spread of the weight matrix, `max(W) − min(W)`, computed in one
    /// pass — the COP shape feature reported alongside portfolio winner
    /// attributions. `0.0` for a COP with fewer than two cells.
    pub fn weight_spread(&self) -> f64 {
        if self.weights.len() < 2 {
            return 0.0;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &self.weights {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }

    /// The spin layout of the Ising encoding.
    pub fn layout(&self) -> SpinLayout {
        SpinLayout {
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Objective value of a setting: `Σ W_ij·Ô_ij + constant`. In separate
    /// mode this is the component ER; in joint mode the whole-word MED.
    ///
    /// # Panics
    ///
    /// Panics if the setting's shape disagrees.
    pub fn objective(&self, setting: &ColumnSetting) -> f64 {
        assert_eq!(setting.rows(), self.rows, "row count mismatch");
        assert_eq!(setting.cols(), self.cols, "column count mismatch");
        let mut total = self.constant;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if setting.value(i, j) {
                    total += self.weight(i, j);
                }
            }
        }
        total
    }

    /// The exact second-order Ising encoding (Eq. 9 / Eq. 16): the returned
    /// problem's energy at [`SpinLayout::encode`]`(s)` equals
    /// [`ColumnCop::objective`]`(s)` for every setting `s`.
    pub fn to_ising(&self) -> IsingProblem {
        let layout = self.layout();
        let mut b = IsingBuilder::new(layout.num_spins());
        // Ô = 1/2 + (V̄1 + V̄2 − T̄V̄1 + T̄V̄2)/4 per cell; energy terms:
        //   +W/4 · V̄1ᵢ and +W/4 · V̄2ᵢ  → biases −W/4
        //   −W/4 · T̄ⱼV̄1ᵢ               → coupling J(T,V1) = +W/4
        //   +W/4 · T̄ⱼV̄2ᵢ               → coupling J(T,V2) = −W/4
        // plus constant W/2 per cell.
        let mut offset = self.constant;
        for i in 0..self.rows {
            let mut row_sum = 0.0;
            for j in 0..self.cols {
                let w = self.weight(i, j);
                if w != 0.0 {
                    b.add_coupling(layout.t(j), layout.v1(i), w / 4.0);
                    b.add_coupling(layout.t(j), layout.v2(i), -w / 4.0);
                }
                row_sum += w;
            }
            b.add_bias(layout.v1(i), -row_sum / 4.0);
            b.add_bias(layout.v2(i), -row_sum / 4.0);
            offset += row_sum / 2.0;
        }
        b.add_offset(offset);
        b.build()
    }

    /// Theorem 3: the optimal type vector for fixed column patterns — per
    /// column, pick the pattern with the smaller cost.
    pub fn optimal_t(&self, v1: &BitVec, v2: &BitVec) -> BitVec {
        assert_eq!(v1.len(), self.rows, "v1 length mismatch");
        assert_eq!(v2.len(), self.rows, "v2 length mismatch");
        BitVec::from_fn(self.cols, |j| {
            let mut cost1 = 0.0;
            let mut cost2 = 0.0;
            for i in 0..self.rows {
                let w = self.weight(i, j);
                if v1.get(i) {
                    cost1 += w;
                }
                if v2.get(i) {
                    cost2 += w;
                }
            }
            cost2 < cost1
        })
    }

    /// The optimal column patterns for a fixed type vector: per row,
    /// `V₁ᵢ = 1` iff the summed weight over type-0 columns is negative
    /// (and likewise `V₂` over type-1 columns).
    pub fn optimal_v(&self, t: &BitVec) -> (BitVec, BitVec) {
        assert_eq!(t.len(), self.cols, "t length mismatch");
        let mut v1 = BitVec::zeros(self.rows);
        let mut v2 = BitVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut s1 = 0.0;
            let mut s2 = 0.0;
            for j in 0..self.cols {
                let w = self.weight(i, j);
                if t.get(j) {
                    s2 += w;
                } else {
                    s1 += w;
                }
            }
            if s1 < 0.0 {
                v1.set(i, true);
            }
            if s2 < 0.0 {
                v2.set(i, true);
            }
        }
        (v1, v2)
    }

    /// Alternating minimization (binary 2-means on columns): from an
    /// initial type vector, alternate [`optimal_v`](Self::optimal_v) and
    /// [`optimal_t`](Self::optimal_t) until a fixpoint (or `max_rounds`).
    /// Returns a local optimum.
    pub fn alternate(&self, mut t: BitVec, max_rounds: usize) -> ColumnSetting {
        assert_eq!(t.len(), self.cols, "t length mismatch");
        let mut v1 = BitVec::zeros(self.rows);
        let mut v2 = BitVec::zeros(self.rows);
        for _ in 0..max_rounds.max(1) {
            let (nv1, nv2) = self.optimal_v(&t);
            let nt = self.optimal_t(&nv1, &nv2);
            let converged = nt == t && nv1 == v1 && nv2 == v2;
            v1 = nv1;
            v2 = nv2;
            t = nt;
            if converged {
                break;
            }
        }
        ColumnSetting { v1, v2, t }
    }

    /// Exhaustive search over all `2^c` type vectors (each with optimal
    /// patterns): the exact optimum, for validation on small instances.
    ///
    /// # Panics
    ///
    /// Panics if `c > 20`.
    pub fn solve_exhaustive(&self) -> ColumnSetting {
        assert!(self.cols <= 20, "exhaustive limited to 20 columns");
        let mut best: Option<(f64, ColumnSetting)> = None;
        for mask in 0u64..(1 << self.cols) {
            let t = BitVec::from_u64(mask, self.cols);
            let (v1, v2) = self.optimal_v(&t);
            let s = ColumnSetting { v1, v2, t };
            let obj = self.objective(&s);
            if best.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                best = Some((obj, s));
            }
        }
        best.expect("cols >= 1").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::TruthTable;
    use adis_ising::solve_exhaustive;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn small_cop(seed: u64, rows: usize, cols: usize) -> ColumnCop {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        ColumnCop::from_weights(rows, cols, weights, rng.gen_range(0.0..2.0))
    }

    fn random_setting(seed: u64, rows: usize, cols: usize) -> ColumnSetting {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ColumnSetting {
            v1: BitVec::from_fn(rows, |_| rng.gen_bool(0.5)),
            v2: BitVec::from_fn(rows, |_| rng.gen_bool(0.5)),
            t: BitVec::from_fn(cols, |_| rng.gen_bool(0.5)),
        }
    }

    #[test]
    fn separate_objective_is_error_rate() {
        // g = x0 over a 2+2 partition; a setting equal to the matrix has ER 0.
        let g = TruthTable::from_fn(4, |p| p & 1 == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let m = BooleanMatrix::build(&g, &w);
        let cop = ColumnCop::separate(&m, &w, &InputDist::Uniform);
        let exact = adis_boolfn::find_column_setting(&m).expect("x0 decomposes");
        assert!(cop.objective(&exact).abs() < 1e-12);
        // Flipping one cell's worth: complement V1 entirely → ER = fraction
        // of type-0 columns.
        let mut bad = exact.clone();
        bad.v1 = bad.v1.complement();
        let type0 = (0..4).filter(|&j| !bad.t.get(j)).count();
        let expected = type0 as f64 * 4.0 / 16.0;
        assert!((cop.objective(&bad) - expected).abs() < 1e-12);
    }

    #[test]
    fn ising_energy_equals_objective_everywhere() {
        for seed in 0..5 {
            let cop = small_cop(seed, 3, 4);
            let ising = cop.to_ising();
            let layout = cop.layout();
            for s_seed in 0..20 {
                let s = random_setting(seed * 100 + s_seed, 3, 4);
                let spins = layout.encode(&s);
                assert!(
                    (ising.energy(&spins) - cop.objective(&s)).abs() < 1e-9,
                    "seed {seed}/{s_seed}"
                );
            }
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let layout = SpinLayout { rows: 3, cols: 5 };
        let s = random_setting(7, 3, 5);
        assert_eq!(layout.decode(&layout.encode(&s)), s);
    }

    #[test]
    fn theorem3_is_optimal() {
        // For fixed (V1, V2), optimal_t must beat or tie every other T.
        for seed in 0..5 {
            let cop = small_cop(seed, 4, 6);
            let s = random_setting(seed + 50, 4, 6);
            let t_opt = cop.optimal_t(&s.v1, &s.v2);
            let base = cop.objective(&ColumnSetting {
                v1: s.v1.clone(),
                v2: s.v2.clone(),
                t: t_opt.clone(),
            });
            for mask in 0u64..64 {
                let t = BitVec::from_u64(mask, 6);
                let obj = cop.objective(&ColumnSetting {
                    v1: s.v1.clone(),
                    v2: s.v2.clone(),
                    t,
                });
                assert!(base <= obj + 1e-12, "seed {seed}, mask {mask}");
            }
        }
    }

    #[test]
    fn optimal_v_is_optimal() {
        for seed in 0..5 {
            let cop = small_cop(seed, 4, 4);
            let t = random_setting(seed + 11, 4, 4).t;
            let (v1, v2) = cop.optimal_v(&t);
            let base = cop.objective(&ColumnSetting {
                v1: v1.clone(),
                v2: v2.clone(),
                t: t.clone(),
            });
            for m1 in 0u64..16 {
                for m2 in 0u64..16 {
                    let obj = cop.objective(&ColumnSetting {
                        v1: BitVec::from_u64(m1, 4),
                        v2: BitVec::from_u64(m2, 4),
                        t: t.clone(),
                    });
                    assert!(base <= obj + 1e-12);
                }
            }
        }
    }

    #[test]
    fn alternate_never_worse_than_start() {
        for seed in 0..5 {
            let cop = small_cop(seed, 5, 6);
            let t0 = random_setting(seed + 3, 5, 6).t;
            let start = {
                let (v1, v2) = cop.optimal_v(&t0);
                cop.objective(&ColumnSetting { v1, v2, t: t0.clone() })
            };
            let s = cop.alternate(t0, 50);
            assert!(cop.objective(&s) <= start + 1e-12);
        }
    }

    #[test]
    fn exhaustive_is_global_optimum() {
        for seed in 0..3 {
            let cop = small_cop(seed, 3, 5);
            let best = cop.solve_exhaustive();
            let best_obj = cop.objective(&best);
            // Compare against brute force over the full Ising model.
            let ground = solve_exhaustive(&cop.to_ising());
            assert!(
                (best_obj - ground.energy).abs() < 1e-9,
                "seed {seed}: {} vs ising {}",
                best_obj,
                ground.energy
            );
        }
    }

    #[test]
    fn weight_spread_matches_fold_definition() {
        for seed in 0..4 {
            let cop = small_cop(seed, 3, 5);
            let w = cop.weights();
            let expect = w.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
                - w.iter().fold(f64::INFINITY, |m, &v| m.min(v));
            assert_eq!(cop.weight_spread(), expect, "seed {seed}");
        }
        assert_eq!(ColumnCop::from_weights(1, 1, vec![3.5], 0.0).weight_spread(), 0.0);
    }

    #[test]
    fn joint_case_split_matches_direct_ed() {
        // For every (D, Ô) pair the linearized cost must equal
        // |2^k·Ô + D|·p with p = 1.
        let k = 2u32; // weight 4
        for d in -10i64..=10 {
            let cop = ColumnCop::joint(1, 1, k, &[d], &[1.0]);
            for o_hat in [false, true] {
                let s = ColumnSetting {
                    v1: BitVec::from_bools([o_hat]),
                    v2: BitVec::from_bools([o_hat]),
                    t: BitVec::zeros(1),
                };
                let expect = ((1i64 << k) * i64::from(o_hat) + d).abs() as f64;
                let got = cop.objective(&s);
                assert!(
                    (got - expect).abs() < 1e-12,
                    "D = {d}, Ô = {o_hat}: got {got}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn paper_example3_ed_value() {
        // Example 3: ED_213 = |2·Ô + D| with D = (1·0 + 4·0) − (0 + 2 + 4) = −6.
        let cop = ColumnCop::joint(1, 1, 1, &[-6], &[1.0]);
        let at = |o: bool| {
            cop.objective(&ColumnSetting {
                v1: BitVec::from_bools([o]),
                v2: BitVec::from_bools([o]),
                t: BitVec::zeros(1),
            })
        };
        assert!((at(false) - 6.0).abs() < 1e-12);
        assert!((at(true) - 4.0).abs() < 1e-12);
    }
}
