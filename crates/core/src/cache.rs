//! COP memoization for the sweep engine.
//!
//! A decomposition run solves one core COP per `(partition, output, round)`
//! cell, and many of those cells are duplicates: in separate mode the COP
//! is a pure function of the component's Boolean matrix, so the same
//! partition re-examined in a later round — or two outputs that share a
//! matrix — re-poses a COP that has already been solved. The engine keys
//! each solve by the exact COP content ([`MemoKey`]) and answers repeats
//! from a [`CopCache`].
//!
//! Correctness rests on two invariants:
//!
//! 1. **Keys are content-exact.** Equal keys imply bit-identical COPs
//!    (same weights to the last bit), so a cached setting/objective is
//!    exactly what re-solving would examine. The column-multiset
//!    fingerprint carried by the matrix key is a *hash input*, never a
//!    substitute for content equality.
//! 2. **Seeds are content-derived.** The per-solve RNG seed is a hash of
//!    the key (mixed with the framework seed), not of the cell's grid
//!    position. Two cells with equal keys would therefore run the *same*
//!    solve and get the same answer — which is why serving one from the
//!    cache is invisible: cache-on and cache-off runs are bit-identical
//!    by construction, and so are parallel and sequential sweeps.

use crate::cop_solver::CopResult;
use adis_boolfn::{BitVec, BooleanMatrix, ColumnSetting};
use crate::ColumnCop;
use std::collections::HashMap;
use std::sync::Mutex;

/// Content-exact identity of a core COP within one decomposition run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum MemoKey {
    /// Separate mode under the uniform input distribution: the COP's
    /// weights are `±2^{-n}` fully determined by the Boolean matrix, so
    /// the matrix content (plus the input count fixing the scale) is the
    /// whole COP. Cheaper to build and hash than the weight vector.
    Matrix {
        /// Matrix rows `r`.
        rows: usize,
        /// Matrix columns `c`.
        cols: usize,
        /// Input count `n` (fixes the `2^{-n}` weight scale).
        inputs: u32,
        /// Column-multiset fingerprint — pre-mixed hash material.
        fingerprint: u64,
        /// Full row-major matrix content (the actual equality witness).
        bits: BitVec,
    },
    /// Everything else (joint mode, explicit distributions): the exact
    /// weight vector, bit for bit. Joint-mode weights fold in the
    /// per-cell offsets `D_kij` against the evolving approximation, so
    /// two cells only share a key when that whole context coincides.
    Weights {
        /// COP rows `r`.
        rows: usize,
        /// COP columns `c`.
        cols: usize,
        /// Canonical bits of each weight, row-major (see [`canonical_bits`]:
        /// `-0.0` and NaN payloads are normalized before keying).
        weight_bits: Vec<u64>,
        /// Canonical bits of the objective constant.
        constant_bits: u64,
    },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Canonical bit pattern of a COP weight/constant for keying.
///
/// `-0.0` folds onto `0.0`: the two compare equal everywhere the solvers
/// branch (`>=`, `<`, `total_cmp` never separates settings by it), so COPs
/// differing only in zero signs are behaviorally identical — raw `to_bits`
/// would split them into spurious misses. A `-0.0` weight arises naturally,
/// e.g. from `p·(1 − 2·O) = −0.0` when an explicit distribution assigns a
/// cell probability 0. Every NaN likewise folds onto one canonical pattern:
/// a NaN weight poisons any objective it touches, but it must not silently
/// fragment the memo table (NaN payloads carry no COP content).
fn canonical_bits(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

impl MemoKey {
    /// Key for a separate-mode, uniform-distribution COP: the matrix is
    /// the COP.
    pub(crate) fn from_matrix(matrix: &BooleanMatrix, inputs: u32) -> Self {
        MemoKey::Matrix {
            rows: matrix.rows(),
            cols: matrix.cols(),
            inputs,
            fingerprint: matrix.column_multiset_fingerprint(),
            bits: matrix.bits().clone(),
        }
    }

    /// Key from the exact weight content of an already-built COP.
    pub(crate) fn from_cop(cop: &ColumnCop) -> Self {
        MemoKey::Weights {
            rows: cop.rows(),
            cols: cop.cols(),
            weight_bits: cop.weights().iter().map(|&w| canonical_bits(w)).collect(),
            constant_bits: canonical_bits(cop.constant()),
        }
    }

    /// The solver seed for this COP: FNV-1a over the key's content, mixed
    /// with the framework seed. Content-derived (never positional), so
    /// identical COPs are solved identically wherever they appear in the
    /// grid — the property the cache's transparency rests on.
    pub(crate) fn solver_seed(&self, base: u64) -> u64 {
        let mut h = FNV_OFFSET ^ base.wrapping_mul(FNV_PRIME);
        let mut feed = |v: u64| h = (h ^ v).wrapping_mul(FNV_PRIME);
        match self {
            MemoKey::Matrix {
                rows,
                cols,
                inputs,
                fingerprint,
                bits,
            } => {
                feed(1);
                feed(*rows as u64);
                feed(*cols as u64);
                feed(u64::from(*inputs));
                feed(*fingerprint);
                let mut word = 0u64;
                for i in 0..bits.len() {
                    if bits.get(i) {
                        word |= 1 << (i % 64);
                    }
                    if i % 64 == 63 {
                        feed(word);
                        word = 0;
                    }
                }
                if bits.len() % 64 != 0 {
                    feed(word);
                }
            }
            MemoKey::Weights {
                rows,
                cols,
                weight_bits,
                constant_bits,
            } => {
                feed(2);
                feed(*rows as u64);
                feed(*cols as u64);
                for &w in weight_bits {
                    feed(w);
                }
                feed(*constant_bits);
            }
        }
        h
    }
}

/// A memoized COP answer (what the engine needs to rank candidates).
#[derive(Debug, Clone)]
pub(crate) struct CachedCop {
    /// The solver's best setting.
    pub(crate) setting: ColumnSetting,
    /// Its objective.
    pub(crate) objective: f64,
}

/// The per-run memo table. Shared across the rayon sweep behind a mutex —
/// contention is negligible next to a COP solve, and a miss holds the lock
/// only for lookup/insert, never for the solve itself.
#[derive(Debug)]
pub(crate) struct CopCache {
    enabled: bool,
    map: Mutex<HashMap<MemoKey, CachedCop>>,
}

impl CopCache {
    /// A cache; when `enabled` is false every lookup misses and every
    /// insert is dropped (the `--no-cache` escape hatch).
    pub(crate) fn new(enabled: bool) -> Self {
        CopCache {
            enabled,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The memoized answer for `key`, if any.
    pub(crate) fn lookup(&self, key: &MemoKey) -> Option<CachedCop> {
        if !self.enabled {
            return None;
        }
        let map = self
            .map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.get(key).cloned()
    }

    /// Memoizes `result` under `key` (first writer wins; concurrent
    /// duplicate solves produce identical results anyway, because seeds
    /// are content-derived).
    pub(crate) fn insert(&self, key: MemoKey, result: &CopResult) {
        if !self.enabled {
            return;
        }
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.entry(key).or_insert_with(|| CachedCop {
            setting: result.setting.clone(),
            objective: result.objective,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::{InputDist, Partition, TruthTable};

    fn matrix(f: impl Fn(u64) -> bool) -> BooleanMatrix {
        let g = TruthTable::from_fn(4, f);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        BooleanMatrix::build(&g, &w)
    }

    #[test]
    fn identical_content_means_identical_key_and_seed() {
        let a = matrix(|p| p % 3 == 0);
        let b = matrix(|p| p % 3 == 0);
        let ka = MemoKey::from_matrix(&a, 4);
        let kb = MemoKey::from_matrix(&b, 4);
        assert_eq!(ka, kb);
        assert_eq!(ka.solver_seed(7), kb.solver_seed(7));

        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let ca = ColumnCop::separate(&a, &w, &InputDist::Uniform);
        let cb = ColumnCop::separate(&b, &w, &InputDist::Uniform);
        assert_eq!(MemoKey::from_cop(&ca), MemoKey::from_cop(&cb));
    }

    #[test]
    fn different_content_means_different_key_and_seed() {
        let a = MemoKey::from_matrix(&matrix(|p| p % 3 == 0), 4);
        let b = MemoKey::from_matrix(&matrix(|p| p % 5 == 0), 4);
        assert_ne!(a, b);
        assert_ne!(a.solver_seed(7), b.solver_seed(7));
        // Same matrix, different input count: different COP scale.
        let c = MemoKey::from_matrix(&matrix(|p| p % 3 == 0), 5);
        assert_ne!(a, c);
        // Framework seed participates.
        assert_ne!(a.solver_seed(7), a.solver_seed(8));
    }

    #[test]
    fn zero_sign_and_nan_payload_do_not_split_keys() {
        // -0.0 vs 0.0 weights are behaviorally identical COPs; the keys
        // (and therefore the content-derived seeds) must coincide.
        let pos = ColumnCop::from_weights(2, 2, vec![0.0, 0.5, -0.25, 0.0], 0.0);
        let neg = ColumnCop::from_weights(2, 2, vec![-0.0, 0.5, -0.25, -0.0], -0.0);
        let kp = MemoKey::from_cop(&pos);
        let kn = MemoKey::from_cop(&neg);
        assert_eq!(kp, kn);
        assert_eq!(kp.solver_seed(9), kn.solver_seed(9));

        // One entry serves both spellings.
        let cache = CopCache::new(true);
        let result = CopResult {
            setting: pos.solve_exhaustive(),
            objective: pos.objective(&pos.solve_exhaustive()),
            sb_iterations: 0,
            bnb_nodes: 0,
        };
        cache.insert(kp, &result);
        assert!(cache.lookup(&kn).is_some(), "-0.0 grid must hit the 0.0 entry");

        // NaNs with different payloads normalize to one key.
        let nan_a = ColumnCop::from_weights(1, 2, vec![f64::NAN, 1.0], 0.0);
        let nan_b =
            ColumnCop::from_weights(1, 2, vec![f64::from_bits(0x7ff8_dead_beef_0001), 1.0], 0.0);
        assert_eq!(MemoKey::from_cop(&nan_a), MemoKey::from_cop(&nan_b));
        // And the canonical form never collides with a real weight.
        let real = ColumnCop::from_weights(1, 2, vec![1.0, 1.0], 0.0);
        assert_ne!(MemoKey::from_cop(&nan_a), MemoKey::from_cop(&real));
    }

    #[test]
    fn cache_round_trips_and_respects_disable() {
        let m = matrix(|p| p & 1 == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let cop = ColumnCop::separate(&m, &w, &InputDist::Uniform);
        let key = MemoKey::from_matrix(&m, 4);
        let result = CopResult {
            setting: cop.solve_exhaustive(),
            objective: 0.25,
            sb_iterations: 12,
            bnb_nodes: 0,
        };

        let on = CopCache::new(true);
        assert!(on.lookup(&key).is_none());
        on.insert(key.clone(), &result);
        let hit = on.lookup(&key).expect("cached");
        assert_eq!(hit.setting, result.setting);
        assert_eq!(hit.objective, result.objective);

        let off = CopCache::new(false);
        off.insert(key.clone(), &result);
        assert!(off.lookup(&key).is_none());
    }
}
