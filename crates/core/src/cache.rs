//! COP memoization: the per-run memo table and the sharded cross-request
//! cache behind it.
//!
//! A decomposition run solves one core COP per `(partition, output, round)`
//! cell, and many of those cells are duplicates: in separate mode the COP
//! is a pure function of the component's Boolean matrix, so the same
//! partition re-examined in a later round — or two outputs that share a
//! matrix — re-poses a COP that has already been solved. The engine keys
//! each solve by the exact COP content ([`MemoKey`]) and answers repeats
//! from a [`CopCache`].
//!
//! Beyond one run, the same observation holds *across* runs: a service
//! decomposing many related truth tables re-poses the same sub-COPs
//! request after request. [`SharedCopCache`] is the cross-request tier — a
//! sharded, bounded, concurrent clock cache that any number of
//! [`Framework`](crate::Framework) runs (on any number of threads) can
//! share via [`Framework::shared_cache`](crate::Framework::shared_cache).
//!
//! Correctness rests on three invariants:
//!
//! 1. **Keys are content-exact.** Equal keys imply bit-identical COPs
//!    (same weights to the last bit), so a cached setting/objective is
//!    exactly what re-solving would examine. The column-multiset
//!    fingerprint carried by the matrix key is a *hash input*, never a
//!    substitute for content equality.
//! 2. **Seeds are content-derived.** The per-solve RNG seed is a hash of
//!    the key (mixed with the framework seed), not of the cell's grid
//!    position. Two cells with equal keys would therefore run the *same*
//!    solve and get the same answer — which is why serving one from the
//!    cache is invisible: cache-on and cache-off runs are bit-identical
//!    by construction, and so are parallel and sequential sweeps.
//! 3. **Cross-request entries are namespaced by run configuration.** A
//!    shared entry is only valid for a run that would recompute it
//!    identically, so the shared key folds in the framework seed and the
//!    solver's configuration fingerprint
//!    ([`CopSolver::fingerprint`](crate::CopSolver::fingerprint)) next to
//!    the COP content. Eviction is therefore also invisible: an evicted
//!    entry is simply recomputed, by construction to the same bits.

use crate::cop_solver::CopOutcome;
use adis_boolfn::{BitVec, BooleanMatrix, ColumnSetting};
use crate::ColumnCop;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Content-exact identity of a core COP within one decomposition run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum MemoKey {
    /// Separate mode under the uniform input distribution: the COP's
    /// weights are `±2^{-n}` fully determined by the Boolean matrix, so
    /// the matrix content (plus the input count fixing the scale) is the
    /// whole COP. Cheaper to build and hash than the weight vector.
    Matrix {
        /// Matrix rows `r`.
        rows: usize,
        /// Matrix columns `c`.
        cols: usize,
        /// Input count `n` (fixes the `2^{-n}` weight scale).
        inputs: u32,
        /// Column-multiset fingerprint — pre-mixed hash material.
        fingerprint: u64,
        /// Full row-major matrix content (the actual equality witness).
        bits: BitVec,
    },
    /// Everything else (joint mode, explicit distributions): the exact
    /// weight vector, bit for bit. Joint-mode weights fold in the
    /// per-cell offsets `D_kij` against the evolving approximation, so
    /// two cells only share a key when that whole context coincides.
    Weights {
        /// COP rows `r`.
        rows: usize,
        /// COP columns `c`.
        cols: usize,
        /// Canonical bits of each weight, row-major (see [`canonical_bits`]:
        /// `-0.0` and NaN payloads are normalized before keying).
        weight_bits: Vec<u64>,
        /// Canonical bits of the objective constant.
        constant_bits: u64,
    },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Canonical bit pattern of a COP weight/constant for keying.
///
/// `-0.0` folds onto `0.0`: the two compare equal everywhere the solvers
/// branch (`>=`, `<`, `total_cmp` never separates settings by it), so COPs
/// differing only in zero signs are behaviorally identical — raw `to_bits`
/// would split them into spurious misses. A `-0.0` weight arises naturally,
/// e.g. from `p·(1 − 2·O) = −0.0` when an explicit distribution assigns a
/// cell probability 0. Every NaN likewise folds onto one canonical pattern:
/// a NaN weight poisons any objective it touches, but it must not silently
/// fragment the memo table (NaN payloads carry no COP content).
fn canonical_bits(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

impl MemoKey {
    /// Key for a separate-mode, uniform-distribution COP: the matrix is
    /// the COP.
    pub(crate) fn from_matrix(matrix: &BooleanMatrix, inputs: u32) -> Self {
        MemoKey::Matrix {
            rows: matrix.rows(),
            cols: matrix.cols(),
            inputs,
            fingerprint: matrix.column_multiset_fingerprint(),
            bits: matrix.bits().clone(),
        }
    }

    /// Key from the exact weight content of an already-built COP.
    pub(crate) fn from_cop(cop: &ColumnCop) -> Self {
        MemoKey::Weights {
            rows: cop.rows(),
            cols: cop.cols(),
            weight_bits: cop.weights().iter().map(|&w| canonical_bits(w)).collect(),
            constant_bits: canonical_bits(cop.constant()),
        }
    }

    /// The solver seed for this COP: FNV-1a over the key's content, mixed
    /// with the framework seed. Content-derived (never positional), so
    /// identical COPs are solved identically wherever they appear in the
    /// grid — the property the cache's transparency rests on.
    pub(crate) fn solver_seed(&self, base: u64) -> u64 {
        let mut h = FNV_OFFSET ^ base.wrapping_mul(FNV_PRIME);
        let mut feed = |v: u64| h = (h ^ v).wrapping_mul(FNV_PRIME);
        match self {
            MemoKey::Matrix {
                rows,
                cols,
                inputs,
                fingerprint,
                bits,
            } => {
                feed(1);
                feed(*rows as u64);
                feed(*cols as u64);
                feed(u64::from(*inputs));
                feed(*fingerprint);
                let mut word = 0u64;
                for i in 0..bits.len() {
                    if bits.get(i) {
                        word |= 1 << (i % 64);
                    }
                    if i % 64 == 63 {
                        feed(word);
                        word = 0;
                    }
                }
                if bits.len() % 64 != 0 {
                    feed(word);
                }
            }
            MemoKey::Weights {
                rows,
                cols,
                weight_bits,
                constant_bits,
            } => {
                feed(2);
                feed(*rows as u64);
                feed(*cols as u64);
                for &w in weight_bits {
                    feed(w);
                }
                feed(*constant_bits);
            }
        }
        h
    }
}

/// A memoized COP answer (what the engine needs to rank candidates).
#[derive(Debug, Clone)]
pub(crate) struct CachedCop {
    /// The solver's best setting.
    pub(crate) setting: ColumnSetting,
    /// Its objective.
    pub(crate) objective: f64,
}

/// Shape of a [`SharedCopCache`]: shard count and total capacity.
///
/// The capacity is rounded up to a whole number of entries per shard, so
/// the effective bound is `shards * ceil(capacity / shards)` — read it back
/// with [`SharedCopCache::capacity`]. Zero values are clamped to 1.
///
/// # Examples
///
/// ```
/// use adis_core::{CacheConfig, SharedCopCache};
///
/// // The default: 16 shards, 65 536 entries.
/// let cache = SharedCopCache::new(CacheConfig::default());
/// assert_eq!(cache.capacity(), 65_536);
///
/// // A deliberately tiny cache still rounds to one entry per shard.
/// let tiny = SharedCopCache::new(CacheConfig { shards: 4, capacity: 3 });
/// assert_eq!(tiny.capacity(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independently locked shards. More shards mean less lock
    /// contention between concurrent requests; 16 is plenty for typical
    /// worker counts.
    pub shards: usize,
    /// Total entry bound across all shards. One entry stores one COP
    /// answer (a column setting plus its objective); see `docs/SERVING.md`
    /// for sizing guidance.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity: 1 << 16,
        }
    }
}

/// A point-in-time snapshot of a [`SharedCopCache`]'s counters.
///
/// Counters are cumulative since construction (or the last
/// [`SharedCopCache::clear`], which resets none of them — it only drops
/// entries). `hits + misses` equals the number of lookups ever made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// New entries stored (re-inserts of an existing key don't count).
    pub insertions: u64,
    /// Entries displaced by the clock hand to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`; 0 when no
    /// lookup has happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Full identity of a cross-request cache entry: COP content plus the run
/// configuration that would recompute it (framework seed and solver
/// fingerprint). Two runs share an entry only when re-solving would
/// provably produce the same bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SharedKey {
    solver_fingerprint: u64,
    framework_seed: u64,
    key: MemoKey,
}

/// One resident entry in a shard.
struct Slot {
    key: SharedKey,
    value: CachedCop,
    /// Second-chance bit: set on every hit, cleared (once) by the clock
    /// hand before the entry becomes evictable.
    referenced: bool,
}

/// One independently locked portion of the cache.
struct Shard {
    map: HashMap<SharedKey, usize>,
    slots: Vec<Slot>,
    hand: usize,
}

/// A sharded, bounded, concurrent COP cache shared across decomposition
/// runs.
///
/// Cloning the handle is cheap and shares the same storage — hand one
/// clone to every [`Framework`](crate::Framework) (or server worker) that
/// should pool its COP answers:
///
/// ```
/// use adis_boolfn::MultiOutputFn;
/// use adis_core::{CacheConfig, Framework, Mode, SharedCopCache};
///
/// let cache = SharedCopCache::new(CacheConfig::default());
/// let f = MultiOutputFn::from_word_fn(6, 4, |p| (p * 3) & 0xF);
/// let fw = Framework::new(Mode::Separate, 3)
///     .partitions(4)
///     .shared_cache(cache.clone());
///
/// let first = fw.decompose(&f);
/// let second = fw.decompose(&f); // answered from the shared cache
/// assert_eq!(first.approx, second.approx);
/// assert!(second.cache_hits > 0);
/// assert!(cache.stats().hits > 0, "second run hit the shared tier");
/// ```
///
/// # Eviction
///
/// Each shard runs the clock (second-chance) policy: a hit sets the
/// entry's reference bit; the insert path's clock hand clears reference
/// bits until it finds a clear one, whose slot it reuses. This
/// approximates LRU with O(1) lookups and no per-hit bookkeeping beyond a
/// flag write.
///
/// # Transparency
///
/// Hits are bit-identical to recomputation, and so are evictions (the
/// entry is simply recomputed — see the module docs for why). Sharing a
/// cache between runs with *different* configurations is safe by
/// namespacing: entries carry the framework seed and the solver's
/// [`fingerprint`](crate::CopSolver::fingerprint), so a run never sees an
/// entry some other configuration computed.
#[derive(Debug, Clone)]
pub struct SharedCopCache {
    inner: Arc<Inner>,
}

struct Inner {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCopCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .finish_non_exhaustive()
    }
}

impl SharedCopCache {
    /// A cache with the given shape (see [`CacheConfig`] for rounding).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard_capacity = config.capacity.max(1).div_ceil(shards);
        SharedCopCache {
            inner: Arc::new(Inner {
                shards: (0..shards)
                    .map(|_| {
                        Mutex::new(Shard {
                            map: HashMap::new(),
                            slots: Vec::new(),
                            hand: 0,
                        })
                    })
                    .collect(),
                per_shard_capacity,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                insertions: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// The effective total entry bound (capacity rounded up to a whole
    /// number of entries per shard).
    pub fn capacity(&self) -> usize {
        self.inner.per_shard_capacity * self.inner.shards.len()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| lock(s).slots.len()).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            insertions: self.inner.insertions.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            let mut shard = lock(shard);
            shard.map.clear();
            shard.slots.clear();
            shard.hand = 0;
        }
    }

    fn shard_of(&self, key: &SharedKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let i = (hasher.finish() as usize) % self.inner.shards.len();
        &self.inner.shards[i]
    }

    pub(crate) fn get(
        &self,
        solver_fingerprint: u64,
        framework_seed: u64,
        key: &MemoKey,
    ) -> Option<CachedCop> {
        let full = SharedKey {
            solver_fingerprint,
            framework_seed,
            key: key.clone(),
        };
        let mut shard = lock(self.shard_of(&full));
        if let Some(&i) = shard.map.get(&full) {
            shard.slots[i].referenced = true;
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            Some(shard.slots[i].value.clone())
        } else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// First writer wins, like the per-run memo: a concurrent duplicate
    /// solve produced the same bits anyway (content-derived seeds), so
    /// there is nothing to reconcile.
    pub(crate) fn put(
        &self,
        solver_fingerprint: u64,
        framework_seed: u64,
        key: &MemoKey,
        value: CachedCop,
    ) {
        let full = SharedKey {
            solver_fingerprint,
            framework_seed,
            key: key.clone(),
        };
        let mut shard = lock(self.shard_of(&full));
        if shard.map.contains_key(&full) {
            return;
        }
        self.inner.insertions.fetch_add(1, Ordering::Relaxed);
        if shard.slots.len() < self.inner.per_shard_capacity {
            let i = shard.slots.len();
            shard.slots.push(Slot {
                key: full.clone(),
                value,
                referenced: true,
            });
            shard.map.insert(full, i);
            return;
        }
        // Clock sweep: clear reference bits until a clear slot turns up.
        // Terminates within two laps (the first lap clears every bit).
        loop {
            let h = shard.hand;
            shard.hand = (h + 1) % shard.slots.len();
            if shard.slots[h].referenced {
                shard.slots[h].referenced = false;
            } else {
                let old = std::mem::replace(
                    &mut shard.slots[h],
                    Slot {
                        key: full.clone(),
                        value,
                        referenced: true,
                    },
                );
                shard.map.remove(&old.key);
                shard.map.insert(full, h);
                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The cross-request tier of a run's cache, bound to the run's namespace
/// (solver fingerprint + framework seed).
pub(crate) struct SharedRunHandle {
    pub(crate) cache: SharedCopCache,
    pub(crate) solver_fingerprint: u64,
    pub(crate) framework_seed: u64,
}

/// The per-run memo table, with an optional cross-request tier behind it.
/// Shared across the rayon sweep behind a mutex — contention is negligible
/// next to a COP solve, and a miss holds the lock only for lookup/insert,
/// never for the solve itself. The per-run tier is unbounded (a run's
/// working set is the grid it plans); only the shared tier is bounded.
pub(crate) struct CopCache {
    enabled: bool,
    map: Mutex<HashMap<MemoKey, CachedCop>>,
    shared: Option<SharedRunHandle>,
}

impl CopCache {
    /// A per-run cache; when `enabled` is false every lookup misses and
    /// every insert is dropped (the `--no-cache` escape hatch — it also
    /// bypasses any shared tier).
    pub(crate) fn new(enabled: bool) -> Self {
        CopCache {
            enabled,
            map: Mutex::new(HashMap::new()),
            shared: None,
        }
    }

    /// A per-run cache with a cross-request tier behind it.
    pub(crate) fn with_shared(enabled: bool, shared: SharedRunHandle) -> Self {
        CopCache {
            enabled,
            map: Mutex::new(HashMap::new()),
            shared: Some(shared),
        }
    }

    /// The memoized answer for `key`, if any tier has it. A shared-tier
    /// hit is promoted into the per-run table so repeats within the run
    /// stay off the shared locks.
    pub(crate) fn lookup(&self, key: &MemoKey) -> Option<CachedCop> {
        if !self.enabled {
            return None;
        }
        {
            let map = self
                .map
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(hit) = map.get(key) {
                return Some(hit.clone());
            }
        }
        let shared = self.shared.as_ref()?;
        let hit = shared
            .cache
            .get(shared.solver_fingerprint, shared.framework_seed, key)?;
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.entry(key.clone()).or_insert_with(|| hit.clone());
        Some(hit)
    }

    /// Memoizes `result` under `key` in every tier (first writer wins;
    /// concurrent duplicate solves produce identical results anyway,
    /// because seeds are content-derived).
    pub(crate) fn insert(&self, key: MemoKey, result: &CopOutcome) {
        if !self.enabled {
            return;
        }
        let value = CachedCop {
            setting: result.setting.clone(),
            objective: result.objective,
        };
        if let Some(shared) = &self.shared {
            shared.cache.put(
                shared.solver_fingerprint,
                shared.framework_seed,
                &key,
                value.clone(),
            );
        }
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.entry(key).or_insert(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::{InputDist, Partition, TruthTable};

    fn matrix(f: impl Fn(u64) -> bool) -> BooleanMatrix {
        let g = TruthTable::from_fn(4, f);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        BooleanMatrix::build(&g, &w)
    }

    /// A distinct, cheap key for synthetic cache-stress entries.
    fn weight_key(tag: u64) -> MemoKey {
        MemoKey::Weights {
            rows: 1,
            cols: 1,
            weight_bits: vec![tag],
            constant_bits: 0,
        }
    }

    fn dummy_value(objective: f64) -> CachedCop {
        CachedCop {
            setting: ColumnCop::from_weights(1, 1, vec![1.0], 0.0).solve_exhaustive(),
            objective,
        }
    }

    #[test]
    fn identical_content_means_identical_key_and_seed() {
        let a = matrix(|p| p % 3 == 0);
        let b = matrix(|p| p % 3 == 0);
        let ka = MemoKey::from_matrix(&a, 4);
        let kb = MemoKey::from_matrix(&b, 4);
        assert_eq!(ka, kb);
        assert_eq!(ka.solver_seed(7), kb.solver_seed(7));

        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let ca = ColumnCop::separate(&a, &w, &InputDist::Uniform);
        let cb = ColumnCop::separate(&b, &w, &InputDist::Uniform);
        assert_eq!(MemoKey::from_cop(&ca), MemoKey::from_cop(&cb));
    }

    #[test]
    fn different_content_means_different_key_and_seed() {
        let a = MemoKey::from_matrix(&matrix(|p| p % 3 == 0), 4);
        let b = MemoKey::from_matrix(&matrix(|p| p % 5 == 0), 4);
        assert_ne!(a, b);
        assert_ne!(a.solver_seed(7), b.solver_seed(7));
        // Same matrix, different input count: different COP scale.
        let c = MemoKey::from_matrix(&matrix(|p| p % 3 == 0), 5);
        assert_ne!(a, c);
        // Framework seed participates.
        assert_ne!(a.solver_seed(7), a.solver_seed(8));
    }

    #[test]
    fn zero_sign_and_nan_payload_do_not_split_keys() {
        // -0.0 vs 0.0 weights are behaviorally identical COPs; the keys
        // (and therefore the content-derived seeds) must coincide.
        let pos = ColumnCop::from_weights(2, 2, vec![0.0, 0.5, -0.25, 0.0], 0.0);
        let neg = ColumnCop::from_weights(2, 2, vec![-0.0, 0.5, -0.25, -0.0], -0.0);
        let kp = MemoKey::from_cop(&pos);
        let kn = MemoKey::from_cop(&neg);
        assert_eq!(kp, kn);
        assert_eq!(kp.solver_seed(9), kn.solver_seed(9));

        // One entry serves both spellings.
        let cache = CopCache::new(true);
        let result =
            CopOutcome::completed(pos.solve_exhaustive(), pos.objective(&pos.solve_exhaustive()));
        cache.insert(kp, &result);
        assert!(cache.lookup(&kn).is_some(), "-0.0 grid must hit the 0.0 entry");

        // NaNs with different payloads normalize to one key.
        let nan_a = ColumnCop::from_weights(1, 2, vec![f64::NAN, 1.0], 0.0);
        let nan_b =
            ColumnCop::from_weights(1, 2, vec![f64::from_bits(0x7ff8_dead_beef_0001), 1.0], 0.0);
        assert_eq!(MemoKey::from_cop(&nan_a), MemoKey::from_cop(&nan_b));
        // And the canonical form never collides with a real weight.
        let real = ColumnCop::from_weights(1, 2, vec![1.0, 1.0], 0.0);
        assert_ne!(MemoKey::from_cop(&nan_a), MemoKey::from_cop(&real));
    }

    #[test]
    fn cache_round_trips_and_respects_disable() {
        let m = matrix(|p| p & 1 == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let cop = ColumnCop::separate(&m, &w, &InputDist::Uniform);
        let key = MemoKey::from_matrix(&m, 4);
        let mut result = CopOutcome::completed(cop.solve_exhaustive(), 0.25);
        result.sb_iterations = 12;

        let on = CopCache::new(true);
        assert!(on.lookup(&key).is_none());
        on.insert(key.clone(), &result);
        let hit = on.lookup(&key).expect("cached");
        assert_eq!(hit.setting, result.setting);
        assert_eq!(hit.objective, result.objective);

        let off = CopCache::new(false);
        off.insert(key.clone(), &result);
        assert!(off.lookup(&key).is_none());
    }

    #[test]
    fn shared_tier_promotes_and_namespaces() {
        let shared = SharedCopCache::new(CacheConfig { shards: 2, capacity: 8 });
        let key = weight_key(1);
        shared.put(10, 20, &key, dummy_value(0.5));

        // Same namespace sees the entry…
        let run = CopCache::with_shared(
            true,
            SharedRunHandle {
                cache: shared.clone(),
                solver_fingerprint: 10,
                framework_seed: 20,
            },
        );
        assert!(run.lookup(&key).is_some());
        // …and the hit was promoted: a repeat stays off the shared tier.
        let before = shared.stats().hits;
        assert!(run.lookup(&key).is_some());
        assert_eq!(shared.stats().hits, before);

        // A different solver fingerprint or seed sees nothing.
        for (fp, seed) in [(11, 20), (10, 21)] {
            let other = CopCache::with_shared(
                true,
                SharedRunHandle {
                    cache: shared.clone(),
                    solver_fingerprint: fp,
                    framework_seed: seed,
                },
            );
            assert!(other.lookup(&key).is_none(), "namespace ({fp},{seed}) must miss");
        }
    }

    #[test]
    fn capacity_bound_and_clock_eviction() {
        let cache = SharedCopCache::new(CacheConfig { shards: 1, capacity: 4 });
        assert_eq!(cache.capacity(), 4);
        for tag in 0..32 {
            cache.put(0, 0, &weight_key(tag), dummy_value(tag as f64));
            assert!(cache.len() <= 4, "capacity bound violated at insert {tag}");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.insertions, 32);
        assert_eq!(stats.evictions, 32 - 4);
        // The most recent batch survives; something old is gone.
        assert!(cache.get(0, 0, &weight_key(0)).is_none());
        // Re-inserting an evicted key works and evicts something else.
        cache.put(0, 0, &weight_key(0), dummy_value(0.0));
        assert!(cache.get(0, 0, &weight_key(0)).is_some());
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn clock_gives_hit_entries_a_second_chance() {
        let cache = SharedCopCache::new(CacheConfig { shards: 1, capacity: 2 });
        cache.put(0, 0, &weight_key(1), dummy_value(1.0));
        cache.put(0, 0, &weight_key(2), dummy_value(2.0));
        // Touch key 1 so its reference bit is set, then overflow: the
        // clock must prefer evicting an untouched entry eventually, and
        // key 1 must still be resident immediately after one overflow
        // (its bit gets cleared, key 2's slot or the new entry churns).
        assert!(cache.get(0, 0, &weight_key(1)).is_some());
        cache.put(0, 0, &weight_key(3), dummy_value(3.0));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(0, 0, &weight_key(3)).is_some(),
            "the fresh insert must be resident"
        );
    }

    #[test]
    fn concurrent_stress_exact_accounting_and_bound() {
        use std::thread;

        let cache = SharedCopCache::new(CacheConfig { shards: 4, capacity: 64 });
        let capacity = cache.capacity();
        const THREADS: u64 = 8;
        const KEYS: u64 = 128; // twice the capacity: forces eviction under contention
        const ROUNDS: u64 = 3;

        thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = cache.clone();
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        for i in 0..KEYS {
                            // Interleave access orders across threads.
                            let tag = (i + t * 17 + round * 31) % KEYS;
                            let key = weight_key(tag);
                            match cache.get(0, 0, &key) {
                                Some(v) => assert_eq!(
                                    v.objective, tag as f64,
                                    "hit must return the value stored for its key"
                                ),
                                None => cache.put(0, 0, &key, dummy_value(tag as f64)),
                            }
                        }
                    }
                });
            }
        });

        let stats = cache.stats();
        // Exact accounting: every lookup is a hit or a miss…
        assert_eq!(stats.hits + stats.misses, THREADS * KEYS * ROUNDS);
        // …every miss led to (at most) one put, first writer winning…
        assert!(stats.insertions <= stats.misses);
        assert!(stats.insertions >= KEYS, "every key was inserted at least once");
        // …and residency arithmetic balances exactly.
        assert_eq!(
            stats.entries as u64,
            stats.insertions - stats.evictions,
            "entries must equal insertions minus evictions"
        );
        assert!(stats.entries <= capacity, "capacity bound violated");
        assert!(stats.hits > 0, "the workload must produce real sharing");
    }

    #[test]
    fn eviction_then_recompute_is_bit_identical() {
        use crate::cop_solver::{CopScratch, CopSolver, SolveCtx};

        // Solve a real COP, cache it, evict it by overflowing a tiny
        // cache, then recompute: the content-derived seed forces the
        // recomputation to reproduce the evicted answer bit for bit.
        let m = matrix(|p| (p * 5 % 7) & 1 == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let cop = ColumnCop::separate(&m, &w, &InputDist::Uniform);
        let key = MemoKey::from_matrix(&m, 4);
        let solver = crate::IsingCopSolver::new();
        let fp = CopSolver::fingerprint(&solver);
        let seed = key.solver_seed(42);

        let cache = SharedCopCache::new(CacheConfig { shards: 1, capacity: 2 });
        let mut scratch = CopScratch::new();
        let first = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
        cache.put(
            fp,
            42,
            &key,
            CachedCop {
                setting: first.setting.clone(),
                objective: first.objective,
            },
        );
        assert!(cache.get(fp, 42, &key).is_some());

        // Flood with synthetic entries until the real one is evicted.
        for tag in 0..8 {
            cache.put(fp, 42, &weight_key(tag), dummy_value(tag as f64));
            // Churn the synthetic keys so the real entry's reference bit
            // ages out.
            let _ = cache.get(fp, 42, &weight_key(tag));
        }
        assert!(
            cache.get(fp, 42, &key).is_none(),
            "the real entry must have been evicted"
        );
        assert!(cache.stats().evictions > 0);

        // Recompute exactly as the engine would: same cop, same
        // content-derived seed (through a dirty scratch, even).
        let second = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut scratch);
        assert_eq!(first.setting, second.setting);
        assert_eq!(first.objective.to_bits(), second.objective.to_bits());
    }
}
