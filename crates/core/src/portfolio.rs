//! A portfolio of core-COP solvers raced against each other.
//!
//! No single solver in the roster dominates: branch and bound wins tiny
//! COPs outright, bSB scales to the joint-mode encodings, the relaxation
//! baselines ([`SimCimCopSolver`], [`DochCopSolver`]) are cheap on smooth
//! weight landscapes, and the DALTA heuristic is unbeatable when the
//! weights are near-uniform. [`PortfolioSolver`] packages a set of them
//! behind the single [`CopSolver`] seam:
//!
//! - **Sequential mode** (`race(false)`, the default) runs every member on
//!   the calling thread and keeps the best objective (ties go to the
//!   earliest-enrolled member). With deterministic members the kept
//!   setting and objective are bit-identical to running the winning
//!   member alone, so the portfolio itself reports
//!   [`deterministic`](CopSolver::deterministic) and stays cacheable.
//! - **Racing mode** (`race(true)`) spawns one scoped thread per member.
//!   Every lane observes a child [`CancelToken`] of the caller's context;
//!   the first lane to halt with [`HaltReason::Completed`] or
//!   [`HaltReason::TargetReached`] cancels its siblings, which unwind at
//!   their next poll point and still return their incumbents. The kept
//!   answer is the lane with the best objective — racing trades
//!   reproducible wall-clock for latency, so a raced portfolio reports
//!   non-deterministic and is never cached. Racing also needs spare
//!   cores: on a host with no available parallelism the lanes would only
//!   time-slice one CPU (wall-clock becomes the *sum* of the lanes, the
//!   opposite of a race), so the portfolio instead runs the single member
//!   named by the static selection table
//!   ([`select_for`](PortfolioSolver::select_for)) — the same degradation
//!   a one-thread-per-request server applies.
//!
//! Either way the winning member's name travels in
//! [`CopOutcome::winner`], which the sweep engine forwards to
//! [`SolveObserver::cop_winner`](adis_telemetry::SolveObserver::cop_winner)
//! together with the instance features (rows, columns, weight spread) that
//! drive the static selection table in [`PortfolioSolver::select_for`].

use crate::baselines::DaltaHeuristic;
use crate::cop::ColumnCop;
use crate::cop_solver::{
    CopOutcome, CopScratch, CopSolver, DochCopSolver, HaltReason, SimCimCopSolver, SolveCtx,
};
use crate::framework::Mode;
use crate::IsingCopSolver;
use adis_telemetry::CancelToken;
use std::sync::Arc;
use std::thread;

/// A named roster of [`CopSolver`]s run per COP, sequentially or raced.
///
/// # Examples
///
/// ```
/// use adis_core::{ColumnCop, CopScratch, CopSolver, PortfolioSolver, SolveCtx};
///
/// let cop = ColumnCop::from_weights(2, 2, vec![0.3, 0.1, 0.2, 0.4], 0.0);
/// let portfolio = PortfolioSolver::standard().race(false);
/// let out = portfolio.solve_cop(&cop, &SolveCtx::new(7), &mut CopScratch::new());
/// assert!(out.winner.is_some(), "the portfolio attributes its answer");
/// assert!((cop.objective(&out.setting) - out.objective).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PortfolioSolver {
    members: Vec<(String, Arc<dyn CopSolver>)>,
    race: bool,
}

impl PortfolioSolver {
    /// An empty, sequential portfolio; enroll solvers with
    /// [`member`](PortfolioSolver::member).
    pub fn new() -> Self {
        PortfolioSolver {
            members: Vec::new(),
            race: false,
        }
    }

    /// The standard raced roster: the paper's bSB solver (`"bsb"`), the
    /// SimCIM mean-field baseline (`"simcim"`), the difference-of-convex
    /// baseline (`"doch"`), and the DALTA heuristic (`"dalta"`).
    pub fn standard() -> Self {
        PortfolioSolver::new()
            .member("bsb", IsingCopSolver::new())
            .member("simcim", SimCimCopSolver::new())
            .member("doch", DochCopSolver::new())
            .member("dalta", DaltaHeuristic { restarts: 8 })
            .race(true)
    }

    /// The standard roster plus the reduced-precision dSB lane (`"dsb16"`):
    /// bSB's discrete sibling running the i16 fixed-point kernel
    /// ([`adis_sb::KernelPrecision::I16`]). Kept out of
    /// [`standard`](PortfolioSolver::standard) so existing roster
    /// expectations (and cache fingerprints) are unchanged unless a caller
    /// opts in.
    pub fn standard_with_quantized() -> Self {
        Self::standard().member(
            "dsb16",
            IsingCopSolver::new().precision(adis_sb::KernelPrecision::I16),
        )
    }

    /// Enrolls `solver` under `name` (the name shows up as
    /// [`CopOutcome::winner`] and in telemetry).
    pub fn member(mut self, name: impl Into<String>, solver: impl CopSolver + 'static) -> Self {
        self.members.push((name.into(), Arc::new(solver)));
        self
    }

    /// Enrolls an already-boxed solver under `name` — the dynamic-dispatch
    /// twin of [`member`](PortfolioSolver::member), for rosters assembled
    /// at runtime.
    pub fn member_boxed(mut self, name: impl Into<String>, solver: Box<dyn CopSolver>) -> Self {
        self.members.push((name.into(), Arc::from(solver)));
        self
    }

    /// Switches between racing the members on threads (`true`) and running
    /// them sequentially on the calling thread (`false`, default).
    pub fn race(mut self, on: bool) -> Self {
        self.race = on;
        self
    }

    /// The enrolled member names, in enrollment order.
    pub fn member_names(&self) -> impl Iterator<Item = &str> {
        self.members.iter().map(|(name, _)| name.as_str())
    }

    /// Max-minus-min over the COP's cell weights, the spread feeding
    /// [`select_for`](PortfolioSolver::select_for). Degenerate instances
    /// (no weights, or a single weight) have no spread at all: folding
    /// them through ±∞ extrema would fabricate an infinite claim, so they
    /// report 0.0 and route to the uniform-cost pick.
    pub fn weight_spread(weights: &[f64]) -> f64 {
        if weights.len() < 2 {
            return 0.0;
        }
        weights.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
            - weights.iter().fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// The static solver-selection table: which standard-roster member to
    /// run alone when racing is too expensive (e.g. one thread per
    /// request), keyed by the same instance features the engine reports
    /// through `cop_winner`. Distilled from the winner tallies in
    /// `results/BENCH_portfolio.json` (see `adis-bench`):
    ///
    /// - tiny grids (`rows × cols ≤ 64`): branch and bound enumerates them
    ///   outright — `"exact"`;
    /// - a degenerate weight spread means near-uniform cell costs, where
    ///   the DALTA heuristic's first deterministic start already lands the
    ///   optimum — `"dalta"`;
    /// - joint-mode instances (significance-weighted, wide dynamic range):
    ///   the paper's bSB solver — `"bsb"`;
    /// - remaining separate-mode instances: the cheap mean-field
    ///   relaxation — `"simcim"`.
    pub fn select_for(rows: usize, cols: usize, weight_spread: f64, mode: Mode) -> &'static str {
        if rows.saturating_mul(cols) <= 64 {
            "exact"
        } else if weight_spread <= f64::EPSILON {
            "dalta"
        } else if mode == Mode::Joint {
            "bsb"
        } else {
            "simcim"
        }
    }

    fn solve_sequential(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
    ) -> CopOutcome {
        let mut best: Option<CopOutcome> = None;
        let mut best_name = "";
        let mut sb_iterations = 0;
        let mut bnb_nodes = 0;
        for (name, solver) in &self.members {
            let out = solver.solve_cop(cop, ctx, scratch);
            sb_iterations += out.sb_iterations;
            bnb_nodes += out.bnb_nodes;
            // Strict `<` keeps the earliest member on ties, which is what
            // makes the sequential portfolio reproducible.
            if best.as_ref().is_none_or(|b| out.objective < b.objective) {
                best = Some(out);
                best_name = name;
            }
            if ctx.should_stop().is_some() {
                break;
            }
        }
        let mut out = best.expect("PortfolioSolver has no members");
        out.winner = Some(best_name.to_string());
        out.sb_iterations = sb_iterations;
        out.bnb_nodes = bnb_nodes;
        out
    }

    /// No spare cores: racing would only time-slice the lanes on one CPU,
    /// so run the statically selected member alone. The selection table
    /// was distilled from separate-mode winner tallies; when the table
    /// names a member this portfolio did not enroll, the earliest member
    /// stands in.
    fn solve_picked(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
    ) -> CopOutcome {
        let spread = cop.weight_spread();
        let pick = Self::select_for(cop.rows(), cop.cols(), spread, Mode::Separate);
        let (name, solver) = self
            .members
            .iter()
            .find(|(n, _)| n == pick)
            .unwrap_or(&self.members[0]);
        let mut out = solver.solve_cop(cop, ctx, scratch);
        out.winner = Some(name.clone());
        out
    }

    fn solve_raced(&self, cop: &ColumnCop, ctx: &SolveCtx<'_>) -> CopOutcome {
        let lanes: Vec<CancelToken> =
            self.members.iter().map(|_| ctx.cancel().child()).collect();
        let remaining = ctx.remaining();
        let outcomes: Vec<CopOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter()
                .enumerate()
                .map(|(idx, (_, solver))| {
                    let lanes = &lanes;
                    scope.spawn(move || {
                        let mut lane_ctx = SolveCtx::with_cancel(ctx.seed, &lanes[idx]);
                        if let Some(left) = remaining {
                            lane_ctx = lane_ctx.deadline(left);
                        }
                        if let Some(inc) = ctx.incumbent {
                            lane_ctx = lane_ctx.incumbent(inc);
                        }
                        let mut scratch = CopScratch::new();
                        let out = solver.solve_cop(cop, &lane_ctx, &mut scratch);
                        if matches!(
                            out.halt,
                            HaltReason::Completed | HaltReason::TargetReached
                        ) {
                            for (peer, token) in lanes.iter().enumerate() {
                                if peer != idx {
                                    token.cancel();
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("portfolio lane panicked"))
                .collect()
        });
        let mut best = 0;
        for (idx, out) in outcomes.iter().enumerate().skip(1) {
            if out.objective < outcomes[best].objective {
                best = idx;
            }
        }
        let sb_iterations = outcomes.iter().map(|o| o.sb_iterations).sum();
        let bnb_nodes = outcomes.iter().map(|o| o.bnb_nodes).sum();
        let mut out = outcomes.into_iter().nth(best).expect("non-empty race");
        out.winner = Some(self.members[best].0.clone());
        out.sb_iterations = sb_iterations;
        out.bnb_nodes = bnb_nodes;
        out
    }
}

impl Default for PortfolioSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl CopSolver for PortfolioSolver {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
    ) -> CopOutcome {
        assert!(
            !self.members.is_empty(),
            "PortfolioSolver needs at least one member"
        );
        let spare_cores = thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        let mut out = if self.race && self.members.len() > 1 {
            if spare_cores {
                self.solve_raced(cop, ctx)
            } else {
                self.solve_picked(cop, ctx, scratch)
            }
        } else {
            self.solve_sequential(cop, ctx, scratch)
        };
        // The portfolio's own halt reflects the *caller's* run controls —
        // a lane cancelled by a sibling is a finished race, not a
        // truncated one.
        out.halt = match ctx.should_stop() {
            Some(reason) => reason,
            None if ctx.target_reached(out.objective) => HaltReason::TargetReached,
            None => HaltReason::Completed,
        };
        out
    }

    /// Racing is wall-clock-dependent (which lane gets cancelled where
    /// varies run to run), so only the sequential portfolio is
    /// deterministic — and then only if every member is.
    fn deterministic(&self) -> bool {
        !self.race && self.members.iter().all(|(_, s)| s.deterministic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CopSolverKind;

    fn cop() -> ColumnCop {
        // 3×4 grid with a spread of weights: big enough that the members
        // disagree on effort, small enough to verify exhaustively.
        let weights = vec![
            0.31, 0.07, 0.22, 0.11, //
            0.05, 0.40, 0.13, 0.02, //
            0.17, 0.09, 0.28, 0.33,
        ];
        ColumnCop::from_weights(3, 4, weights, 0.05)
    }

    fn roster() -> PortfolioSolver {
        PortfolioSolver::new()
            .member("exact", CopSolverKind::Exact { time_limit: None })
            .member("dalta", DaltaHeuristic { restarts: 4 })
            .member("doch", DochCopSolver::new())
    }

    #[test]
    fn sequential_portfolio_is_bit_identical_to_the_winning_member_alone() {
        let cop = cop();
        let portfolio = roster();
        let out = portfolio.solve_cop(&cop, &SolveCtx::new(5), &mut CopScratch::new());
        let winner = out.winner.as_deref().expect("attributed");

        // Replay the winning member alone under an identical context.
        let members = [
            (
                "exact",
                Box::new(CopSolverKind::Exact { time_limit: None }) as Box<dyn CopSolver>,
            ),
            ("dalta", Box::new(DaltaHeuristic { restarts: 4 })),
            ("doch", Box::new(DochCopSolver::new())),
        ];
        let solo = members
            .iter()
            .find(|(name, _)| *name == winner)
            .expect("winner is an enrolled member")
            .1
            .solve_cop(&cop, &SolveCtx::new(5), &mut CopScratch::new());
        assert_eq!(out.setting, solo.setting, "setting must be bit-identical");
        assert_eq!(out.objective, solo.objective);
        assert_eq!(out.halt, HaltReason::Completed);
    }

    #[test]
    fn sequential_portfolio_never_loses_to_any_member() {
        let cop = cop();
        let out = roster().solve_cop(&cop, &SolveCtx::new(5), &mut CopScratch::new());
        // The roster includes the exact solver, so the portfolio must land
        // the true optimum.
        let opt = cop.objective(&cop.solve_exhaustive());
        assert!(
            (out.objective - opt).abs() < 1e-9,
            "portfolio {} vs optimum {opt}",
            out.objective
        );
        assert_eq!(out.winner.as_deref(), Some("exact"), "ties go to the earliest member");
    }

    #[test]
    fn raced_portfolio_returns_a_valid_attributed_answer() {
        let cop = cop();
        let portfolio = roster().race(true);
        let out = portfolio.solve_cop(&cop, &SolveCtx::new(5), &mut CopScratch::new());
        let winner = out.winner.as_deref().expect("attributed");
        assert!(portfolio.member_names().any(|n| n == winner));
        // Whatever lane won, its answer is internally consistent, and the
        // race itself (nobody cancelled the *caller*) reads as completed.
        assert!((cop.objective(&out.setting) - out.objective).abs() < 1e-12);
        assert_eq!(out.halt, HaltReason::Completed);
    }

    #[test]
    fn determinism_flag_tracks_racing_and_members() {
        assert!(roster().deterministic());
        assert!(!roster().race(true).deterministic());
        assert!(!PortfolioSolver::standard().deterministic());
        assert!(PortfolioSolver::standard().race(false).deterministic());
    }

    #[test]
    fn cancelled_context_short_circuits_the_sequential_sweep() {
        let cop = cop();
        let token = CancelToken::new();
        token.cancel();
        let ctx = SolveCtx::with_cancel(5, &token);
        let out = roster().solve_cop(&cop, &ctx, &mut CopScratch::new());
        // Only the first member ran; its incumbent is still a valid setting.
        assert_eq!(out.halt, HaltReason::Cancelled);
        assert_eq!(out.winner.as_deref(), Some("exact"));
        assert!((cop.objective(&out.setting) - out.objective).abs() < 1e-12);
    }

    #[test]
    fn selection_table_names_standard_roster_members_or_exact() {
        let valid = ["exact", "bsb", "simcim", "doch", "dalta"];
        for (rows, cols, spread, mode) in [
            (4, 4, 0.3, Mode::Separate),
            (16, 16, 0.0, Mode::Joint),
            (16, 16, 0.3, Mode::Joint),
            (16, 16, 0.3, Mode::Separate),
        ] {
            let pick = PortfolioSolver::select_for(rows, cols, spread, mode);
            assert!(valid.contains(&pick), "unknown member {pick}");
        }
        assert_eq!(PortfolioSolver::select_for(2, 2, 0.5, Mode::Joint), "exact");
        assert_eq!(PortfolioSolver::select_for(16, 16, 0.0, Mode::Separate), "dalta");
        assert_eq!(PortfolioSolver::select_for(16, 16, 0.4, Mode::Joint), "bsb");
        assert_eq!(
            PortfolioSolver::select_for(16, 16, 0.4, Mode::Separate),
            "simcim"
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_panics_with_a_clear_message() {
        PortfolioSolver::new().solve_cop(&cop(), &SolveCtx::new(0), &mut CopScratch::new());
    }

    /// Degenerate weight slices must not fold through ±∞: no weights and a
    /// single weight both have zero spread, which routes the static pick
    /// to the uniform-cost member instead of poisoning the claim.
    #[test]
    fn weight_spread_guards_degenerate_instances() {
        assert_eq!(PortfolioSolver::weight_spread(&[]), 0.0);
        assert_eq!(PortfolioSolver::weight_spread(&[0.7]), 0.0);
        assert_eq!(PortfolioSolver::weight_spread(&[0.25, 0.25, 0.25]), 0.0);
        assert_eq!(PortfolioSolver::weight_spread(&[0.1, 0.6, 0.3]), 0.5);
        assert!(PortfolioSolver::weight_spread(&[]).is_finite());
        // Zero spread lands the DALTA pick on non-tiny grids.
        assert_eq!(
            PortfolioSolver::select_for(
                16,
                16,
                PortfolioSolver::weight_spread(&[]),
                Mode::Separate
            ),
            "dalta"
        );
    }

    /// The opt-in quantized roster extends — never replaces — the standard
    /// one, and its dSB lane returns internally consistent answers.
    #[test]
    fn quantized_roster_extends_the_standard_one() {
        let standard = PortfolioSolver::standard();
        let std_names: Vec<&str> = standard.member_names().collect();
        let quant = PortfolioSolver::standard_with_quantized();
        let names: Vec<&str> = quant.member_names().collect();
        assert_eq!(names[..std_names.len()], std_names[..]);
        assert!(names.contains(&"dsb16"));

        let cop = cop();
        let out = quant
            .race(false)
            .solve_cop(&cop, &SolveCtx::new(5), &mut CopScratch::new());
        assert!((cop.objective(&out.setting) - out.objective).abs() < 1e-12);
        assert_eq!(out.halt, HaltReason::Completed);
    }
}
