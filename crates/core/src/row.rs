//! The row-based core COP of DALTA (Section 2.4) — the baseline the paper
//! improves on — with three solvers:
//!
//! 1. an **exact branch-and-bound** over the row pattern `V` (per-row type
//!    assignment is independently optimal once `V` is fixed), with a time
//!    limit and best-incumbent return — the reproduction's "DALTA-ILP";
//! 2. a **generic ILP formulation** emitted for [`adis_ilp`], used to
//!    cross-validate the specialized solver on small instances;
//! 3. the **third-order Ising formulation** the paper proves this COP
//!    requires (Section 3.1), solved with higher-order SB — Ablation A3.

use adis_boolfn::{BitVec, BooleanMatrix, InputDist, Partition, RowSetting, RowType};
use adis_ilp::{BranchAndBound, IlpModel, IlpStatus};
use adis_ising::HigherOrderIsing;
use adis_sb::{HigherOrderSb, StopCriterion};
use std::time::{Duration, Instant};

/// A row-based core COP in cell-linear form: minimize
/// `Σᵢⱼ W_ij·Ô_ij + constant` where `Ô` is determined by a row setting
/// `(V, S)` (same weight semantics as [`crate::ColumnCop`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RowCop {
    rows: usize,
    cols: usize,
    weights: Vec<f64>,
    constant: f64,
}

/// Outcome of an exact row-COP solve.
#[derive(Debug, Clone)]
pub struct RowCopSolution {
    /// The best setting found.
    pub setting: RowSetting,
    /// Its objective value.
    pub objective: f64,
    /// Whether optimality was proven (false ⇒ the time limit fired and
    /// this is the incumbent, mirroring the paper's Gurobi-at-3600 s runs).
    pub optimal: bool,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
}

impl RowCop {
    /// Builds a COP from per-cell weights (see [`crate::ColumnCop`] for the
    /// weight conventions; both modes produce the same cell-linear form).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or a dimension is zero.
    pub fn from_weights(rows: usize, cols: usize, weights: Vec<f64>, constant: f64) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        assert_eq!(weights.len(), rows * cols, "weight count mismatch");
        RowCop {
            rows,
            cols,
            weights,
            constant,
        }
    }

    /// The separate-mode COP for `matrix` (component ER).
    pub fn separate(matrix: &BooleanMatrix, partition: &Partition, dist: &InputDist) -> Self {
        let col = crate::ColumnCop::separate(matrix, partition, dist);
        RowCop {
            rows: col.rows(),
            cols: col.cols(),
            weights: (0..col.rows() * col.cols())
                .map(|idx| col.weight(idx / col.cols(), idx % col.cols()))
                .collect(),
            constant: col.constant(),
        }
    }

    /// Number of rows `r`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `c`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The weight `W_ij`.
    #[inline]
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.cols + j]
    }

    /// The objective constant.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Objective value of a row setting.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn objective(&self, setting: &RowSetting) -> f64 {
        assert_eq!(setting.rows(), self.rows, "row count mismatch");
        assert_eq!(setting.cols(), self.cols, "column count mismatch");
        let mut total = self.constant;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if setting.value(i, j) {
                    total += self.weight(i, j);
                }
            }
        }
        total
    }

    /// Row sums `Rᵢ = Σⱼ W_ij` (cost of an all-ones row).
    fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.weight(i, j)).sum())
            .collect()
    }

    /// For a fixed `V`, the per-row optimal types and the total objective.
    pub fn optimal_types(&self, v: &BitVec) -> (Vec<RowType>, f64) {
        assert_eq!(v.len(), self.cols, "pattern length mismatch");
        let mut total = self.constant;
        let mut types = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let r: f64 = (0..self.cols).map(|j| self.weight(i, j)).sum();
            let p: f64 = (0..self.cols)
                .filter(|&j| v.get(j))
                .map(|j| self.weight(i, j))
                .sum();
            let costs = [0.0, r, p, r - p];
            let (ty, cost) = [
                RowType::Zeros,
                RowType::Ones,
                RowType::Pattern,
                RowType::Complement,
            ]
            .into_iter()
            .zip(costs)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("four candidates");
            types.push(ty);
            total += cost;
        }
        (types, total)
    }

    /// Exact branch-and-bound over `V`, with per-row interval bounds and an
    /// optional time limit (incumbent returned on timeout).
    ///
    /// This is the reproduction's **DALTA-ILP**: exact like the paper's
    /// Gurobi runs, specialized to the COP's structure.
    pub fn solve_exact(&self, time_limit: Option<Duration>) -> RowCopSolution {
        let deadline = time_limit.map(|l| Instant::now() + l);
        let row_sums = self.row_sums();
        // Per-row prefix structure for bounding: with V bits fixed for
        // columns < depth and free beyond, track for each row the fixed
        // pattern-cost plus min/max reachable from free columns.
        let mut search = RowSearch {
            cop: self,
            row_sums: &row_sums,
            v: BitVec::zeros(self.cols),
            p_fixed: vec![0.0; self.rows],
            free_neg: (0..self.rows)
                .map(|i| {
                    (0..self.cols)
                        .map(|j| self.weight(i, j).min(0.0))
                        .sum::<f64>()
                })
                .collect(),
            free_pos: (0..self.rows)
                .map(|i| {
                    (0..self.cols)
                        .map(|j| self.weight(i, j).max(0.0))
                        .sum::<f64>()
                })
                .collect(),
            best: None,
            nodes: 0,
            deadline,
            hit_limit: false,
        };
        // Seed the incumbent with the alternating heuristic so timeouts
        // still return something sensible.
        let seed_v = crate::baselines::dalta_heuristic_pattern(self);
        let (_, seed_obj) = self.optimal_types(&seed_v);
        search.best = Some((seed_v, seed_obj));
        search.dfs(0);

        let (v, objective) = search.best.expect("seeded");
        let (types, _) = self.optimal_types(&v);
        RowCopSolution {
            setting: RowSetting { v, s: types },
            objective,
            optimal: !search.hit_limit,
            nodes: search.nodes,
        }
    }

    /// Emits the generic 0-1 ILP formulation (binary `v_j`, one-hot row
    /// types `s_{i,t}`, McCormick-linearized products `z_{ij} = v_j·s_{i,3}`
    /// and `z̄_{ij} = (1−v_j)·s_{i,4}`), for cross-checking with
    /// [`adis_ilp`]. Variable count is `c + 4r + 2rc`; use on small
    /// matrices only.
    pub fn to_ilp(&self) -> (IlpModel, RowIlpVars) {
        let mut m = IlpModel::new();
        let v0 = m.add_vars(self.cols);
        let s0 = m.add_vars(4 * self.rows); // s[i][t] at s0 + 4i + t
        let z0 = m.add_vars(self.rows * self.cols); // v_j AND s_{i,Pattern}
        let zb0 = m.add_vars(self.rows * self.cols); // (1-v_j) AND s_{i,Compl}
        m.add_objective_constant(self.constant);
        for i in 0..self.rows {
            // One-hot type selection.
            let terms: Vec<_> = (0..4).map(|t| (s0 + 4 * i + t, 1.0)).collect();
            m.add_eq(&terms, 1.0);
            for j in 0..self.cols {
                let w = self.weight(i, j);
                let z = z0 + i * self.cols + j;
                let zb = zb0 + i * self.cols + j;
                // z = v_j AND s_{i,3}
                m.add_le(&[(z, 1.0), (v0 + j, -1.0)], 0.0);
                m.add_le(&[(z, 1.0), (s0 + 4 * i + 2, -1.0)], 0.0);
                m.add_ge(&[(z, 1.0), (v0 + j, -1.0), (s0 + 4 * i + 2, -1.0)], -1.0);
                // zb = (1 - v_j) AND s_{i,4}
                m.add_le(&[(zb, 1.0), (v0 + j, 1.0)], 1.0);
                m.add_le(&[(zb, 1.0), (s0 + 4 * i + 3, -1.0)], 0.0);
                m.add_ge(&[(zb, 1.0), (v0 + j, 1.0), (s0 + 4 * i + 3, -1.0)], 0.0);
                // Ô_ij = s_{i,2} + z + zb contributes W_ij each.
                m.add_objective_coeff(s0 + 4 * i + 1, w / 1.0);
                m.add_objective_coeff(z, w);
                m.add_objective_coeff(zb, w);
            }
        }
        // NOTE: the s_{i,2} (Ones) coefficient was added once per column in
        // the loop above via add_objective_coeff, which accumulates — the
        // net coefficient is Σⱼ W_ij as required.
        (
            m,
            RowIlpVars {
                v0,
                s0,
                rows: self.rows,
                cols: self.cols,
            },
        )
    }

    /// Solves via the generic ILP path, decoding the assignment back into a
    /// row setting. `None` if the model is infeasible (cannot happen for
    /// well-formed COPs) or the time limit fired before any incumbent.
    pub fn solve_ilp(&self, time_limit: Option<Duration>) -> Option<RowCopSolution> {
        let (model, vars) = self.to_ilp();
        let mut bb = BranchAndBound::new();
        if let Some(l) = time_limit {
            bb = bb.time_limit(l);
        }
        let sol = bb.solve(&model);
        if sol.status == IlpStatus::Infeasible {
            return None;
        }
        let v = BitVec::from_fn(self.cols, |j| sol.values[vars.v0 + j]);
        // Re-derive types exactly (the ILP's one-hot already encodes them,
        // but the exact pass is free and numerically robust).
        let (types, objective) = self.optimal_types(&v);
        Some(RowCopSolution {
            setting: RowSetting { v, s: types },
            objective,
            optimal: sol.status == IlpStatus::Optimal,
            nodes: sol.nodes,
        })
    }

    /// The third-order Ising encoding of the row-based COP (Section 3.1's
    /// impossibility argument, realized): with each row type encoded by two
    /// spins `(u, w)` — `Ô_ij = w + u·V_j − 2·u·w·V_j` — the objective
    /// expands to spin monomials of degree 3:
    ///
    /// ```text
    /// cell = W·[1/2 + w̄/4 − ūw̄/4 − w̄V̄ⱼ/4 − ūw̄V̄ⱼ/4]
    /// ```
    ///
    /// Spin layout: `ūᵢ ↔ i`, `w̄ᵢ ↔ r + i`, `V̄ⱼ ↔ 2r + j`.
    pub fn to_ising3(&self) -> HigherOrderIsing {
        let n = 2 * self.rows + self.cols;
        let mut e = HigherOrderIsing::new(n);
        e.add_offset(self.constant);
        for i in 0..self.rows {
            let u = i;
            let w = self.rows + i;
            let mut row_sum = 0.0;
            for j in 0..self.cols {
                let wj = 2 * self.rows + j;
                let coeff = self.weight(i, j);
                if coeff != 0.0 {
                    e.add_term(&[w, wj], -coeff / 4.0);
                    e.add_term(&[u, w, wj], -coeff / 4.0);
                }
                row_sum += coeff;
            }
            e.add_offset(row_sum / 2.0);
            e.add_term(&[w], row_sum / 4.0);
            e.add_term(&[u, w], -row_sum / 4.0);
        }
        e
    }

    /// Decodes a third-order Ising spin state into a row setting
    /// (type bits: `(u, w) = (0,0) → Zeros, (0,1) → Ones, (1,0) → Pattern,
    /// (1,1) → Complement`).
    pub fn decode_ising3(&self, spins: &adis_ising::SpinVector) -> RowSetting {
        assert_eq!(
            spins.len(),
            2 * self.rows + self.cols,
            "spin count mismatch"
        );
        let v = BitVec::from_fn(self.cols, |j| spins.bit(2 * self.rows + j));
        let s = (0..self.rows)
            .map(|i| match (spins.bit(i), spins.bit(self.rows + i)) {
                (false, false) => RowType::Zeros,
                (false, true) => RowType::Ones,
                (true, false) => RowType::Pattern,
                (true, true) => RowType::Complement,
            })
            .collect();
        RowSetting { v, s }
    }

    /// Solves via the third-order Ising model with higher-order SB
    /// (Ablation A3). Quality is expected to trail the column-based path —
    /// that is the point of the ablation.
    pub fn solve_ising3(&self, replicas: usize, seed: u64) -> RowCopSolution {
        let e = self.to_ising3();
        let solver = HigherOrderSb::new()
            .discrete(true)
            .stop(StopCriterion::paper_small())
            .seed(seed);
        let r = solver.solve_batch(&e, replicas.max(1));
        let mut setting = self.decode_ising3(&r.best_state);
        // Free exact post-pass: retype rows optimally for the found V.
        let (types, objective) = self.optimal_types(&setting.v);
        setting.s = types;
        RowCopSolution {
            setting,
            objective,
            optimal: false,
            nodes: 0,
        }
    }
}

/// Variable bases of the generic ILP encoding (for decoding).
#[derive(Debug, Clone, Copy)]
pub struct RowIlpVars {
    /// First `v_j` variable.
    pub v0: usize,
    /// First one-hot type variable (`s_{i,t}` at `s0 + 4i + t`).
    pub s0: usize,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

struct RowSearch<'a> {
    cop: &'a RowCop,
    row_sums: &'a [f64],
    v: BitVec,
    /// Pattern cost `Σ_{j fixed, V_j = 1} W_ij` per row.
    p_fixed: Vec<f64>,
    /// `Σ_{j free} min(0, W_ij)` per row (lower envelope of free columns).
    free_neg: Vec<f64>,
    /// `Σ_{j free} max(0, W_ij)` per row.
    free_pos: Vec<f64>,
    best: Option<(BitVec, f64)>,
    nodes: u64,
    deadline: Option<Instant>,
    hit_limit: bool,
}

impl RowSearch<'_> {
    /// Lower bound with columns `0..depth` fixed: per row,
    /// `min(0, Rᵢ, Pᵢ_lo, Rᵢ − Pᵢ_hi)` where `Pᵢ ∈ [p_fixed + free_neg,
    /// p_fixed + free_pos]`.
    fn bound(&self) -> f64 {
        let mut b = self.cop.constant;
        for i in 0..self.cop.rows {
            let p_lo = self.p_fixed[i] + self.free_neg[i];
            let p_hi = self.p_fixed[i] + self.free_pos[i];
            b += 0.0f64
                .min(self.row_sums[i])
                .min(p_lo)
                .min(self.row_sums[i] - p_hi);
        }
        b
    }

    fn dfs(&mut self, depth: usize) {
        self.nodes += 1;
        if self.hit_limit {
            return;
        }
        if let Some(d) = self.deadline {
            if self.nodes.is_multiple_of(512) && Instant::now() >= d {
                self.hit_limit = true;
                return;
            }
        }
        if let Some((_, incumbent)) = &self.best {
            if self.bound() >= *incumbent - 1e-12 {
                return;
            }
        }
        if depth == self.cop.cols {
            let (_, obj) = self.cop.optimal_types(&self.v);
            if self
                .best
                .as_ref()
                .map(|&(_, b)| obj < b - 1e-12)
                .unwrap_or(true)
            {
                self.best = Some((self.v.clone(), obj));
            }
            return;
        }
        for value in [false, true] {
            self.v.set(depth, value);
            // Update incremental row structures for fixing column `depth`.
            let mut saved = Vec::with_capacity(self.cop.rows);
            for i in 0..self.cop.rows {
                let w = self.cop.weight(i, depth);
                saved.push((self.free_neg[i], self.free_pos[i], self.p_fixed[i]));
                self.free_neg[i] -= w.min(0.0);
                self.free_pos[i] -= w.max(0.0);
                if value {
                    self.p_fixed[i] += w;
                }
            }
            self.dfs(depth + 1);
            for (i, (fneg, fpos, pf)) in saved.into_iter().enumerate() {
                self.free_neg[i] = fneg;
                self.free_pos[i] = fpos;
                self.p_fixed[i] = pf;
            }
            if self.hit_limit {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::TruthTable;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_cop(seed: u64, rows: usize, cols: usize) -> RowCop {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        RowCop::from_weights(rows, cols, weights, rng.gen_range(0.0..1.0))
    }

    fn exhaustive_optimum(cop: &RowCop) -> f64 {
        assert!(cop.cols() <= 12);
        let mut best = f64::INFINITY;
        for mask in 0u64..(1 << cop.cols()) {
            let v = BitVec::from_u64(mask, cop.cols());
            let (_, obj) = cop.optimal_types(&v);
            best = best.min(obj);
        }
        best
    }

    #[test]
    fn optimal_types_is_optimal_per_row() {
        let cop = random_cop(1, 4, 5);
        let v = BitVec::from_u64(0b10110, 5);
        let (types, total) = cop.optimal_types(&v);
        let setting = RowSetting { v: v.clone(), s: types };
        assert!((cop.objective(&setting) - total).abs() < 1e-12);
        // Any retyping is no better.
        for i in 0..4 {
            for t in [RowType::Zeros, RowType::Ones, RowType::Pattern, RowType::Complement] {
                let mut s2 = setting.clone();
                s2.s[i] = t;
                assert!(cop.objective(&s2) >= total - 1e-12);
            }
        }
    }

    #[test]
    fn exact_matches_exhaustive() {
        for seed in 0..5 {
            let cop = random_cop(seed, 4, 8);
            let sol = cop.solve_exact(None);
            assert!(sol.optimal);
            let exact = exhaustive_optimum(&cop);
            assert!(
                (sol.objective - exact).abs() < 1e-9,
                "seed {seed}: bb {} vs exhaustive {exact}",
                sol.objective
            );
            assert!((cop.objective(&sol.setting) - sol.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn ilp_matches_exact_on_small_instances() {
        for seed in 0..3 {
            let cop = random_cop(seed + 20, 3, 4);
            let bb = cop.solve_exact(None);
            let ilp = cop.solve_ilp(None).expect("feasible");
            assert!(ilp.optimal);
            assert!(
                (ilp.objective - bb.objective).abs() < 1e-9,
                "seed {seed}: ilp {} vs bb {}",
                ilp.objective,
                bb.objective
            );
        }
    }

    #[test]
    fn ising3_energy_equals_objective() {
        // The third-order encoding must agree with the objective for every
        // (u, w, V) assignment.
        let cop = random_cop(7, 2, 3);
        let e = cop.to_ising3();
        let n = 2 * 2 + 3;
        for mask in 0u32..(1 << n) {
            let spins = adis_ising::SpinVector::from_bools((0..n).map(|b| (mask >> b) & 1 == 1));
            let setting = cop.decode_ising3(&spins);
            assert!(
                (e.energy(&spins) - cop.objective(&setting)).abs() < 1e-9,
                "mask {mask}"
            );
        }
    }

    #[test]
    fn ising3_is_genuinely_third_order() {
        let cop = random_cop(3, 2, 2);
        assert_eq!(cop.to_ising3().degree(), 3);
    }

    #[test]
    fn ising3_solver_reasonable() {
        for seed in 0..3 {
            let cop = random_cop(seed + 40, 4, 6);
            let exact = cop.solve_exact(None).objective;
            let ho = cop.solve_ising3(8, seed);
            assert!(ho.objective >= exact - 1e-9);
            // Should land within the top half of the objective span.
            let worst = {
                let mut w = f64::NEG_INFINITY;
                for mask in 0u64..(1 << 6) {
                    let v = BitVec::from_u64(mask, 6);
                    let (_, obj) = cop.optimal_types(&v);
                    w = w.max(obj);
                }
                w
            };
            assert!(
                ho.objective <= exact + 0.5 * (worst - exact) + 1e-9,
                "seed {seed}: ho {} exact {exact} worst {worst}",
                ho.objective
            );
        }
    }

    #[test]
    fn exact_solves_decomposable_to_zero() {
        let g = TruthTable::from_fn(4, |p| (p & 1) ^ ((p >> 2) & 1) == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let cop = RowCop::separate(&BooleanMatrix::build(&g, &w), &w, &InputDist::Uniform);
        let sol = cop.solve_exact(None);
        assert!(sol.objective.abs() < 1e-12);
    }

    #[test]
    fn timeout_returns_incumbent() {
        let cop = random_cop(11, 8, 20);
        let sol = cop.solve_exact(Some(Duration::from_millis(1)));
        // Whether or not it finished, the incumbent must be valid.
        assert!((cop.objective(&sol.setting) - sol.objective).abs() < 1e-9);
    }
}
