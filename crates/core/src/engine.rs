//! The batched partition-sweep engine behind [`Framework::decompose`].
//!
//! The engine plans the full `partition × output × round` grid of core-COP
//! cells up front, then executes it with three resources threaded through
//! every cell:
//!
//! - a [`CopCache`] memoizing COP answers by exact content (see
//!   [`crate::cache`] for why serving a repeat from the table is
//!   bit-identical to re-solving it);
//! - a [`ScratchPool`] of per-worker [`CopScratch`] buffers, so the bSB
//!   integrator allocates once per rayon worker instead of once per COP;
//! - content-derived solver seeds ([`MemoKey::solver_seed`]), which make
//!   the sweep's results independent of both grid position and execution
//!   order — the parallel sweep is bit-identical to the sequential one.
//!
//! Cells still *execute* in DALTA's order (rounds outer, components
//! MSB→LSB) because in joint mode each cell's COP weights depend on the
//! approximation state left by every previous cell; only the per-cell
//! partition sweep fans out in parallel.

use crate::cache::{CopCache, MemoKey, SharedRunHandle};
use crate::cop_solver::{CopScratch, HaltReason, SolveCtx};
use crate::framework::{ComponentChoice, DecompositionOutcome, Framework, Mode};
use crate::ColumnCop;
use adis_boolfn::{
    error_rate_multi, mean_error_distance, BooleanMatrix, InputDist, MultiOutputFn, Partition,
};
use adis_sb::ScratchPool;
use adis_telemetry::{trace_span, SolveObserver};
use rayon::prelude::*;
use std::time::Instant;

/// One candidate's outcome within a cell's partition sweep.
struct SolvedCandidate {
    choice: ComponentChoice,
    sb_iterations: usize,
    bnb_nodes: u64,
    hit: bool,
    /// Portfolio attribution: the winning member plus the COP's shape
    /// features `(winner, rows, cols, weight spread)` — reported through
    /// [`SolveObserver::cop_winner`] after the sweep joins.
    winner: Option<(String, usize, usize, f64)>,
}

/// Builds the cell's COP and its memo identity.
///
/// Separate mode under the uniform distribution uses the cheap matrix key
/// (the matrix *is* the COP there — every weight is `±2^{-n}`); joint mode
/// and explicit distributions key by the exact weight bits, because the
/// joint weights fold in the offsets against the evolving approximation.
fn build_cop(
    fw: &Framework,
    exact: &MultiOutputFn,
    exact_words: &[u64],
    approx_words: &[u64],
    k: u32,
    w: &Partition,
) -> (ColumnCop, MemoKey) {
    match fw.mode {
        Mode::Separate => {
            let matrix = BooleanMatrix::build(exact.component(k), w);
            let cop = ColumnCop::separate(&matrix, w, &fw.dist);
            let key = if matches!(fw.dist, InputDist::Uniform) {
                MemoKey::from_matrix(&matrix, exact.inputs())
            } else {
                MemoKey::from_cop(&cop)
            };
            (cop, key)
        }
        Mode::Joint => {
            let (r, c) = (w.rows(), w.cols());
            let mut offsets = vec![0i64; r * c];
            let mut probs = vec![0.0; r * c];
            for i in 0..r {
                for j in 0..c {
                    let x = w.compose(i, j);
                    let others = (approx_words[x as usize] & !(1u64 << k)) as i64;
                    offsets[i * c + j] = others - exact_words[x as usize] as i64;
                    probs[i * c + j] = fw.dist.prob(x, exact.inputs());
                }
            }
            let cop = ColumnCop::joint(r, c, k, &offsets, &probs);
            let key = MemoKey::from_cop(&cop);
            (cop, key)
        }
    }
}

/// Re-derives a candidate's objective directly from its reconstructed LUT
/// via `boolfn::metrics` — no cell-linearization, no COP. This is the
/// ground-truth side of the Eq. (9)/(16) invariant: the COP objective the
/// solver reported must equal the ER (separate mode) / MED (joint mode) of
/// actually substituting the candidate into the current approximation.
/// `approx_words` must be the pre-apply state the candidate's COP was
/// built against.
#[cfg(feature = "paranoid")]
fn oracle_objective(
    fw: &Framework,
    exact: &MultiOutputFn,
    exact_words: &[u64],
    approx_words: &[u64],
    k: u32,
    choice: &ComponentChoice,
) -> f64 {
    let table = choice.setting.reconstruct(&choice.partition);
    match fw.mode {
        Mode::Separate => adis_boolfn::error_rate(exact.component(k), &table, &fw.dist),
        Mode::Joint => (0..exact.num_entries() as u64)
            .map(|p| {
                let others = approx_words[p as usize] & !(1u64 << k);
                let word = others | (u64::from(table.eval(p)) << k);
                fw.dist.prob(p, exact.inputs()) * word.abs_diff(exact_words[p as usize]) as f64
            })
            .sum(),
    }
}

/// Runs the full decomposition sweep. This is the single implementation
/// behind every `Framework::decompose*` entry point; `fw` is assumed
/// validated (see `Framework::build`).
pub(crate) fn run<O: SolveObserver>(
    fw: &Framework,
    exact: &MultiOutputFn,
    observer: &mut O,
) -> DecompositionOutcome {
    let start = Instant::now();
    let n = exact.inputs();
    let m = exact.outputs();
    let _span = trace_span!(
        "Framework::decompose n={n} m={m} mode={:?}",
        fw.mode
    );

    // Phase 1: plan the whole grid. Partition generation is seeded per
    // (round, k) and independent of solve results, so it parallelizes and
    // can be hoisted out of the sweep entirely.
    let stage = Instant::now();
    let cells: Vec<(usize, u32)> = (0..fw.rounds)
        .flat_map(|round| (0..m).rev().map(move |k| (round, k)))
        .collect();
    let plan: Vec<Vec<Partition>> = if fw.parallel {
        cells
            .par_iter()
            .map(|&(round, k)| fw.generate_partitions(n, round, k))
            .collect()
    } else {
        cells
            .iter()
            .map(|&(round, k)| fw.generate_partitions(n, round, k))
            .collect()
    };
    observer.stage_end("partition_generation", stage.elapsed());

    // Phase 2: execute. Cells run in order; each cell's candidates fan out.
    // With a shared tier attached, this run's namespace is (solver
    // fingerprint, framework seed): only entries a re-solve would
    // reproduce bit for bit are visible.
    let cache = match &fw.shared_cache {
        Some(shared) => CopCache::with_shared(
            fw.cache,
            SharedRunHandle {
                cache: shared.clone(),
                solver_fingerprint: fw.solver.fingerprint(),
                framework_seed: fw.seed,
            },
        ),
        None => CopCache::new(fw.cache),
    };
    let scratch: ScratchPool<CopScratch> = ScratchPool::new();
    // Raced composite solvers are wall-clock dependent: their answers are
    // valid but not reproducible, so they bypass both cache tiers.
    let cacheable = fw.solver.deterministic();
    // The run-level soft deadline (if any) is shared by every cell; each
    // candidate's context gets whatever is left on the clock.
    let run_deadline: Option<Instant> = fw.deadline.map(|d| start + d);

    let num_patterns = exact.num_entries();
    let exact_words: Vec<u64> = (0..num_patterns as u64).map(|p| exact.eval_word(p)).collect();
    let mut approx_words = exact_words.clone();
    let mut approx = exact.clone();
    let mut choices: Vec<Option<ComponentChoice>> = vec![None; m as usize];
    let mut cop_solves = 0;
    let mut sb_iterations = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;

    for (cell, &(round, k)) in cells.iter().enumerate() {
        let partitions = &plan[cell];
        cop_solves += partitions.len();
        let solve_one = |w: &Partition| -> SolvedCandidate {
            let (cop, key) = build_cop(fw, exact, &exact_words, &approx_words, k, w);
            let seed = key.solver_seed(fw.seed);
            if cacheable {
                if let Some(cached) = cache.lookup(&key) {
                    return SolvedCandidate {
                        choice: ComponentChoice {
                            partition: w.clone(),
                            setting: cached.setting,
                            objective: cached.objective,
                        },
                        sb_iterations: 0,
                        bnb_nodes: 0,
                        hit: true,
                        winner: None,
                    };
                }
            }
            let mut buffers = scratch.acquire();
            let mut ctx = match &fw.cancel {
                Some(token) => SolveCtx::with_cancel(seed, token),
                None => SolveCtx::new(seed),
            };
            if let Some(at) = run_deadline {
                ctx = ctx.deadline(at.saturating_duration_since(Instant::now()));
            }
            let result = fw.solver.solve_cop(&cop, &ctx, &mut buffers);
            // Truncated answers are wall-clock artifacts; memoizing one
            // would replay it even when the next run has time to spare.
            if cacheable && result.halt == HaltReason::Completed {
                cache.insert(key, &result);
            }
            let winner = result.winner.map(|name| {
                let weights = cop.weights();
                let spread = weights.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
                    - weights.iter().fold(f64::INFINITY, |m, &v| m.min(v));
                (name, cop.rows(), cop.cols(), spread)
            });
            SolvedCandidate {
                choice: ComponentChoice {
                    partition: w.clone(),
                    setting: result.setting,
                    objective: result.objective,
                },
                sb_iterations: result.sb_iterations,
                bnb_nodes: result.bnb_nodes,
                hit: false,
                winner,
            }
        };
        let stage = Instant::now();
        let solved: Vec<SolvedCandidate> = if fw.parallel {
            partitions.par_iter().map(solve_one).collect()
        } else {
            partitions.iter().map(solve_one).collect()
        };
        observer.stage_end("cop_sweep", stage.elapsed());
        observer.counter("cop_solves", solved.len() as u64);
        let mut sweep_sb = 0usize;
        let mut sweep_nodes = 0u64;
        let mut sweep_hits = 0u64;
        for (pi, cand) in solved.iter().enumerate() {
            observer.cop_result(round, k, pi, cand.choice.objective, cand.sb_iterations);
            if let Some((winner, rows, cols, spread)) = &cand.winner {
                observer.cop_winner(round, k, pi, winner, *rows, *cols, *spread);
            }
            sweep_sb += cand.sb_iterations;
            sweep_nodes += cand.bnb_nodes;
            sweep_hits += u64::from(cand.hit);
        }
        sb_iterations += sweep_sb;
        if sweep_sb > 0 {
            observer.counter("sb_iterations", sweep_sb as u64);
        }
        if sweep_nodes > 0 {
            observer.counter("bnb_nodes", sweep_nodes);
        }
        let sweep_misses = solved.len() as u64 - sweep_hits;
        cache_hits += sweep_hits as usize;
        cache_misses += sweep_misses as usize;
        if sweep_hits > 0 {
            observer.counter("cache_hits", sweep_hits);
        }
        if sweep_misses > 0 {
            observer.counter("cache_misses", sweep_misses);
        }
        #[cfg(feature = "paranoid")]
        for cand in &solved {
            let direct =
                oracle_objective(fw, exact, &exact_words, &approx_words, k, &cand.choice);
            assert!(
                (direct - cand.choice.objective).abs() <= 1e-9,
                "paranoid: COP objective {} disagrees with the direct {:?}-mode \
                 recomputation {} (round {round}, component {k}, |Δ| = {})",
                cand.choice.objective,
                fw.mode,
                direct,
                (direct - cand.choice.objective).abs()
            );
        }

        // Sequential selection over the joined sweep: first strictly
        // minimal objective wins, independent of execution order.
        let best = solved
            .into_iter()
            .map(|cand| cand.choice)
            .min_by(|a, b| a.objective.total_cmp(&b.objective))
            .expect("at least one partition");

        // Keep the incumbent decomposition if this round's best partition
        // is worse (later rounds draw fresh partitions, which are not
        // guaranteed to contain the current one).
        if let Some(prev) = &choices[k as usize] {
            let incumbent = match fw.mode {
                Mode::Joint => (0..num_patterns as u64)
                    .map(|p| {
                        fw.dist.prob(p, n)
                            * approx_words[p as usize].abs_diff(exact_words[p as usize]) as f64
                    })
                    .sum::<f64>(),
                Mode::Separate => {
                    adis_boolfn::error_rate(exact.component(k), approx.component(k), &fw.dist)
                }
            };
            if incumbent <= best.objective + 1e-12 {
                let mut kept = prev.clone();
                kept.objective = incumbent;
                choices[k as usize] = Some(kept);
                observer.counter("incumbent_kept", 1);
                observer.component_chosen(round, k, incumbent, true);
                continue;
            }
        }

        // Apply the winning setting to component k.
        let stage = Instant::now();
        let table = best.setting.reconstruct(&best.partition);
        for p in 0..num_patterns as u64 {
            let bit = table.eval(p);
            if bit {
                approx_words[p as usize] |= 1 << k;
            } else {
                approx_words[p as usize] &= !(1u64 << k);
            }
        }
        approx.set_component(k, table);
        observer.stage_end("apply", stage.elapsed());
        observer.component_chosen(round, k, best.objective, false);
        choices[k as usize] = Some(best);
    }

    let choices: Vec<ComponentChoice> = choices
        .into_iter()
        .map(|c| c.expect("every component visited"))
        .collect();
    #[cfg(feature = "paranoid")]
    for (k, choice) in choices.iter().enumerate() {
        let table = choice.setting.reconstruct(&choice.partition);
        assert!(
            table == *approx.component(k as u32),
            "paranoid: component {k}'s recorded choice does not reconstruct the \
             reported approximation"
        );
    }
    let stage = Instant::now();
    let med = mean_error_distance(exact, &approx, &fw.dist);
    let er = error_rate_multi(exact, &approx, &fw.dist);
    observer.stage_end("metrics", stage.elapsed());
    observer.gauge("final_med", med);
    observer.gauge("final_er", er);
    DecompositionOutcome {
        approx,
        choices,
        med,
        er,
        elapsed: start.elapsed(),
        cop_solves,
        sb_iterations,
        cache_hits,
        cache_misses,
    }
}
