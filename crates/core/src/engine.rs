//! The batched partition-sweep engine behind [`Framework::decompose`].
//!
//! The engine walks the `partition × output × round` grid of core-COP
//! cells, planning partitions in bounded chunks of cells and executing
//! each cell with three resources threaded through every solve:
//!
//! - a [`CopCache`] memoizing COP answers by exact content (see
//!   [`crate::cache`] for why serving a repeat from the table is
//!   bit-identical to re-solving it);
//! - a [`ScratchPool`] of per-worker [`CopScratch`] buffers, so the bSB
//!   integrator allocates once per rayon worker instead of once per COP;
//! - content-derived solver seeds ([`MemoKey::solver_seed`]), which make
//!   the sweep's results independent of both grid position and execution
//!   order — the parallel sweep is bit-identical to the sequential one.
//!
//! Cells still *execute* in DALTA's order (rounds outer, components
//! MSB→LSB) because in joint mode each cell's COP weights depend on the
//! approximation state left by every previous cell; only the per-cell
//! partition sweep fans out in parallel.
//!
//! # The fused multi-COP batch path
//!
//! When the run is parallel, uncontrolled (no deadline or cancel token),
//! and the solver opts in via [`CopSolver::fused_spec`], a cell's sweep
//! does not solve one COP per rayon task. Instead the engine builds every
//! candidate's Ising instance, interns CSR patterns so same-shaped COPs
//! share one canonical pattern ([`PatternInterner`]), groups the
//! candidates by (pattern, quantized-ness), expands each into
//! `replicas` (COP, replica) units with content-derived seeds, and drains
//! contiguous chunks of each group through
//! [`SbSolver::solve_fused_with`](adis_sb::SbSolver) — `L` different COPs
//! advancing per SIMD pass, retired lanes refilled continuously from the
//! pending queue. Memo lookups, in-cell duplicate folding, and the
//! replica argmin replicate the sequential loop's order exactly, so the
//! fused path is bit-identical to the per-COP path (and the hit/miss
//! counters match, which the differential checker asserts).

use crate::cache::{CachedCop, CopCache, MemoKey, SharedRunHandle};
use crate::cop_solver::{CopOutcome, CopScratch, FusedSpec, HaltReason, SolveCtx};
use crate::framework::{ComponentChoice, DecompositionOutcome, Framework, Mode};
use crate::ising_solver::apply_type_reset;
use crate::{ColumnCop, SpinLayout};
use adis_boolfn::{
    error_rate_multi, mean_error_distance, BooleanMatrix, ColumnSetting, InputDist, MultiOutputFn,
    Partition,
};
use adis_ising::{CsrPattern, IsingProblem, PatternInterner};
use adis_sb::{FusedStats, FusedUnit, SbResult, ScratchPool};
use adis_telemetry::{trace_span, NullObserver, SolveObserver};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How many cells' partition lists are materialized at once. Generation is
/// seeded per `(round, k)` and independent of solve results, so chunking
/// changes neither the partitions nor the results — only peak plan memory,
/// which matters when `rounds × outputs` is large.
const PLAN_CHUNK: usize = 32;

/// One candidate's outcome within a cell's partition sweep.
struct SolvedCandidate {
    choice: ComponentChoice,
    sb_iterations: usize,
    bnb_nodes: u64,
    hit: bool,
    /// Portfolio attribution: the winning member plus the COP's shape
    /// features `(winner, rows, cols, weight spread)` — reported through
    /// [`SolveObserver::cop_winner`] after the sweep joins.
    winner: Option<(String, usize, usize, f64)>,
}

/// Builds the cell's COP and its memo identity.
///
/// Separate mode under the uniform distribution uses the cheap matrix key
/// (the matrix *is* the COP there — every weight is `±2^{-n}`); joint mode
/// and explicit distributions key by the exact weight bits, because the
/// joint weights fold in the offsets against the evolving approximation.
fn build_cop(
    fw: &Framework,
    exact: &MultiOutputFn,
    exact_words: &[u64],
    approx_words: &[u64],
    k: u32,
    w: &Partition,
) -> (ColumnCop, MemoKey) {
    match fw.mode {
        Mode::Separate => {
            let matrix = BooleanMatrix::build(exact.component(k), w);
            let cop = ColumnCop::separate(&matrix, w, &fw.dist);
            let key = if matches!(fw.dist, InputDist::Uniform) {
                MemoKey::from_matrix(&matrix, exact.inputs())
            } else {
                MemoKey::from_cop(&cop)
            };
            (cop, key)
        }
        Mode::Joint => {
            // `1u64 << k` below requires k ≤ 63; MultiOutputFn caps the
            // output count at 64, so every component index satisfies it.
            debug_assert!(k < 64, "component index {k} out of shift range");
            let (r, c) = (w.rows(), w.cols());
            let mut offsets = vec![0i64; r * c];
            let mut probs = vec![0.0; r * c];
            for i in 0..r {
                for j in 0..c {
                    let x = w.compose(i, j);
                    let others = (approx_words[x as usize] & !(1u64 << k)) as i64;
                    offsets[i * c + j] = others - exact_words[x as usize] as i64;
                    probs[i * c + j] = fw.dist.prob(x, exact.inputs());
                }
            }
            let cop = ColumnCop::joint(r, c, k, &offsets, &probs);
            let key = MemoKey::from_cop(&cop);
            (cop, key)
        }
    }
}

/// How one candidate of a fused cell sweep was answered.
enum FusedSlot {
    /// Answered from the memo table up front.
    Hit(CachedCop),
    /// First occurrence of its COP content: solved in the fused batch
    /// (index into the cell's unique-job list).
    Solved(usize),
    /// Same COP content as an earlier candidate in this cell: served from
    /// that candidate's answer and counted as a memo hit, exactly as the
    /// sequential loop (which inserts before the repeat's lookup) would.
    Dup(usize),
}

/// Lane width for a fused chunk: the widest const-width kernel the chunk
/// can fill at least once (continuous refill keeps the lanes busy as
/// units retire, so rounding down costs nothing).
fn fused_lane_width(units: usize) -> usize {
    if units >= 16 {
        16
    } else if units >= 8 {
        8
    } else if units >= 4 {
        4
    } else {
        units
    }
}

/// Solves one cell's partition sweep on the fused multi-COP batch path.
///
/// Semantics replicate the sequential per-candidate loop exactly:
///
/// - memo lookups happen per candidate in partition order;
/// - among the misses, repeated COP content is solved once and the
///   repeats are served from that answer, counted as hits (only with the
///   memo table enabled, matching the sequential loop's insert-then-hit
///   order);
/// - each unique COP integrates `spec.replicas` lanes from its
///   content-derived seed through the *same* composed [`adis_sb::SbSolver`]
///   the per-COP path runs, decodes every lane, re-optimizes its type
///   vector, and keeps the strictly best objective.
#[allow(clippy::too_many_arguments)]
fn sweep_cell_fused(
    fw: &Framework,
    spec: &FusedSpec,
    exact: &MultiOutputFn,
    exact_words: &[u64],
    approx_words: &[u64],
    k: u32,
    partitions: &[Partition],
    cache: &CopCache,
    cacheable: bool,
    scratch: &ScratchPool<CopScratch>,
    interner: &PatternInterner,
) -> (Vec<SolvedCandidate>, FusedStats) {
    // Resolve memo hits and in-cell duplicates in partition order — the
    // exact order the sequential loop consults the table in.
    let built: Vec<(ColumnCop, MemoKey)> = partitions
        .iter()
        .map(|w| build_cop(fw, exact, exact_words, approx_words, k, w))
        .collect();
    let mut slots: Vec<FusedSlot> = Vec::with_capacity(built.len());
    let mut unique: Vec<usize> = Vec::new();
    let mut seen: HashMap<&MemoKey, usize> = HashMap::new();
    for (cop, key) in &built {
        let _ = cop;
        if cacheable {
            if let Some(hit) = cache.lookup(key) {
                slots.push(FusedSlot::Hit(hit));
                continue;
            }
        }
        if cacheable && fw.cache {
            if let Some(&ui) = seen.get(key) {
                slots.push(FusedSlot::Dup(ui));
                continue;
            }
            seen.insert(key, unique.len());
        }
        slots.push(FusedSlot::Solved(unique.len()));
        unique.push(slots.len() - 1);
    }

    /// One unique COP's integration job.
    struct Job {
        /// Candidate (partition) index this job answers.
        cand: usize,
        layout: SpinLayout,
        /// Content-derived base seed; replica `r` integrates from
        /// `seed + r`, exactly like the per-COP path.
        seed: u64,
        problem: IsingProblem,
    }
    let jobs: Vec<Job> = unique
        .iter()
        .map(|&ci| {
            let (cop, key) = &built[ci];
            let mut problem = cop.to_ising();
            interner.intern(&mut problem);
            Job {
                cand: ci,
                layout: cop.layout(),
                seed: key.solver_seed(fw.seed),
                problem,
            }
        })
        .collect();

    // Group jobs by (canonical pattern, quantized-ness) — the fused
    // integrator's batching contract — then split each group's
    // candidate-major, replica-minor unit list into one contiguous chunk
    // per worker. Chunking never changes bits (each lane integrates
    // independently), only occupancy.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: HashMap<(*const CsrPattern, bool), usize> = HashMap::new();
    for (ji, job) in jobs.iter().enumerate() {
        let gk = (
            Arc::as_ptr(job.problem.pattern()),
            job.problem.quantized().is_some(),
        );
        let gi = *group_of.entry(gk).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(ji);
    }
    let workers = if fw.parallel {
        rayon::current_num_threads().max(1)
    } else {
        1
    };
    let mut tasks: Vec<Vec<(usize, u64)>> = Vec::new();
    for group in &groups {
        let units: Vec<(usize, u64)> = group
            .iter()
            .flat_map(|&ji| {
                let seed = jobs[ji].seed;
                (0..spec.replicas).map(move |rep| (ji, seed.wrapping_add(rep as u64)))
            })
            .collect();
        for chunk in units.chunks(units.len().div_ceil(workers).max(1)) {
            tasks.push(chunk.to_vec());
        }
    }

    // Integrate. Each task drains its units through persistent lanes with
    // continuous refill; per-unit results are bit-identical to
    // `spec.sb.seed(unit.seed).solve(unit.problem)` regardless of lane
    // width or packing (see `SbSolver::solve_fused_with`). The null
    // observer mirrors the per-COP path, which also drops sb streams.
    let run_task = |task: &Vec<(usize, u64)>| -> (Vec<SbResult>, FusedStats) {
        let units: Vec<FusedUnit<'_>> = task
            .iter()
            .map(|&(ji, seed)| FusedUnit {
                problem: &jobs[ji].problem,
                seed,
            })
            .collect();
        let mut buffers = scratch.acquire();
        if spec.heuristic {
            spec.sb.solve_fused_with(
                &units,
                fused_lane_width(units.len()),
                &mut buffers.fused,
                |u, state| {
                    let job = &jobs[task[u].0];
                    apply_type_reset(&built[job.cand].0, job.layout, state);
                },
                &mut NullObserver,
            )
        } else {
            spec.sb.solve_fused_with(
                &units,
                fused_lane_width(units.len()),
                &mut buffers.fused,
                |_, _| {},
                &mut NullObserver,
            )
        }
    };
    let outputs: Vec<(Vec<SbResult>, FusedStats)> = if fw.parallel {
        tasks.par_iter().map(run_task).collect()
    } else {
        tasks.iter().map(run_task).collect()
    };

    // Reassemble per-replica results in unit order, then fold each job's
    // replicas exactly like the generic per-COP path: sum iterations,
    // decode each lane, Theorem-3 post-pass, strict-< argmin.
    let mut cell_stats = FusedStats::default();
    let mut per_job: Vec<Vec<SbResult>> = (0..jobs.len()).map(|_| Vec::new()).collect();
    for (task, (results, stats)) in tasks.iter().zip(outputs) {
        cell_stats.merge(&stats);
        for ((ji, _), result) in task.iter().copied().zip(results) {
            per_job[ji].push(result);
        }
    }
    let mut answers: Vec<(ColumnSetting, f64, usize)> = Vec::with_capacity(jobs.len());
    for (job, results) in jobs.iter().zip(&per_job) {
        let (cop, key) = &built[job.cand];
        let mut best: Option<(ColumnSetting, f64)> = None;
        let mut iterations = 0;
        for result in results {
            iterations += result.iterations;
            let mut setting = job.layout.decode(&result.best_state);
            setting.t = cop.optimal_t(&setting.v1, &setting.v2);
            let obj = cop.objective(&setting);
            if best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
                best = Some((setting, obj));
            }
        }
        let (setting, objective) = best.expect("replicas > 0");
        // Fused solves are always uncontrolled, hence always Completed
        // and cacheable (when the solver is).
        if cacheable {
            cache.insert(key.clone(), &CopOutcome::completed(setting.clone(), objective));
        }
        answers.push((setting, objective, iterations));
    }

    let solved = slots
        .into_iter()
        .enumerate()
        .map(|(ci, slot)| {
            let (setting, objective, sb_iterations, hit) = match slot {
                FusedSlot::Hit(c) => (c.setting, c.objective, 0, true),
                FusedSlot::Solved(ui) => {
                    let (s, o, it) = &answers[ui];
                    (s.clone(), *o, *it, false)
                }
                FusedSlot::Dup(ui) => {
                    let (s, o, _) = &answers[ui];
                    (s.clone(), *o, 0, true)
                }
            };
            SolvedCandidate {
                choice: ComponentChoice {
                    partition: partitions[ci].clone(),
                    setting,
                    objective,
                },
                sb_iterations,
                bnb_nodes: 0,
                hit,
                winner: None,
            }
        })
        .collect();
    (solved, cell_stats)
}

/// Re-derives a candidate's objective directly from its reconstructed LUT
/// via `boolfn::metrics` — no cell-linearization, no COP. This is the
/// ground-truth side of the Eq. (9)/(16) invariant: the COP objective the
/// solver reported must equal the ER (separate mode) / MED (joint mode) of
/// actually substituting the candidate into the current approximation.
/// `approx_words` must be the pre-apply state the candidate's COP was
/// built against.
#[cfg(feature = "paranoid")]
fn oracle_objective(
    fw: &Framework,
    exact: &MultiOutputFn,
    exact_words: &[u64],
    approx_words: &[u64],
    k: u32,
    choice: &ComponentChoice,
) -> f64 {
    let table = choice.setting.reconstruct(&choice.partition);
    match fw.mode {
        Mode::Separate => adis_boolfn::error_rate(exact.component(k), &table, &fw.dist),
        Mode::Joint => (0..exact.num_entries() as u64)
            .map(|p| {
                let others = approx_words[p as usize] & !(1u64 << k);
                let word = others | (u64::from(table.eval(p)) << k);
                fw.dist.prob(p, exact.inputs()) * word.abs_diff(exact_words[p as usize]) as f64
            })
            .sum(),
    }
}

/// Runs the full decomposition sweep. This is the single implementation
/// behind every `Framework::decompose*` entry point; `fw` is assumed
/// validated (see `Framework::build`).
pub(crate) fn run<O: SolveObserver>(
    fw: &Framework,
    exact: &MultiOutputFn,
    observer: &mut O,
) -> DecompositionOutcome {
    let start = Instant::now();
    let n = exact.inputs();
    let m = exact.outputs();
    let _span = trace_span!(
        "Framework::decompose n={n} m={m} mode={:?}",
        fw.mode
    );

    let cells: Vec<(usize, u32)> = (0..fw.rounds)
        .flat_map(|round| (0..m).rev().map(move |k| (round, k)))
        .collect();

    // With a shared tier attached, this run's namespace is (solver
    // fingerprint, framework seed): only entries a re-solve would
    // reproduce bit for bit are visible.
    let cache = match &fw.shared_cache {
        Some(shared) => CopCache::with_shared(
            fw.cache,
            SharedRunHandle {
                cache: shared.clone(),
                solver_fingerprint: fw.solver.fingerprint(),
                framework_seed: fw.seed,
            },
        ),
        None => CopCache::new(fw.cache),
    };
    let scratch: ScratchPool<CopScratch> = ScratchPool::new();
    // Raced composite solvers are wall-clock dependent: their answers are
    // valid but not reproducible, so they bypass both cache tiers.
    let cacheable = fw.solver.deterministic();
    // The run-level soft deadline (if any) is shared by every cell; each
    // candidate's context gets whatever is left on the clock.
    let run_deadline: Option<Instant> = fw.deadline.map(|d| start + d);
    // The fused batch path engages only for a parallel, uncontrolled run
    // whose solver opts in — bit-identical either way, and
    // `parallel(false)` stays the one-candidate-at-a-time oracle.
    let fused: Option<FusedSpec> =
        if fw.parallel && fw.fused && fw.deadline.is_none() && fw.cancel.is_none() {
            fw.solver.fused_spec()
        } else {
            None
        };
    let interner = PatternInterner::new();
    let mut fused_stats = FusedStats::default();

    let num_patterns = exact.num_entries();
    let exact_words: Vec<u64> = (0..num_patterns as u64).map(|p| exact.eval_word(p)).collect();
    let mut approx_words = exact_words.clone();
    let mut approx = exact.clone();
    let mut choices: Vec<Option<ComponentChoice>> = vec![None; m as usize];
    let mut cop_solves = 0;
    let mut sb_iterations = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;

    // Cells execute in order; partitions are planned one bounded chunk of
    // cells ahead (generation is seeded per (round, k) and independent of
    // solve results, so chunking is invisible to outcomes).
    for chunk in cells.chunks(PLAN_CHUNK) {
        let stage = Instant::now();
        let plan: Vec<Vec<Partition>> = if fw.parallel {
            chunk
                .par_iter()
                .map(|&(round, k)| fw.generate_partitions(n, round, k))
                .collect()
        } else {
            chunk
                .iter()
                .map(|&(round, k)| fw.generate_partitions(n, round, k))
                .collect()
        };
        observer.stage_end("partition_generation", stage.elapsed());

        for (&(round, k), partitions) in chunk.iter().zip(&plan) {
            cop_solves += partitions.len();
            let solve_one = |w: &Partition| -> SolvedCandidate {
                let (cop, key) = build_cop(fw, exact, &exact_words, &approx_words, k, w);
                let seed = key.solver_seed(fw.seed);
                if cacheable {
                    if let Some(cached) = cache.lookup(&key) {
                        return SolvedCandidate {
                            choice: ComponentChoice {
                                partition: w.clone(),
                                setting: cached.setting,
                                objective: cached.objective,
                            },
                            sb_iterations: 0,
                            bnb_nodes: 0,
                            hit: true,
                            winner: None,
                        };
                    }
                }
                let mut buffers = scratch.acquire();
                let mut ctx = match &fw.cancel {
                    Some(token) => SolveCtx::with_cancel(seed, token),
                    None => SolveCtx::new(seed),
                };
                if let Some(at) = run_deadline {
                    ctx = ctx.deadline(at.saturating_duration_since(Instant::now()));
                }
                let result = fw.solver.solve_cop(&cop, &ctx, &mut buffers);
                // Truncated answers are wall-clock artifacts; memoizing one
                // would replay it even when the next run has time to spare.
                if cacheable && result.halt == HaltReason::Completed {
                    cache.insert(key, &result);
                }
                let winner = result
                    .winner
                    .map(|name| (name, cop.rows(), cop.cols(), cop.weight_spread()));
                SolvedCandidate {
                    choice: ComponentChoice {
                        partition: w.clone(),
                        setting: result.setting,
                        objective: result.objective,
                    },
                    sb_iterations: result.sb_iterations,
                    bnb_nodes: result.bnb_nodes,
                    hit: false,
                    winner,
                }
            };
            let stage = Instant::now();
            let solved: Vec<SolvedCandidate> = match &fused {
                Some(spec) => {
                    let (solved, stats) = sweep_cell_fused(
                        fw,
                        spec,
                        exact,
                        &exact_words,
                        &approx_words,
                        k,
                        partitions,
                        &cache,
                        cacheable,
                        &scratch,
                        &interner,
                    );
                    if stats.units > 0 {
                        observer.fused_batch(
                            stats.lane_width,
                            stats.units,
                            stats.refills,
                            stats.busy_lane_iterations,
                            stats.idle_lane_iterations,
                        );
                    }
                    fused_stats.merge(&stats);
                    solved
                }
                None if fw.parallel => partitions.par_iter().map(solve_one).collect(),
                None => partitions.iter().map(solve_one).collect(),
            };
            observer.stage_end("cop_sweep", stage.elapsed());
            observer.counter("cop_solves", solved.len() as u64);
            let mut sweep_sb = 0usize;
            let mut sweep_nodes = 0u64;
            let mut sweep_hits = 0u64;
            for (pi, cand) in solved.iter().enumerate() {
                observer.cop_result(round, k, pi, cand.choice.objective, cand.sb_iterations);
                if let Some((winner, rows, cols, spread)) = &cand.winner {
                    observer.cop_winner(round, k, pi, winner, *rows, *cols, *spread);
                }
                sweep_sb += cand.sb_iterations;
                sweep_nodes += cand.bnb_nodes;
                sweep_hits += u64::from(cand.hit);
            }
            sb_iterations += sweep_sb;
            if sweep_sb > 0 {
                observer.counter("sb_iterations", sweep_sb as u64);
            }
            if sweep_nodes > 0 {
                observer.counter("bnb_nodes", sweep_nodes);
            }
            let sweep_misses = solved.len() as u64 - sweep_hits;
            cache_hits += sweep_hits as usize;
            cache_misses += sweep_misses as usize;
            if sweep_hits > 0 {
                observer.counter("cache_hits", sweep_hits);
            }
            if sweep_misses > 0 {
                observer.counter("cache_misses", sweep_misses);
            }
            #[cfg(feature = "paranoid")]
            for cand in &solved {
                let direct =
                    oracle_objective(fw, exact, &exact_words, &approx_words, k, &cand.choice);
                assert!(
                    (direct - cand.choice.objective).abs() <= 1e-9,
                    "paranoid: COP objective {} disagrees with the direct {:?}-mode \
                     recomputation {} (round {round}, component {k}, |Δ| = {})",
                    cand.choice.objective,
                    fw.mode,
                    direct,
                    (direct - cand.choice.objective).abs()
                );
            }

            // Sequential selection over the joined sweep: first strictly
            // minimal objective wins, independent of execution order.
            let best = solved
                .into_iter()
                .map(|cand| cand.choice)
                .min_by(|a, b| a.objective.total_cmp(&b.objective))
                .expect("at least one partition");

            // Keep the incumbent decomposition if this round's best partition
            // is worse (later rounds draw fresh partitions, which are not
            // guaranteed to contain the current one).
            if let Some(prev) = &choices[k as usize] {
                let incumbent = match fw.mode {
                    Mode::Joint => (0..num_patterns as u64)
                        .map(|p| {
                            fw.dist.prob(p, n)
                                * approx_words[p as usize].abs_diff(exact_words[p as usize]) as f64
                        })
                        .sum::<f64>(),
                    Mode::Separate => {
                        adis_boolfn::error_rate(exact.component(k), approx.component(k), &fw.dist)
                    }
                };
                if incumbent <= best.objective + 1e-12 {
                    let mut kept = prev.clone();
                    kept.objective = incumbent;
                    choices[k as usize] = Some(kept);
                    observer.counter("incumbent_kept", 1);
                    observer.component_chosen(round, k, incumbent, true);
                    continue;
                }
            }

            // Apply the winning setting to component k.
            let stage = Instant::now();
            let table = best.setting.reconstruct(&best.partition);
            for p in 0..num_patterns as u64 {
                let bit = table.eval(p);
                if bit {
                    approx_words[p as usize] |= 1u64 << k;
                } else {
                    approx_words[p as usize] &= !(1u64 << k);
                }
            }
            approx.set_component(k, table);
            observer.stage_end("apply", stage.elapsed());
            observer.component_chosen(round, k, best.objective, false);
            choices[k as usize] = Some(best);
        }
    }

    let choices: Vec<ComponentChoice> = choices
        .into_iter()
        .map(|c| c.expect("every component visited"))
        .collect();
    #[cfg(feature = "paranoid")]
    for (k, choice) in choices.iter().enumerate() {
        let table = choice.setting.reconstruct(&choice.partition);
        assert!(
            table == *approx.component(k as u32),
            "paranoid: component {k}'s recorded choice does not reconstruct the \
             reported approximation"
        );
    }
    let stage = Instant::now();
    let med = mean_error_distance(exact, &approx, &fw.dist);
    let er = error_rate_multi(exact, &approx, &fw.dist);
    observer.stage_end("metrics", stage.elapsed());
    observer.gauge("final_med", med);
    observer.gauge("final_er", er);
    DecompositionOutcome {
        approx,
        choices,
        med,
        er,
        elapsed: start.elapsed(),
        cop_solves,
        sb_iterations,
        cache_hits,
        cache_misses,
        fused_stats,
    }
}
