//! Recursive multi-level decomposition into LUT cascades.
//!
//! A single [`Framework`] pass rewrites every output as `F(φ(B), A)`: one
//! level of decomposition, two LUTs per output. For large input counts
//! the extracted sub-functions are themselves big LUTs (`φ` has `|B|`
//! inputs, `F` has `|A| + 1`), and nothing stops the same machinery from
//! decomposing *them*. [`MultiLevelFramework`] does exactly that: level 0
//! runs the base framework on the whole function; each further level
//! sweeps the current cascades' flat leaves and, for every leaf still
//! large enough, runs a fresh single-output decomposition on it,
//! replacing the leaf with a deeper [`CascadeNode::Split`].
//!
//! ## The error budget
//!
//! Every refinement stacks approximation error, so acceptance is governed
//! by a **global** budget on the final reconstruction's error (MED in
//! [`Mode::Joint`], word error rate in [`Mode::Separate`]), not by
//! per-solve objectives. The budget headroom above the level-0 error is
//! allocated linearly across the remaining levels: a refinement at level
//! `L` is kept only while the *re-measured, from-scratch* error of the
//! whole reconstructed cascade stays within level `L`'s allowance;
//! otherwise the leaf reverts to its flat table. The reported
//! [`MultiLevelOutcome::med`]/[`er`](MultiLevelOutcome::er) are always
//! recomputed from the materialized cascade — never summed from per-level
//! estimates — which is what the adis-check "decomposition" family
//! re-verifies. Without a budget every refinement is kept (the caller
//! asked for depth; bits are the objective, error the price).
//!
//! Sub-level solves always weight errors uniformly: an explicit top-level
//! input distribution does not marginalize onto a leaf's local input
//! space, so only the *acceptance* metric (which is measured on the full
//! input space) uses the configured distribution.

use crate::framework::{ConfigError, Framework};
use crate::Mode;
use adis_boolfn::{
    error_rate_multi, mean_error_distance, InputDist, MultiOutputFn, Partition, TruthTable,
};
use adis_telemetry::{NullObserver, SolveObserver};
use std::time::{Duration, Instant};

/// One node of a decomposed LUT cascade: either a materialized truth
/// table, or a split `F(φ(B), A)` whose two sub-functions are themselves
/// cascade nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CascadeNode {
    /// A flat LUT over this node's inputs.
    Flat(TruthTable),
    /// A one-level disjoint decomposition `F(φ(B), A)`.
    Split {
        /// The input partition this split decomposes over.
        partition: Partition,
        /// The bound-set function `φ` over `|B|` inputs.
        phi: Box<CascadeNode>,
        /// The free-set function `F` over `|A| + 1` inputs; input bit 0
        /// is the `φ` value (the [`ColumnSetting::compose_f`]
        /// convention).
        ///
        /// [`ColumnSetting::compose_f`]: adis_boolfn::ColumnSetting::compose_f
        f: Box<CascadeNode>,
    },
}

impl CascadeNode {
    /// Number of input variables this node consumes.
    pub fn inputs(&self) -> u32 {
        match self {
            CascadeNode::Flat(t) => t.inputs(),
            CascadeNode::Split { partition, .. } => partition.inputs(),
        }
    }

    /// Evaluates the cascade on `pattern` (over this node's inputs).
    pub fn eval(&self, pattern: u64) -> bool {
        match self {
            CascadeNode::Flat(t) => t.eval(pattern),
            CascadeNode::Split { partition, phi, f } => {
                let (row, col) = partition.split(pattern);
                let phi_val = phi.eval(col as u64);
                f.eval(((row as u64) << 1) | u64::from(phi_val))
            }
        }
    }

    /// Total LUT storage of the cascade, in bits (each flat leaf costs
    /// `2^inputs`).
    pub fn size_bits(&self) -> u64 {
        match self {
            CascadeNode::Flat(t) => t.num_entries() as u64,
            CascadeNode::Split { phi, f, .. } => phi.size_bits() + f.size_bits(),
        }
    }

    /// Depth of the cascade (a flat leaf is depth 0).
    pub fn depth(&self) -> usize {
        match self {
            CascadeNode::Flat(_) => 0,
            CascadeNode::Split { phi, f, .. } => 1 + phi.depth().max(f.depth()),
        }
    }

    /// Number of [`Split`](CascadeNode::Split) nodes in the cascade.
    pub fn num_splits(&self) -> usize {
        match self {
            CascadeNode::Flat(_) => 0,
            CascadeNode::Split { phi, f, .. } => 1 + phi.num_splits() + f.num_splits(),
        }
    }

    /// Materializes the cascade back into a flat truth table.
    pub fn to_table(&self) -> TruthTable {
        TruthTable::from_fn(self.inputs(), |p| self.eval(p))
    }

    /// Collects the paths of every flat leaf with at least `min_inputs`
    /// inputs (paths are phi/f turn sequences from this node).
    fn refinable_paths(&self, min_inputs: u32, prefix: &mut Vec<Turn>, out: &mut Vec<Vec<Turn>>) {
        match self {
            CascadeNode::Flat(t) => {
                // A leaf needs ≥ 2 inputs for any valid bound size.
                if t.inputs() >= min_inputs.max(2) {
                    out.push(prefix.clone());
                }
            }
            CascadeNode::Split { phi, f, .. } => {
                prefix.push(Turn::Phi);
                phi.refinable_paths(min_inputs, prefix, out);
                prefix.pop();
                prefix.push(Turn::F);
                f.refinable_paths(min_inputs, prefix, out);
                prefix.pop();
            }
        }
    }

    /// Navigates to the node at `path`.
    fn at_mut(&mut self, path: &[Turn]) -> &mut CascadeNode {
        let mut node = self;
        for turn in path {
            node = match node {
                CascadeNode::Split { phi, f, .. } => match turn {
                    Turn::Phi => phi.as_mut(),
                    Turn::F => f.as_mut(),
                },
                CascadeNode::Flat(_) => unreachable!("path descends into a leaf"),
            };
        }
        node
    }
}

/// One step of a leaf path inside a cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Phi,
    F,
}

/// Per-level refinement accounting for a multi-level run.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// The level (1-based; level 0 is the base decomposition and is
    /// described by the outcome's top-level counters).
    pub level: usize,
    /// Leaves large enough to attempt refining at this level.
    pub attempted: usize,
    /// Refinements kept (the rest reverted under the error budget).
    pub refined: usize,
    /// From-scratch MED of the full cascade after this level.
    pub med: f64,
    /// From-scratch word error rate of the full cascade after this level.
    pub er: f64,
}

/// Result of a [`MultiLevelFramework`] run.
#[derive(Debug, Clone)]
pub struct MultiLevelOutcome {
    /// Per-output LUT cascades, LSB first.
    pub nodes: Vec<CascadeNode>,
    /// The cascade materialized back into a flat function (what `med`
    /// and `er` are measured against the exact function).
    pub approx: MultiOutputFn,
    /// Mean error distance of the final reconstruction, computed from
    /// scratch on the materialized cascade.
    pub med: f64,
    /// Word error rate of the final reconstruction, computed from
    /// scratch.
    pub er: f64,
    /// Per-level refinement reports (levels 1 and deeper).
    pub levels: Vec<LevelReport>,
    /// Total LUT storage of the cascades, in bits.
    pub cascade_bits: u64,
    /// Storage of the flat (undecomposed) function, in bits.
    pub direct_bits: u64,
    /// Wall-clock time of the whole multi-level run.
    pub elapsed: Duration,
    /// Core-COP instances examined, summed over every level.
    pub cop_solves: usize,
    /// bSB iterations, summed over every level.
    pub sb_iterations: usize,
    /// Memo-table hits, summed over every level.
    pub cache_hits: usize,
    /// Memo-table misses, summed over every level.
    pub cache_misses: usize,
}

/// Recursive multi-level decomposition driver (see the module docs).
///
/// Wraps a base [`Framework`] (which runs level 0 and, with the bound
/// size clamped to each leaf's arity, every deeper solve) with the
/// cascade bookkeeping: leaf sweeping, budget-gated acceptance, and
/// final from-scratch reconciliation.
///
/// # Examples
///
/// ```
/// use adis_boolfn::MultiOutputFn;
/// use adis_core::{Framework, Mode, MultiLevelFramework};
///
/// let f = MultiOutputFn::from_word_fn(8, 6, |p| (p * p) >> 4);
/// let outcome = MultiLevelFramework::new(Framework::new(Mode::Joint, 4).partitions(4), 2)
///     .min_inputs(4)
///     .decompose(&f)
///     .unwrap();
/// // The reported error is measured on the materialized cascade.
/// assert!(outcome.med >= 0.0);
/// assert!(outcome.nodes.iter().any(|n| n.depth() >= 1));
/// ```
#[derive(Debug, Clone)]
pub struct MultiLevelFramework {
    base: Framework,
    max_levels: usize,
    min_inputs: u32,
    error_budget: Option<f64>,
}

impl MultiLevelFramework {
    /// A multi-level driver over `base` with at most `max_levels` levels
    /// (clamped below at 1; 1 reproduces a plain single-level run).
    /// Defaults: refine leaves with ≥ 6 inputs, no error budget.
    pub fn new(base: Framework, max_levels: usize) -> Self {
        MultiLevelFramework {
            base,
            max_levels: max_levels.max(1),
            min_inputs: 6,
            error_budget: None,
        }
    }

    /// Only refine flat leaves with at least this many inputs (clamped
    /// below at 2 — smaller leaves admit no valid partition).
    pub fn min_inputs(mut self, min_inputs: u32) -> Self {
        self.min_inputs = min_inputs.max(2);
        self
    }

    /// Sets the global error budget on the final reconstruction (MED in
    /// joint mode, ER in separate mode). Refinements that would push the
    /// from-scratch cascade error past the level's allowance are
    /// reverted.
    pub fn error_budget(mut self, budget: f64) -> Self {
        self.error_budget = Some(budget.max(0.0));
        self
    }

    /// Runs the multi-level decomposition.
    ///
    /// # Errors
    ///
    /// Returns the base framework's [`ConfigError`] when its
    /// configuration is invalid for `exact` (the per-leaf sub-solves
    /// clamp the bound size themselves and cannot fail validation).
    pub fn decompose(&self, exact: &MultiOutputFn) -> Result<MultiLevelOutcome, ConfigError> {
        self.decompose_with(exact, &mut NullObserver)
    }

    /// [`decompose`](Self::decompose) with progress reporting: the base
    /// framework's full observer stream for every level's solves, plus
    /// per-level gauges `multilevel_L{level}_med` / `_er` / `_refined`
    /// once each level's sweep settles.
    pub fn decompose_with<O: SolveObserver>(
        &self,
        exact: &MultiOutputFn,
        observer: &mut O,
    ) -> Result<MultiLevelOutcome, ConfigError> {
        let started = Instant::now();
        let level0 = self.base.try_decompose_with(exact, observer)?;

        let mut cop_solves = level0.cop_solves;
        let mut sb_iterations = level0.sb_iterations;
        let mut cache_hits = level0.cache_hits;
        let mut cache_misses = level0.cache_misses;

        let mut nodes: Vec<CascadeNode> = level0
            .choices
            .iter()
            .map(|c| CascadeNode::Split {
                partition: c.partition.clone(),
                phi: Box::new(CascadeNode::Flat(c.setting.phi(&c.partition))),
                f: Box::new(CascadeNode::Flat(c.setting.compose_f(&c.partition))),
            })
            .collect();

        let base_err = self.error_of(exact, &nodes).0;
        let mut levels = Vec::new();

        for level in 1..self.max_levels {
            // Budget allowance for this level: the headroom above the
            // level-0 error, released linearly across levels 1..max-1.
            let allowance = self.error_budget.map(|eps| {
                let headroom = (eps - base_err).max(0.0);
                let share = level as f64 / (self.max_levels - 1) as f64;
                base_err + headroom * share
            });

            let mut attempted = 0;
            let mut refined = 0;
            for out_idx in 0..nodes.len() {
                let mut paths = Vec::new();
                nodes[out_idx].refinable_paths(self.min_inputs, &mut Vec::new(), &mut paths);
                for path in paths {
                    attempted += 1;
                    let leaf = nodes[out_idx].at_mut(&path);
                    let CascadeNode::Flat(table) = &*leaf else {
                        unreachable!("refinable paths end at flat leaves");
                    };
                    let table = table.clone();
                    let sub = MultiOutputFn::new(vec![table.clone()]);
                    let sub_out = self
                        .leaf_framework(table.inputs(), level, out_idx, attempted)
                        .try_decompose_with(&sub, observer)
                        .expect("leaf framework is valid by construction");
                    cop_solves += sub_out.cop_solves;
                    sb_iterations += sub_out.sb_iterations;
                    cache_hits += sub_out.cache_hits;
                    cache_misses += sub_out.cache_misses;

                    let choice = &sub_out.choices[0];
                    *leaf = CascadeNode::Split {
                        partition: choice.partition.clone(),
                        phi: Box::new(CascadeNode::Flat(choice.setting.phi(&choice.partition))),
                        f: Box::new(CascadeNode::Flat(
                            choice.setting.compose_f(&choice.partition),
                        )),
                    };
                    if let Some(allow) = allowance {
                        let (err, _) = self.error_of(exact, &nodes);
                        if err > allow + 1e-12 {
                            // Reconcile: the refinement overdraws the
                            // budget — restore the flat leaf.
                            *nodes[out_idx].at_mut(&path) = CascadeNode::Flat(table);
                            continue;
                        }
                    }
                    refined += 1;
                }
            }

            let (med, er) = self.metrics_of(exact, &nodes);
            observer.gauge(&format!("multilevel_l{level}_med"), med);
            observer.gauge(&format!("multilevel_l{level}_er"), er);
            observer.gauge(&format!("multilevel_l{level}_refined"), refined as f64);
            levels.push(LevelReport {
                level,
                attempted,
                refined,
                med,
                er,
            });
            if refined == 0 {
                break; // fixed point: nothing left the budget admits
            }
        }

        let approx = materialize(exact.inputs(), &nodes);
        let med = mean_error_distance(exact, &approx, &self.base.dist);
        let er = error_rate_multi(exact, &approx, &self.base.dist);
        let cascade_bits = nodes.iter().map(CascadeNode::size_bits).sum();
        let direct_bits = exact.num_entries() as u64 * u64::from(exact.outputs());
        Ok(MultiLevelOutcome {
            nodes,
            approx,
            med,
            er,
            levels,
            cascade_bits,
            direct_bits,
            elapsed: started.elapsed(),
            cop_solves,
            sb_iterations,
            cache_hits,
            cache_misses,
        })
    }

    /// The framework for one leaf solve: the base configuration with the
    /// bound size clamped to the leaf's arity, uniform error weighting
    /// (see the module docs), and a level/leaf-derived seed.
    fn leaf_framework(&self, leaf_inputs: u32, level: usize, out_idx: usize, leaf: usize) -> Framework {
        let mut fw = self.base.clone();
        fw.bound_size = self.base.bound_size.min(leaf_inputs - 1).max(1);
        fw.dist = InputDist::Uniform;
        fw.seed = self
            .base
            .seed
            .wrapping_add((level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((out_idx as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(leaf as u64);
        fw
    }

    /// The budget metric (MED in joint mode, ER in separate mode) plus
    /// the other one, measured from scratch on the materialized cascade.
    fn error_of(&self, exact: &MultiOutputFn, nodes: &[CascadeNode]) -> (f64, f64) {
        let (med, er) = self.metrics_of(exact, nodes);
        match self.base.mode {
            Mode::Joint => (med, er),
            Mode::Separate => (er, med),
        }
    }

    fn metrics_of(&self, exact: &MultiOutputFn, nodes: &[CascadeNode]) -> (f64, f64) {
        let approx = materialize(exact.inputs(), nodes);
        (
            mean_error_distance(exact, &approx, &self.base.dist),
            error_rate_multi(exact, &approx, &self.base.dist),
        )
    }
}

/// Evaluates every cascade on every pattern, yielding the flat function.
fn materialize(inputs: u32, nodes: &[CascadeNode]) -> MultiOutputFn {
    MultiOutputFn::new(
        nodes
            .iter()
            .map(|n| TruthTable::from_fn(inputs, |p| n.eval(p)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::apply_decomposition;

    fn test_fn(inputs: u32, outputs: u32) -> MultiOutputFn {
        let mask = if outputs == 64 { u64::MAX } else { (1u64 << outputs) - 1 };
        MultiOutputFn::from_word_fn(inputs, outputs, |p| (p.wrapping_mul(2654435761) >> 7) & mask)
    }

    #[test]
    fn single_level_matches_base_framework() {
        let f = test_fn(6, 4);
        let base = Framework::new(Mode::Joint, 3).partitions(4).seed(3);
        let flat = base.decompose(&f);
        let ml = MultiLevelFramework::new(base, 1).decompose(&f).unwrap();
        assert_eq!(ml.levels.len(), 0);
        assert_eq!(ml.approx, flat.approx);
        assert_eq!(ml.med.to_bits(), flat.med.to_bits());
        assert!(ml.nodes.iter().all(|n| n.depth() == 1));
    }

    #[test]
    fn cascade_eval_matches_apply_decomposition() {
        let f = test_fn(7, 3);
        let out = MultiLevelFramework::new(Framework::new(Mode::Joint, 4).partitions(3), 2)
            .min_inputs(3)
            .decompose(&f)
            .unwrap();
        // The materialized approx is exactly what node-by-node eval says.
        for (k, node) in out.nodes.iter().enumerate() {
            for p in 0..f.num_entries() as u64 {
                assert_eq!(node.eval(p), out.approx.eval_bit(k as u32, p));
            }
        }
        // Every split agrees with apply_decomposition on its two parts
        // materialized as tables.
        for node in &out.nodes {
            if let CascadeNode::Split { partition, phi, f: fnode } = node {
                let rebuilt =
                    apply_decomposition(&phi.to_table(), &fnode.to_table(), partition);
                assert_eq!(rebuilt, node.to_table());
            }
        }
    }

    #[test]
    fn reported_metrics_match_from_scratch_recomputation() {
        let f = test_fn(8, 4);
        let out = MultiLevelFramework::new(Framework::new(Mode::Joint, 4).partitions(3), 2)
            .min_inputs(4)
            .decompose(&f)
            .unwrap();
        let med = mean_error_distance(&f, &out.approx, &InputDist::Uniform);
        let er = error_rate_multi(&f, &out.approx, &InputDist::Uniform);
        assert_eq!(out.med.to_bits(), med.to_bits());
        assert_eq!(out.er.to_bits(), er.to_bits());
        assert!(out.nodes.iter().any(|n| n.depth() >= 2), "no leaf refined");
        assert!(out.cascade_bits < out.direct_bits);
    }

    #[test]
    fn error_budget_is_respected() {
        let f = test_fn(8, 4);
        let base = Framework::new(Mode::Joint, 4).partitions(3).seed(1);
        let unbudgeted = MultiLevelFramework::new(base.clone(), 3)
            .min_inputs(3)
            .decompose(&f)
            .unwrap();
        let level0 = base.decompose(&f);
        // Budget exactly at the level-0 error: only error-free (or
        // error-neutral) refinements may be kept.
        let tight = MultiLevelFramework::new(base, 3)
            .min_inputs(3)
            .error_budget(level0.med)
            .decompose(&f)
            .unwrap();
        assert!(
            tight.med <= level0.med + 1e-12,
            "budgeted med {} exceeds budget {}",
            tight.med,
            level0.med
        );
        assert!(tight.med <= unbudgeted.med + 1e-12);
    }

    #[test]
    fn size_accounting_is_consistent() {
        let f = test_fn(7, 2);
        let out = MultiLevelFramework::new(Framework::new(Mode::Separate, 3).partitions(2), 2)
            .min_inputs(3)
            .decompose(&f)
            .unwrap();
        let bits: u64 = out.nodes.iter().map(CascadeNode::size_bits).sum();
        assert_eq!(bits, out.cascade_bits);
        assert_eq!(out.direct_bits, 2 * 128);
        for node in &out.nodes {
            assert_eq!(node.inputs(), 7);
            assert!(node.num_splits() >= 1);
        }
    }
}
