//! # adis-core — Ising-model-based approximate disjoint decomposition
//!
//! This crate implements the primary contribution of *Efficient Approximate
//! Decomposition Solver using Ising Model* (DAC 2024): searching for
//! approximate disjoint decompositions of multi-output Boolean functions —
//! the key step in building small approximate LUTs — by mapping the core
//! combinatorial optimization problem onto a second-order Ising model and
//! solving it with ballistic simulated bifurcation.
//!
//! The pieces, bottom-up:
//!
//! - [`ColumnCop`]: the **column-based core COP** (Section 3.1) in
//!   cell-linear form, with the exact separate-mode (Eq. 9) and joint-mode
//!   (Eq. 16) Ising encodings, Theorem-3 type optimization, and exact
//!   reference solvers;
//! - [`IsingCopSolver`]: bSB on that encoding with the paper's **dynamic
//!   stop criterion** and **type-reset heuristic** (Section 3.3);
//! - [`RowCop`]: the row-based COP of DALTA with an exact branch-and-bound
//!   ("DALTA-ILP"), a generic ILP cross-check, and the **third-order Ising
//!   formulation** (with higher-order SB) the paper argues against;
//! - [`baselines`]: reconstructions of the DALTA heuristic and BA;
//! - [`CopSolver`]: the pluggable core-COP solver trait every method above
//!   implements (with [`CopSolverKind`] as the ready-made enum of the
//!   paper's four). Each solve receives a [`SolveCtx`] — seed, soft
//!   deadline, cancel token, best-known bound — and answers with a
//!   [`CopOutcome`] carrying a [`HaltReason`]. Two relaxation baselines,
//!   [`SimCimCopSolver`] (mean-field coherent-Ising-machine dynamics) and
//!   [`DochCopSolver`] (difference-of-convex iteration), round out the
//!   roster;
//! - [`PortfolioSolver`]: runs several enrolled solvers on each COP —
//!   sequentially, or racing them on threads with first-to-finish
//!   cancellation — and keeps the best answer, reporting the winning lane
//!   through the observer seam;
//! - [`Framework`]: the outer loop — `P` candidate partitions per output
//!   bit, `R` rounds, [`Mode::Separate`] or [`Mode::Joint`] — shared by all
//!   solvers, producing a [`DecompositionOutcome`] that assembles into an
//!   [`adis_lut::ApproxLut`]. Behind it sits a batched sweep engine that
//!   plans the `partition × output × round` grid in bounded chunks of
//!   cells, memoizes repeated COPs by exact content (hit/miss counts
//!   surface in the outcome and telemetry), reuses per-worker solver
//!   scratch, and — for parallel runs of generic-path Ising solvers —
//!   packs the COPs of each cell into shared-sparsity SIMD lanes and
//!   advances them in fused batches with continuous lane refill
//!   ([`Framework::fused`]), bit-identical to the per-COP sweep;
//! - [`SharedCopCache`]: a second, bounded memo tier shared *across* runs
//!   — sharded, clock-evicting, namespaced by solver fingerprint and
//!   framework seed — attached via [`Framework::shared_cache`]. Because
//!   solver seeds are content-derived, a hit returns bit-for-bit what
//!   recomputing would have, at any capacity and under any concurrency;
//! - [`PartitionedCopSolver`]: block-coordinate partitioned COP solving
//!   for instances whose `2r + c` spin count outgrows a single Ising
//!   instance — the type vector is split into column blocks solved by
//!   coordinated inner bSB runs against boundary terms frozen from the
//!   incumbent, iterated to a fixed point;
//! - [`MultiLevelFramework`]: recursive multi-level decomposition — the
//!   extracted `φ` and `F` sub-functions are themselves decomposed into
//!   [`CascadeNode`] LUT cascades, under a global error budget allocated
//!   across levels and reconciled against from-scratch metrics of the
//!   final reconstruction.
//!
//! # Mapping to the paper
//!
//! A *column setting* `(w, V₁, V₂, T)` (Definition 2) is the repo's
//! [`adis_boolfn::ColumnSetting`] plus the weight matrix held by
//! [`ColumnCop`]: `V₁`/`V₂` choose which free-set columns map to pattern 1
//! or 2, `T` assigns a type to every bound-set row, and `w` weighs each
//! cell by input probability (×2^bit-significance in joint mode). The
//! separate-mode energy (Eq. 9) scores ER for one output bit; the
//! joint-mode energy (Eq. 16) scores MED across all bits sharing a
//! partition. [`CopSolverKind`] selects who minimizes it: the paper's bSB
//! solver, exact branch and bound, or the DALTA/BA baselines.
//!
//! # Observability
//!
//! [`Framework::decompose_with`] and [`IsingCopSolver::solve_with`] report
//! stage timings, per-partition COP objectives, cache hit/miss counters,
//! incumbent-vs-challenger decisions and raw bSB trajectories to any
//! [`adis_telemetry::SolveObserver`] (e.g. [`adis_telemetry::Recorder`]);
//! passing [`adis_telemetry::NullObserver`] (what [`Framework::decompose`]
//! does) compiles the instrumentation away.
//!
//! # Quick start
//!
//! ```
//! use adis_boolfn::MultiOutputFn;
//! use adis_core::{Framework, Mode};
//!
//! // Approximate a 6-input, 4-output function with |B| = 3 decompositions.
//! let f = MultiOutputFn::from_word_fn(6, 4, |p| (3 * p + 1) & 0xF);
//! let outcome = Framework::new(Mode::Joint, 3).partitions(4).decompose(&f);
//! let lut = outcome.to_lut();
//! println!("MED {:.3} at {} bits (direct: {})", outcome.med, lut.size_bits(), lut.direct_size_bits());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
mod cache;
mod cop;
mod cop_solver;
mod engine;
mod framework;
mod ising_solver;
mod multilevel;
mod partitioned;
mod portfolio;
mod row;

pub use baselines::{BaParams, DaltaHeuristic};
pub use cache::{CacheConfig, CacheStats, SharedCopCache};
pub use cop::{ColumnCop, SpinLayout};
pub use cop_solver::{
    CopOutcome, CopScratch, CopSolver, DochCopSolver, FusedSpec, HaltReason, SimCimCopSolver,
    SolveCtx,
};
pub use multilevel::{CascadeNode, LevelReport, MultiLevelFramework, MultiLevelOutcome};
pub use partitioned::{PartitionedCopSolver, DEFAULT_BLOCK_COLS, DEFAULT_SWEEPS};
pub use portfolio::PortfolioSolver;
pub use framework::{
    ComponentChoice, ConfigError, CopSolverKind, DecompositionOutcome, Framework, Mode,
};
pub use ising_solver::{CopSolution, CopSolveStats, IsingCopSolver};
pub use row::{RowCop, RowCopSolution, RowIlpVars};
/// Solver-level configuration errors ([`IsingCopSolver::validate`],
/// [`adis_sb::SbSolver::validate`]), re-exported so `Framework`-level
/// [`ConfigError`] and solver-level errors are importable from one crate.
pub use adis_sb::ConfigError as SbConfigError;
/// Kernel precision selector ([`IsingCopSolver::precision`]), re-exported
/// so callers picking the i16 fixed-point dSB kernel need not depend on
/// `adis_sb` directly.
pub use adis_sb::KernelPrecision;
/// Fused-batch occupancy counters ([`DecompositionOutcome::fused_stats`]),
/// re-exported so callers inspecting lane occupancy need not depend on
/// `adis_sb` directly.
pub use adis_sb::FusedStats;
