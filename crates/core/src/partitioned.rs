//! Block-coordinate partitioned COP solving for large instances.
//!
//! The column-based Ising encoding needs `2r + c` spins. At the paper's
//! scales that fits a single bSB instance comfortably, but once `r·c + r`
//! grows past what one integrator (or one physical annealer) can hold,
//! the single-instance path stops being an option. The decomposition
//! literature for Ising machines (arXiv:2602.23038's parallelizable
//! search-space decomposition, arXiv:2602.15985's hybrid large-scale
//! partitioning) splits such instances into coordinated subproblems:
//! solve blocks of the variable vector against *boundary terms* frozen
//! from the current incumbent, accept improvements, and iterate to a
//! fixed point.
//!
//! [`PartitionedCopSolver`] is that scheme specialized to the column COP.
//! The type vector `T ∈ {0,1}^c` is split into contiguous column blocks.
//! For each block a sub-COP is built over the block's columns plus **two
//! aggregate boundary columns**: per row, the summed weight of the frozen
//! out-of-block columns currently typed 0 and the summed weight of those
//! typed 1. The boundary columns give the inner bSB solve the incumbent's
//! row-bias context (a column pattern that flips a row flips it against
//! the frozen remainder too), at a cost of only two extra spins per
//! block. The inner solve proposes new patterns `(V₁, V₂)`; Theorem 3
//! then re-derives the *full* optimal type vector for those patterns
//! (each column's best type is independent given the patterns, so this
//! step needs no coordination), the true objective is evaluated on the
//! full COP, and the candidate is kept only if it strictly improves the
//! incumbent. Acceptance-by-exact-objective makes every sweep monotone:
//! the final answer is always a feasible setting whose objective was
//! evaluated exactly, so `objective >= optimum` holds one-sidedly by
//! construction (the adis-check "decomposition" family asserts it
//! against exhaustive solves).
//!
//! The solver is a plain [`CopSolver`], so it composes with everything
//! built on that seam: the portfolio can race it, the engine memo table
//! and the [`SharedCopCache`](crate::SharedCopCache) key it by its
//! fingerprint (the derived `Debug` covers every knob), and `adis-serve`
//! exposes it as `"solver": "partitioned"`. It deliberately does **not**
//! advertise a [`FusedSpec`](crate::cop_solver::FusedSpec): the fused
//! multi-COP scheduler batches single-instance integrations, which is
//! exactly what this solver exists to avoid, so the engine's fused
//! gating falls back to the per-COP loop.

use crate::cop_solver::{halt_of, CopOutcome, CopScratch, CopSolver, SolveCtx};
use crate::{ColumnCop, IsingCopSolver};
use adis_boolfn::{BitVec, ColumnSetting};

/// Default column-block width.
pub const DEFAULT_BLOCK_COLS: usize = 8;

/// Default number of coordination sweeps over the blocks.
pub const DEFAULT_SWEEPS: usize = 4;

/// Polish rounds of alternating minimization applied to each accepted-or-
/// rejected candidate before comparing it with the incumbent.
const POLISH_ROUNDS: usize = 4;

/// Alternating-minimization rounds used to seed the initial incumbent.
const INIT_ROUNDS: usize = 16;

/// A [`CopSolver`] that splits the type vector `T` into column blocks and
/// solves them with coordinated inner bSB runs (see the module docs for
/// the boundary-term scheme).
///
/// COPs whose column count does not exceed
/// [`block_cols`](PartitionedCopSolver::block_cols) fit a single block
/// and are delegated to the inner solver unchanged — the partitioned
/// path only engages where it has something to split.
///
/// # Examples
///
/// ```
/// use adis_core::{ColumnCop, CopScratch, CopSolver, PartitionedCopSolver, SolveCtx};
///
/// let weights: Vec<f64> = (0..4 * 12).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
/// let cop = ColumnCop::from_weights(4, 12, weights, 0.0);
/// let solver = PartitionedCopSolver::new().block_cols(4).sweeps(3);
/// let out = solver.solve_cop(&cop, &SolveCtx::new(1), &mut CopScratch::new());
/// // The answer is a feasible setting whose objective was evaluated
/// // exactly on the full COP.
/// assert_eq!(out.objective, cop.objective(&out.setting));
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedCopSolver {
    inner: IsingCopSolver,
    block_cols: usize,
    sweeps: usize,
}

impl Default for PartitionedCopSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionedCopSolver {
    /// A partitioned solver around a default [`IsingCopSolver`], with
    /// [`DEFAULT_BLOCK_COLS`]-column blocks and [`DEFAULT_SWEEPS`]
    /// coordination sweeps.
    pub fn new() -> Self {
        PartitionedCopSolver {
            inner: IsingCopSolver::new(),
            block_cols: DEFAULT_BLOCK_COLS,
            sweeps: DEFAULT_SWEEPS,
        }
    }

    /// Replaces the inner per-block bSB solver.
    pub fn inner(mut self, inner: IsingCopSolver) -> Self {
        self.inner = inner;
        self
    }

    /// Sets the column-block width (clamped below at 1). Each block's
    /// sub-COP has `block_cols + 2` columns (the two boundary columns).
    pub fn block_cols(mut self, cols: usize) -> Self {
        self.block_cols = cols.max(1);
        self
    }

    /// Sets the coordination-sweep budget (clamped below at 1). Sweeps
    /// stop early at a fixed point (a full pass with no accepted
    /// improvement).
    pub fn sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps.max(1);
        self
    }

    /// The sub-COP for one column block against the incumbent: the
    /// block's columns verbatim, plus the two aggregate boundary columns
    /// (per-row frozen type-0 and type-1 weight sums).
    fn block_cop(&self, cop: &ColumnCop, lo: usize, hi: usize, incumbent_t: &BitVec) -> ColumnCop {
        let rows = cop.rows();
        let block = hi - lo;
        let mut w = Vec::with_capacity(rows * (block + 2));
        for i in 0..rows {
            for j in lo..hi {
                w.push(cop.weight(i, j));
            }
            let mut frozen0 = 0.0;
            let mut frozen1 = 0.0;
            for j in (0..lo).chain(hi..cop.cols()) {
                if incumbent_t.get(j) {
                    frozen1 += cop.weight(i, j);
                } else {
                    frozen0 += cop.weight(i, j);
                }
            }
            w.push(frozen0);
            w.push(frozen1);
        }
        ColumnCop::from_weights(rows, block + 2, w, 0.0)
    }
}

/// Deterministic per-(sweep, block) seed derivation, so results are a
/// pure function of `(cop, ctx.seed)` — the memoization contract.
fn block_seed(seed: u64, sweep: usize, block: usize) -> u64 {
    seed ^ (sweep as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (block as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

impl CopSolver for PartitionedCopSolver {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
    ) -> CopOutcome {
        if cop.cols() <= self.block_cols {
            // Single block: nothing to coordinate, run the inner solver
            // on the whole instance.
            return self.inner.solve_cop(cop, ctx, scratch);
        }

        // Incumbent: alternating minimization from the all-zero type
        // vector — cheap, deterministic, and already a local optimum.
        let mut best = cop.alternate(BitVec::zeros(cop.cols()), INIT_ROUNDS);
        let mut best_obj = cop.objective(&best);
        let mut sb_iterations = 0usize;

        let outcome = |setting: ColumnSetting, objective: f64, iters: usize, interrupted| {
            CopOutcome {
                setting,
                objective,
                sb_iterations: iters,
                bnb_nodes: 0,
                halt: halt_of(ctx, interrupted),
                winner: None,
            }
        };

        for sweep in 0..self.sweeps {
            let mut improved = false;
            let mut lo = 0;
            let mut block_idx = 0;
            while lo < cop.cols() {
                if ctx.should_stop().is_some() {
                    return outcome(best, best_obj, sb_iterations, true);
                }
                let hi = (lo + self.block_cols).min(cop.cols());
                let sub = self.block_cop(cop, lo, hi, &best.t);
                let sub_seed = block_seed(ctx.seed, sweep, block_idx);
                let mut sub_ctx = SolveCtx::with_cancel(sub_seed, ctx.cancel());
                if let Some(remaining) = ctx.remaining() {
                    sub_ctx = sub_ctx.deadline(remaining);
                }
                let sub_out = self.inner.solve_cop(&sub, &sub_ctx, scratch);
                sb_iterations += sub_out.sb_iterations;

                // Reconcile: the block solve proposes patterns; Theorem 3
                // re-types *every* column for them (per-column independent,
                // so no cross-block coordination is needed here), and the
                // candidate is scored exactly on the full COP.
                let t = cop.optimal_t(&sub_out.setting.v1, &sub_out.setting.v2);
                let candidate = ColumnSetting {
                    v1: sub_out.setting.v1,
                    v2: sub_out.setting.v2,
                    t,
                };
                let cand_obj = cop.objective(&candidate);
                let polished = cop.alternate(candidate.t.clone(), POLISH_ROUNDS);
                let pol_obj = cop.objective(&polished);
                let (cand, cand_obj) = if pol_obj < cand_obj {
                    (polished, pol_obj)
                } else {
                    (candidate, cand_obj)
                };
                if cand_obj < best_obj {
                    best = cand;
                    best_obj = cand_obj;
                    improved = true;
                }
                lo = hi;
                block_idx += 1;
            }
            if ctx.target_reached(best_obj) {
                return outcome(best, best_obj, sb_iterations, true);
            }
            if !improved {
                break; // fixed point: a full pass accepted nothing
            }
        }
        outcome(best, best_obj, sb_iterations, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_cop(seed: u64, rows: usize, cols: usize) -> ColumnCop {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        ColumnCop::from_weights(rows, cols, weights, rng.gen_range(0.0..2.0))
    }

    #[test]
    fn answer_is_feasible_and_one_sided_vs_exact() {
        for seed in 0..8 {
            let cop = random_cop(seed, 5, 12);
            let solver = PartitionedCopSolver::new().block_cols(4).sweeps(3);
            let out = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut CopScratch::new());
            assert_eq!(out.objective, cop.objective(&out.setting), "seed {seed}");
            let opt = cop.objective(&cop.solve_exhaustive());
            assert!(
                out.objective >= opt - 1e-9,
                "seed {seed}: {} < exact {opt}",
                out.objective
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cop = random_cop(3, 6, 14);
        let solver = PartitionedCopSolver::new().block_cols(5).sweeps(4);
        let a = solver.solve_cop(&cop, &SolveCtx::new(9), &mut CopScratch::new());
        let b = solver.solve_cop(&cop, &SolveCtx::new(9), &mut CopScratch::new());
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.setting, b.setting);
        assert_eq!(a.sb_iterations, b.sb_iterations);
    }

    #[test]
    fn small_instances_delegate_to_inner() {
        let cop = random_cop(1, 4, 6);
        let solver = PartitionedCopSolver::new().block_cols(8);
        let direct = IsingCopSolver::new();
        let a = solver.solve_cop(&cop, &SolveCtx::new(5), &mut CopScratch::new());
        let b = direct.solve_cop(&cop, &SolveCtx::new(5), &mut CopScratch::new());
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.setting, b.setting);
    }

    #[test]
    fn beats_or_matches_plain_alternation() {
        for seed in 0..6 {
            let cop = random_cop(100 + seed, 6, 16);
            let baseline = cop.objective(&cop.alternate(BitVec::zeros(cop.cols()), INIT_ROUNDS));
            let solver = PartitionedCopSolver::new().block_cols(6).sweeps(4);
            let out = solver.solve_cop(&cop, &SolveCtx::new(seed), &mut CopScratch::new());
            assert!(out.objective <= baseline + 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn fingerprints_separate_configurations() {
        let a = PartitionedCopSolver::new().block_cols(4);
        let b = PartitionedCopSolver::new().block_cols(8);
        assert_ne!(CopSolver::fingerprint(&a), CopSolver::fingerprint(&b));
        assert!(a.deterministic());
        assert!(a.fused_spec().is_none(), "partitioned path must gate off fusing");
    }

    #[test]
    fn cancelled_context_returns_incumbent() {
        use adis_telemetry::CancelToken;
        let cop = random_cop(2, 6, 20);
        let token = CancelToken::new();
        token.cancel();
        let solver = PartitionedCopSolver::new().block_cols(4);
        let out = solver.solve_cop(
            &cop,
            &SolveCtx::with_cancel(11, &token),
            &mut CopScratch::new(),
        );
        assert_eq!(out.halt, crate::HaltReason::Cancelled);
        assert_eq!(out.objective, cop.objective(&out.setting));
    }
}
