//! The paper's COP solver: ballistic simulated bifurcation on the Ising
//! encoding, with the dynamic stop criterion (Section 3.3.1) and the
//! Theorem-3 type-reset heuristic (Section 3.3.2).

use crate::cop_solver::{halt_of, CopScratch, HaltReason, SolveCtx};
use crate::{ColumnCop, SpinLayout};
use adis_boolfn::{BitVec, ColumnSetting};
use adis_sb::{
    ConfigError as SbConfigError, KernelPrecision, SbSolver, SbState, SbVariant, StopCriterion,
    StopReason, StopState,
};
use adis_telemetry::{trace_span, NullObserver, SolveObserver};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Statistics from one COP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CopSolveStats {
    /// Euler iterations executed (summed over replicas).
    pub iterations: usize,
    /// Whether any replica stopped via the dynamic criterion.
    pub settled: bool,
    /// Number of type-reset interventions applied.
    pub interventions: usize,
}

/// Outcome of a COP solve: the best setting and its objective value.
#[derive(Debug, Clone)]
pub struct CopSolution {
    /// The best column setting found.
    pub setting: ColumnSetting,
    /// Its objective (ER in separate mode, MED in joint mode).
    pub objective: f64,
    /// Run statistics.
    pub stats: CopSolveStats,
}

/// Ising-model-based solver for [`ColumnCop`] instances.
///
/// Wraps [`SbSolver`] (bSB by default) with:
///
/// - the paper's dynamic stop criterion, and
/// - the paper's heuristic: at every sampling point, read `V₁, V₂` off the
///   oscillator signs, compute the Theorem-3 optimal `T`, and write it back
///   into the positions before integration continues.
///
/// # Examples
///
/// ```
/// use adis_boolfn::{BooleanMatrix, InputDist, Partition, TruthTable};
/// use adis_core::{ColumnCop, IsingCopSolver};
///
/// let g = TruthTable::from_fn(4, |p| (p * 7 % 3) == 1);
/// let w = Partition::new(4, vec![0, 1], vec![2, 3])?;
/// let cop = ColumnCop::separate(&BooleanMatrix::build(&g, &w), &w, &InputDist::Uniform);
/// let sol = IsingCopSolver::new().solve(&cop);
/// // The found ER can never beat the exact optimum.
/// let best = cop.objective(&cop.solve_exhaustive());
/// assert!(sol.objective >= best - 1e-12);
/// # Ok::<(), adis_boolfn::PartitionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IsingCopSolver {
    sb: SbSolver,
    stop_criterion: StopCriterion,
    heuristic: bool,
    replicas: usize,
    seed: u64,
    structured: bool,
    ramp: usize,
    dt: f64,
    precision: KernelPrecision,
}

impl Default for IsingCopSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl IsingCopSolver {
    /// The paper's configuration: bSB, dynamic stop (`f = s = 20`,
    /// `ε = 1e-8`), heuristic on, a single trajectory.
    pub fn new() -> Self {
        IsingCopSolver {
            sb: SbSolver::new(),
            stop_criterion: StopCriterion::paper_small(),
            heuristic: true,
            replicas: 1,
            seed: 0,
            structured: true,
            ramp: 400,
            dt: 0.25,
            precision: KernelPrecision::F64,
        }
    }

    /// Replaces the underlying SB solver configuration (generic path only).
    pub fn sb(mut self, sb: SbSolver) -> Self {
        self.sb = sb;
        self
    }

    /// Sets the stop criterion.
    pub fn stop(mut self, stop: StopCriterion) -> Self {
        self.stop_criterion = stop;
        self
    }

    /// Chooses between the structured integrator, which exploits the COP's
    /// bipartite coupling matrix directly (the role Eigen plays in the
    /// paper), and the generic [`SbSolver`] on the materialized
    /// [`adis_ising::IsingProblem`]. Both integrate identical bSB dynamics;
    /// the structured path is several times faster. Default: structured.
    pub fn structured(mut self, on: bool) -> Self {
        self.structured = on;
        self
    }

    /// Pump-ramp length in iterations (structured path; default 400).
    /// Zero is rejected by [`validate`](IsingCopSolver::validate)/
    /// [`try_solve`](IsingCopSolver::try_solve), not here.
    pub fn ramp(mut self, iterations: usize) -> Self {
        self.ramp = iterations;
        self
    }

    /// Sets the Euler time step (default 0.25). Non-positive/non-finite
    /// values are rejected by [`validate`](IsingCopSolver::validate)/
    /// [`try_solve`](IsingCopSolver::try_solve), not here.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Selects the kernel precision. [`KernelPrecision::I16`] routes the
    /// solve through the generic integrator with [`SbVariant::Discrete`]
    /// dynamics (dSB is the only variant whose field depends only on spin
    /// signs, which the fixed-point kernel exploits), overriding any
    /// [`structured`](IsingCopSolver::structured)/[`sb`](IsingCopSolver::sb)
    /// variant choice. Problems whose coefficients cannot be quantized fall
    /// back to f64 sign-path arithmetic inside the kernel.
    /// Default: [`KernelPrecision::F64`].
    pub fn precision(mut self, precision: KernelPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Enables/disables the Theorem-3 type-reset heuristic.
    pub fn heuristic(mut self, on: bool) -> Self {
        self.heuristic = on;
        self
    }

    /// Number of independent SB trajectories (best result wins). Zero is
    /// rejected by [`validate`](IsingCopSolver::validate)/
    /// [`try_solve`](IsingCopSolver::try_solve), not here.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the base RNG seed; replica `r` uses `seed + r`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every configuration constraint: at least one replica, a
    /// non-empty ramp, and the composed [`SbSolver`] configuration (time
    /// step, stop criterion, …) as this solver would run it.
    pub fn validate(&self) -> Result<(), SbConfigError> {
        if self.replicas == 0 {
            return Err(SbConfigError::ZeroReplicas);
        }
        // The generic path runs exactly this composition; the structured
        // path shares dt/ramp/stop, so one validation covers both.
        self.composed_sb().validate()
    }

    /// The exact [`SbSolver`] the generic path runs: user configuration
    /// plus this solver's stop/ramp/dt, with the discrete variant forced
    /// when the i16 kernel is requested (the fixed-point field only reads
    /// spin signs, so it exists for dSB alone). Crate-visible because the
    /// sweep engine's fused batch path runs this same composition.
    pub(crate) fn composed_sb(&self) -> SbSolver {
        let mut sb = self
            .sb
            .clone()
            .stop(self.stop_criterion.clone())
            .ramp(self.ramp)
            .dt(self.dt);
        if self.precision == KernelPrecision::I16 {
            sb = sb
                .variant(SbVariant::Discrete)
                .precision(KernelPrecision::I16);
        }
        sb
    }

    /// Solves the COP, returning the best setting across replicas.
    ///
    /// The returned setting always has its type vector re-optimized via
    /// Theorem 3 (a free post-pass that never hurts).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`try_solve`](IsingCopSolver::try_solve) for the fallible form).
    pub fn solve(&self, cop: &ColumnCop) -> CopSolution {
        self.solve_with(cop, &mut NullObserver)
    }

    /// Solves the COP, or reports why the configuration cannot run.
    pub fn try_solve(&self, cop: &ColumnCop) -> Result<CopSolution, SbConfigError> {
        self.validate()?;
        Ok(self.solve(cop))
    }

    /// Solves the COP while reporting every SB trajectory to `observer`
    /// (one [`sb_start`](SolveObserver::sb_start)/
    /// [`sb_stop`](SolveObserver::sb_stop) pair per replica, with
    /// per-sample objective values in between). Sampled "energies" are the
    /// COP objective of the current readout — directly ER (separate mode)
    /// or MED (joint mode) — so trajectories plot in paper units. With
    /// [`NullObserver`] this is exactly [`solve`](IsingCopSolver::solve).
    pub fn solve_with<O: SolveObserver>(&self, cop: &ColumnCop, observer: &mut O) -> CopSolution {
        let mut scratch = CopScratch::new();
        self.solve_in(cop, &mut scratch, observer)
    }

    /// [`solve_with`](IsingCopSolver::solve_with), but integrating inside
    /// caller-provided [`CopScratch`] buffers — the allocation-free entry
    /// point the sweep engine drives with per-worker pooled scratch. Every
    /// buffer is overwritten before use, so the result is independent of
    /// the scratch's previous contents.
    pub fn solve_in<O: SolveObserver>(
        &self,
        cop: &ColumnCop,
        scratch: &mut CopScratch,
        observer: &mut O,
    ) -> CopSolution {
        // A fresh default context never fires, so this is exactly the
        // pre-context solve (the context polls read two Nones per sample).
        self.solve_ctx_in(cop, &SolveCtx::new(self.seed), scratch, observer)
            .0
    }

    /// [`solve_in`](IsingCopSolver::solve_in) under a [`SolveCtx`]: polls
    /// the context's run controls at every sampling point (and between
    /// replicas) and additionally halts once a sample matches the
    /// context's incumbent. Returns the best setting seen so far plus why
    /// the solve stopped. The context's seed is *not* consulted — the
    /// solver's own [`seed`](IsingCopSolver::seed) drives the RNG, as the
    /// [`CopSolver`](crate::CopSolver) impl clones-with-seed before
    /// calling this.
    pub(crate) fn solve_ctx_in<O: SolveObserver>(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
        observer: &mut O,
    ) -> (CopSolution, HaltReason) {
        if let Err(e) = self.validate() {
            panic!("invalid IsingCopSolver configuration: {e}");
        }
        let _span = trace_span!(
            "IsingCopSolver::solve r={} c={} replicas={}",
            cop.rows(),
            cop.cols(),
            self.replicas
        );
        // A context that has already fired — expired deadline, cancelled
        // token — gets an immediate trivial-but-valid answer instead of
        // paying for a full sampling window. The type vector is still
        // Theorem-3 optimal for the all-false patterns, so downstream
        // objective checks hold.
        if let Some(reason) = ctx.should_stop() {
            let v1 = BitVec::from_fn(cop.rows(), |_| false);
            let v2 = BitVec::from_fn(cop.rows(), |_| false);
            let t = cop.optimal_t(&v1, &v2);
            let setting = ColumnSetting { v1, v2, t };
            let objective = cop.objective(&setting);
            return (
                CopSolution {
                    setting,
                    objective,
                    stats: CopSolveStats {
                        iterations: 0,
                        settled: false,
                        interventions: 0,
                    },
                },
                reason,
            );
        }
        // The i16 kernel lives in the generic dSB integrator; the
        // structured path is f32 bSB only.
        if self.structured && self.precision == KernelPrecision::F64 {
            return self.solve_structured(cop, ctx, scratch, observer);
        }
        let ising = cop.to_ising();
        let layout = cop.layout();
        let mut best: Option<(ColumnSetting, f64)> = None;
        let mut total_iterations = 0;
        let mut settled = false;
        let mut interventions = 0;

        // All replicas advance through the SoA batch integrator in one
        // pass: lane `rep` integrates from seed `seed + rep` with the same
        // floating-point operation order as the sequential loop this
        // replaces, so results are bit-identical per replica.
        let solver = self.composed_sb().seed(self.seed);
        // Cancel/deadline are polled at the batch's sampling boundaries;
        // the incumbent target is not checked on this path (comparing
        // every lane's energy to a COP objective would cost a readout per
        // sample).
        let stop_hook = || ctx.should_stop().is_some();
        let (results, interrupted) = if self.heuristic {
            solver.solve_batch_until(
                &ising,
                self.replicas,
                &mut scratch.batch,
                &stop_hook,
                |_, state| {
                    apply_type_reset(cop, layout, state);
                    interventions += 1;
                },
                &mut *observer,
            )
        } else {
            solver.solve_batch_until(
                &ising,
                self.replicas,
                &mut scratch.batch,
                &stop_hook,
                |_, _| {},
                &mut *observer,
            )
        };
        for result in results {
            total_iterations += result.iterations;
            settled |= result.stop_reason == StopReason::EnergySettled;
            let mut setting = layout.decode(&result.best_state);
            // Free exact post-pass (Theorem 3).
            setting.t = cop.optimal_t(&setting.v1, &setting.v2);
            let obj = cop.objective(&setting);
            if best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
                best = Some((setting, obj));
            }
        }

        let (setting, objective) = best.expect("replicas > 0");
        (
            CopSolution {
                setting,
                objective,
                stats: CopSolveStats {
                    iterations: total_iterations,
                    settled,
                    interventions,
                },
            },
            halt_of(ctx, interrupted),
        )
    }

    /// The structured integrator: identical bSB dynamics, but the field is
    /// computed directly from the COP's `r × c` weight matrix — two dense
    /// passes per step instead of traversing `4rc` adjacency entries:
    ///
    /// ```text
    /// field(V₁ᵢ) = (tᵢ − Rᵢ)/4,  field(V₂ᵢ) = −(tᵢ + Rᵢ)/4,
    ///     tᵢ = Σⱼ W_ij·x_{Tⱼ},  Rᵢ = Σⱼ W_ij,
    /// field(Tⱼ) = Σᵢ (W_ij/4)·(x_{V₁ᵢ} − x_{V₂ᵢ}).
    /// ```
    fn solve_structured<O: SolveObserver>(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
        observer: &mut O,
    ) -> (CopSolution, HaltReason) {
        let (r, c) = (cop.rows(), cop.cols());
        let n = 2 * r + c;
        let CopScratch {
            w,
            rowsum,
            x,
            y,
            tmp,
            ft,
            cost1,
            cost2,
            ..
        } = scratch;
        // Flattened weights and row sums. The integrator runs in f32 —
        // standard practice for high-performance SB (GPU/FPGA
        // implementations use single or fixed precision); the objective
        // bookkeeping stays in f64.
        let w64: &[f64] = cop.weights();
        w.clear();
        w.extend(w64.iter().map(|&v| v as f32));
        rowsum.clear();
        rowsum.extend((0..r).map(|i| w64[i * c..(i + 1) * c].iter().sum::<f64>() as f32));
        // Local fields are handled with Goto's ancilla-spin treatment: the
        // bias −Rᵢ/4 on V₁ᵢ/V₂ᵢ becomes a coupling to one extra oscillator
        // whose amplitude grows with the pump like every other spin. A
        // constant bias force would otherwise dominate the early dynamics
        // and collapse both pattern registers onto the same wall before the
        // T spins develop any signal. The readout multiplies by the
        // ancilla's sign (global Z₂ gauge).
        let na = n + 1; // ancilla at index n
        // Goto's c0 with σ_J over the 4rc cell couplings of ±W/4 plus the
        // 4r ancilla couplings of −Rᵢ/4.
        let sum_sq: f64 = w64.iter().map(|v| v * v).sum::<f64>() / 4.0
            + rowsum
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
                / 4.0;
        let sigma = (sum_sq / (na as f64 * (na as f64 - 1.0))).sqrt();
        let a0 = 1.0f32;
        let c0 = if sigma > 0.0 {
            (0.5 / (sigma * (na as f64).sqrt())) as f32
        } else {
            1.0
        };
        let dt = self.dt as f32;
        let max_iters = self.stop_criterion.max_iterations();
        let sample_every = self.stop_criterion.sample_every();
        let ramp = self.ramp.min(max_iters).max(1) as f64;

        let mut best: Option<(ColumnSetting, f64)> = None;
        let mut total_iterations = 0;
        let mut settled = false;
        let mut interventions = 0;
        let mut halt = HaltReason::Completed;

        for rep in 0..self.replicas {
            // Replicas alternate integration schedules (full/half time step,
            // full/short ramp): the bSB flow is near-deterministic per
            // schedule, so schedule diversity explores more attractors than
            // re-seeding alone.
            let dt = if rep % 2 == 0 { dt } else { dt * 2.0 };
            let ramp = if rep % 3 == 2 { (ramp / 2.0).max(1.0) } else { ramp };
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed_for(rep));
            // Antisymmetric pattern init: x(V₁ᵢ) = −x(V₂ᵢ). The two pattern
            // registers share identical biases, so a plain random start lets
            // the common drift collapse them onto the same attractor
            // (a one-column-type solution); seeding them apart gives the
            // T spins a nonzero field from the first step.
            // RNG draw order (V pairs, T spins, ancilla, then all momenta)
            // matches the historical per-solve allocation path.
            x.clear();
            x.resize(na, 0.0);
            for i in 0..r {
                let eps = rng.gen_range(-0.1f32..=0.1);
                x[i] = eps;
                x[r + i] = -eps;
            }
            for j in 0..c {
                x[2 * r + j] = rng.gen_range(-0.1f32..=0.1);
            }
            x[n] = rng.gen_range(0.0f32..=0.1); // ancilla, biased positive
            y.clear();
            y.extend((0..na).map(|_| rng.gen_range(-0.1f32..=0.1)));
            tmp.clear();
            tmp.resize(r, 0.0);
            ft.clear();
            ft.resize(c, 0.0);
            cost1.clear();
            cost1.resize(c, 0.0);
            cost2.clear();
            cost2.resize(c, 0.0);
            let mut stop_state = StopState::new(self.stop_criterion.clone());
            let mut rep_best: Option<(ColumnSetting, f64)> = None;
            let mut iterations = max_iters;
            let mut rep_settled = false;
            observer.sb_start(na, max_iters);

            for t in 0..max_iters {
                let a_t = a0 * ((t as f64 / ramp).min(1.0) as f32);
                // Single fused pass over W (row-major, contiguous): the
                // V-field accumulators tᵢ and the T-field vector together.
                let (xv, rest) = x.split_at(r);
                let (xv2, xt) = rest.split_at(r);
                ft.fill(0.0);
                for i in 0..r {
                    let row = &w[i * c..(i + 1) * c];
                    let d = xv[i] - xv2[i];
                    // Two straight-line loops per row: a 4-lane reduction
                    // for tᵢ and an axpy for the T field — both shapes the
                    // auto-vectorizer handles.
                    let mut lanes = [0.0f32; 4];
                    let chunks = c / 4;
                    for k in 0..chunks {
                        let b = 4 * k;
                        lanes[0] += row[b] * xt[b];
                        lanes[1] += row[b + 1] * xt[b + 1];
                        lanes[2] += row[b + 2] * xt[b + 2];
                        lanes[3] += row[b + 3] * xt[b + 3];
                    }
                    let mut acc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
                    for j in 4 * chunks..c {
                        acc += row[j] * xt[j];
                    }
                    for (ftj, wij) in ft.iter_mut().zip(row.iter()) {
                        *ftj += wij * d;
                    }
                    tmp[i] = acc;
                }
                // Momentum + position update with inelastic walls.
                let decay = -(a0 - a_t);
                let xa = x[n];
                let mut f_anc = 0.0f32;
                for i in 0..r {
                    y[i] += (decay * x[i] + c0 * (tmp[i] - rowsum[i] * xa) / 4.0) * dt;
                    y[r + i] +=
                        (decay * x[r + i] - c0 * (tmp[i] + rowsum[i] * xa) / 4.0) * dt;
                    f_anc -= rowsum[i] * (x[i] + x[r + i]) / 4.0;
                }
                for j in 0..c {
                    y[2 * r + j] += (decay * x[2 * r + j] + c0 * ft[j] / 4.0) * dt;
                }
                y[n] += (decay * xa + c0 * f_anc) * dt;
                for i in 0..na {
                    x[i] += a0 * y[i] * dt;
                    if x[i].abs() > 1.0 {
                        x[i] = x[i].signum();
                        y[i] = 0.0;
                    }
                }

                if (t + 1) % sample_every == 0 || t + 1 == max_iters {
                    // One fused pass computes, for the sign readout, the
                    // per-column costs of both patterns — giving the
                    // Theorem-3 optimal T *and* the objective together.
                    cost1.fill(0.0);
                    cost2.fill(0.0);
                    let gauge = if x[n] >= 0.0 { 1.0f32 } else { -1.0 };
                    for i in 0..r {
                        let row = &w64[i * c..(i + 1) * c];
                        let take1 = gauge * x[i] >= 0.0;
                        let take2 = gauge * x[r + i] >= 0.0;
                        if take1 && take2 {
                            for j in 0..c {
                                cost1[j] += row[j];
                                cost2[j] += row[j];
                            }
                        } else if take1 {
                            for j in 0..c {
                                cost1[j] += row[j];
                            }
                        } else if take2 {
                            for j in 0..c {
                                cost2[j] += row[j];
                            }
                        }
                    }
                    let obj = if self.heuristic {
                        // Reset T to the optimum and write it back.
                        let mut total = cop.constant();
                        for j in 0..c {
                            let pick2 = cost2[j] < cost1[j];
                            total += if pick2 { cost2[j] } else { cost1[j] };
                            x[2 * r + j] = if pick2 { gauge } else { -gauge };
                            y[2 * r + j] = 0.0;
                        }
                        interventions += 1;
                        total
                    } else {
                        let mut total = cop.constant();
                        for j in 0..c {
                            total += if gauge * x[2 * r + j] >= 0.0 {
                                cost2[j]
                            } else {
                                cost1[j]
                            };
                        }
                        total
                    };
                    if rep_best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
                        let setting = ColumnSetting {
                            v1: BitVec::from_fn(r, |i| gauge * x[i] >= 0.0),
                            v2: BitVec::from_fn(r, |i| gauge * x[r + i] >= 0.0),
                            t: BitVec::from_fn(c, |j| gauge * x[2 * r + j] >= 0.0),
                        };
                        rep_best = Some((setting, obj));
                    }
                    if observer.enabled() {
                        let mean_amp =
                            x.iter().map(|v| v.abs() as f64).sum::<f64>() / na as f64;
                        let rep_best_obj =
                            rep_best.as_ref().map(|&(_, b)| b).unwrap_or(obj);
                        observer.sb_sample(t + 1, obj, rep_best_obj, mean_amp);
                    }
                    // Steady state is only meaningful once the pump has
                    // fully ramped; earlier samples still track the best.
                    if (t + 1) as f64 >= ramp && stop_state.record(obj) {
                        settled = true;
                        rep_settled = true;
                        iterations = t + 1;
                        break;
                    }
                    // Run controls, polled once per sampling point: the
                    // readout above has already joined `rep_best`, so
                    // stopping here always leaves a valid answer.
                    if ctx.target_reached(obj) {
                        halt = HaltReason::TargetReached;
                        iterations = t + 1;
                        break;
                    }
                    if let Some(reason) = ctx.should_stop() {
                        halt = reason;
                        iterations = t + 1;
                        break;
                    }
                }
            }
            observer.sb_stop(
                iterations,
                rep_best.as_ref().map(|&(_, b)| b).unwrap_or(f64::INFINITY),
                rep_settled,
            );
            total_iterations += iterations;
            // A zero-iteration budget (`FixedIterations(0)` passes
            // validation) never reaches a sampling point; read the current
            // oscillator signs so the replica still retires with a real
            // setting. The objective slot is discarded — the Theorem-3
            // post-pass below recomputes it either way.
            let (mut setting, _) = rep_best.unwrap_or_else(|| {
                let gauge = if x[n] >= 0.0 { 1.0f32 } else { -1.0 };
                let setting = ColumnSetting {
                    v1: BitVec::from_fn(r, |i| gauge * x[i] >= 0.0),
                    v2: BitVec::from_fn(r, |i| gauge * x[r + i] >= 0.0),
                    t: BitVec::from_fn(c, |j| gauge * x[2 * r + j] >= 0.0),
                };
                (setting, f64::INFINITY)
            });
            setting.t = cop.optimal_t(&setting.v1, &setting.v2);
            let obj = cop.objective(&setting);
            if best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
                best = Some((setting, obj));
            }
            if halt != HaltReason::Completed {
                break;
            }
            // Between replicas, also test the committed (post-pass)
            // objective against the incumbent.
            if rep + 1 < self.replicas {
                if let Some((_, b)) = best.as_ref() {
                    if ctx.target_reached(*b) {
                        halt = HaltReason::TargetReached;
                        break;
                    }
                }
                if let Some(reason) = ctx.should_stop() {
                    halt = reason;
                    break;
                }
            }
        }

        let (setting, objective) = best.expect("replicas > 0");
        (
            CopSolution {
                setting,
                objective,
                stats: CopSolveStats {
                    iterations: total_iterations,
                    settled,
                    interventions,
                },
            },
            halt,
        )
    }

    fn seed_for(&self, replica: usize) -> u64 {
        self.seed.wrapping_add(replica as u64)
    }

    /// How the sweep engine may batch this solver's COP solves through the
    /// fused multi-COP integrator (backs [`CopSolver::fused_spec`] for this
    /// type and for [`CopSolverKind::Ising`](crate::CopSolverKind)).
    ///
    /// `None` when this solver takes the structured f32 path (which has no
    /// generic Ising materialization to fuse) or when the configuration is
    /// invalid — the per-COP path then reports the configuration error
    /// exactly as before. Otherwise the spec carries the *same* composed
    /// [`SbSolver`] the generic per-COP path runs, so a fused lane
    /// integrating from the content-derived seed is bit-identical to the
    /// per-COP solve.
    pub(crate) fn fused_spec_impl(&self) -> Option<crate::cop_solver::FusedSpec> {
        if self.structured && self.precision == KernelPrecision::F64 {
            return None;
        }
        self.validate().ok()?;
        Some(crate::cop_solver::FusedSpec {
            sb: self.composed_sb(),
            replicas: self.replicas,
            heuristic: self.heuristic,
        })
    }
}

/// The Section 3.3.2 intervention: read the column patterns off the sign of
/// the `V` positions, compute the optimal `T` (Theorem 3) and overwrite the
/// `T` positions with `±1` (zeroing their momenta, as a wall collision
/// would). Crate-visible so the engine's fused batch path can apply the
/// identical intervention per unit.
pub(crate) fn apply_type_reset(cop: &ColumnCop, layout: SpinLayout, state: &mut SbState<'_>) {
    let v1 = BitVec::from_fn(layout.rows, |i| state.x[layout.v1(i)] >= 0.0);
    let v2 = BitVec::from_fn(layout.rows, |i| state.x[layout.v2(i)] >= 0.0);
    let t = cop.optimal_t(&v1, &v2);
    for j in 0..layout.cols {
        let idx = layout.t(j);
        state.x[idx] = if t.get(j) { 1.0 } else { -1.0 };
        state.y[idx] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::{BooleanMatrix, InputDist, Partition, TruthTable};
    use adis_telemetry::CancelToken;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_cop(seed: u64, rows: usize, cols: usize) -> ColumnCop {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0..1.0) / (rows * cols) as f64)
            .collect();
        ColumnCop::from_weights(rows, cols, weights, 0.5)
    }

    #[test]
    fn finds_near_optimal_settings() {
        for seed in 0..5 {
            let cop = random_cop(seed, 6, 8);
            let exact = cop.objective(&cop.solve_exhaustive());
            let sol = IsingCopSolver::new().replicas(4).solve(&cop);
            assert!(sol.objective >= exact - 1e-12, "cannot beat the optimum");
            // The span of objectives is [exact, constant]; demand the solver
            // closes at least 90% of the gap from the trivial setting.
            let trivial = cop.constant(); // all-zero Ô has cost = constant
            let gap = trivial - exact;
            assert!(
                sol.objective <= exact + 0.1 * gap + 1e-9,
                "seed {seed}: got {}, exact {exact}, trivial {trivial}",
                sol.objective
            );
        }
    }

    #[test]
    fn heuristic_improves_or_matches() {
        let mut with_h = 0.0;
        let mut without_h = 0.0;
        for seed in 0..8 {
            let cop = random_cop(seed + 100, 8, 10);
            with_h += IsingCopSolver::new().heuristic(true).solve(&cop).objective;
            without_h += IsingCopSolver::new().heuristic(false).solve(&cop).objective;
        }
        // Aggregate quality with the heuristic should not be meaningfully
        // worse (it is a stochastic intervention; allow a 2% band).
        assert!(
            with_h <= without_h * 1.02 + 1e-9,
            "heuristic {with_h} vs plain {without_h}"
        );
    }

    #[test]
    fn solves_decomposable_function_to_zero_error() {
        // x0 XOR x2 decomposes exactly: solver must find ER 0.
        let g = TruthTable::from_fn(4, |p| (p & 1) ^ ((p >> 2) & 1) == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        let cop = ColumnCop::separate(&BooleanMatrix::build(&g, &w), &w, &InputDist::Uniform);
        let sol = IsingCopSolver::new().replicas(4).solve(&cop);
        assert!(sol.objective.abs() < 1e-9, "got {}", sol.objective);
    }

    #[test]
    fn stats_populated() {
        let cop = random_cop(3, 4, 4);
        let sol = IsingCopSolver::new().solve(&cop);
        assert!(sol.stats.iterations > 0);
        assert!(sol.stats.interventions > 0);
    }

    #[test]
    fn dynamic_stop_settles() {
        let cop = random_cop(5, 6, 6);
        let sol = IsingCopSolver::new()
            .stop(StopCriterion::DynamicVariance {
                sample_every: 10,
                window: 10,
                threshold: 1e-8,
                max_iterations: 50_000,
            })
            .solve(&cop);
        assert!(sol.stats.settled, "bSB should reach steady state");
        assert!(sol.stats.iterations < 50_000);
    }

    #[test]
    fn invalid_configs_surface_as_config_errors() {
        let cop = random_cop(1, 3, 3);
        assert_eq!(
            IsingCopSolver::new().replicas(0).try_solve(&cop).unwrap_err(),
            SbConfigError::ZeroReplicas
        );
        assert_eq!(
            IsingCopSolver::new().ramp(0).try_solve(&cop).unwrap_err(),
            SbConfigError::ZeroRamp
        );
        assert_eq!(
            IsingCopSolver::new().dt(-1.0).try_solve(&cop).unwrap_err(),
            SbConfigError::NonPositiveDt(-1.0)
        );
        assert_eq!(
            IsingCopSolver::new()
                .stop(StopCriterion::DynamicVariance {
                    sample_every: 5,
                    window: 0,
                    threshold: 1e-8,
                    max_iterations: 100,
                })
                .try_solve(&cop)
                .unwrap_err(),
            SbConfigError::DegenerateWindow(0)
        );
        // Valid config: fallible and infallible paths agree.
        let a = IsingCopSolver::new().solve(&cop);
        let b = IsingCopSolver::new().try_solve(&cop).unwrap();
        assert_eq!(a.setting, b.setting);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    #[should_panic(expected = "invalid IsingCopSolver configuration")]
    fn infallible_solve_panics_with_display_message() {
        let cop = random_cop(2, 3, 3);
        IsingCopSolver::new().dt(0.0).solve(&cop);
    }

    #[test]
    fn replicas_never_hurt() {
        let cop = random_cop(9, 6, 8);
        let one = IsingCopSolver::new().solve(&cop).objective;
        let many = IsingCopSolver::new().replicas(6).solve(&cop).objective;
        assert!(many <= one + 1e-12);
    }

    /// `FixedIterations(0)` passes validation but never reaches a sampling
    /// point; both integrator paths must still retire every replica with a
    /// real setting instead of panicking on an empty best.
    #[test]
    fn zero_iteration_budget_yields_valid_settings() {
        let cop = random_cop(11, 5, 6);
        for structured in [true, false] {
            let sol = IsingCopSolver::new()
                .structured(structured)
                .stop(StopCriterion::FixedIterations(0))
                .replicas(3)
                .solve(&cop);
            assert_eq!(sol.stats.iterations, 0, "structured={structured}");
            assert!(
                (cop.objective(&sol.setting) - sol.objective).abs() < 1e-12,
                "structured={structured}: reported objective must match the setting"
            );
        }
        let sol = IsingCopSolver::new()
            .precision(KernelPrecision::I16)
            .stop(StopCriterion::FixedIterations(0))
            .solve(&cop);
        assert!((cop.objective(&sol.setting) - sol.objective).abs() < 1e-12);
    }

    /// A context that fired before the solve starts — cancelled token or
    /// already-expired deadline — halts immediately with a valid trivial
    /// setting and the matching reason, on every path.
    #[test]
    fn pre_fired_context_halts_without_integrating() {
        let cop = random_cop(12, 5, 6);
        let token = CancelToken::new();
        token.cancel();
        for solver in [
            IsingCopSolver::new(),
            IsingCopSolver::new().structured(false),
            IsingCopSolver::new().precision(KernelPrecision::I16),
        ] {
            let mut scratch = CopScratch::new();
            let ctx = SolveCtx::with_cancel(3, &token);
            let (sol, halt) = solver.solve_ctx_in(&cop, &ctx, &mut scratch, &mut NullObserver);
            assert_eq!(halt, HaltReason::Cancelled, "{solver:?}");
            assert_eq!(sol.stats.iterations, 0, "{solver:?}");
            assert!((cop.objective(&sol.setting) - sol.objective).abs() < 1e-12);

            let ctx = SolveCtx::new(3).deadline(std::time::Duration::ZERO);
            let (sol, halt) = solver.solve_ctx_in(&cop, &ctx, &mut scratch, &mut NullObserver);
            assert_eq!(halt, HaltReason::DeadlineExceeded, "{solver:?}");
            assert!((cop.objective(&sol.setting) - sol.objective).abs() < 1e-12);
        }
    }

    /// The i16 kernel routes through the generic dSB integrator and still
    /// respects the one-sided bound: it can never beat the exact optimum,
    /// and it reports the objective of its own setting.
    #[test]
    fn i16_precision_respects_the_exact_bound() {
        for seed in 0..4 {
            let cop = random_cop(seed, 5, 6);
            let exact = cop.objective(&cop.solve_exhaustive());
            let sol = IsingCopSolver::new()
                .precision(KernelPrecision::I16)
                .replicas(4)
                .solve(&cop);
            assert!((cop.objective(&sol.setting) - sol.objective).abs() < 1e-12);
            assert!(sol.objective >= exact - 1e-12, "cannot beat the optimum");
        }
    }

    /// Precision is part of the solve configuration: requesting i16 must
    /// produce a distinct cache fingerprint (entries are namespaced).
    #[test]
    fn precision_changes_the_fingerprint() {
        use crate::CopSolver;
        let f64p = IsingCopSolver::new();
        let i16p = IsingCopSolver::new().precision(KernelPrecision::I16);
        assert_ne!(CopSolver::fingerprint(&f64p), CopSolver::fingerprint(&i16p));
    }
}
