//! The pluggable core-COP solver interface.
//!
//! Section 2.4 of the paper structures its evaluation around one fixed
//! outer framework (DALTA's partition sweep) driving interchangeable
//! core-COP solvers: the proposed Ising/bSB method, the exact ILP path
//! ("DALTA-ILP"), the DALTA heuristic reconstruction, and BA. The
//! [`CopSolver`] trait is that seam: anything that can map a
//! [`ColumnCop`] to a [`ColumnSetting`] plugs into
//! [`Framework::solver`](crate::Framework::solver), and
//! [`CopSolverKind`](crate::CopSolverKind) remains as the ready-made enum
//! of the paper's four methods.

use crate::baselines::{solve_ba, solve_dalta_heuristic, BaParams, DaltaHeuristic};
use crate::{ColumnCop, CopSolverKind, IsingCopSolver, RowCop};
use adis_boolfn::{BitVec, ColumnSetting, RowSetting};
use adis_ilp::BranchAndBound;
use adis_sb::SbBatchScratch;
use adis_telemetry::NullObserver;
use std::fmt;

/// Outcome of one core-COP solve through the [`CopSolver`] seam.
#[derive(Debug, Clone)]
pub struct CopResult {
    /// The best column setting found (row-based solvers convert).
    pub setting: ColumnSetting,
    /// Its objective (ER in separate mode, MED in joint mode).
    pub objective: f64,
    /// bSB Euler iterations spent (0 for non-Ising solvers).
    pub sb_iterations: usize,
    /// Branch-and-bound nodes expanded (0 for non-exact solvers).
    pub bnb_nodes: u64,
}

/// Reusable per-worker buffers for COP solves.
///
/// The sweep engine keeps one of these per active rayon worker (via
/// [`adis_sb::ScratchPool`]) so the structured bSB integrator's coupling
/// workspace, oscillator registers and cost accumulators — and the generic
/// path's [`SbBatchScratch`] — are allocated once per worker, not once per
/// COP.
/// Solvers overwrite every buffer before reading it; a scratch carries no
/// state between solves.
#[derive(Debug, Default)]
pub struct CopScratch {
    /// f32 copy of the COP's weight matrix (structured integrator).
    pub(crate) w: Vec<f32>,
    /// Per-row weight sums.
    pub(crate) rowsum: Vec<f32>,
    /// Oscillator positions (`2r + c` spins plus the bias ancilla).
    pub(crate) x: Vec<f32>,
    /// Oscillator momenta.
    pub(crate) y: Vec<f32>,
    /// Per-row field accumulator.
    pub(crate) tmp: Vec<f32>,
    /// Per-column (type-spin) field accumulator.
    pub(crate) ft: Vec<f32>,
    /// Per-column pattern-1 cost accumulator (f64 bookkeeping).
    pub(crate) cost1: Vec<f64>,
    /// Per-column pattern-2 cost accumulator.
    pub(crate) cost2: Vec<f64>,
    /// Batched lane buffers for the generic (non-structured)
    /// [`adis_sb::SbSolver`] path, which integrates all replicas at once.
    pub(crate) batch: SbBatchScratch,
}

impl CopScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A core-COP solver: anything that maps a [`ColumnCop`] to a column
/// setting and its objective.
///
/// This is the paper's Section 2.4 pluggable-solver seam made explicit:
/// the outer framework (partition sweep, incumbent keeping, rounds) is
/// identical for every method in Table 1, and only `solve_cop` differs —
/// bSB on the second-order column encoding for the proposal, branch and
/// bound on the row-based 0-1 ILP for DALTA-ILP, and the DALTA/BA
/// reconstructions.
///
/// Contract expected by the sweep engine's memo table: for a fixed
/// `(cop, seed)` the result must be deterministic, and it must depend
/// *only* on `(cop, seed)` — never on `scratch` contents (buffers must be
/// overwritten before use) or on global state. That is what makes caching
/// a pure optimization: a memoized result is bit-identical to re-solving.
pub trait CopSolver: fmt::Debug + Send + Sync {
    /// Solves `cop` deterministically under `seed`, reusing `scratch`
    /// buffers where the implementation supports it (others ignore it).
    fn solve_cop(&self, cop: &ColumnCop, seed: u64, scratch: &mut CopScratch) -> CopResult;

    /// A stable fingerprint of this solver's full configuration, used to
    /// namespace [`SharedCopCache`](crate::SharedCopCache) entries: two
    /// runs share a cross-request cache entry only when their solver
    /// fingerprints (and framework seeds) match, because a cached answer
    /// is only bit-identical to recomputation under the configuration
    /// that produced it.
    ///
    /// The default hashes the concrete type name together with the
    /// solver's `Debug` rendering, which captures every knob of a solver
    /// with a derived `Debug`. Override it only if your `Debug` impl
    /// omits state that changes solve results — an incomplete fingerprint
    /// silently serves one configuration's answers to another.
    fn fingerprint(&self) -> u64 {
        fingerprint_of(std::any::type_name::<Self>(), &format!("{self:?}"))
    }
}

/// FNV-1a over a solver's type name and `Debug` rendering (the default
/// [`CopSolver::fingerprint`]).
fn fingerprint_of(type_name: &str, debug: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in type_name.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ 0xff).wrapping_mul(0x0000_0100_0000_01b3);
    for &b in debug.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The paper's proposal: ballistic simulated bifurcation on the
/// second-order column-based Ising encoding.
impl CopSolver for IsingCopSolver {
    fn solve_cop(&self, cop: &ColumnCop, seed: u64, scratch: &mut CopScratch) -> CopResult {
        let sol = self
            .clone()
            .seed(seed)
            .solve_in(cop, scratch, &mut NullObserver);
        CopResult {
            setting: sol.setting,
            objective: sol.objective,
            sb_iterations: sol.stats.iterations,
            bnb_nodes: 0,
        }
    }
}

/// Converts a column COP to the equivalent row-based instance.
fn to_row(cop: &ColumnCop) -> RowCop {
    RowCop::from_weights(cop.rows(), cop.cols(), cop.weights_vec(), cop.constant())
}

/// The generic 0-1 ILP route (the Gurobi stand-in): encode the row-based
/// COP as an ILP and hand it to branch and bound. `Framework`'s
/// [`CopSolverKind::Exact`] uses the specialized
/// [`RowCop::solve_exact`] search instead; this impl exists so the
/// general-purpose ILP solver itself can drive the framework.
impl CopSolver for BranchAndBound {
    fn solve_cop(&self, cop: &ColumnCop, _seed: u64, _scratch: &mut CopScratch) -> CopResult {
        let row = to_row(cop);
        let (model, vars) = row.to_ilp();
        let sol = self.solve(&model);
        // Decode the column pattern and re-derive the types exactly — a
        // free post-pass that also guards against limit-truncated solves.
        let v = BitVec::from_fn(row.cols(), |j| sol.values[vars.v0 + j]);
        let (types, objective) = row.optimal_types(&v);
        CopResult {
            setting: RowSetting { v, s: types }.to_column_setting(),
            objective,
            sb_iterations: 0,
            bnb_nodes: sol.nodes,
        }
    }
}

/// The DALTA greedy-reconstruction heuristic baseline.
impl CopSolver for DaltaHeuristic {
    fn solve_cop(&self, cop: &ColumnCop, seed: u64, _scratch: &mut CopScratch) -> CopResult {
        let sol = solve_dalta_heuristic(&to_row(cop), self.restarts, seed);
        CopResult {
            setting: sol.setting.to_column_setting(),
            objective: sol.objective,
            sb_iterations: 0,
            bnb_nodes: 0,
        }
    }
}

/// The BA (simulated-annealing) baseline.
impl CopSolver for BaParams {
    fn solve_cop(&self, cop: &ColumnCop, seed: u64, _scratch: &mut CopScratch) -> CopResult {
        let sol = solve_ba(&to_row(cop), self, seed);
        CopResult {
            setting: sol.setting.to_column_setting(),
            objective: sol.objective,
            sb_iterations: 0,
            bnb_nodes: 0,
        }
    }
}

/// Enum dispatch over the paper's four methods — Table 1's rows.
impl CopSolver for CopSolverKind {
    fn solve_cop(&self, cop: &ColumnCop, seed: u64, scratch: &mut CopScratch) -> CopResult {
        match self {
            CopSolverKind::Ising(solver) => solver.solve_cop(cop, seed, scratch),
            CopSolverKind::Exact { time_limit } => {
                let sol = to_row(cop).solve_exact(*time_limit);
                CopResult {
                    setting: sol.setting.to_column_setting(),
                    objective: sol.objective,
                    sb_iterations: 0,
                    bnb_nodes: sol.nodes,
                }
            }
            CopSolverKind::DaltaHeuristic { restarts } => DaltaHeuristic {
                restarts: *restarts,
            }
            .solve_cop(cop, seed, scratch),
            CopSolverKind::Ba(params) => params.solve_cop(cop, seed, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::{BooleanMatrix, InputDist, Partition, TruthTable};

    fn sample_cop() -> ColumnCop {
        let g = TruthTable::from_fn(4, |p| (p * 5 % 7) & 1 == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        ColumnCop::separate(&BooleanMatrix::build(&g, &w), &w, &InputDist::Uniform)
    }

    #[test]
    fn every_impl_returns_a_consistent_objective() {
        let cop = sample_cop();
        let mut scratch = CopScratch::new();
        let solvers: Vec<Box<dyn CopSolver>> = vec![
            Box::new(IsingCopSolver::new()),
            Box::new(BranchAndBound::new()),
            Box::new(DaltaHeuristic::default()),
            Box::new(BaParams::default()),
            Box::new(CopSolverKind::Exact { time_limit: None }),
        ];
        let exact = cop.objective(&cop.solve_exhaustive());
        for solver in &solvers {
            let r = solver.solve_cop(&cop, 3, &mut scratch);
            assert!(
                (cop.objective(&r.setting) - r.objective).abs() < 1e-9,
                "{solver:?} must report the objective of its own setting"
            );
            assert!(r.objective >= exact - 1e-12, "{solver:?} cannot beat exact");
        }
    }

    #[test]
    fn exact_impls_agree_on_the_optimum() {
        let cop = sample_cop();
        let mut scratch = CopScratch::new();
        let ilp = BranchAndBound::new().solve_cop(&cop, 0, &mut scratch);
        let bnb = CopSolverKind::Exact { time_limit: None }.solve_cop(&cop, 0, &mut scratch);
        let exhaustive = cop.objective(&cop.solve_exhaustive());
        assert!((ilp.objective - exhaustive).abs() < 1e-9);
        assert!((bnb.objective - exhaustive).abs() < 1e-9);
        assert!(bnb.bnb_nodes > 0);
    }

    #[test]
    fn fingerprints_separate_configurations() {
        use crate::CopSolverKind;
        use std::time::Duration;

        let solvers: Vec<Box<dyn CopSolver>> = vec![
            Box::new(IsingCopSolver::new()),
            Box::new(CopSolverKind::Ising(IsingCopSolver::new())),
            Box::new(CopSolverKind::Exact { time_limit: None }),
            Box::new(CopSolverKind::Exact {
                time_limit: Some(Duration::from_millis(50)),
            }),
            Box::new(CopSolverKind::DaltaHeuristic { restarts: 2 }),
            Box::new(CopSolverKind::DaltaHeuristic { restarts: 3 }),
            Box::new(BaParams::default()),
        ];
        let prints: Vec<u64> = solvers.iter().map(|s| s.fingerprint()).collect();
        for (i, a) in prints.iter().enumerate() {
            for (j, b) in prints.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "{:?} and {:?} must not share a fingerprint",
                        solvers[i], solvers[j]);
                }
            }
        }
        // Deterministic within a process (the property the cache needs).
        assert_eq!(
            IsingCopSolver::new().fingerprint(),
            IsingCopSolver::new().fingerprint()
        );
    }

    #[test]
    fn ising_impl_is_deterministic_per_seed_and_scratch_free() {
        let cop = sample_cop();
        let solver = IsingCopSolver::new();
        let mut fresh = CopScratch::new();
        let a = solver.solve_cop(&cop, 42, &mut fresh);
        // Re-solve through the *same* (now dirty) scratch: identical.
        let b = solver.solve_cop(&cop, 42, &mut fresh);
        assert_eq!(a.setting, b.setting);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.sb_iterations, b.sb_iterations);
    }
}
