//! The pluggable core-COP solver interface.
//!
//! Section 2.4 of the paper structures its evaluation around one fixed
//! outer framework (DALTA's partition sweep) driving interchangeable
//! core-COP solvers: the proposed Ising/bSB method, the exact ILP path
//! ("DALTA-ILP"), the DALTA heuristic reconstruction, and BA. The
//! [`CopSolver`] trait is that seam: anything that can map a
//! [`ColumnCop`] to a [`ColumnSetting`] plugs into
//! [`Framework::solver`](crate::Framework::solver), and
//! [`CopSolverKind`](crate::CopSolverKind) remains as the ready-made enum
//! of the paper's four methods.
//!
//! ## The solve context
//!
//! Every solve receives a [`SolveCtx`]: the seed plus the *run controls* —
//! an optional soft deadline, a cooperative [`CancelToken`], and an
//! optional best-known incumbent objective. Solvers poll
//! [`SolveCtx::should_stop`] at their natural sampling granularity (bSB
//! sampling points, B&B node batches, restart boundaries) and unwind with
//! their best answer so far; [`CopOutcome::halt`] records whether the
//! solve ran to completion or which control cut it short. A default
//! context ([`SolveCtx::new`]) never fires, and every implementation is
//! bit-identical under it to a context-free solve — which is what keeps
//! memoized results exact.

use crate::baselines::{solve_ba_until, solve_dalta_heuristic_until, BaParams, DaltaHeuristic};
use crate::{ColumnCop, CopSolverKind, IsingCopSolver, RowCop};
use adis_anneal::{Doch, SimCim};
use adis_boolfn::{BitVec, ColumnSetting, RowSetting};
use adis_ilp::BranchAndBound;
use adis_sb::{FusedScratch, SbBatchScratch, SbSolver};
use adis_telemetry::{CancelToken, NullObserver};
use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Why a core-COP solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// The solver ran its configured budget to the end.
    Completed,
    /// The solve reached the context's incumbent objective and stopped
    /// early (racing: another lane's answer was already this good).
    TargetReached,
    /// The context's soft deadline elapsed mid-solve.
    DeadlineExceeded,
    /// The context's [`CancelToken`] fired mid-solve.
    Cancelled,
}

/// A token that never fires, backing [`SolveCtx::new`].
static NEVER: OnceLock<CancelToken> = OnceLock::new();

/// Per-solve context: the seed plus cooperative run controls.
///
/// Construct with [`SolveCtx::new`] (no controls — never stops a solver
/// early) or [`SolveCtx::with_cancel`], then layer on a
/// [`deadline`](SolveCtx::deadline) or an
/// [`incumbent`](SolveCtx::incumbent). The deadline clock starts at
/// construction.
#[derive(Debug, Clone)]
pub struct SolveCtx<'a> {
    /// RNG seed for the solve (replaces the former `seed` argument).
    pub seed: u64,
    /// Soft wall-clock budget, measured from construction. Solvers notice
    /// at their next poll point — this is cooperative, not preemptive.
    pub deadline: Option<Duration>,
    /// Best objective already known to the caller; a solver that matches
    /// or beats it may halt with [`HaltReason::TargetReached`].
    pub incumbent: Option<f64>,
    cancel: &'a CancelToken,
    started: Instant,
}

impl SolveCtx<'static> {
    /// A context with no cancel source, no deadline and no incumbent:
    /// [`should_stop`](SolveCtx::should_stop) never fires, so the solve
    /// runs exactly like the pre-context API.
    pub fn new(seed: u64) -> Self {
        SolveCtx {
            seed,
            deadline: None,
            incumbent: None,
            cancel: NEVER.get_or_init(CancelToken::new),
            started: Instant::now(),
        }
    }
}

impl<'a> SolveCtx<'a> {
    /// A context observing `cancel`; fires as soon as the token (or any of
    /// its ancestors) is cancelled.
    pub fn with_cancel(seed: u64, cancel: &'a CancelToken) -> Self {
        SolveCtx {
            seed,
            deadline: None,
            incumbent: None,
            cancel,
            started: Instant::now(),
        }
    }

    /// Sets a soft deadline, measured from the context's construction.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the best-known objective (racing lanes stop once they match it).
    pub fn incumbent(mut self, objective: f64) -> Self {
        self.incumbent = Some(objective);
        self
    }

    /// The cancel token this context observes.
    pub fn cancel(&self) -> &'a CancelToken {
        self.cancel
    }

    /// Wall-clock time since the context was constructed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// saturates at zero once elapsed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// Whether a run control has fired. Cancellation wins over the
    /// deadline when both have; the incumbent is *not* consulted here
    /// (solvers compare their own running objective via
    /// [`target_reached`](SolveCtx::target_reached)).
    pub fn should_stop(&self) -> Option<HaltReason> {
        if self.cancel.is_cancelled() {
            return Some(HaltReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| self.started.elapsed() >= d) {
            return Some(HaltReason::DeadlineExceeded);
        }
        None
    }

    /// Whether `objective` already matches or beats the context's
    /// incumbent (always false without one).
    pub fn target_reached(&self, objective: f64) -> bool {
        self.incumbent.is_some_and(|inc| objective <= inc)
    }
}

/// Maps a truncated solve back to the run control that caused it (the
/// flags latch, so re-querying after the fact is reliable). A solve that
/// was not interrupted completed.
pub(crate) fn halt_of(ctx: &SolveCtx<'_>, interrupted: bool) -> HaltReason {
    if interrupted {
        ctx.should_stop().unwrap_or(HaltReason::Completed)
    } else {
        HaltReason::Completed
    }
}

/// Outcome of one core-COP solve through the [`CopSolver`] seam.
#[derive(Debug, Clone)]
pub struct CopOutcome {
    /// The best column setting found (row-based solvers convert).
    pub setting: ColumnSetting,
    /// Its objective (ER in separate mode, MED in joint mode).
    pub objective: f64,
    /// bSB Euler iterations spent (0 for non-Ising solvers).
    pub sb_iterations: usize,
    /// Branch-and-bound nodes expanded (0 for non-exact solvers).
    pub bnb_nodes: u64,
    /// Whether the solve ran its budget to the end or a run control cut
    /// it short. Only [`HaltReason::Completed`] outcomes are cacheable.
    pub halt: HaltReason,
    /// For composite solvers (the portfolio), the member that produced
    /// this answer; `None` for plain solvers.
    pub winner: Option<String>,
}

impl CopOutcome {
    /// A completed outcome with no winner attribution (the common case
    /// for plain solvers).
    pub fn completed(setting: ColumnSetting, objective: f64) -> Self {
        CopOutcome {
            setting,
            objective,
            sb_iterations: 0,
            bnb_nodes: 0,
            halt: HaltReason::Completed,
            winner: None,
        }
    }
}

/// Reusable per-worker buffers for COP solves.
///
/// The sweep engine keeps one of these per active rayon worker (via
/// [`adis_sb::ScratchPool`]) so the structured bSB integrator's coupling
/// workspace, oscillator registers and cost accumulators — and the generic
/// path's [`SbBatchScratch`] — are allocated once per worker, not once per
/// COP.
/// Solvers overwrite every buffer before reading it; a scratch carries no
/// state between solves.
#[derive(Debug, Default)]
pub struct CopScratch {
    /// f32 copy of the COP's weight matrix (structured integrator).
    pub(crate) w: Vec<f32>,
    /// Per-row weight sums.
    pub(crate) rowsum: Vec<f32>,
    /// Oscillator positions (`2r + c` spins plus the bias ancilla).
    pub(crate) x: Vec<f32>,
    /// Oscillator momenta.
    pub(crate) y: Vec<f32>,
    /// Per-row field accumulator.
    pub(crate) tmp: Vec<f32>,
    /// Per-column (type-spin) field accumulator.
    pub(crate) ft: Vec<f32>,
    /// Per-column pattern-1 cost accumulator (f64 bookkeeping).
    pub(crate) cost1: Vec<f64>,
    /// Per-column pattern-2 cost accumulator.
    pub(crate) cost2: Vec<f64>,
    /// Batched lane buffers for the generic (non-structured)
    /// [`adis_sb::SbSolver`] path, which integrates all replicas at once.
    pub(crate) batch: SbBatchScratch,
    /// Weight-plane and lane buffers for the engine's fused multi-COP
    /// batch path ([`adis_sb::SbSolver::solve_fused_with`]).
    pub(crate) fused: FusedScratch,
}

impl CopScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// How a [`CopSolver`] asks the sweep engine to batch its COP solves
/// through the fused multi-COP integrator
/// ([`adis_sb::SbSolver::solve_fused_with`]).
///
/// A solver that returns one from [`CopSolver::fused_spec`] promises that,
/// for any COP and content-derived seed `s`, its per-COP answer is exactly
/// what the engine's fused assembly produces: integrate `replicas` lanes of
/// `cop.to_ising()` with `sb` from seeds `s + rep` (applying the Theorem-3
/// type reset at every sampling point when `heuristic`), decode each lane,
/// re-optimize its type vector, and keep the strictly best objective. The
/// engine exploits that contract to pack units of *different* COPs sharing
/// one CSR sparsity pattern into SIMD lanes with continuous refill —
/// bit-identical to the per-COP path by construction.
#[derive(Debug, Clone)]
pub struct FusedSpec {
    /// The composed SB configuration the generic per-COP path would run.
    pub(crate) sb: SbSolver,
    /// Independent trajectories per COP (best objective wins).
    pub(crate) replicas: usize,
    /// Whether the Theorem-3 type-reset intervention fires at sampling
    /// points.
    pub(crate) heuristic: bool,
}

/// A core-COP solver: anything that maps a [`ColumnCop`] to a column
/// setting and its objective.
///
/// This is the paper's Section 2.4 pluggable-solver seam made explicit:
/// the outer framework (partition sweep, incumbent keeping, rounds) is
/// identical for every method in Table 1, and only `solve_cop` differs —
/// bSB on the second-order column encoding for the proposal, branch and
/// bound on the row-based 0-1 ILP for DALTA-ILP, and the DALTA/BA
/// reconstructions.
///
/// Contract expected by the sweep engine's memo table: for a fixed
/// `(cop, ctx.seed)` and a context whose run controls never fire, the
/// result must be deterministic and depend *only* on `(cop, ctx.seed)` —
/// never on `scratch` contents (buffers must be overwritten before use)
/// or on global state. That is what makes caching a pure optimization: a
/// memoized result is bit-identical to re-solving. When a run control
/// *does* fire the solver must still return a valid setting (its best so
/// far) with [`CopOutcome::halt`] recording the cause; such truncated
/// outcomes are wall-clock-dependent and are never cached.
pub trait CopSolver: fmt::Debug + Send + Sync {
    /// Solves `cop` under `ctx` (seed + cooperative run controls),
    /// reusing `scratch` buffers where the implementation supports it
    /// (others ignore it).
    fn solve_cop(&self, cop: &ColumnCop, ctx: &SolveCtx<'_>, scratch: &mut CopScratch)
        -> CopOutcome;

    /// A stable fingerprint of this solver's full configuration, used to
    /// namespace [`SharedCopCache`](crate::SharedCopCache) entries: two
    /// runs share a cross-request cache entry only when their solver
    /// fingerprints (and framework seeds) match, because a cached answer
    /// is only bit-identical to recomputation under the configuration
    /// that produced it.
    ///
    /// The default hashes the concrete type name together with the
    /// solver's `Debug` rendering, which captures every knob of a solver
    /// with a derived `Debug`. Override it only if your `Debug` impl
    /// omits state that changes solve results — an incomplete fingerprint
    /// silently serves one configuration's answers to another.
    fn fingerprint(&self) -> u64 {
        fingerprint_of(std::any::type_name::<Self>(), &format!("{self:?}"))
    }

    /// Whether results are a pure function of `(cop, ctx.seed)`. The
    /// sweep engine memoizes only deterministic solvers; a raced
    /// portfolio (whose winner depends on thread timing) returns false
    /// and bypasses both cache tiers.
    fn deterministic(&self) -> bool {
        true
    }

    /// Opts this solver into the engine's fused multi-COP batch path by
    /// describing the equivalent lane integration (see [`FusedSpec`]).
    /// The default `None` keeps the per-candidate solve loop; only return
    /// `Some` when the spec's bit-identity contract genuinely holds for
    /// every COP the engine may present.
    fn fused_spec(&self) -> Option<FusedSpec> {
        None
    }
}

/// FNV-1a over a solver's type name and `Debug` rendering (the default
/// [`CopSolver::fingerprint`]).
fn fingerprint_of(type_name: &str, debug: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in type_name.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ 0xff).wrapping_mul(0x0000_0100_0000_01b3);
    for &b in debug.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The paper's proposal: ballistic simulated bifurcation on the
/// second-order column-based Ising encoding.
impl CopSolver for IsingCopSolver {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
    ) -> CopOutcome {
        let (sol, halt) = self
            .clone()
            .seed(ctx.seed)
            .solve_ctx_in(cop, ctx, scratch, &mut NullObserver);
        CopOutcome {
            setting: sol.setting,
            objective: sol.objective,
            sb_iterations: sol.stats.iterations,
            bnb_nodes: 0,
            halt,
            winner: None,
        }
    }

    fn fused_spec(&self) -> Option<FusedSpec> {
        self.fused_spec_impl()
    }
}

/// Converts a column COP to the equivalent row-based instance.
fn to_row(cop: &ColumnCop) -> RowCop {
    RowCop::from_weights(cop.rows(), cop.cols(), cop.weights_vec(), cop.constant())
}

/// The generic 0-1 ILP route (the Gurobi stand-in): encode the row-based
/// COP as an ILP and hand it to branch and bound. `Framework`'s
/// [`CopSolverKind::Exact`] uses the specialized
/// [`RowCop::solve_exact`] search instead; this impl exists so the
/// general-purpose ILP solver itself can drive the framework.
impl CopSolver for BranchAndBound {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        _scratch: &mut CopScratch,
    ) -> CopOutcome {
        let row = to_row(cop);
        let (model, vars) = row.to_ilp();
        let sol = self.solve_interruptible(
            &model,
            &|| ctx.should_stop().is_some(),
            &mut NullObserver,
        );
        // Decode the column pattern and re-derive the types exactly — a
        // free post-pass that also guards against limit-truncated solves.
        let v = BitVec::from_fn(row.cols(), |j| sol.values[vars.v0 + j]);
        let (types, objective) = row.optimal_types(&v);
        CopOutcome {
            setting: RowSetting { v, s: types }.to_column_setting(),
            objective,
            sb_iterations: 0,
            bnb_nodes: sol.nodes,
            halt: ctx.should_stop().unwrap_or(HaltReason::Completed),
            winner: None,
        }
    }
}

/// The DALTA greedy-reconstruction heuristic baseline.
impl CopSolver for DaltaHeuristic {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        _scratch: &mut CopScratch,
    ) -> CopOutcome {
        let (sol, interrupted) = solve_dalta_heuristic_until(
            &to_row(cop),
            self.restarts,
            ctx.seed,
            &|| ctx.should_stop().is_some(),
        );
        CopOutcome {
            setting: sol.setting.to_column_setting(),
            objective: sol.objective,
            sb_iterations: 0,
            bnb_nodes: 0,
            halt: halt_of(ctx, interrupted),
            winner: None,
        }
    }
}

/// The BA (simulated-annealing) baseline.
impl CopSolver for BaParams {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        _scratch: &mut CopScratch,
    ) -> CopOutcome {
        let (sol, interrupted) =
            solve_ba_until(&to_row(cop), self, ctx.seed, &|| ctx.should_stop().is_some());
        CopOutcome {
            setting: sol.setting.to_column_setting(),
            objective: sol.objective,
            sb_iterations: 0,
            bnb_nodes: 0,
            halt: halt_of(ctx, interrupted),
            winner: None,
        }
    }
}

/// SimCIM (mean-field coherent-Ising-machine dynamics) on the generic
/// column Ising encoding — a cheap portfolio lane next to bSB.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimCimCopSolver {
    solver: SimCim,
}

impl SimCimCopSolver {
    /// The default SimCIM schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a custom-configured [`SimCim`] (its seed is overridden by
    /// the context's on every solve).
    pub fn with(solver: SimCim) -> Self {
        SimCimCopSolver { solver }
    }
}

/// Solves the COP's generic Ising encoding with a relaxation heuristic
/// and decodes the readout exactly like the generic bSB path (including
/// the free Theorem-3 type post-pass).
fn solve_relaxation(
    cop: &ColumnCop,
    ctx: &SolveCtx<'_>,
    run: impl FnOnce(&adis_ising::IsingProblem) -> (adis_anneal::MeanFieldResult, bool),
) -> CopOutcome {
    let ising = cop.to_ising();
    let layout = cop.layout();
    let (r, interrupted) = run(&ising);
    let mut setting = layout.decode(&r.best_state);
    setting.t = cop.optimal_t(&setting.v1, &setting.v2);
    let objective = cop.objective(&setting);
    CopOutcome {
        setting,
        objective,
        sb_iterations: r.iterations,
        bnb_nodes: 0,
        halt: halt_of(ctx, interrupted),
        winner: None,
    }
}

impl CopSolver for SimCimCopSolver {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        _scratch: &mut CopScratch,
    ) -> CopOutcome {
        solve_relaxation(cop, ctx, |ising| {
            self.solver
                .clone()
                .seed(ctx.seed)
                .solve_until(ising, &|| ctx.should_stop().is_some())
        })
    }
}

/// DOCH (difference-of-convex fixed-point iteration) on the generic
/// column Ising encoding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DochCopSolver {
    solver: Doch,
}

impl DochCopSolver {
    /// The default DOCH budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a custom-configured [`Doch`] (its seed is overridden by the
    /// context's on every solve).
    pub fn with(solver: Doch) -> Self {
        DochCopSolver { solver }
    }
}

impl CopSolver for DochCopSolver {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        _scratch: &mut CopScratch,
    ) -> CopOutcome {
        solve_relaxation(cop, ctx, |ising| {
            self.solver
                .clone()
                .seed(ctx.seed)
                .solve_until(ising, &|| ctx.should_stop().is_some())
        })
    }
}

/// Enum dispatch over the paper's four methods — Table 1's rows.
impl CopSolver for CopSolverKind {
    fn solve_cop(
        &self,
        cop: &ColumnCop,
        ctx: &SolveCtx<'_>,
        scratch: &mut CopScratch,
    ) -> CopOutcome {
        match self {
            CopSolverKind::Ising(solver) => solver.solve_cop(cop, ctx, scratch),
            CopSolverKind::Exact { time_limit } => {
                // Fold the context's remaining budget into the exact
                // search's own wall-clock cap; cancellation is only
                // checked at the boundary (the specialized search has no
                // poll hook).
                let effective = match (*time_limit, ctx.remaining()) {
                    (Some(own), Some(left)) => Some(own.min(left)),
                    (Some(own), None) => Some(own),
                    (None, left) => left,
                };
                let sol = to_row(cop).solve_exact(effective);
                CopOutcome {
                    setting: sol.setting.to_column_setting(),
                    objective: sol.objective,
                    sb_iterations: 0,
                    bnb_nodes: sol.nodes,
                    halt: if sol.optimal {
                        HaltReason::Completed
                    } else {
                        ctx.should_stop().unwrap_or(HaltReason::Completed)
                    },
                    winner: None,
                }
            }
            CopSolverKind::DaltaHeuristic { restarts } => DaltaHeuristic {
                restarts: *restarts,
            }
            .solve_cop(cop, ctx, scratch),
            CopSolverKind::Ba(params) => params.solve_cop(cop, ctx, scratch),
        }
    }

    fn fused_spec(&self) -> Option<FusedSpec> {
        match self {
            CopSolverKind::Ising(solver) => solver.fused_spec_impl(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::{BooleanMatrix, InputDist, Partition, TruthTable};

    fn sample_cop() -> ColumnCop {
        let g = TruthTable::from_fn(4, |p| (p * 5 % 7) & 1 == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        ColumnCop::separate(&BooleanMatrix::build(&g, &w), &w, &InputDist::Uniform)
    }

    fn all_solvers() -> Vec<Box<dyn CopSolver>> {
        vec![
            Box::new(IsingCopSolver::new()),
            Box::new(BranchAndBound::new()),
            Box::new(DaltaHeuristic::default()),
            Box::new(BaParams::default()),
            Box::new(SimCimCopSolver::new()),
            Box::new(DochCopSolver::new()),
            Box::new(CopSolverKind::Exact { time_limit: None }),
        ]
    }

    #[test]
    fn every_impl_returns_a_consistent_objective() {
        let cop = sample_cop();
        let mut scratch = CopScratch::new();
        let exact = cop.objective(&cop.solve_exhaustive());
        for solver in &all_solvers() {
            let r = solver.solve_cop(&cop, &SolveCtx::new(3), &mut scratch);
            assert!(
                (cop.objective(&r.setting) - r.objective).abs() < 1e-9,
                "{solver:?} must report the objective of its own setting"
            );
            assert!(r.objective >= exact - 1e-12, "{solver:?} cannot beat exact");
            assert_eq!(r.halt, HaltReason::Completed, "{solver:?} ran uncontrolled");
            assert!(r.winner.is_none());
            assert!(solver.deterministic());
        }
    }

    #[test]
    fn cancelled_context_still_yields_valid_settings() {
        let cop = sample_cop();
        let mut scratch = CopScratch::new();
        let token = CancelToken::new();
        token.cancel();
        // `all_solvers` lists the specialized exact search last; it has no
        // cancel hook and runs to optimality, everything else must notice
        // the pre-cancelled token at its first poll point.
        let solvers = all_solvers();
        for (i, solver) in solvers.iter().enumerate() {
            let ctx = SolveCtx::with_cancel(7, &token);
            let r = solver.solve_cop(&cop, &ctx, &mut scratch);
            assert!(
                (cop.objective(&r.setting) - r.objective).abs() < 1e-9,
                "{solver:?} returned an inconsistent truncated setting"
            );
            let expected = if i == solvers.len() - 1 {
                HaltReason::Completed
            } else {
                HaltReason::Cancelled
            };
            assert_eq!(r.halt, expected, "{solver:?}");
        }
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let cop = sample_cop();
        let mut scratch = CopScratch::new();
        let ctx = SolveCtx::new(7).deadline(Duration::ZERO);
        let r = IsingCopSolver::new().solve_cop(&cop, &ctx, &mut scratch);
        assert_eq!(r.halt, HaltReason::DeadlineExceeded);
        assert!((cop.objective(&r.setting) - r.objective).abs() < 1e-9);
    }

    #[test]
    fn default_context_never_fires() {
        let ctx = SolveCtx::new(0);
        assert!(ctx.should_stop().is_none());
        assert!(!ctx.target_reached(-1e30));
        assert!(ctx.remaining().is_none());
        let with_incumbent = SolveCtx::new(0).incumbent(1.5);
        assert!(with_incumbent.target_reached(1.5));
        assert!(with_incumbent.target_reached(0.0));
        assert!(!with_incumbent.target_reached(2.0));
        // The incumbent alone never trips should_stop.
        assert!(with_incumbent.should_stop().is_none());
    }

    #[test]
    fn cancellation_outranks_the_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = SolveCtx::with_cancel(0, &token).deadline(Duration::ZERO);
        assert_eq!(ctx.should_stop(), Some(HaltReason::Cancelled));
    }

    #[test]
    fn exact_impls_agree_on_the_optimum() {
        let cop = sample_cop();
        let mut scratch = CopScratch::new();
        let ilp = BranchAndBound::new().solve_cop(&cop, &SolveCtx::new(0), &mut scratch);
        let bnb =
            CopSolverKind::Exact { time_limit: None }.solve_cop(&cop, &SolveCtx::new(0), &mut scratch);
        let exhaustive = cop.objective(&cop.solve_exhaustive());
        assert!((ilp.objective - exhaustive).abs() < 1e-9);
        assert!((bnb.objective - exhaustive).abs() < 1e-9);
        assert!(bnb.bnb_nodes > 0);
    }

    #[test]
    fn fingerprints_separate_configurations() {
        use crate::CopSolverKind;
        use std::time::Duration;

        let solvers: Vec<Box<dyn CopSolver>> = vec![
            Box::new(IsingCopSolver::new()),
            Box::new(IsingCopSolver::new().precision(crate::KernelPrecision::I16)),
            Box::new(CopSolverKind::Ising(IsingCopSolver::new())),
            Box::new(CopSolverKind::Exact { time_limit: None }),
            Box::new(CopSolverKind::Exact {
                time_limit: Some(Duration::from_millis(50)),
            }),
            Box::new(CopSolverKind::DaltaHeuristic { restarts: 2 }),
            Box::new(CopSolverKind::DaltaHeuristic { restarts: 3 }),
            Box::new(BaParams::default()),
            Box::new(SimCimCopSolver::new()),
            Box::new(DochCopSolver::new()),
        ];
        let prints: Vec<u64> = solvers.iter().map(|s| s.fingerprint()).collect();
        for (i, a) in prints.iter().enumerate() {
            for (j, b) in prints.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "{:?} and {:?} must not share a fingerprint",
                        solvers[i], solvers[j]);
                }
            }
        }
        // Deterministic within a process (the property the cache needs).
        assert_eq!(
            IsingCopSolver::new().fingerprint(),
            IsingCopSolver::new().fingerprint()
        );
    }

    #[test]
    fn fused_spec_only_on_generic_ising_paths() {
        // Structured f32 path and non-Ising solvers keep the per-COP loop.
        assert!(CopSolver::fused_spec(&IsingCopSolver::new()).is_none());
        assert!(CopSolverKind::Exact { time_limit: None }.fused_spec().is_none());
        assert!(CopSolverKind::DaltaHeuristic { restarts: 2 }.fused_spec().is_none());
        assert!(CopSolverKind::Ba(BaParams::default()).fused_spec().is_none());
        assert!(BranchAndBound::new().fused_spec().is_none());
        // The generic f64 and i16 routes opt in.
        assert!(CopSolver::fused_spec(&IsingCopSolver::new().structured(false)).is_some());
        assert!(CopSolver::fused_spec(
            &IsingCopSolver::new().precision(crate::KernelPrecision::I16)
        )
        .is_some());
        assert!(CopSolverKind::Ising(IsingCopSolver::new().structured(false))
            .fused_spec()
            .is_some());
        // Invalid configurations decline instead of panicking here.
        assert!(CopSolver::fused_spec(
            &IsingCopSolver::new().structured(false).replicas(0)
        )
        .is_none());
    }

    #[test]
    fn ising_impl_is_deterministic_per_seed_and_scratch_free() {
        let cop = sample_cop();
        let solver = IsingCopSolver::new();
        let mut fresh = CopScratch::new();
        let a = solver.solve_cop(&cop, &SolveCtx::new(42), &mut fresh);
        // Re-solve through the *same* (now dirty) scratch: identical.
        let b = solver.solve_cop(&cop, &SolveCtx::new(42), &mut fresh);
        assert_eq!(a.setting, b.setting);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.sb_iterations, b.sb_iterations);
    }
}
