//! Reconstructions of the baseline core-COP solvers the paper compares
//! against: the DALTA heuristic (ICCAD 2021, ref.\[9\]) and the simulated-annealing-based BA
//! (DATE 2023, ref.\[10\]).
//!
//! Neither paper publishes its heuristic's internals, so these are
//! documented reconstructions (see DESIGN.md, Substitutions) that match the
//! published behaviour envelope: DALTA's heuristic is fast but suboptimal
//! versus the ILP; BA is SA-driven and lands between the two.

use crate::{RowCop, RowCopSolution};
use adis_boolfn::BitVec;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic starting pattern for the alternating heuristic: per
/// column, the value that would be cheapest if every row used `Pattern`
/// type (`V_j = 1` iff the column's weight sum is negative).
pub(crate) fn dalta_heuristic_pattern(cop: &RowCop) -> BitVec {
    BitVec::from_fn(cop.cols(), |j| {
        (0..cop.rows()).map(|i| cop.weight(i, j)).sum::<f64>() < 0.0
    })
}

/// The DALTA heuristic (reconstruction): Lloyd-style alternating
/// refinement. Starting from a pattern seed, repeatedly (a) assign each row
/// its optimal type, (b) re-vote every pattern bit against the rows typed
/// `Pattern`/`Complement`, until a fixpoint or `max_rounds`.
///
/// Runs `restarts` additional randomized starts and keeps the best.
pub fn solve_dalta_heuristic(cop: &RowCop, restarts: usize, seed: u64) -> RowCopSolution {
    solve_dalta_heuristic_until(cop, restarts, seed, &|| false).0
}

/// [`solve_dalta_heuristic`] with a cooperative stop hook, polled between
/// starts. The deterministic first start always completes, so even an
/// immediately-firing hook yields a valid solution; the returned flag
/// reports whether the hook cut the run short. A hook that never fires is
/// bit-identical to [`solve_dalta_heuristic`].
pub fn solve_dalta_heuristic_until(
    cop: &RowCop,
    restarts: usize,
    seed: u64,
    should_stop: &dyn Fn() -> bool,
) -> (RowCopSolution, bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut interrupted = false;
    let mut best: Option<(BitVec, f64)> = None;
    let starts = std::iter::once(dalta_heuristic_pattern(cop)).chain((0..restarts).map(|_| {
        let mut v = BitVec::zeros(cop.cols());
        for j in 0..cop.cols() {
            if rng.gen_bool(0.5) {
                v.set(j, true);
            }
        }
        v
    }));
    for mut v in starts {
        let mut obj = cop.optimal_types(&v).1;
        for _ in 0..64 {
            let (types, _) = cop.optimal_types(&v);
            // Re-vote each pattern bit against pattern/complement rows.
            let mut nv = BitVec::zeros(cop.cols());
            for j in 0..cop.cols() {
                let mut cost_one = 0.0;
                let mut cost_zero = 0.0;
                for (i, t) in types.iter().enumerate() {
                    match t {
                        adis_boolfn::RowType::Pattern => cost_one += cop.weight(i, j),
                        adis_boolfn::RowType::Complement => cost_zero += cop.weight(i, j),
                        _ => {}
                    }
                }
                if cost_one < cost_zero {
                    nv.set(j, true);
                }
            }
            let nobj = cop.optimal_types(&nv).1;
            if nobj >= obj - 1e-12 {
                break;
            }
            v = nv;
            obj = nobj;
        }
        if best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
            best = Some((v, obj));
        }
        if should_stop() {
            interrupted = true;
            break;
        }
    }
    let (v, objective) = best.expect("at least one start");
    let (types, _) = cop.optimal_types(&v);
    (
        RowCopSolution {
            setting: adis_boolfn::RowSetting { v, s: types },
            objective,
            optimal: false,
            nodes: 0,
        },
        interrupted,
    )
}

/// The DALTA heuristic packaged as a standalone COP-solver configuration
/// (see [`solve_dalta_heuristic`]); implements
/// [`CopSolver`](crate::CopSolver) so it can drive
/// [`Framework`](crate::Framework) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaltaHeuristic {
    /// Randomized restarts per COP.
    pub restarts: usize,
}

impl Default for DaltaHeuristic {
    fn default() -> Self {
        DaltaHeuristic { restarts: 4 }
    }
}

/// Parameters of the BA (simulated-annealing) baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaParams {
    /// Starting temperature (relative to the COP's weight scale).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Annealing sweeps.
    pub sweeps: usize,
    /// Independent restarts.
    pub restarts: usize,
}

impl Default for BaParams {
    fn default() -> Self {
        BaParams {
            t_start: 1.0,
            t_end: 1e-3,
            sweeps: 200,
            restarts: 2,
        }
    }
}

/// The BA baseline (reconstruction): Metropolis annealing over the row
/// pattern `V` with single-bit-flip moves; row types are re-derived
/// optimally at every evaluation (so the walk explores the `V`-marginal
/// energy landscape).
pub fn solve_ba(cop: &RowCop, params: &BaParams, seed: u64) -> RowCopSolution {
    solve_ba_until(cop, params, seed, &|| false).0
}

/// [`solve_ba`] with a cooperative stop hook, polled between sweeps and
/// between restarts. On interruption the walk's current state joins the
/// best-so-far bookkeeping, so even an immediately-firing hook yields a
/// valid solution; the returned flag reports whether the hook cut the run
/// short. A hook that never fires is bit-identical to [`solve_ba`].
pub fn solve_ba_until(
    cop: &RowCop,
    params: &BaParams,
    seed: u64,
    should_stop: &dyn Fn() -> bool,
) -> (RowCopSolution, bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut interrupted = false;
    // Temperature scale: relative to the mean |weight| so params transfer
    // across problem sizes.
    let scale: f64 = {
        let mut s = 0.0;
        for i in 0..cop.rows() {
            for j in 0..cop.cols() {
                s += cop.weight(i, j).abs();
            }
        }
        (s / (cop.rows() * cop.cols()) as f64).max(1e-12)
    };
    let mut best: Option<(BitVec, f64)> = None;
    // Incremental state: per-row sums Rᵢ and pattern sums Pᵢ(V); flipping
    // one pattern bit updates every Pᵢ in O(r), so a move costs O(r)
    // instead of the O(r·c) of re-deriving the types from scratch.
    let (rows, cols) = (cop.rows(), cop.cols());
    let row_sums: Vec<f64> = (0..rows)
        .map(|i| (0..cols).map(|j| cop.weight(i, j)).sum())
        .collect();
    let row_min = |r_i: f64, p_i: f64| 0.0f64.min(r_i).min(p_i).min(r_i - p_i);
    'restarts: for _ in 0..params.restarts.max(1) {
        let mut v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
        let mut p_sums: Vec<f64> = (0..rows)
            .map(|i| {
                (0..cols)
                    .filter(|&j| v.get(j))
                    .map(|j| cop.weight(i, j))
                    .sum()
            })
            .collect();
        let mut obj = cop.constant()
            + (0..rows)
                .map(|i| row_min(row_sums[i], p_sums[i]))
                .sum::<f64>();
        for sweep in 0..params.sweeps {
            let frac = sweep as f64 / params.sweeps.max(2) as f64;
            let t = scale
                * params.t_start
                * (params.t_end / params.t_start).powf(frac);
            for _ in 0..cols {
                let j = rng.gen_range(0..cols);
                let sign = if v.get(j) { -1.0 } else { 1.0 };
                let mut nobj = cop.constant();
                for i in 0..rows {
                    nobj += row_min(row_sums[i], p_sums[i] + sign * cop.weight(i, j));
                }
                let delta = nobj - obj;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
                    v.toggle(j);
                    for (i, p) in p_sums.iter_mut().enumerate() {
                        *p += sign * cop.weight(i, j);
                    }
                    obj = nobj;
                    if best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
                        best = Some((v.clone(), obj));
                    }
                }
            }
            if should_stop() {
                interrupted = true;
                if best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
                    best = Some((v.clone(), obj));
                }
                break 'restarts;
            }
        }
        if best.as_ref().map(|&(_, b)| obj < b).unwrap_or(true) {
            best = Some((v, obj));
        }
        if should_stop() {
            interrupted = true;
            break;
        }
    }
    let (v, objective) = best.expect("at least one restart");
    let (types, _) = cop.optimal_types(&v);
    (
        RowCopSolution {
            setting: adis_boolfn::RowSetting { v, s: types },
            objective,
            optimal: false,
            nodes: 0,
        },
        interrupted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_cop(seed: u64, rows: usize, cols: usize) -> RowCop {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        RowCop::from_weights(rows, cols, weights, 1.0)
    }

    #[test]
    fn heuristic_upper_bounds_exact() {
        for seed in 0..5 {
            let cop = random_cop(seed, 5, 8);
            let exact = cop.solve_exact(None).objective;
            let h = solve_dalta_heuristic(&cop, 4, seed);
            assert!(h.objective >= exact - 1e-9);
            assert!((cop.objective(&h.setting) - h.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn ba_upper_bounds_exact_and_beats_random() {
        let mut ba_total = 0.0;
        let mut rand_total = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        for seed in 0..5 {
            let cop = random_cop(seed + 10, 5, 10);
            let exact = cop.solve_exact(None).objective;
            let ba = solve_ba(&cop, &BaParams::default(), seed);
            assert!(ba.objective >= exact - 1e-9);
            ba_total += ba.objective;
            let v = BitVec::from_fn(10, |_| rng.gen_bool(0.5));
            rand_total += cop.optimal_types(&v).1;
        }
        assert!(
            ba_total <= rand_total + 1e-9,
            "annealing should beat random patterns"
        );
    }

    #[test]
    fn ba_close_to_exact_on_small() {
        for seed in 0..3 {
            let cop = random_cop(seed + 30, 4, 6);
            let exact = cop.solve_exact(None).objective;
            let ba = solve_ba(&cop, &BaParams::default(), seed);
            // Small instances: annealing should essentially find the optimum.
            assert!(
                ba.objective <= exact + 0.15 * exact.abs() + 0.05,
                "seed {seed}: ba {} vs exact {exact}",
                ba.objective
            );
        }
    }

    #[test]
    fn never_firing_hooks_are_bit_identical() {
        let cop = random_cop(55, 5, 9);
        let plain_d = solve_dalta_heuristic(&cop, 3, 2);
        let (hook_d, int_d) = solve_dalta_heuristic_until(&cop, 3, 2, &|| false);
        assert!(!int_d);
        assert_eq!(plain_d.setting, hook_d.setting);
        assert_eq!(plain_d.objective, hook_d.objective);
        let plain_b = solve_ba(&cop, &BaParams::default(), 2);
        let (hook_b, int_b) = solve_ba_until(&cop, &BaParams::default(), 2, &|| false);
        assert!(!int_b);
        assert_eq!(plain_b.setting, hook_b.setting);
        assert_eq!(plain_b.objective, hook_b.objective);
    }

    #[test]
    fn immediate_stop_still_yields_valid_solutions() {
        let cop = random_cop(66, 5, 9);
        let (d, int_d) = solve_dalta_heuristic_until(&cop, 3, 4, &|| true);
        assert!(int_d);
        assert!((cop.objective(&d.setting) - d.objective).abs() < 1e-9);
        let (b, int_b) = solve_ba_until(&cop, &BaParams::default(), 4, &|| true);
        assert!(int_b);
        assert!((cop.objective(&b.setting) - b.objective).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let cop = random_cop(77, 4, 8);
        let a = solve_ba(&cop, &BaParams::default(), 5);
        let b = solve_ba(&cop, &BaParams::default(), 5);
        assert_eq!(a.setting, b.setting);
        let c = solve_dalta_heuristic(&cop, 3, 9);
        let d = solve_dalta_heuristic(&cop, 3, 9);
        assert_eq!(c.setting, d.setting);
    }
}
