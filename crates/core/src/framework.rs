//! The outer approximate-decomposition framework (DALTA's structure,
//! Section 2.4): per output bit, try `P` candidate partitions, solve the
//! core COP for each, keep the best; sweep components MSB→LSB for `R`
//! rounds.
//!
//! The core-COP solver is pluggable ([`CopSolverKind`]), which is exactly
//! how the paper's comparison is structured: the same framework drives the
//! proposed Ising solver, the exact "DALTA-ILP" path, the DALTA heuristic,
//! and BA.

use crate::baselines::{solve_ba, solve_dalta_heuristic, BaParams};
use crate::{ColumnCop, IsingCopSolver, RowCop};
use adis_boolfn::{
    error_rate_multi, mean_error_distance, ColumnSetting, InputDist, BooleanMatrix,
    MultiOutputFn, Partition,
};
use adis_lut::{ApproxLut, OutputImpl};
use adis_telemetry::{trace_span, NullObserver, SolveObserver};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Which error the core COP minimizes (Section 2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Per-component error rate; ignores output-bit significance.
    Separate,
    /// Whole-word mean error distance with other components fixed.
    Joint,
}

/// Which core-COP solver the framework drives.
#[derive(Debug, Clone)]
pub enum CopSolverKind {
    /// The paper's proposal: bSB on the column-based Ising formulation.
    Ising(IsingCopSolver),
    /// Exact row-based branch and bound with an optional per-COP time
    /// limit — the reproduction's DALTA-ILP (Gurobi stand-in).
    Exact {
        /// Per-COP time limit (`None` = run to optimality).
        time_limit: Option<Duration>,
    },
    /// The DALTA heuristic reconstruction.
    DaltaHeuristic {
        /// Randomized restarts per COP.
        restarts: usize,
    },
    /// The BA (simulated-annealing) reconstruction.
    Ba(BaParams),
}

/// Configuration of a decomposition run.
///
/// # Examples
///
/// ```
/// use adis_boolfn::MultiOutputFn;
/// use adis_core::{Framework, Mode};
///
/// let f = MultiOutputFn::from_word_fn(6, 4, |p| (p * p) & 0xF);
/// let outcome = Framework::new(Mode::Joint, 3)
///     .partitions(6)
///     .rounds(1)
///     .decompose(&f);
/// // Every output now has a disjoint decomposition; MED is the price.
/// assert!(outcome.med >= 0.0);
/// assert_eq!(outcome.choices.len(), 4);
/// ```
///
/// The whole builder surface chains; here the exact branch-and-bound
/// replaces the default Ising solver:
///
/// ```
/// use adis_boolfn::{InputDist, MultiOutputFn};
/// use adis_core::{CopSolverKind, Framework, Mode};
/// use std::time::Duration;
///
/// let f = MultiOutputFn::from_word_fn(5, 3, |p| (p + 3) & 0x7);
/// let outcome = Framework::new(Mode::Separate, 2)
///     .solver(CopSolverKind::Exact {
///         time_limit: Some(Duration::from_millis(100)),
///     })
///     .partitions(4)
///     .rounds(2)
///     .seed(7)
///     .parallel(false)
///     .dist(InputDist::Uniform)
///     .decompose(&f);
/// assert_eq!(outcome.choices.len(), 3);
/// assert_eq!(outcome.sb_iterations, 0); // the exact solver runs no bSB
/// ```
#[derive(Debug, Clone)]
pub struct Framework {
    mode: Mode,
    solver: CopSolverKind,
    bound_size: u32,
    num_partitions: usize,
    rounds: usize,
    seed: u64,
    parallel: bool,
    dist: InputDist,
}

/// The decomposition chosen for one output component.
#[derive(Debug, Clone)]
pub struct ComponentChoice {
    /// The selected input partition.
    pub partition: Partition,
    /// The selected column setting (row-based solutions are converted).
    pub setting: ColumnSetting,
    /// The COP objective of this choice when it was made.
    pub objective: f64,
}

/// Result of a full decomposition run.
#[derive(Debug, Clone)]
pub struct DecompositionOutcome {
    /// The approximated function (every component decomposes exactly).
    pub approx: MultiOutputFn,
    /// Per-component choices, LSB first.
    pub choices: Vec<ComponentChoice>,
    /// Mean error distance versus the exact function.
    pub med: f64,
    /// Word error rate versus the exact function.
    pub er: f64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Core-COP instances solved.
    pub cop_solves: usize,
    /// bSB Euler iterations summed over every Ising COP solve (0 when a
    /// non-Ising [`CopSolverKind`] ran).
    pub sb_iterations: usize,
}

/// Per-COP solver work, threaded out of the parallel partition sweep.
#[derive(Debug, Clone, Copy, Default)]
struct CopWork {
    /// bSB Euler iterations (Ising solver only).
    sb_iterations: usize,
    /// Branch-and-bound nodes (exact solver only).
    bnb_nodes: u64,
}

impl DecompositionOutcome {
    /// Assembles the decomposed approximate LUT.
    pub fn to_lut(&self) -> ApproxLut {
        ApproxLut::new(
            self.approx.inputs(),
            self.choices
                .iter()
                .map(|c| OutputImpl::decomposed(&c.partition, &c.setting))
                .collect(),
        )
    }
}

impl Framework {
    /// A framework with the given mode and bound-set size `|B|`; defaults:
    /// Ising solver (paper configuration), `P = 16` partitions, `R = 1`
    /// round, uniform inputs, parallel partition sweep.
    pub fn new(mode: Mode, bound_size: u32) -> Self {
        Framework {
            mode,
            solver: CopSolverKind::Ising(IsingCopSolver::new()),
            bound_size,
            num_partitions: 16,
            rounds: 1,
            seed: 0,
            parallel: true,
            dist: InputDist::Uniform,
        }
    }

    /// Selects the core-COP solver.
    pub fn solver(mut self, solver: CopSolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Number of candidate partitions `P` per component per round (capped
    /// at the number of distinct partitions).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn partitions(mut self, p: usize) -> Self {
        assert!(p > 0, "need at least one partition");
        self.num_partitions = p;
        self
    }

    /// Number of sweeps `R` over the components.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn rounds(mut self, r: usize) -> Self {
        assert!(r > 0, "need at least one round");
        self.rounds = r;
        self
    }

    /// Sets the RNG seed (partition sampling and solver seeds derive from
    /// it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables/disables the parallel partition sweep.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Sets the input distribution used for all error weighting.
    pub fn dist(mut self, dist: InputDist) -> Self {
        self.dist = dist;
        self
    }

    /// Runs the decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `bound_size` is not in `1..exact.inputs()`.
    pub fn decompose(&self, exact: &MultiOutputFn) -> DecompositionOutcome {
        self.decompose_observed(exact, &mut NullObserver)
    }

    /// Runs the decomposition, reporting progress to `observer`:
    ///
    /// - stage timings (`partition_generation`, `cop_sweep`, `apply`,
    ///   `metrics`) via [`stage_end`](SolveObserver::stage_end);
    /// - counters `cop_solves`, `sb_iterations`, `bnb_nodes`,
    ///   `incumbent_kept`;
    /// - one [`cop_result`](SolveObserver::cop_result) per candidate
    ///   partition (its objective and solver work), and one
    ///   [`component_chosen`](SolveObserver::component_chosen) per
    ///   component per round recording the incumbent-vs-challenger
    ///   decision.
    ///
    /// Per-partition COP solves run (possibly) in parallel; their results
    /// are reported after each sweep joins, in partition order, so
    /// observers never need to be `Sync`. With [`NullObserver`] this is
    /// exactly [`decompose`](Framework::decompose).
    ///
    /// # Panics
    ///
    /// Panics if `bound_size` is not in `1..exact.inputs()`.
    pub fn decompose_observed<O: SolveObserver>(
        &self,
        exact: &MultiOutputFn,
        observer: &mut O,
    ) -> DecompositionOutcome {
        let start = Instant::now();
        let n = exact.inputs();
        let _span = trace_span!(
            "Framework::decompose n={n} m={} mode={:?}",
            exact.outputs(),
            self.mode
        );
        let m = exact.outputs();
        assert!(
            self.bound_size >= 1 && self.bound_size < n,
            "bound size must be in 1..inputs"
        );

        let num_patterns = exact.num_entries();
        let exact_words: Vec<u64> = (0..num_patterns as u64).map(|p| exact.eval_word(p)).collect();
        let mut approx_words = exact_words.clone();
        let mut approx = exact.clone();
        let mut choices: Vec<Option<ComponentChoice>> = vec![None; m as usize];
        let mut cop_solves = 0;
        let mut sb_iterations = 0usize;

        for round in 0..self.rounds {
            // MSB → LSB, as in DALTA.
            for k in (0..m).rev() {
                let stage = Instant::now();
                let partitions = self.generate_partitions(n, round, k);
                observer.stage_end("partition_generation", stage.elapsed());
                cop_solves += partitions.len();
                let solve_one = |(pi, w): (usize, &Partition)| -> (ComponentChoice, CopWork) {
                    let solver_seed = self
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((round as u64) << 32)
                        .wrapping_add((k as u64) << 16)
                        .wrapping_add(pi as u64);
                    let (setting, objective, work) =
                        self.solve_cop(exact, &exact_words, &approx_words, k, w, solver_seed);
                    (
                        ComponentChoice {
                            partition: w.clone(),
                            setting,
                            objective,
                        },
                        work,
                    )
                };
                let stage = Instant::now();
                let solved: Vec<(ComponentChoice, CopWork)> = if self.parallel {
                    partitions.par_iter().enumerate().map(solve_one).collect()
                } else {
                    partitions.iter().enumerate().map(solve_one).collect()
                };
                observer.stage_end("cop_sweep", stage.elapsed());
                observer.counter("cop_solves", solved.len() as u64);
                let mut sweep_sb = 0usize;
                let mut sweep_nodes = 0u64;
                for (pi, (choice, work)) in solved.iter().enumerate() {
                    observer.cop_result(round, k, pi, choice.objective, work.sb_iterations);
                    sweep_sb += work.sb_iterations;
                    sweep_nodes += work.bnb_nodes;
                }
                sb_iterations += sweep_sb;
                if sweep_sb > 0 {
                    observer.counter("sb_iterations", sweep_sb as u64);
                }
                if sweep_nodes > 0 {
                    observer.counter("bnb_nodes", sweep_nodes);
                }
                // Sequential selection over the joined sweep keeps the
                // pre-telemetry semantics for both paths: first strictly
                // minimal objective wins.
                let best = solved
                    .into_iter()
                    .map(|(choice, _)| choice)
                    .min_by(|a, b| a.objective.total_cmp(&b.objective))
                    .expect("at least one partition");

                // Keep the incumbent decomposition if this round's best
                // partition is worse (later rounds draw fresh partitions,
                // which are not guaranteed to contain the current one).
                if let Some(prev) = &choices[k as usize] {
                    let incumbent = match self.mode {
                        Mode::Joint => (0..num_patterns as u64)
                            .map(|p| {
                                self.dist.prob(p, n)
                                    * approx_words[p as usize]
                                        .abs_diff(exact_words[p as usize])
                                        as f64
                            })
                            .sum::<f64>(),
                        Mode::Separate => adis_boolfn::error_rate(
                            exact.component(k),
                            approx.component(k),
                            &self.dist,
                        ),
                    };
                    if incumbent <= best.objective + 1e-12 {
                        let mut kept = prev.clone();
                        kept.objective = incumbent;
                        choices[k as usize] = Some(kept);
                        observer.counter("incumbent_kept", 1);
                        observer.component_chosen(round, k, incumbent, true);
                        continue;
                    }
                }

                // Apply the winning setting to component k.
                let stage = Instant::now();
                let table = best.setting.reconstruct(&best.partition);
                for p in 0..num_patterns as u64 {
                    let bit = table.eval(p);
                    if bit {
                        approx_words[p as usize] |= 1 << k;
                    } else {
                        approx_words[p as usize] &= !(1u64 << k);
                    }
                }
                approx.set_component(k, table);
                observer.stage_end("apply", stage.elapsed());
                observer.component_chosen(round, k, best.objective, false);
                choices[k as usize] = Some(best);
            }
        }

        let choices: Vec<ComponentChoice> = choices
            .into_iter()
            .map(|c| c.expect("every component visited"))
            .collect();
        let stage = Instant::now();
        let med = mean_error_distance(exact, &approx, &self.dist);
        let er = error_rate_multi(exact, &approx, &self.dist);
        observer.stage_end("metrics", stage.elapsed());
        observer.gauge("final_med", med);
        observer.gauge("final_er", er);
        DecompositionOutcome {
            approx,
            choices,
            med,
            er,
            elapsed: start.elapsed(),
            cop_solves,
            sb_iterations,
        }
    }

    /// Draws up to `P` distinct partitions for `(round, k)`; enumerates all
    /// of them when there are no more than `P`.
    fn generate_partitions(&self, n: u32, round: usize, k: u32) -> Vec<Partition> {
        let total = binomial(n as u64, self.bound_size as u64);
        if total <= self.num_partitions as u64 {
            return Partition::enumerate(n, self.bound_size);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed
                .wrapping_add((round as u64) << 40)
                .wrapping_add((k as u64) << 8)
                .wrapping_add(7),
        );
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(self.num_partitions);
        let mut attempts = 0;
        while out.len() < self.num_partitions && attempts < self.num_partitions * 20 {
            attempts += 1;
            let w = Partition::random(n, self.bound_size, &mut rng);
            if seen.insert(w.bound().to_vec()) {
                out.push(w);
            }
        }
        out
    }

    /// Solves one core COP (mode × solver dispatch), returning a column
    /// setting, its objective, and the solver work spent.
    fn solve_cop(
        &self,
        exact: &MultiOutputFn,
        exact_words: &[u64],
        approx_words: &[u64],
        k: u32,
        w: &Partition,
        seed: u64,
    ) -> (ColumnSetting, f64, CopWork) {
        let (weights, constant) = match self.mode {
            Mode::Separate => {
                let matrix = BooleanMatrix::build(exact.component(k), w);
                let cop = ColumnCop::separate(&matrix, w, &self.dist);
                (cop.weights_vec(), cop.constant())
            }
            Mode::Joint => {
                let (r, c) = (w.rows(), w.cols());
                let mut offsets = vec![0i64; r * c];
                let mut probs = vec![0.0; r * c];
                for i in 0..r {
                    for j in 0..c {
                        let x = w.compose(i, j);
                        let others =
                            (approx_words[x as usize] & !(1u64 << k)) as i64;
                        offsets[i * c + j] = others - exact_words[x as usize] as i64;
                        probs[i * c + j] = self.dist.prob(x, exact.inputs());
                    }
                }
                let cop = ColumnCop::joint(r, c, k, &offsets, &probs);
                (cop.weights_vec(), cop.constant())
            }
        };
        let (r, c) = (w.rows(), w.cols());
        match &self.solver {
            CopSolverKind::Ising(solver) => {
                let cop = ColumnCop::from_weights(r, c, weights, constant);
                let sol = solver.clone().seed(seed).solve(&cop);
                (
                    sol.setting,
                    sol.objective,
                    CopWork {
                        sb_iterations: sol.stats.iterations,
                        bnb_nodes: 0,
                    },
                )
            }
            CopSolverKind::Exact { time_limit } => {
                let cop = RowCop::from_weights(r, c, weights, constant);
                let sol = cop.solve_exact(*time_limit);
                (
                    sol.setting.to_column_setting(),
                    sol.objective,
                    CopWork {
                        sb_iterations: 0,
                        bnb_nodes: sol.nodes,
                    },
                )
            }
            CopSolverKind::DaltaHeuristic { restarts } => {
                let cop = RowCop::from_weights(r, c, weights, constant);
                let sol = solve_dalta_heuristic(&cop, *restarts, seed);
                (
                    sol.setting.to_column_setting(),
                    sol.objective,
                    CopWork::default(),
                )
            }
            CopSolverKind::Ba(params) => {
                let cop = RowCop::from_weights(r, c, weights, constant);
                let sol = solve_ba(&cop, params, seed);
                (
                    sol.setting.to_column_setting(),
                    sol.objective,
                    CopWork::default(),
                )
            }
        }
    }
}

/// Binomial coefficient with saturation (used only for the `≤ P` check).
fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
        if acc > 1 << 40 {
            return u64::MAX;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> MultiOutputFn {
        // A quantized quadratic: 6 inputs, 4 outputs.
        MultiOutputFn::from_word_fn(6, 4, |p| (p * p / 4) & 0xF)
    }

    fn small_framework(mode: Mode, solver: CopSolverKind) -> Framework {
        Framework::new(mode, 3)
            .solver(solver)
            .partitions(5)
            .rounds(1)
            .parallel(false)
            .seed(1)
    }

    #[test]
    fn every_component_decomposes_exactly() {
        let f = target();
        let outcome = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
            .decompose(&f);
        for (k, choice) in outcome.choices.iter().enumerate() {
            let m = BooleanMatrix::build(outcome.approx.component(k as u32), &choice.partition);
            assert!(
                adis_boolfn::find_column_setting(&m).is_some(),
                "component {k} must have a column decomposition"
            );
        }
    }

    #[test]
    fn reported_med_matches_choice_objective_trail() {
        // The final MED must equal the MED of the final approx function.
        let f = target();
        let outcome = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
            .decompose(&f);
        let med = mean_error_distance(&f, &outcome.approx, &InputDist::Uniform);
        assert!((outcome.med - med).abs() < 1e-12);
        // The last optimized component is the LSB (k = 0); its recorded
        // objective is the MED at that point, which is the final MED.
        assert!((outcome.choices[0].objective - med).abs() < 1e-9);
    }

    #[test]
    fn exact_solver_never_loses_to_heuristics_on_same_partitions() {
        let f = target();
        let exact = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .decompose(&f);
        let heur = small_framework(
            Mode::Joint,
            CopSolverKind::DaltaHeuristic { restarts: 2 },
        )
        .decompose(&f);
        // The framework is greedy across components, so the *final* MED is
        // not guaranteed to be ordered — but the first decision (the MSB,
        // optimized before any state diverges) sees identical COP
        // instances, where exact can never lose.
        let msb = (f.outputs() - 1) as usize;
        assert!(
            exact.choices[msb].objective <= heur.choices[msb].objective + 1e-9,
            "exact {} vs heuristic {} on the first COP",
            exact.choices[msb].objective,
            heur.choices[msb].objective
        );
    }

    #[test]
    fn decomposed_lut_matches_approx_function() {
        let f = target();
        let outcome = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
            .decompose(&f);
        let lut = outcome.to_lut();
        for p in 0..64u64 {
            assert_eq!(lut.eval_word(p), outcome.approx.eval_word(p));
        }
        // The decomposed LUT is smaller than direct storage.
        assert!(lut.size_bits() < lut.direct_size_bits());
    }

    #[test]
    fn joint_beats_separate_on_med() {
        let f = target();
        let joint = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .decompose(&f);
        let sep = small_framework(Mode::Separate, CopSolverKind::Exact { time_limit: None })
            .decompose(&f);
        // The paper's core claim about modes: joint MED ≤ separate MED
        // (joint optimizes MED directly).
        assert!(
            joint.med <= sep.med + 1e-9,
            "joint {} vs separate {}",
            joint.med,
            sep.med
        );
    }

    #[test]
    fn rounds_never_hurt() {
        let f = target();
        let one = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .rounds(1)
            .decompose(&f);
        let two = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .rounds(2)
            .decompose(&f);
        assert!(two.med <= one.med + 1e-9);
    }

    #[test]
    fn parallel_equals_serial() {
        let f = target();
        let serial = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .parallel(false)
            .decompose(&f);
        let parallel = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .parallel(true)
            .decompose(&f);
        assert_eq!(serial.med, parallel.med);
        assert_eq!(serial.approx, parallel.approx);
    }

    #[test]
    fn observed_decompose_matches_plain_and_reports_everything() {
        let f = target();
        let fw = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()));
        let plain = fw.decompose(&f);
        let mut rec = adis_telemetry::Recorder::new();
        let observed = fw.decompose_observed(&f, &mut rec);
        // Observation must not perturb the run.
        assert_eq!(plain.med, observed.med);
        assert_eq!(plain.er, observed.er);
        assert_eq!(plain.approx, observed.approx);
        assert_eq!(plain.cop_solves, observed.cop_solves);
        assert_eq!(plain.sb_iterations, observed.sb_iterations);
        // And the recorder must have the full picture.
        assert_eq!(rec.counters.get("cop_solves") as usize, observed.cop_solves);
        assert_eq!(
            rec.counters.get("sb_iterations") as usize,
            observed.sb_iterations
        );
        assert!(observed.sb_iterations > 0, "Ising solver must report work");
        assert!(rec.stages.total("cop_sweep") > Duration::ZERO);
        assert_eq!(rec.cops.len(), observed.cop_solves);
        assert_eq!(rec.components.len(), f.outputs() as usize);
        assert_eq!(rec.gauges.get("final_med").copied(), Some(observed.med));
    }

    #[test]
    fn exact_solver_reports_nodes_not_sb_iterations() {
        let f = target();
        let fw = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None });
        let mut rec = adis_telemetry::Recorder::new();
        let outcome = fw.decompose_observed(&f, &mut rec);
        assert_eq!(outcome.sb_iterations, 0);
        assert_eq!(rec.counters.get("sb_iterations"), 0);
        assert!(rec.counters.get("bnb_nodes") > 0);
    }

    #[test]
    fn partition_generation_caps_and_dedups() {
        let fw = Framework::new(Mode::Separate, 3).partitions(1000);
        let all = fw.generate_partitions(6, 0, 0);
        assert_eq!(all.len(), 20); // C(6,3)
        let fw2 = Framework::new(Mode::Separate, 3).partitions(5);
        let some = fw2.generate_partitions(8, 0, 0);
        assert_eq!(some.len(), 5);
        let set: std::collections::HashSet<_> =
            some.iter().map(|w| w.bound().to_vec()).collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(9, 5), 126);
        assert_eq!(binomial(16, 9), 11440);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }
}
