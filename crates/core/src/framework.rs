//! The outer approximate-decomposition framework (DALTA's structure,
//! Section 2.4): per output bit, try `P` candidate partitions, solve the
//! core COP for each, keep the best; sweep components MSB→LSB for `R`
//! rounds.
//!
//! The core-COP solver is pluggable (any [`CopSolver`]), which is exactly
//! how the paper's comparison is structured: the same framework drives the
//! proposed Ising solver, the exact "DALTA-ILP" path, the DALTA heuristic,
//! and BA. [`CopSolverKind`] packages those four as a convenience enum.
//!
//! The sweep itself — grid planning, COP memoization, scratch reuse — lives
//! in [`crate::engine`]; this module owns configuration and validation.

use crate::baselines::BaParams;
use crate::cache::SharedCopCache;
use crate::cop_solver::CopSolver;
use crate::engine;
use crate::IsingCopSolver;
use adis_boolfn::{ColumnSetting, InputDist, MultiOutputFn, Partition};
use adis_lut::{ApproxLut, OutputImpl};
use adis_sb::FusedStats;
use adis_telemetry::{CancelToken, NullObserver, SolveObserver};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Which error the core COP minimizes (Section 2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Per-component error rate; ignores output-bit significance.
    Separate,
    /// Whole-word mean error distance with other components fixed.
    Joint,
}

/// The paper's four core-COP solvers as a ready-made [`CopSolver`] enum.
#[derive(Debug, Clone)]
pub enum CopSolverKind {
    /// The paper's proposal: bSB on the column-based Ising formulation.
    Ising(IsingCopSolver),
    /// Exact row-based branch and bound with an optional per-COP time
    /// limit — the reproduction's DALTA-ILP (Gurobi stand-in).
    Exact {
        /// Per-COP time limit (`None` = run to optimality).
        time_limit: Option<Duration>,
    },
    /// The DALTA heuristic reconstruction.
    DaltaHeuristic {
        /// Randomized restarts per COP.
        restarts: usize,
    },
    /// The BA (simulated-annealing) reconstruction.
    Ba(BaParams),
}

/// An invalid [`Framework`] configuration, reported by
/// [`Framework::build`] and the `try_decompose*` entry points.
///
/// # Examples
///
/// ```
/// use adis_core::{ConfigError, Framework, Mode};
///
/// let err = Framework::new(Mode::Joint, 3).partitions(0).build().unwrap_err();
/// assert_eq!(err, ConfigError::ZeroPartitions);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `partitions(0)`: the sweep needs at least one candidate partition.
    ZeroPartitions,
    /// `rounds(0)`: the sweep needs at least one round.
    ZeroRounds,
    /// A bound-set size of 0 leaves no bound set to decompose over.
    ZeroBoundSize,
    /// The bound-set size must leave at least one free input, so it must
    /// be strictly smaller than the function's input count. Only checked
    /// against a concrete function (`try_decompose*`), since the builder
    /// does not know the input count.
    BoundSizeTooLarge {
        /// The configured `|B|`.
        bound_size: u32,
        /// The function's input count `n`.
        inputs: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPartitions => {
                write!(f, "need at least one candidate partition (partitions = 0)")
            }
            ConfigError::ZeroRounds => write!(f, "need at least one round (rounds = 0)"),
            ConfigError::ZeroBoundSize => write!(f, "bound-set size must be at least 1"),
            ConfigError::BoundSizeTooLarge { bound_size, inputs } => write!(
                f,
                "bound-set size {bound_size} must be smaller than the input count {inputs}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a decomposition run.
///
/// # Examples
///
/// ```
/// use adis_boolfn::MultiOutputFn;
/// use adis_core::{Framework, Mode};
///
/// let f = MultiOutputFn::from_word_fn(6, 4, |p| (p * p) & 0xF);
/// let outcome = Framework::new(Mode::Joint, 3)
///     .partitions(6)
///     .rounds(1)
///     .decompose(&f);
/// // Every output now has a disjoint decomposition; MED is the price.
/// assert!(outcome.med >= 0.0);
/// assert_eq!(outcome.choices.len(), 4);
/// ```
///
/// The whole builder surface chains; here the exact branch-and-bound
/// replaces the default Ising solver:
///
/// ```
/// use adis_boolfn::{InputDist, MultiOutputFn};
/// use adis_core::{CopSolverKind, Framework, Mode};
/// use std::time::Duration;
///
/// let f = MultiOutputFn::from_word_fn(5, 3, |p| (p + 3) & 0x7);
/// let outcome = Framework::new(Mode::Separate, 2)
///     .solver(CopSolverKind::Exact {
///         time_limit: Some(Duration::from_millis(100)),
///     })
///     .partitions(4)
///     .rounds(2)
///     .seed(7)
///     .parallel(false)
///     .dist(InputDist::Uniform)
///     .decompose(&f);
/// assert_eq!(outcome.choices.len(), 3);
/// assert_eq!(outcome.sb_iterations, 0); // the exact solver runs no bSB
/// ```
///
/// Invalid settings are caught by [`build`](Framework::build) or the
/// fallible `try_decompose*` entry points instead of panicking setters:
///
/// ```
/// use adis_core::{ConfigError, Framework, Mode};
///
/// assert_eq!(
///     Framework::new(Mode::Separate, 3).rounds(0).build().unwrap_err(),
///     ConfigError::ZeroRounds
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Framework {
    pub(crate) mode: Mode,
    pub(crate) solver: Arc<dyn CopSolver>,
    pub(crate) bound_size: u32,
    pub(crate) num_partitions: usize,
    pub(crate) rounds: usize,
    pub(crate) seed: u64,
    pub(crate) parallel: bool,
    pub(crate) fused: bool,
    pub(crate) cache: bool,
    pub(crate) shared_cache: Option<SharedCopCache>,
    pub(crate) dist: InputDist,
    pub(crate) deadline: Option<Duration>,
    pub(crate) cancel: Option<CancelToken>,
}

/// The decomposition chosen for one output component.
#[derive(Debug, Clone)]
pub struct ComponentChoice {
    /// The selected input partition.
    pub partition: Partition,
    /// The selected column setting (row-based solutions are converted).
    pub setting: ColumnSetting,
    /// The COP objective of this choice when it was made.
    pub objective: f64,
}

/// Result of a full decomposition run.
#[derive(Debug, Clone)]
pub struct DecompositionOutcome {
    /// The approximated function (every component decomposes exactly).
    pub approx: MultiOutputFn,
    /// Per-component choices, LSB first.
    pub choices: Vec<ComponentChoice>,
    /// Mean error distance versus the exact function.
    pub med: f64,
    /// Word error rate versus the exact function.
    pub er: f64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Core-COP instances examined (memo hits included).
    pub cop_solves: usize,
    /// bSB Euler iterations summed over every Ising COP solve (0 when a
    /// non-Ising solver ran).
    pub sb_iterations: usize,
    /// COP instances answered from the engine's memo table.
    pub cache_hits: usize,
    /// COP instances that ran a solver.
    pub cache_misses: usize,
    /// Aggregate fused-batch occupancy over the run; all-zero when the
    /// fused path never engaged (see [`Framework::fused`]).
    pub fused_stats: FusedStats,
}

impl DecompositionOutcome {
    /// Assembles the decomposed approximate LUT.
    pub fn to_lut(&self) -> ApproxLut {
        ApproxLut::new(
            self.approx.inputs(),
            self.choices
                .iter()
                .map(|c| OutputImpl::decomposed(&c.partition, &c.setting))
                .collect(),
        )
    }
}

impl Framework {
    /// A framework with the given mode and bound-set size `|B|`; defaults:
    /// Ising solver (paper configuration), `P = 16` partitions, `R = 1`
    /// round, uniform inputs, parallel partition sweep, COP memoization
    /// enabled.
    pub fn new(mode: Mode, bound_size: u32) -> Self {
        Framework {
            mode,
            solver: Arc::new(CopSolverKind::Ising(IsingCopSolver::new())),
            bound_size,
            num_partitions: 16,
            rounds: 1,
            seed: 0,
            parallel: true,
            fused: true,
            cache: true,
            shared_cache: None,
            dist: InputDist::Uniform,
            deadline: None,
            cancel: None,
        }
    }

    /// Selects the core-COP solver — a [`CopSolverKind`] variant or any
    /// custom [`CopSolver`] implementation.
    pub fn solver(mut self, solver: impl CopSolver + 'static) -> Self {
        self.solver = Arc::new(solver);
        self
    }

    /// Number of candidate partitions `P` per component per round (capped
    /// at the number of distinct partitions). Zero is rejected by
    /// [`build`](Framework::build)/`try_decompose*`, not here.
    pub fn partitions(mut self, p: usize) -> Self {
        self.num_partitions = p;
        self
    }

    /// Number of sweeps `R` over the components. Zero is rejected by
    /// [`build`](Framework::build)/`try_decompose*`, not here.
    pub fn rounds(mut self, r: usize) -> Self {
        self.rounds = r;
        self
    }

    /// Sets the RNG seed. Partition sampling derives from it positionally;
    /// per-COP solver seeds derive from it *by COP content*, which is what
    /// makes the memo table and the parallel sweep result-transparent.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables/disables the parallel partition sweep.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Enables/disables the fused multi-COP batch path (on by default).
    ///
    /// When the sweep is parallel, the solver is a generic-path Ising
    /// solver (see [`CopSolver::fused_spec`](crate::CopSolver::fused_spec)),
    /// and no deadline or cancel token is attached, the engine packs the
    /// COPs of each cell into shared-sparsity SIMD lanes and advances them
    /// in fused batches with continuous lane refill instead of solving one
    /// COP per rayon task. Results are bit-identical either way — this
    /// switch only exists to measure the fused path's effect and to force
    /// the per-COP path in differential checks.
    pub fn fused(mut self, on: bool) -> Self {
        self.fused = on;
        self
    }

    /// Enables/disables the engine's COP memo table (on by default).
    /// Results are bit-identical either way — disabling only exists to
    /// measure the cache's effect. Disabling also bypasses any attached
    /// [`shared_cache`](Framework::shared_cache) for this run.
    pub fn cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Attaches a cross-request [`SharedCopCache`]: COP answers computed
    /// by this run are published to `cache`, and lookups that miss the
    /// per-run memo consult it. Clones of one cache share storage, so
    /// passing the same cache to many frameworks (or the same framework
    /// reused across requests) pools their work.
    ///
    /// Results remain bit-identical with or without the shared cache —
    /// entries are namespaced by framework seed and solver fingerprint,
    /// and per-COP solver seeds are content-derived, so a hit returns
    /// exactly what recomputing would (see [`SharedCopCache`]).
    pub fn shared_cache(mut self, cache: SharedCopCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Sets the input distribution used for all error weighting.
    pub fn dist(mut self, dist: InputDist) -> Self {
        self.dist = dist;
        self
    }

    /// Soft wall-clock budget for the whole run, threaded into every COP
    /// solve as a [`SolveCtx`](crate::SolveCtx) deadline. Cooperative:
    /// solvers poll it between sweeps/samples and return their incumbent
    /// with [`HaltReason::DeadlineExceeded`](crate::HaltReason), so the
    /// run still produces a complete (if lower-quality) decomposition.
    /// Truncated answers are never cached.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attaches a [`CancelToken`] observed by every COP solve. Cancelling
    /// it makes in-flight solvers unwind with their current incumbent
    /// ([`HaltReason::Cancelled`](crate::HaltReason)); like deadline
    /// truncation, cancelled answers are never cached.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Checks every constraint that does not need a concrete function;
    /// `inputs` adds the bound-size-vs-inputs check when known.
    fn validate(&self, inputs: Option<u32>) -> Result<(), ConfigError> {
        if self.num_partitions == 0 {
            return Err(ConfigError::ZeroPartitions);
        }
        if self.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        if self.bound_size == 0 {
            return Err(ConfigError::ZeroBoundSize);
        }
        if let Some(n) = inputs {
            if self.bound_size >= n {
                return Err(ConfigError::BoundSizeTooLarge {
                    bound_size: self.bound_size,
                    inputs: n,
                });
            }
        }
        Ok(())
    }

    /// Validates the configuration, returning it unchanged when every
    /// function-independent constraint holds. The bound-size-vs-inputs
    /// check needs a concrete function and happens in `try_decompose*`.
    pub fn build(self) -> Result<Self, ConfigError> {
        self.validate(None)?;
        Ok(self)
    }

    /// Runs the decomposition.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`try_decompose`](Framework::try_decompose) for the fallible form).
    pub fn decompose(&self, exact: &MultiOutputFn) -> DecompositionOutcome {
        self.decompose_with(exact, &mut NullObserver)
    }

    /// Runs the decomposition, or reports why the configuration cannot
    /// run against `exact` (zero partitions/rounds, zero or oversized
    /// bound-set size).
    pub fn try_decompose(
        &self,
        exact: &MultiOutputFn,
    ) -> Result<DecompositionOutcome, ConfigError> {
        self.try_decompose_with(exact, &mut NullObserver)
    }

    /// Runs the decomposition, reporting progress to `observer`:
    ///
    /// - stage timings (`partition_generation`, `cop_sweep`, `apply`,
    ///   `metrics`) via [`stage_end`](SolveObserver::stage_end) — the
    ///   engine plans partitions in bounded chunks of cells, so
    ///   `partition_generation` is reported once per chunk;
    /// - counters `cop_solves`, `sb_iterations`, `bnb_nodes`,
    ///   `incumbent_kept`, `cache_hits`, `cache_misses`;
    /// - one [`fused_batch`](SolveObserver::fused_batch) event per cell
    ///   that ran on the fused multi-COP path (see [`Framework::fused`]),
    ///   carrying the merged lane-occupancy counters of that cell;
    /// - one [`cop_result`](SolveObserver::cop_result) per candidate
    ///   partition (its objective and solver work), and one
    ///   [`component_chosen`](SolveObserver::component_chosen) per
    ///   component per round recording the incumbent-vs-challenger
    ///   decision.
    ///
    /// Per-partition COP solves run (possibly) in parallel; their results
    /// are reported after each sweep joins, in partition order, so
    /// observers never need to be `Sync`. With [`NullObserver`] this is
    /// exactly [`decompose`](Framework::decompose).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`try_decompose_with`](Framework::try_decompose_with) for the
    /// fallible form).
    pub fn decompose_with<O: SolveObserver>(
        &self,
        exact: &MultiOutputFn,
        observer: &mut O,
    ) -> DecompositionOutcome {
        match self.try_decompose_with(exact, observer) {
            Ok(outcome) => outcome,
            Err(e) => panic!("invalid Framework configuration: {e}"),
        }
    }

    /// The fallible form of [`decompose_with`](Framework::decompose_with).
    pub fn try_decompose_with<O: SolveObserver>(
        &self,
        exact: &MultiOutputFn,
        observer: &mut O,
    ) -> Result<DecompositionOutcome, ConfigError> {
        self.validate(Some(exact.inputs()))?;
        Ok(engine::run(self, exact, observer))
    }

    /// Draws up to `P` distinct partitions for `(round, k)`; enumerates all
    /// of them when there are no more than `P`.
    pub(crate) fn generate_partitions(&self, n: u32, round: usize, k: u32) -> Vec<Partition> {
        let total = binomial(n as u64, self.bound_size as u64);
        if total <= self.num_partitions as u64 {
            return Partition::enumerate(n, self.bound_size);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed
                .wrapping_add((round as u64) << 40)
                .wrapping_add((k as u64) << 8)
                .wrapping_add(7),
        );
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(self.num_partitions);
        let mut attempts = 0;
        while out.len() < self.num_partitions && attempts < self.num_partitions * 20 {
            attempts += 1;
            let w = Partition::random(n, self.bound_size, &mut rng);
            if seen.insert(w.bound().to_vec()) {
                out.push(w);
            }
        }
        out
    }
}

/// Binomial coefficient with saturation (used only for the `≤ P` check).
fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
        if acc > 1 << 40 {
            return u64::MAX;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::BooleanMatrix;
    use std::time::Instant;

    fn target() -> MultiOutputFn {
        // A quantized quadratic: 6 inputs, 4 outputs.
        MultiOutputFn::from_word_fn(6, 4, |p| (p * p / 4) & 0xF)
    }

    fn small_framework(mode: Mode, solver: CopSolverKind) -> Framework {
        Framework::new(mode, 3)
            .solver(solver)
            .partitions(5)
            .rounds(1)
            .parallel(false)
            .seed(1)
    }

    #[test]
    fn every_component_decomposes_exactly() {
        let f = target();
        let outcome = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
            .decompose(&f);
        for (k, choice) in outcome.choices.iter().enumerate() {
            let m = BooleanMatrix::build(outcome.approx.component(k as u32), &choice.partition);
            assert!(
                adis_boolfn::find_column_setting(&m).is_some(),
                "component {k} must have a column decomposition"
            );
        }
    }

    #[test]
    fn reported_med_matches_choice_objective_trail() {
        // The final MED must equal the MED of the final approx function.
        let f = target();
        let outcome = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
            .decompose(&f);
        let med = adis_boolfn::mean_error_distance(&f, &outcome.approx, &InputDist::Uniform);
        assert!((outcome.med - med).abs() < 1e-12);
        // The last optimized component is the LSB (k = 0); its recorded
        // objective is the MED at that point, which is the final MED.
        assert!((outcome.choices[0].objective - med).abs() < 1e-9);
    }

    #[test]
    fn exact_solver_never_loses_to_heuristics_on_same_partitions() {
        let f = target();
        let exact = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .decompose(&f);
        let heur = small_framework(
            Mode::Joint,
            CopSolverKind::DaltaHeuristic { restarts: 2 },
        )
        .decompose(&f);
        // The framework is greedy across components, so the *final* MED is
        // not guaranteed to be ordered — but the first decision (the MSB,
        // optimized before any state diverges) sees identical COP
        // instances, where exact can never lose.
        let msb = (f.outputs() - 1) as usize;
        assert!(
            exact.choices[msb].objective <= heur.choices[msb].objective + 1e-9,
            "exact {} vs heuristic {} on the first COP",
            exact.choices[msb].objective,
            heur.choices[msb].objective
        );
    }

    #[test]
    fn decomposed_lut_matches_approx_function() {
        let f = target();
        let outcome = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
            .decompose(&f);
        let lut = outcome.to_lut();
        for p in 0..64u64 {
            assert_eq!(lut.eval_word(p), outcome.approx.eval_word(p));
        }
        // The decomposed LUT is smaller than direct storage.
        assert!(lut.size_bits() < lut.direct_size_bits());
    }

    #[test]
    fn joint_beats_separate_on_med() {
        let f = target();
        let joint = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .decompose(&f);
        let sep = small_framework(Mode::Separate, CopSolverKind::Exact { time_limit: None })
            .decompose(&f);
        // The paper's core claim about modes: joint MED ≤ separate MED
        // (joint optimizes MED directly).
        assert!(
            joint.med <= sep.med + 1e-9,
            "joint {} vs separate {}",
            joint.med,
            sep.med
        );
    }

    #[test]
    fn rounds_never_hurt() {
        let f = target();
        let one = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .rounds(1)
            .decompose(&f);
        let two = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .rounds(2)
            .decompose(&f);
        assert!(two.med <= one.med + 1e-9);
    }

    #[test]
    fn parallel_equals_serial() {
        let f = target();
        let serial = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .parallel(false)
            .decompose(&f);
        let parallel = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .parallel(true)
            .decompose(&f);
        assert_eq!(serial.med, parallel.med);
        assert_eq!(serial.approx, parallel.approx);
    }

    #[test]
    fn observed_decompose_matches_plain_and_reports_everything() {
        let f = target();
        let fw = small_framework(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()));
        let plain = fw.decompose(&f);
        let mut rec = adis_telemetry::Recorder::new();
        let observed = fw.decompose_with(&f, &mut rec);
        // Observation must not perturb the run.
        assert_eq!(plain.med, observed.med);
        assert_eq!(plain.er, observed.er);
        assert_eq!(plain.approx, observed.approx);
        assert_eq!(plain.cop_solves, observed.cop_solves);
        assert_eq!(plain.sb_iterations, observed.sb_iterations);
        // And the recorder must have the full picture.
        assert_eq!(rec.counters.get("cop_solves") as usize, observed.cop_solves);
        assert_eq!(
            rec.counters.get("sb_iterations") as usize,
            observed.sb_iterations
        );
        assert_eq!(rec.counters.get("cache_hits") as usize, observed.cache_hits);
        assert_eq!(
            rec.counters.get("cache_misses") as usize,
            observed.cache_misses
        );
        assert_eq!(
            observed.cache_hits + observed.cache_misses,
            observed.cop_solves
        );
        assert!(observed.sb_iterations > 0, "Ising solver must report work");
        assert!(rec.stages.total("cop_sweep") > Duration::ZERO);
        assert_eq!(rec.cops.len(), observed.cop_solves);
        assert_eq!(rec.components.len(), f.outputs() as usize);
        assert_eq!(rec.gauges.get("final_med").copied(), Some(observed.med));
    }

    #[test]
    fn exact_solver_reports_nodes_not_sb_iterations() {
        let f = target();
        let fw = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None });
        let mut rec = adis_telemetry::Recorder::new();
        let outcome = fw.decompose_with(&f, &mut rec);
        assert_eq!(outcome.sb_iterations, 0);
        assert_eq!(rec.counters.get("sb_iterations"), 0);
        assert!(rec.counters.get("bnb_nodes") > 0);
    }

    #[test]
    fn custom_solver_impl_drives_the_framework() {
        // A CopSolver written outside CopSolverKind plugs straight in.
        #[derive(Debug)]
        struct Exhaustive;
        impl crate::CopSolver for Exhaustive {
            fn solve_cop(
                &self,
                cop: &crate::ColumnCop,
                _ctx: &crate::SolveCtx<'_>,
                _scratch: &mut crate::CopScratch,
            ) -> crate::CopOutcome {
                let setting = cop.solve_exhaustive();
                let objective = cop.objective(&setting);
                crate::CopOutcome::completed(setting, objective)
            }
        }
        let f = target();
        let custom = Framework::new(Mode::Joint, 3)
            .solver(Exhaustive)
            .partitions(5)
            .rounds(1)
            .parallel(false)
            .seed(1)
            .decompose(&f);
        let exact = small_framework(Mode::Joint, CopSolverKind::Exact { time_limit: None })
            .decompose(&f);
        assert_eq!(custom.choices.len(), f.outputs() as usize);
        // Both are exact, so on the first decision (identical COP grids,
        // before any greedy state can diverge on tied optima) the
        // objectives must agree.
        let msb = (f.outputs() - 1) as usize;
        assert!(
            (custom.choices[msb].objective - exact.choices[msb].objective).abs() < 1e-9,
            "two exact solvers must agree on the first COP's optimum"
        );
    }

    #[test]
    fn build_rejects_invalid_configs() {
        assert_eq!(
            Framework::new(Mode::Joint, 3).partitions(0).build().unwrap_err(),
            ConfigError::ZeroPartitions
        );
        assert_eq!(
            Framework::new(Mode::Joint, 3).rounds(0).build().unwrap_err(),
            ConfigError::ZeroRounds
        );
        assert_eq!(
            Framework::new(Mode::Joint, 0).build().unwrap_err(),
            ConfigError::ZeroBoundSize
        );
        assert!(Framework::new(Mode::Joint, 3).build().is_ok());
        // Every error Displays and round-trips through dyn Error.
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroRounds);
        assert!(e.to_string().contains("rounds"));
    }

    #[test]
    fn try_decompose_rejects_oversized_bound() {
        let f = target(); // 6 inputs
        let err = Framework::new(Mode::Joint, 6)
            .partitions(4)
            .try_decompose(&f)
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BoundSizeTooLarge {
                bound_size: 6,
                inputs: 6
            }
        );
        assert!(err.to_string().contains("bound-set size 6"));
    }

    #[test]
    #[should_panic(expected = "bound-set size")]
    fn decompose_panics_on_oversized_bound() {
        let f = target();
        Framework::new(Mode::Joint, 7).partitions(4).decompose(&f);
    }

    #[test]
    fn partition_generation_caps_and_dedups() {
        let fw = Framework::new(Mode::Separate, 3).partitions(1000);
        let all = fw.generate_partitions(6, 0, 0);
        assert_eq!(all.len(), 20); // C(6,3)
        let fw2 = Framework::new(Mode::Separate, 3).partitions(5);
        let some = fw2.generate_partitions(8, 0, 0);
        assert_eq!(some.len(), 5);
        let set: std::collections::HashSet<_> =
            some.iter().map(|w| w.bound().to_vec()).collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(9, 5), 126);
        assert_eq!(binomial(16, 9), 11440);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn fused_sweep_engages_and_is_bit_identical() {
        // structured(false) takes the generic Ising path, which opts into
        // the fused batch scheduler; the fused parallel run must match the
        // per-COP and sequential runs bit for bit, counters included.
        let f = target();
        let solver = || CopSolverKind::Ising(IsingCopSolver::new().structured(false));
        let base = || {
            small_framework(Mode::Joint, solver())
                .partitions(6)
                .parallel(true)
        };
        let fused = base().decompose(&f);
        assert!(
            fused.fused_stats.units > 0,
            "fused path must engage for a parallel generic-path run"
        );
        assert!(fused.fused_stats.occupancy() > 0.0);
        let per_cop = base().fused(false).decompose(&f);
        assert_eq!(per_cop.fused_stats.units, 0);
        let serial = base().parallel(false).decompose(&f);
        for other in [&per_cop, &serial] {
            assert_eq!(fused.approx, other.approx);
            assert_eq!(fused.med.to_bits(), other.med.to_bits());
            assert_eq!(fused.er.to_bits(), other.er.to_bits());
            assert_eq!(fused.cop_solves, other.cop_solves);
            assert_eq!(fused.sb_iterations, other.sb_iterations);
            assert_eq!(fused.cache_hits, other.cache_hits);
            assert_eq!(fused.cache_misses, other.cache_misses);
        }
    }

    #[test]
    fn fused_sweep_respects_cache_off_and_deadline_gate() {
        let f = target();
        let solver = || CopSolverKind::Ising(IsingCopSolver::new().structured(false));
        // Cache off: every candidate is solved, no hits, still identical.
        let fused = small_framework(Mode::Joint, solver())
            .parallel(true)
            .cache(false)
            .decompose(&f);
        let serial = small_framework(Mode::Joint, solver())
            .parallel(false)
            .cache(false)
            .decompose(&f);
        assert!(fused.fused_stats.units > 0);
        assert_eq!(fused.cache_hits, 0);
        assert_eq!(fused.approx, serial.approx);
        assert_eq!(fused.sb_iterations, serial.sb_iterations);
        // A deadline forces the controlled per-COP path.
        let controlled = small_framework(Mode::Joint, solver())
            .parallel(true)
            .deadline(Duration::from_secs(3600))
            .decompose(&f);
        assert_eq!(controlled.fused_stats.units, 0);
        assert_eq!(controlled.approx, serial.approx);
    }

    #[test]
    fn elapsed_is_measured() {
        let before = Instant::now();
        let outcome = small_framework(Mode::Separate, CopSolverKind::Exact { time_limit: None })
            .decompose(&target());
        assert!(outcome.elapsed <= before.elapsed());
    }
}
