//! Edge-case coverage for the decomposition framework: distribution
//! weighting, extreme partition sizes, single-output functions, and
//! incumbent retention across rounds.

use adis_boolfn::{InputDist, MultiOutputFn};
use adis_core::{CopSolverKind, Framework, IsingCopSolver, Mode};

fn quadratic(n: u32, m: u32) -> MultiOutputFn {
    let mask = (1u64 << m) - 1;
    MultiOutputFn::from_word_fn(n, m, move |p| (p * p / 3) & mask)
}

#[test]
fn single_output_function() {
    let f = quadratic(6, 1);
    let outcome = Framework::new(Mode::Joint, 3)
        .partitions(6)
        .parallel(false)
        .decompose(&f);
    assert_eq!(outcome.choices.len(), 1);
    // For m = 1, MED == ER (distance is 0 or 1).
    assert!((outcome.med - outcome.er).abs() < 1e-12);
}

#[test]
fn extreme_bound_sizes() {
    let f = quadratic(5, 3);
    for bound in [1u32, 4] {
        let outcome = Framework::new(Mode::Joint, bound)
            .partitions(5)
            .parallel(false)
            .decompose(&f);
        assert!(outcome.med.is_finite());
        let lut = outcome.to_lut();
        // φ-LUT: 2^bound bits; F-LUT: 2^(n-bound+1) bits, per output.
        let expect = 3 * ((1u64 << bound) + (1u64 << (5 - bound + 1)));
        assert_eq!(lut.size_bits(), expect);
    }
}

#[test]
fn skewed_distribution_shifts_error_placement() {
    // Mass concentrated on the low quarter of inputs: the approximation
    // must be (weakly) better there than a uniform-weighted run evaluated
    // on the same region.
    let f = quadratic(6, 4);
    let mut probs = vec![0.0; 64];
    for (p, q) in probs.iter_mut().enumerate() {
        *q = if p < 16 { 1.0 / 17.6 } else { 0.1 / 48.0 * 1.1 };
    }
    let total: f64 = probs.iter().sum();
    for q in probs.iter_mut() {
        *q /= total;
    }
    let dist = InputDist::explicit(probs.clone()).expect("normalized");
    let skewed = Framework::new(Mode::Joint, 3)
        .partitions(8)
        .parallel(false)
        .dist(dist.clone())
        .decompose(&f);
    let uniform = Framework::new(Mode::Joint, 3)
        .partitions(8)
        .parallel(false)
        .decompose(&f);
    // Evaluate both under the skewed weights.
    let med_of = |g: &MultiOutputFn| adis_boolfn::mean_error_distance(&f, g, &dist);
    assert!(
        med_of(&skewed.approx) <= med_of(&uniform.approx) + 1e-9,
        "skew-optimized {} vs uniform-optimized {} (skewed metric)",
        med_of(&skewed.approx),
        med_of(&uniform.approx)
    );
    // And the reported MED is under the skewed metric.
    assert!((skewed.med - med_of(&skewed.approx)).abs() < 1e-12);
}

#[test]
fn second_round_never_worse_with_ising_solver() {
    let f = quadratic(6, 4);
    let base = Framework::new(Mode::Joint, 3)
        .solver(CopSolverKind::Ising(IsingCopSolver::new()))
        .partitions(4)
        .parallel(false)
        .seed(3);
    let one = base.clone().rounds(1).decompose(&f);
    let two = base.rounds(2).decompose(&f);
    // Incumbent retention makes extra rounds monotone.
    assert!(
        two.med <= one.med + 1e-9,
        "round 2 must not regress: {} vs {}",
        two.med,
        one.med
    );
}

#[test]
fn separate_mode_reports_component_er_choices() {
    let f = quadratic(6, 3);
    let outcome = Framework::new(Mode::Separate, 3)
        .solver(CopSolverKind::Exact { time_limit: None })
        .partitions(4)
        .parallel(false)
        .decompose(&f);
    // Each choice objective is that component's ER — recompute and compare.
    for (k, choice) in outcome.choices.iter().enumerate() {
        let er = adis_boolfn::error_rate(
            f.component(k as u32),
            outcome.approx.component(k as u32),
            &InputDist::Uniform,
        );
        assert!(
            (er - choice.objective).abs() < 1e-9,
            "component {k}: ER {er} vs recorded {}",
            choice.objective
        );
    }
}

#[test]
fn cop_solve_count_accounting() {
    let f = quadratic(5, 2);
    let outcome = Framework::new(Mode::Joint, 2)
        .partitions(4)
        .rounds(3)
        .parallel(false)
        .decompose(&f);
    // 4 partitions × 2 components × 3 rounds.
    assert_eq!(outcome.cop_solves, 24);
}
