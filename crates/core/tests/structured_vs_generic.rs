//! The structured COP integrator and the generic `SbSolver` path must be
//! interchangeable: same dynamics, same quality envelope, deterministic.

use adis_benchfn::ContinuousFn;
use adis_boolfn::{BooleanMatrix, InputDist, Partition};
use adis_core::{ColumnCop, IsingCopSolver};

fn cop(f: ContinuousFn, bit: u32) -> ColumnCop {
    let table = f.function(8, 8).expect("valid widths");
    let w = Partition::new(8, vec![0, 1, 2], vec![3, 4, 5, 6, 7]).expect("valid");
    ColumnCop::separate(
        &BooleanMatrix::build(table.component(bit), &w),
        &w,
        &InputDist::Uniform,
    )
}

#[test]
fn structured_matches_generic_quality() {
    // Identical dynamics, different memory layout and RNG consumption:
    // objective quality must agree within the instance's natural scale.
    for f in [ContinuousFn::Cos, ContinuousFn::Exp, ContinuousFn::Denoise] {
        for bit in [3u32, 6] {
            let cop = cop(f, bit);
            let s = IsingCopSolver::new().structured(true).seed(3).solve(&cop);
            let g = IsingCopSolver::new().structured(false).seed(3).solve(&cop);
            let scale = cop.constant().abs().max(0.05);
            assert!(
                (s.objective - g.objective).abs() <= 0.25 * scale,
                "{}[{bit}]: structured {} vs generic {}",
                f.name(),
                s.objective,
                g.objective
            );
        }
    }
}

#[test]
fn structured_is_deterministic() {
    let cop = cop(ContinuousFn::Tan, 5);
    let a = IsingCopSolver::new().seed(9).solve(&cop);
    let b = IsingCopSolver::new().seed(9).solve(&cop);
    assert_eq!(a.objective, b.objective);
    assert_eq!(a.setting, b.setting);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn structured_never_beats_exhaustive() {
    for bit in 0..8 {
        let cop = cop(ContinuousFn::Erf, bit);
        // c = 32 is too big to exhaust over T; use the row-exact optimum
        // via the equivalent RowCop instead.
        let table = ContinuousFn::Erf.function(8, 8).expect("valid widths");
        let w = Partition::new(8, vec![0, 1, 2], vec![3, 4, 5, 6, 7]).expect("valid");
        let row = adis_core::RowCop::separate(
            &BooleanMatrix::build(table.component(bit), &w),
            &w,
            &InputDist::Uniform,
        );
        let exact = row.solve_exact(None).objective;
        let sol = IsingCopSolver::new().seed(1).solve(&cop);
        assert!(
            sol.objective >= exact - 1e-9,
            "bit {bit}: {} vs exact {exact}",
            sol.objective
        );
    }
}

#[test]
fn structured_quality_near_exact_on_real_bits() {
    // Across all 8 output bits of erf, the mean gap to the exact optimum
    // must be small.
    let table = ContinuousFn::Erf.function(8, 8).expect("valid widths");
    let w = Partition::new(8, vec![0, 1, 2], vec![3, 4, 5, 6, 7]).expect("valid");
    let mut gap = 0.0;
    for bit in 0..8 {
        let m = BooleanMatrix::build(table.component(bit), &w);
        let cop = ColumnCop::separate(&m, &w, &InputDist::Uniform);
        let row = adis_core::RowCop::separate(&m, &w, &InputDist::Uniform);
        let exact = row.solve_exact(None).objective;
        let sol = IsingCopSolver::new().replicas(2).seed(5).solve(&cop);
        gap += sol.objective - exact;
    }
    assert!(gap / 8.0 < 0.02, "mean gap {}", gap / 8.0);
}

#[test]
fn heuristic_and_stats_behave_in_structured_path() {
    let cop = cop(ContinuousFn::Ln, 4);
    let on = IsingCopSolver::new().heuristic(true).seed(2).solve(&cop);
    assert!(on.stats.interventions > 0);
    let off = IsingCopSolver::new().heuristic(false).seed(2).solve(&cop);
    assert_eq!(off.stats.interventions, 0);
    assert!(on.stats.iterations > 0 && off.stats.iterations > 0);
}
