//! Integration tests for the cross-request [`SharedCopCache`]: sharing a
//! cache between runs (and threads) must change nothing but the amount of
//! work done, at any capacity.

use adis_boolfn::MultiOutputFn;
use adis_core::{
    CacheConfig, CopSolverKind, DecompositionOutcome, Framework, IsingCopSolver, Mode,
    SharedCopCache,
};

fn target() -> MultiOutputFn {
    MultiOutputFn::from_word_fn(6, 4, |p| (p * p / 4) & 0xF)
}

/// A family of related functions, as a serving workload would see: the
/// same quadratic under small affine perturbations shares many component
/// matrices.
fn related(i: u64) -> MultiOutputFn {
    MultiOutputFn::from_word_fn(6, 4, move |p| ((p * p / 4) + i * (p & 1)) & 0xF)
}

fn assert_identical(a: &DecompositionOutcome, b: &DecompositionOutcome, ctx: &str) {
    assert_eq!(a.med.to_bits(), b.med.to_bits(), "med differs: {ctx}");
    assert_eq!(a.er.to_bits(), b.er.to_bits(), "er differs: {ctx}");
    assert_eq!(a.approx, b.approx, "approx differs: {ctx}");
    assert_eq!(a.choices.len(), b.choices.len(), "{ctx}");
    for (x, y) in a.choices.iter().zip(&b.choices) {
        assert_eq!(x.partition, y.partition, "{ctx}");
        assert_eq!(x.setting, y.setting, "{ctx}");
        assert_eq!(x.objective.to_bits(), y.objective.to_bits(), "{ctx}");
    }
}

#[test]
fn second_run_is_served_from_the_shared_cache() {
    let cache = SharedCopCache::new(CacheConfig::default());
    let fw = Framework::new(Mode::Separate, 3)
        .partitions(6)
        .parallel(false)
        .seed(7)
        .shared_cache(cache.clone());
    let reference = Framework::new(Mode::Separate, 3)
        .partitions(6)
        .parallel(false)
        .seed(7)
        .decompose(&target());

    let first = fw.decompose(&target());
    let warm = cache.stats();
    assert!(warm.insertions > 0, "first run must publish entries");
    let second = fw.decompose(&target());
    let after = cache.stats();

    assert_identical(&first, &reference, "first vs unshared");
    assert_identical(&second, &reference, "second vs unshared");
    assert!(
        after.hits > warm.hits,
        "the repeat request must hit the shared tier"
    );
    // Every COP of the second run is answered without solving.
    assert_eq!(second.cache_hits, second.cop_solves);
    assert_eq!(second.cache_misses, 0);
}

#[test]
fn any_capacity_is_bit_identical_even_under_heavy_eviction() {
    // Capacity 1 per shard evicts almost everything almost immediately;
    // results must not move for any mode or solver kind.
    for mode in [Mode::Separate, Mode::Joint] {
        for solver in [
            CopSolverKind::Ising(IsingCopSolver::new()),
            CopSolverKind::Exact { time_limit: None },
        ] {
            let tiny = SharedCopCache::new(CacheConfig { shards: 1, capacity: 1 });
            let base = Framework::new(mode, 3)
                .solver(solver.clone())
                .partitions(6)
                .rounds(2)
                .parallel(false)
                .seed(5);
            let plain = base.clone().decompose(&target());
            let shared = base.shared_cache(tiny.clone()).decompose(&target());
            assert_identical(&plain, &shared, &format!("{mode:?}/{solver:?}"));
            assert!(tiny.len() <= tiny.capacity());
        }
    }
}

#[test]
fn concurrent_runs_share_and_stay_bit_identical() {
    use std::thread;

    let cache = SharedCopCache::new(CacheConfig { shards: 8, capacity: 4096 });
    let corpus: Vec<MultiOutputFn> = (0..4).map(related).collect();
    // Cold references, no sharing anywhere.
    let references: Vec<DecompositionOutcome> = corpus
        .iter()
        .map(|f| {
            Framework::new(Mode::Separate, 3)
                .partitions(6)
                .parallel(false)
                .seed(11)
                .decompose(f)
        })
        .collect();

    const THREADS: usize = 6;
    let outcomes: Vec<Vec<DecompositionOutcome>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = cache.clone();
                let corpus = &corpus;
                scope.spawn(move || {
                    // Each thread walks the corpus in a different order so
                    // hits and misses interleave across threads.
                    (0..corpus.len())
                        .map(|i| {
                            let f = &corpus[(i + t) % corpus.len()];
                            Framework::new(Mode::Separate, 3)
                                .partitions(6)
                                .parallel(false)
                                .seed(11)
                                .shared_cache(cache.clone())
                                .decompose(f)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, thread_outcomes) in outcomes.iter().enumerate() {
        for (i, outcome) in thread_outcomes.iter().enumerate() {
            let reference = &references[(i + t) % corpus.len()];
            assert_identical(outcome, reference, &format!("thread {t} item {i}"));
        }
    }
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "24 overlapping runs must share work through the cache"
    );
    assert_eq!(stats.hits + stats.misses, {
        // Every shared-tier lookup is a hit or a miss; the sum is exact
        // even under contention.
        stats.hits + stats.misses
    });
    assert!(stats.entries <= cache.capacity());
}

#[test]
fn different_seeds_and_solvers_never_share_entries() {
    let cache = SharedCopCache::new(CacheConfig::default());
    let run = |seed: u64, solver: CopSolverKind| {
        Framework::new(Mode::Separate, 3)
            .partitions(6)
            .parallel(false)
            .seed(seed)
            .solver(solver)
            .shared_cache(cache.clone())
            .decompose(&target())
    };

    let a = run(1, CopSolverKind::Ising(IsingCopSolver::new()));
    let hits_after_a = cache.stats().hits;
    // Different framework seed: same COP contents, different namespace.
    let _ = run(2, CopSolverKind::Ising(IsingCopSolver::new()));
    // Different solver: different namespace again.
    let _ = run(1, CopSolverKind::Exact { time_limit: None });
    assert_eq!(
        cache.stats().hits,
        hits_after_a,
        "no cross-namespace hit may ever occur"
    );

    // And each namespaced run still matches its unshared twin.
    let plain = Framework::new(Mode::Separate, 3)
        .partitions(6)
        .parallel(false)
        .seed(1)
        .decompose(&target());
    assert_identical(&a, &plain, "namespaced run vs unshared");
}

#[test]
fn disabling_the_run_cache_bypasses_the_shared_tier() {
    let cache = SharedCopCache::new(CacheConfig::default());
    let outcome = Framework::new(Mode::Separate, 3)
        .partitions(6)
        .parallel(false)
        .seed(3)
        .cache(false)
        .shared_cache(cache.clone())
        .decompose(&target());
    assert_eq!(outcome.cache_hits, 0);
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses + stats.insertions, 0);
}
