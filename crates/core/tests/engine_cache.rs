//! Integration tests for the sweep engine's COP memo table: the cache must
//! change nothing but the amount of work done.

use adis_boolfn::MultiOutputFn;
use adis_core::{BaParams, CopSolverKind, Framework, IsingCopSolver, Mode};

fn target() -> MultiOutputFn {
    MultiOutputFn::from_word_fn(6, 4, |p| (p * p / 4) & 0xF)
}

/// All four ready-made solver kinds, in a deterministic configuration
/// (`time_limit: None` keeps the branch and bound exact).
fn solver_kinds() -> Vec<CopSolverKind> {
    vec![
        CopSolverKind::Ising(IsingCopSolver::new()),
        CopSolverKind::Exact { time_limit: None },
        CopSolverKind::DaltaHeuristic { restarts: 2 },
        CopSolverKind::Ba(BaParams::default()),
    ]
}

/// With `P >= C(n, |B|)` the partition generator enumerates, so every round
/// sweeps the *same* partition list. In separate mode the COP depends only
/// on the exact function's matrix, which never changes — so round 2 must be
/// served entirely from the memo table.
#[test]
fn enumerated_separate_sweep_hits_on_every_repeat_round() {
    let outcome = Framework::new(Mode::Separate, 3)
        .solver(CopSolverKind::Exact { time_limit: None })
        .partitions(20) // C(6, 3) = 20: forces the enumerate path
        .rounds(2)
        .parallel(false)
        .seed(7)
        .decompose(&target());
    assert_eq!(outcome.cop_solves, 20 * 4 * 2);
    assert_eq!(outcome.cache_hits + outcome.cache_misses, outcome.cop_solves);
    // Round 2 re-solves the exact same 20 × 4 grid.
    assert!(
        outcome.cache_hits >= 20 * 4,
        "expected at least the whole second round ({}) cached, got {}",
        20 * 4,
        outcome.cache_hits
    );
}

/// A constant function yields the same all-ones matrix for every partition
/// and output, so a sequential sweep does exactly one real solve.
#[test]
fn constant_function_collapses_to_a_single_miss() {
    let f = MultiOutputFn::from_word_fn(5, 2, |_| 0b11);
    let outcome = Framework::new(Mode::Separate, 2)
        .solver(CopSolverKind::Exact { time_limit: None })
        .partitions(4)
        .rounds(1)
        .parallel(false)
        .seed(3)
        .decompose(&f);
    assert_eq!(outcome.cop_solves, 4 * 2);
    assert_eq!(outcome.cache_misses, 1);
    assert_eq!(outcome.cache_hits, 4 * 2 - 1);
}

/// The memo table is a pure work-saving device: switching it off must
/// reproduce the cached run bit for bit, for every mode and solver kind.
#[test]
fn cache_on_and_off_are_bit_identical_for_all_modes_and_solvers() {
    for mode in [Mode::Separate, Mode::Joint] {
        for solver in solver_kinds() {
            let base = Framework::new(mode, 3)
                .solver(solver.clone())
                .partitions(6)
                .rounds(2)
                .parallel(false)
                .seed(5);
            let on = base.clone().cache(true).decompose(&target());
            let off = base.cache(false).decompose(&target());
            assert_eq!(off.cache_hits, 0, "{mode:?}/{solver:?}");
            assert_eq!(on.med, off.med, "{mode:?}/{solver:?}");
            assert_eq!(on.er, off.er, "{mode:?}/{solver:?}");
            assert_eq!(on.approx, off.approx, "{mode:?}/{solver:?}");
            assert_eq!(on.choices.len(), off.choices.len());
            for (a, b) in on.choices.iter().zip(&off.choices) {
                assert_eq!(a.partition, b.partition, "{mode:?}/{solver:?}");
                assert_eq!(a.setting, b.setting, "{mode:?}/{solver:?}");
                assert_eq!(a.objective, b.objective, "{mode:?}/{solver:?}");
            }
        }
    }
}
